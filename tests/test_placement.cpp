#include "kernel/placement.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

KernelInfo demo_kernel() {
  KernelInfo k;
  k.name = "demo";
  k.num_blocks = 1;
  k.threads_per_block = 64;
  k.arrays = {
      ArrayDecl{.name = "in1", .dtype = DType::F32, .elems = 1024,
                .width = 32},
      ArrayDecl{.name = "in2", .dtype = DType::F32, .elems = 1 << 20},
      ArrayDecl{.name = "out", .dtype = DType::F32, .elems = 1024,
                .written = true},
  };
  k.fn = [](WarpEmitter&, const WarpCtx&) {};
  return k;
}

TEST(Placement, DefaultsComeFromArrayDecls) {
  KernelInfo k = demo_kernel();
  k.arrays[0].default_space = MemSpace::Constant;
  const auto p = DataPlacement::defaults(k);
  EXPECT_EQ(p.of(0), MemSpace::Constant);
  EXPECT_EQ(p.of(1), MemSpace::Global);
  EXPECT_EQ(p.to_string(), "C,G,G");
}

TEST(Placement, WithReturnsModifiedCopy) {
  const KernelInfo k = demo_kernel();
  const auto p = DataPlacement::defaults(k);
  const auto q = p.with(1, MemSpace::Texture1D);
  EXPECT_EQ(p.of(1), MemSpace::Global);
  EXPECT_EQ(q.of(1), MemSpace::Texture1D);
}

TEST(Placement, DescribeVsUsesTableIVNotation) {
  const KernelInfo k = demo_kernel();
  const auto base = DataPlacement::defaults(k);
  EXPECT_EQ(base.describe_vs(base, k), "default");
  const auto q = base.with(0, MemSpace::Shared).with(1, MemSpace::Texture1D);
  EXPECT_EQ(q.describe_vs(base, k), "in1(G->S), in2(G->T)");
}

TEST(Placement, WrittenArraysRejectReadOnlySpaces) {
  const KernelInfo k = demo_kernel();
  const auto& arch = kepler_arch();
  const auto base = DataPlacement::defaults(k);
  EXPECT_TRUE(validate_placement(k, base.with(2, MemSpace::Constant), arch));
  EXPECT_TRUE(validate_placement(k, base.with(2, MemSpace::Texture1D), arch));
  EXPECT_FALSE(validate_placement(k, base.with(2, MemSpace::Shared), arch));
}

TEST(Placement, Texture2DNeedsWidth) {
  const KernelInfo k = demo_kernel();
  const auto& arch = kepler_arch();
  const auto base = DataPlacement::defaults(k);
  EXPECT_FALSE(validate_placement(k, base.with(0, MemSpace::Texture2D), arch));
  EXPECT_TRUE(validate_placement(k, base.with(1, MemSpace::Texture2D), arch));
}

TEST(Placement, CapacityLimits) {
  const KernelInfo k = demo_kernel();
  const auto& arch = kepler_arch();
  const auto base = DataPlacement::defaults(k);
  // in2 is 4 MiB: too large for constant (64 KiB) and shared (48 KiB).
  EXPECT_TRUE(validate_placement(k, base.with(1, MemSpace::Constant), arch));
  EXPECT_TRUE(validate_placement(k, base.with(1, MemSpace::Shared), arch));
  // in1 is 4 KiB: fits both.
  EXPECT_FALSE(validate_placement(k, base.with(0, MemSpace::Constant), arch));
  EXPECT_FALSE(validate_placement(k, base.with(0, MemSpace::Shared), arch));
}

TEST(Placement, SharedCapacityIsSliceAware) {
  KernelInfo k = demo_kernel();
  k.arrays[1].shared_slice_elems = 256;  // 1 KiB per block
  const auto& arch = kepler_arch();
  const auto base = DataPlacement::defaults(k);
  EXPECT_FALSE(validate_placement(k, base.with(1, MemSpace::Shared), arch));
}

TEST(Placement, LegalSpacesForReadOnlySmall2DArray) {
  const KernelInfo k = demo_kernel();
  const auto spaces = legal_spaces(k, 0, kepler_arch());
  EXPECT_EQ(spaces.size(), kAllMemSpaces.size());  // everything fits
}

TEST(Placement, FromStringRoundTrips) {
  const KernelInfo k = demo_kernel();
  for (const char* str : {"G,G,G", "C,T,S", "2T,2T,G", "S,G,S"}) {
    const auto p = DataPlacement::from_string(k, str);
    ASSERT_TRUE(p.has_value()) << str;
    EXPECT_EQ(p->to_string(), str);
  }
}

TEST(Placement, FromStringRejectsGarbage) {
  const KernelInfo k = demo_kernel();
  EXPECT_FALSE(DataPlacement::from_string(k, "G,G"));        // too short
  EXPECT_FALSE(DataPlacement::from_string(k, "G,G,G,G"));    // too long
  EXPECT_FALSE(DataPlacement::from_string(k, "G,X,G"));      // unknown code
  EXPECT_FALSE(DataPlacement::from_string(k, ""));           // empty
  EXPECT_FALSE(DataPlacement::from_string(k, "G,,G"));       // empty field
}

TEST(Placement, FromStringDoesNotValidateLegality) {
  // out (array 2) is written; constant is illegal but parsing succeeds.
  const KernelInfo k = demo_kernel();
  const auto p = DataPlacement::from_string(k, "G,G,C");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(validate_placement(k, *p, kepler_arch()).has_value());
}

TEST(Placement, EnumerateRespectsConstraintsAndCap) {
  const KernelInfo k = demo_kernel();
  const auto& arch = kepler_arch();
  const auto all = enumerate_placements(k, arch);
  // in1: 5 options; in2: G/T (too big for C/S, no width for 2T);
  // out: G/S (written) -> 5 * 2 * 2 = 20 legal placements.
  EXPECT_EQ(all.size(), 20u);
  for (const auto& p : all)
    EXPECT_FALSE(validate_placement(k, p, arch).has_value());
  EXPECT_EQ(enumerate_placements(k, arch, 7).size(), 7u);
}

}  // namespace
}  // namespace gpuhms
