#include "tools/addrmap_detector.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(AddrMapDetector, RecoversKeplerMapping) {
  const GpuArch& arch = kepler_arch();
  AddressMapDetector det(arch, kepler_mapping(arch));
  const auto r = det.run();

  // Latencies reproduce the Sec. III-C2 measurements (352 / 742 / 1008).
  EXPECT_EQ(r.hit_latency, arch.unloaded_row_hit());
  EXPECT_EQ(r.miss_latency, arch.unloaded_row_miss());
  EXPECT_EQ(r.conflict_latency, arch.unloaded_row_conflict());

  // Column group = true column bits plus the intra-transaction bits.
  for (int bit : {14, 15, 16, 17}) EXPECT_TRUE(contains(r.column_bits, bit));
  for (int bit = 0; bit < 7; ++bit) EXPECT_TRUE(contains(r.column_bits, bit));
  // Row bits.
  for (int bit = 18; bit < 34; ++bit) EXPECT_TRUE(contains(r.row_bits, bit));
  // Bank bits.
  for (int bit : {7, 8, 9, 10, 11, 12, 13}) EXPECT_TRUE(contains(r.bank_bits, bit));

  EXPECT_EQ(r.column_bits.size() + r.row_bits.size() + r.bank_bits.size(),
            34u);
}

// Property test: the detector recovers *randomized* bit-field mappings too —
// the paper's Algorithm 1 is mapping-agnostic.
struct MappingSpec {
  std::vector<int> bank, column, row;
  const char* name;
};

class DetectorRoundTrip : public ::testing::TestWithParam<MappingSpec> {};

TEST_P(DetectorRoundTrip, RecoversConfiguredFields) {
  const auto& spec = GetParam();
  AddressMapping::Fields f;
  f.transaction_bits = 7;
  f.bank_bits = spec.bank;
  f.column_bits = spec.column;
  f.row_bits = spec.row;
  f.num_banks = 1 << spec.bank.size();
  const int max_bit =
      1 + std::max({*std::max_element(spec.bank.begin(), spec.bank.end()),
                    *std::max_element(spec.column.begin(), spec.column.end()),
                    *std::max_element(spec.row.begin(), spec.row.end())});
  AddressMapDetector det(kepler_arch(), AddressMapping(std::move(f)), max_bit);
  const auto r = det.run();
  for (int b : spec.column) EXPECT_TRUE(contains(r.column_bits, b));
  for (int b : spec.row) EXPECT_TRUE(contains(r.row_bits, b));
  for (int b : spec.bank) EXPECT_TRUE(contains(r.bank_bits, b));
}

INSTANTIATE_TEST_SUITE_P(
    Mappings, DetectorRoundTrip,
    ::testing::Values(
        MappingSpec{{7, 8, 9}, {10, 11}, {12, 13, 14}, "low_banks"},
        MappingSpec{{10, 11, 12}, {7, 8, 9}, {13, 14, 15, 16}, "low_columns"},
        MappingSpec{{8, 12, 16}, {9, 13}, {7, 10, 11, 14, 15}, "interleaved"},
        MappingSpec{{7}, {8}, {9}, "minimal"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(AddrMapDetector, DeterministicAcrossSeeds) {
  // Classification must not depend on the probe's random bases.
  const GpuArch& arch = kepler_arch();
  const auto r1 = AddressMapDetector(arch, kepler_mapping(arch), 34, 5, 1).run();
  const auto r2 = AddressMapDetector(arch, kepler_mapping(arch), 34, 5, 999).run();
  EXPECT_EQ(r1.column_bits, r2.column_bits);
  EXPECT_EQ(r1.row_bits, r2.row_bits);
  EXPECT_EQ(r1.bank_bits, r2.bank_bits);
}

}  // namespace
}  // namespace gpuhms
