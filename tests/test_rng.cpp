#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng r(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo = hit_lo || v == -3;
    hit_hi = hit_hi || v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.next_bool(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace gpuhms
