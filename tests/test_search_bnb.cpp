// Branch-and-bound placement search: exactness vs. exhaustive enumeration,
// admissibility of the PlacementBounder, thread-count determinism, and the
// anytime certificate (lower_bound / optimality_gap / proven_optimal).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "model/search.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

Predictor profiled_predictor(const KernelInfo& k) {
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  return pred;
}

SearchOptions uncapped() {
  SearchOptions o;
  o.cap = 1u << 20;  // exhaustive must see the whole space for the bit-match
  return o;
}

// --- exactness ---------------------------------------------------------------

TEST(SearchBnb, MatchesExhaustiveBitForBitOnSeedWorkloads) {
  const std::vector<KernelInfo> kernels = {
      workloads::make_stencil2d(128, 64), workloads::make_vecadd(1 << 12),
      workloads::make_triad(1 << 12), workloads::make_spmv(256, 16)};
  for (const KernelInfo& k : kernels) {
    SCOPED_TRACE(k.name);
    const Predictor pred = profiled_predictor(k);
    const auto ex = search_exhaustive(pred, uncapped());
    ASSERT_FALSE(ex.space_truncated);
    const auto bb = search_branch_and_bound(pred);
    EXPECT_EQ(bb.placement, ex.placement)
        << "bnb: " << bb.placement.to_string()
        << " exhaustive: " << ex.placement.to_string();
    EXPECT_EQ(bb.predicted_cycles, ex.predicted_cycles);  // bit-for-bit
    EXPECT_TRUE(bb.proven_optimal);
    EXPECT_EQ(bb.optimality_gap, 0.0);
    EXPECT_LE(bb.lower_bound, bb.predicted_cycles);
  }
}

TEST(SearchBnb, MatchesExhaustiveOnSyntheticManyArrayKernels) {
  for (int n : {4, 5}) {
    SCOPED_TRACE(n);
    const KernelInfo k = workloads::make_bnb_synth(n);
    const Predictor pred = profiled_predictor(k);
    const auto ex = search_exhaustive(pred, uncapped());
    ASSERT_FALSE(ex.space_truncated);
    const auto bb = search_branch_and_bound(pred);
    EXPECT_EQ(bb.placement, ex.placement);
    EXPECT_EQ(bb.predicted_cycles, ex.predicted_cycles);
    EXPECT_TRUE(bb.proven_optimal);
  }
}

TEST(SearchBnb, ReturnsLegalPlacement) {
  const KernelInfo k = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(k);
  const auto bb = search_branch_and_bound(pred);
  EXPECT_FALSE(validate_placement(k, bb.placement, kepler_arch()).has_value());
}

// --- determinism -------------------------------------------------------------

TEST(SearchBnb, DeterministicAcrossThreadCounts) {
  const KernelInfo k = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(k);
  SearchOptions base;
  base.num_threads = 1;
  const auto ref = search_branch_and_bound(pred, base);
  for (int threads : {4, 16}) {
    SCOPED_TRACE(threads);
    SearchOptions o;
    o.num_threads = threads;
    const auto r = search_branch_and_bound(pred, o);
    EXPECT_EQ(r.placement, ref.placement);
    EXPECT_EQ(r.predicted_cycles, ref.predicted_cycles);
    EXPECT_EQ(r.evaluated, ref.evaluated);
    EXPECT_EQ(r.nodes_expanded, ref.nodes_expanded);
    EXPECT_EQ(r.pruned_subtrees, ref.pruned_subtrees);
    EXPECT_EQ(r.incumbent_updates, ref.incumbent_updates);
    EXPECT_EQ(r.lower_bound, ref.lower_bound);
  }
}

TEST(SearchBnb, DeterministicAcrossGpuhmsThreadsEnv) {
  const KernelInfo k = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(k);
  SearchResult ref;
  {
    testutil::ScopedEnv env("GPUHMS_THREADS", "1");
    ref = search_branch_and_bound(pred);
  }
  for (const char* threads : {"4", "16"}) {
    SCOPED_TRACE(threads);
    testutil::ScopedEnv env("GPUHMS_THREADS", threads);
    const auto r = search_branch_and_bound(pred);
    EXPECT_EQ(r.placement, ref.placement);
    EXPECT_EQ(r.predicted_cycles, ref.predicted_cycles);
    EXPECT_EQ(r.nodes_expanded, ref.nodes_expanded);
    EXPECT_EQ(r.pruned_subtrees, ref.pruned_subtrees);
  }
}

TEST(SearchBnb, NodeBudgetRunsAreBitReproducible) {
  const KernelInfo k = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(k);
  SearchOptions o;
  o.node_budget = 50;
  o.num_threads = 1;
  const auto a = search_branch_and_bound(pred, o);
  o.num_threads = 8;
  const auto b = search_branch_and_bound(pred, o);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.predicted_cycles, b.predicted_cycles);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.beam_fallback, b.beam_fallback);
}

// --- admissibility (the property test of the bound) --------------------------

TEST(SearchBnb, BoundNeverExceedsFullPredictionOnRandomPlacements) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  const auto skeleton = pred.memoize_trace();
  const PlacementBounder bounder = pred.make_bounder(*skeleton);
  ASSERT_FALSE(bounder.infeasible());

  const std::size_t n = k.arrays.size();
  Rng rng(0x5eed);
  int checked = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    // Random placement drawn from the per-array relaxed sets...
    DataPlacement p(std::vector<MemSpace>(n, MemSpace::Global));
    for (std::size_t a = 0; a < n; ++a) {
      const auto spaces = bounder.relaxed_spaces(a);
      p.set(static_cast<int>(a),
            spaces[static_cast<std::size_t>(rng.next_below(spaces.size()))]);
    }
    // ...kept only when jointly legal (capacity interactions).
    if (validate_placement(k, p, kepler_arch()).has_value()) continue;
    ++checked;

    // The bound of any partial prefix of p (arrays [0, depth) pinned, the
    // rest relaxed to their minimum) must not exceed the full prediction of
    // p — p is one legal completion of that prefix.
    const double full = pred.predict(p).total_cycles;
    const std::size_t depth = rng.next_below(n + 1);
    double addr_total = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      addr_total += a < depth ? bounder.addr_insts(a, p.of(static_cast<int>(a)))
                              : bounder.min_addr_insts(a);
    }
    EXPECT_LE(bounder.bound_cycles(addr_total), full + 1e-6)
        << p.to_string() << " depth " << depth;
  }
  EXPECT_GT(checked, 100);  // the rejection sampling actually sampled
}

TEST(SearchBnb, RootBoundBelowEveryLegalPlacement) {
  const KernelInfo k = workloads::make_stencil2d(128, 64);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  const auto skeleton = pred.memoize_trace();
  const PlacementBounder bounder = pred.make_bounder(*skeleton);
  const double root = bounder.bound_cycles(bounder.root_addr_insts());
  for (const auto& p : enumerate_placements(k, kepler_arch())) {
    EXPECT_LE(root, pred.predict(p).total_cycles + 1e-6) << p.to_string();
  }
}

// --- anytime certificate -----------------------------------------------------

TEST(SearchBnb, GapNonNegativeAndZeroOnCompletion) {
  const KernelInfo k = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(k);

  const auto done = search_branch_and_bound(pred);
  EXPECT_TRUE(done.proven_optimal);
  EXPECT_EQ(done.optimality_gap, 0.0);
  EXPECT_EQ(done.lower_bound, done.predicted_cycles);

  SearchOptions o;
  o.node_budget = 3;  // far too small: forces an early stop + beam fallback
  const auto stopped = search_branch_and_bound(pred, o);
  EXPECT_FALSE(stopped.proven_optimal);
  EXPECT_TRUE(stopped.beam_fallback);
  EXPECT_GE(stopped.optimality_gap, 0.0);
  EXPECT_LE(stopped.lower_bound, stopped.predicted_cycles + 1e-9);
  // The certificate is sound: the true optimum lies above the bound.
  const auto full = search_branch_and_bound(pred);
  EXPECT_LE(stopped.lower_bound, full.predicted_cycles + 1e-9);
  // And the anytime incumbent is a real, legal placement.
  EXPECT_FALSE(
      validate_placement(k, stopped.placement, kepler_arch()).has_value());
}

TEST(SearchBnb, ExpiredDeadlineStillReturnsFeasibleIncumbent) {
  const KernelInfo k = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(k);
  SearchOptions o;
  o.deadline = std::chrono::milliseconds(0);
  const auto r = search_branch_and_bound(pred, o);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_GT(r.evaluated, 0u);  // the greedy seed always scores the sample
  EXPECT_GT(r.predicted_cycles, 0.0);
  EXPECT_GE(r.optimality_gap, 0.0);
  EXPECT_FALSE(validate_placement(k, r.placement, kepler_arch()).has_value());
}

TEST(SearchBnb, CancelTokenStopsTheWalk) {
  const KernelInfo k = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(k);
  std::atomic<bool> cancel{true};
  SearchOptions o;
  o.cancel = &cancel;
  const auto r = search_branch_and_bound(pred, o);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_GT(r.evaluated, 0u);
}

// --- beam search -------------------------------------------------------------

TEST(SearchBeam, ProducesLegalPlacementWithRootCertificate) {
  const KernelInfo k = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(k);
  const auto r = search_beam(pred);
  EXPECT_FALSE(validate_placement(k, r.placement, kepler_arch()).has_value());
  EXPECT_GE(r.optimality_gap, 0.0);
  EXPECT_LE(r.lower_bound, r.predicted_cycles + 1e-9);
  EXPECT_FALSE(r.proven_optimal);
}

TEST(SearchBeam, NearExhaustiveOnSmallSpace) {
  const KernelInfo k = workloads::make_stencil2d(128, 64);
  const Predictor pred = profiled_predictor(k);
  const auto ex = search_exhaustive(pred, uncapped());
  const auto bm = search_beam(pred);
  EXPECT_LE(ex.predicted_cycles, bm.predicted_cycles + 1e-9);
}

// --- error contract ----------------------------------------------------------

TEST(SearchBnb, TryVariantRejectsUnprofiledPredictor) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const Predictor pred(k, kepler_arch());
  const auto r = try_search_branch_and_bound(pred);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gpuhms
