// ArchRegistry battery (DESIGN §16): registry semantics, the differential
// golden lock-in of the default backend against the historical hardwired
// Kepler path, the per-arch memoization keying of shared TraceSkeletons, and
// the SoA supports()/fold fix that consults the active arch's bank count.
//
// Naming note: the exhaustive differential sweeps carry "EveryWorkload" in
// their test names so the sanitizer rebuilds (which filter -*EveryWorkload*)
// skip them — they re-run code paths the cheap cases already instrument.
#include "arch/arch_registry.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dram/address_mapping.hpp"
#include "model/predictor.hpp"
#include "model/trace_analysis.hpp"
#include "trace/generator.hpp"
#include "trace/soa.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

// --- registry semantics ------------------------------------------------------

TEST(ArchRegistry, BuiltinRegistersTheDocumentedBackends) {
  const ArchRegistry& r = ArchRegistry::builtin();
  ASSERT_GE(r.size(), 3u);
  const std::vector<std::string> names = r.names();
  EXPECT_EQ(names, (std::vector<std::string>{"kepler", "fermi", "maxwell",
                                             "hbm2"}));
  EXPECT_EQ(r.default_backend().name, "kepler");
  for (const std::string& name : names) {
    const ArchBackend* b = r.find(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(b->name, name);
    EXPECT_FALSE(b->summary.empty()) << name;
    EXPECT_TRUE(validate(b->arch).ok()) << name;
  }
}

TEST(ArchRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(ArchRegistry::builtin().find("volta"), nullptr);
  EXPECT_EQ(ArchRegistry::builtin().find(""), nullptr);
  EXPECT_EQ(ArchRegistry::builtin().find("Kepler"), nullptr);  // exact match
}

TEST(ArchRegistry, TryFindUnknownListsRegisteredNames) {
  const auto got = ArchRegistry::builtin().try_find("volta");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  // The serve layer forwards this message verbatim; it must name every
  // backend so a client can self-correct.
  for (const std::string& name : ArchRegistry::builtin().names()) {
    EXPECT_NE(got.status().message().find(name), std::string::npos) << name;
  }
}

TEST(ArchRegistry, TryFindKnownReturnsBackend) {
  const auto got = ArchRegistry::builtin().try_find("hbm2");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name, "hbm2");
}

TEST(ArchRegistry, AddRejectsEmptyDuplicateAndInvalid) {
  ArchRegistry r;
  EXPECT_EQ(r.add({"", "nameless", GpuArch{}}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(r.add({"a", "first", GpuArch{}}).ok());
  EXPECT_EQ(r.add({"a", "again", GpuArch{}}).code(),
            StatusCode::kInvalidArgument);
  GpuArch bad;
  bad.addr_map.row_bits.clear();  // fails validate()
  const Status st = r.add({"b", "broken", bad});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.size(), 1u);  // the rejected backends never registered
  EXPECT_EQ(r.default_backend().name, "a");
}

// --- default-backend equivalence with the hardwired path ---------------------

TEST(ArchRegistry, KeplerBackendIsTheHardwiredArch) {
  const GpuArch& reg = ArchRegistry::builtin().find("kepler")->arch;
  const GpuArch& hard = kepler_arch();
  EXPECT_EQ(reg.num_sms, hard.num_sms);
  EXPECT_EQ(reg.shared_banks, hard.shared_banks);
  EXPECT_EQ(reg.cache_line, hard.cache_line);
  EXPECT_EQ(reg.total_banks(), hard.total_banks());
  EXPECT_EQ(reg.dram.row_hit_service, hard.dram.row_hit_service);
  EXPECT_EQ(reg.addr_map.transaction_bits, hard.addr_map.transaction_bits);
  EXPECT_EQ(reg.addr_map.bank_bits, hard.addr_map.bank_bits);
  EXPECT_EQ(reg.addr_map.column_bits, hard.addr_map.column_bits);
  EXPECT_EQ(reg.addr_map.row_bits, hard.addr_map.row_bits);
  EXPECT_EQ(reg.addr_map.bank_xor_bits, hard.addr_map.bank_xor_bits);
}

TEST(ArchMapping, DefaultDecodesIdenticallyToKeplerMapping) {
  const AddressMapping legacy = kepler_mapping(kepler_arch());
  const AddressMapping declared = arch_mapping(kepler_arch());
  ASSERT_EQ(declared.num_banks(), legacy.num_banks());
  ASSERT_EQ(declared.usable_bits(), legacy.usable_bits());
  Rng rng(0xa5c);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t addr = rng.next_below(1ull << legacy.usable_bits());
    const auto a = legacy.decode(addr);
    const auto b = declared.decode(addr);
    ASSERT_EQ(a.bank, b.bank) << addr;
    ASSERT_EQ(a.row, b.row) << addr;
    ASSERT_EQ(a.column, b.column) << addr;
  }
}

// The golden differential: on every seed workload, a predictor built from
// the registry-resolved default backend produces bit-identical measurements
// and predictions to one built from the historical kepler_arch() reference.
// This is the lock-in that lets every other layer switch to the registry.
TEST(ArchRegistryDifferential, EveryWorkloadPredictsBitIdentical) {
  const GpuArch& reg = ArchRegistry::builtin().default_backend().arch;
  for (const auto& c : workloads::evaluation_suite()) {
    SCOPED_TRACE(c.name);
    Predictor hard(c.kernel, kepler_arch());
    Predictor through_registry(c.kernel, reg);
    hard.profile_sample(c.sample);
    through_registry.profile_sample(c.sample);
    // The profiled sample runs the full simulator substrate on each arch.
    EXPECT_EQ(hard.sample_result().cycles,
              through_registry.sample_result().cycles);
    EXPECT_EQ(hard.sample_result().counters.inst_executed,
              through_registry.sample_result().counters.inst_executed);
    for (const auto& t : c.tests) {
      SCOPED_TRACE(t.id);
      const Prediction a = hard.predict(t.placement);
      const Prediction b = through_registry.predict(t.placement);
      EXPECT_EQ(a.total_cycles, b.total_cycles);
      EXPECT_EQ(a.raw_cycles, b.raw_cycles);
      EXPECT_EQ(a.t_comp, b.t_comp);
      EXPECT_EQ(a.t_mem, b.t_mem);
      EXPECT_EQ(a.t_overlap, b.t_overlap);
      EXPECT_EQ(a.inst.executed_total, b.inst.executed_total);
    }
  }
}

// --- per-arch memo keying on a shared TraceSkeleton --------------------------

// Regression: line pools and shared folds used to be keyed by slot only,
// with a trailing CHECK on line_size / num_banks consistency — a skeleton
// shared across two cache-line or bank geometries crashed on the second.
// Now each geometry gets its own table; references are stable and distinct.
TEST(TraceSkeletonMemo, KeysLinePoolsAndFoldsPerGeometry) {
  const KernelInfo kernel = workloads::make_transpose(64);
  const TraceSkeleton skeleton(kernel);
  const TraceMaterializer mat(kernel, DataPlacement::defaults(kernel),
                              kepler_arch());
  const MemoryLayout& layout = mat.layout();

  const auto& p128 = skeleton.line_pool(0, false, layout, 128);
  const auto& p64 = skeleton.line_pool(0, false, layout, 64);
  EXPECT_EQ(p128.line_size, 128u);
  EXPECT_EQ(p64.line_size, 64u);
  // Memoized: asking again returns the same table entries, not rebuilds.
  EXPECT_EQ(&skeleton.line_pool(0, false, layout, 128), &p128);
  EXPECT_EQ(&skeleton.line_pool(0, false, layout, 64), &p64);
  // Halving the line size can only split lines, never merge them.
  EXPECT_GE(p64.lines.size(), p128.lines.size());

  const auto& fold32 = skeleton.shared_fold(0, 32);
  const auto& fold16 = skeleton.shared_fold(0, 16);
  EXPECT_EQ(fold32.num_banks, 32);
  EXPECT_EQ(fold16.num_banks, 16);
  EXPECT_EQ(&skeleton.shared_fold(0, 32), &fold32);
  EXPECT_EQ(&skeleton.shared_fold(0, 16), &fold16);
  ASSERT_EQ(fold32.degree.size(), fold16.degree.size());
  // 16 divides 32, so words colliding on a 32-bank machine also collide on a
  // 16-bank one: per-op degrees are ordered, as is the fold total.
  for (std::size_t i = 0; i < fold32.degree.size(); ++i) {
    EXPECT_GE(fold16.degree[i], fold32.degree[i]) << "ordinal " << i;
  }
  EXPECT_GE(fold16.conflict_sum, fold32.conflict_sum);
}

// One skeleton serving analyzers of different archs must not alias their
// memoized tables: re-analyzing on the first arch after a second arch used
// the skeleton reproduces the original counters exactly.
TEST(TraceSkeletonMemo, TwoArchsShareOneSkeletonWithoutAliasing) {
  const KernelInfo kernel = workloads::make_transpose(64);
  const DataPlacement placement = DataPlacement::defaults(kernel);
  const TraceSkeleton skeleton(kernel);
  const GpuArch& kepler = ArchRegistry::builtin().find("kepler")->arch;
  const GpuArch& hbm2 = ArchRegistry::builtin().find("hbm2")->arch;

  const PlacementEvents first =
      analyze_trace(kernel, placement, kepler, {}, &skeleton);
  const PlacementEvents other =
      analyze_trace(kernel, placement, hbm2, {}, &skeleton);
  const PlacementEvents again =
      analyze_trace(kernel, placement, kepler, {}, &skeleton);

  EXPECT_EQ(first.insts_executed, again.insts_executed);
  EXPECT_EQ(first.global_transactions, again.global_transactions);
  EXPECT_EQ(first.shared_requests, again.shared_requests);
  EXPECT_EQ(first.shared_conflicts, again.shared_conflicts);
  EXPECT_EQ(first.row_hits, again.row_hits);
  EXPECT_EQ(first.row_misses, again.row_misses);
  EXPECT_EQ(first.row_conflicts, again.row_conflicts);
  EXPECT_EQ(first.trace_ticks, again.trace_ticks);
  // Sanity: the hbm2 analysis really ran against a different DRAM geometry.
  EXPECT_EQ(other.insts_executed, first.insts_executed);  // same lowering
  EXPECT_EQ(static_cast<int>(other.banks.size()), hbm2.total_banks());
  EXPECT_EQ(static_cast<int>(first.banks.size()), kepler.total_banks());
}

// --- SoA supports() / fold-validity fix --------------------------------------

TEST(SoaLowering, SupportsConsultsActiveArchBankCount) {
  EXPECT_TRUE(SoaLowering::supports(kepler_arch()));  // 128 % (4*32) == 0
  GpuArch a;
  a.shared_banks = 16;  // the hbm2 geometry: 128 % 64 == 0
  EXPECT_TRUE(SoaLowering::supports(a));
  a.shared_banks = 8;
  EXPECT_TRUE(SoaLowering::supports(a));
  a.shared_banks = 24;  // 128 % 96 != 0: the fold would misattribute words
  EXPECT_FALSE(SoaLowering::supports(a));
  a.shared_banks = 64;  // 128 % 256 != 0: alignment below a full rotation
  EXPECT_FALSE(SoaLowering::supports(a));
  a.shared_banks = 0;
  EXPECT_FALSE(SoaLowering::supports(a));
}

// The SoA replay must stay bit-identical to the legacy scalar path on every
// registered backend it claims to support — including the 16-bank hbm2
// profile whose fold the old compiled-in `banks == 32` check would have
// refused (and whose degrees differ from the 32-bank fold, see above).
TEST(SoaReplay, MatchesLegacyOnEveryRegisteredBackend) {
  const KernelInfo kernel = workloads::make_transpose(64);
  const TraceSkeleton skeleton(kernel);
  const DataPlacement base = DataPlacement::defaults(kernel);
  // Exercise the shared fold: stage the first shared-legal array.
  DataPlacement staged = base;
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    DataPlacement candidate = base.with(static_cast<int>(a), MemSpace::Shared);
    if (!validate_placement(kernel, candidate, kepler_arch())) {
      staged = candidate;
      break;
    }
  }
  for (const std::string& name : ArchRegistry::builtin().names()) {
    const GpuArch& arch = ArchRegistry::builtin().find(name)->arch;
    if (!SoaLowering::supports(arch)) continue;
    SCOPED_TRACE(name);
    for (const DataPlacement* placement :
         std::initializer_list<const DataPlacement*>{&base, &staged}) {
      AnalysisOptions soa_opts;
      AnalysisOptions legacy_opts;
      legacy_opts.legacy_replay = true;
      const PlacementEvents soa =
          analyze_trace(kernel, *placement, arch, soa_opts, &skeleton);
      const PlacementEvents legacy =
          analyze_trace(kernel, *placement, arch, legacy_opts, &skeleton);
      EXPECT_EQ(soa.insts_executed, legacy.insts_executed);
      EXPECT_EQ(soa.addr_calc_insts, legacy.addr_calc_insts);
      EXPECT_EQ(soa.mem_insts, legacy.mem_insts);
      EXPECT_EQ(soa.load_insts, legacy.load_insts);
      EXPECT_EQ(soa.sync_insts, legacy.sync_insts);
      EXPECT_EQ(soa.replay_global_divergence, legacy.replay_global_divergence);
      EXPECT_EQ(soa.replay_const_miss, legacy.replay_const_miss);
      EXPECT_EQ(soa.replay_const_divergence, legacy.replay_const_divergence);
      EXPECT_EQ(soa.replay_shared_conflict, legacy.replay_shared_conflict);
      EXPECT_EQ(soa.global_requests, legacy.global_requests);
      EXPECT_EQ(soa.global_transactions, legacy.global_transactions);
      EXPECT_EQ(soa.l2_transactions, legacy.l2_transactions);
      EXPECT_EQ(soa.l2_misses, legacy.l2_misses);
      EXPECT_EQ(soa.shared_requests, legacy.shared_requests);
      EXPECT_EQ(soa.shared_conflicts, legacy.shared_conflicts);
      EXPECT_EQ(soa.row_hits, legacy.row_hits);
      EXPECT_EQ(soa.row_misses, legacy.row_misses);
      EXPECT_EQ(soa.row_conflicts, legacy.row_conflicts);
      EXPECT_EQ(soa.trace_ticks, legacy.trace_ticks);
    }
  }
}

// --- cross-arch prediction smoke (the bench_crossarch contract) --------------

// Distinct backends must actually predict distinctly — otherwise the serve
// arch field and the cross-arch study would be decorative. Transpose's
// default placement hits shared memory and DRAM, both of which differ
// across the three geometries.
TEST(ArchRegistry, BackendsPredictDistinctly) {
  const KernelInfo kernel = workloads::make_transpose(64);
  const DataPlacement sample = DataPlacement::defaults(kernel);
  std::set<double> totals;
  for (const char* name : {"kepler", "maxwell", "hbm2"}) {
    Predictor p(kernel, ArchRegistry::builtin().find(name)->arch);
    p.profile_sample(sample);
    totals.insert(p.predict(sample).total_cycles);
  }
  EXPECT_EQ(totals.size(), 3u);
}

}  // namespace
}  // namespace gpuhms
