// Randomized end-to-end robustness: generate random DSL kernels (random op
// mixes, access patterns, divergence, barriers, partial warps) and random
// legal placements, then assert the pipeline-wide invariants that must hold
// for ANY kernel: the simulator terminates with consistent counters, the
// trace analysis agrees with it on order-insensitive counts, and the
// predictor returns finite positive predictions.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/predictor.hpp"

namespace gpuhms {
namespace {

KernelInfo random_kernel(std::uint64_t seed) {
  Rng rng(seed);
  KernelInfo k;
  k.name = "fuzz";
  k.num_blocks = static_cast<std::int64_t>(rng.next_range(1, 24));
  k.threads_per_block = static_cast<int>(rng.next_range(1, 8)) * 32;
  if (rng.next_bool(0.2)) k.threads_per_block += 7;  // partial tail warp

  const int n_arrays = static_cast<int>(rng.next_range(1, 4));
  for (int a = 0; a < n_arrays; ++a) {
    ArrayDecl d;
    d.name = "arr" + std::to_string(a);
    d.dtype = rng.next_bool(0.3) ? DType::F64
              : rng.next_bool(0.5) ? DType::I32
                                   : DType::F32;
    d.elems = 1u << rng.next_range(8, 14);
    d.width = rng.next_bool(0.5) ? 64 : 0;
    d.written = a == 0;  // one writable array
    d.shared_slice_elems =
        rng.next_bool(0.5) ? static_cast<std::size_t>(k.threads_per_block) : 0;
    if (d.shared_slice_elems > d.elems) d.shared_slice_elems = d.elems;
    d.default_space = MemSpace::Global;
    k.arrays.push_back(d);
  }

  // Program: a random recipe, identical across warps (well-formed barriers).
  struct Step {
    int kind;      // 0 compute, 1 load, 2 store, 3 sync
    int array;
    int count;
    std::int64_t stride;
    bool dep;
  };
  std::vector<Step> steps;
  const int n_steps = static_cast<int>(rng.next_range(3, 12));
  bool has_shared_like = false;
  for (int s = 0; s < n_steps; ++s) {
    Step st;
    st.kind = static_cast<int>(rng.next_below(10));
    st.kind = st.kind < 4 ? 0 : st.kind < 8 ? 1 : st.kind < 9 ? 2 : 3;
    st.array = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n_arrays)));
    if (st.kind == 2) st.array = 0;  // stores to the writable array only
    st.count = static_cast<int>(rng.next_range(1, 4));
    st.stride = rng.next_bool(0.3) ? rng.next_range(1, 33) : 1;
    st.dep = rng.next_bool(0.5);
    steps.push_back(st);
    has_shared_like = true;
  }
  (void)has_shared_like;

  k.fn = [steps, arrays = k.arrays](WarpEmitter& em, const WarpCtx& ctx) {
    for (const auto& st : steps) {
      switch (st.kind) {
        case 0:
          em.falu(st.count, st.dep);
          break;
        case 1:
        case 2: {
          const auto& arr = arrays[static_cast<std::size_t>(st.array)];
          const std::int64_t n = static_cast<std::int64_t>(arr.elems);
          const auto idx = em.by_lane([&](int l) {
            const std::int64_t e =
                (ctx.thread_id(l) * st.stride) % n;
            return e;
          });
          if (st.kind == 1) {
            em.load(st.array, idx, st.dep);
          } else {
            em.store(st.array, idx, st.dep);
          }
          break;
        }
        case 3:
          em.sync();
          break;
      }
    }
  };
  return k;
}

DataPlacement random_legal_placement(const KernelInfo& k, Rng& rng) {
  DataPlacement p = DataPlacement::defaults(k);
  for (std::size_t a = 0; a < k.arrays.size(); ++a) {
    const auto legal = legal_spaces(k, static_cast<int>(a), kepler_arch());
    p.set(static_cast<int>(a),
          legal[rng.next_below(legal.size())]);
  }
  // Joint constraints (total shared/constant capacity) may still fail;
  // fall back to defaults in that case.
  if (validate_placement(k, p, kepler_arch())) return DataPlacement::defaults(k);
  return p;
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, InvariantsHoldForRandomKernels) {
  const std::uint64_t seed = GetParam();
  const KernelInfo k = random_kernel(seed);
  Rng rng(seed ^ 0xabcdef);
  const DataPlacement placement = random_legal_placement(k, rng);

  // 1. The simulator terminates and its counters are self-consistent.
  const SimResult r = simulate(k, placement);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.counters.inst_issued, r.counters.inst_executed);
  EXPECT_EQ(r.counters.inst_issued,
            r.counters.inst_executed + r.counters.replays_total());
  EXPECT_EQ(r.counters.issue_slots, r.counters.inst_issued);
  EXPECT_LE(r.counters.l2_misses, r.counters.l2_transactions);
  EXPECT_LE(r.counters.dram_requests, r.counters.l2_misses);
  EXPECT_EQ(r.dram.total_requests, r.counters.dram_requests);
  EXPECT_EQ(r.dram.row_hits() + r.dram.row_misses() + r.dram.row_conflicts(),
            r.dram.total_requests);

  // 2. Trace analysis agrees on order-insensitive counts.
  const PlacementEvents ev = analyze_trace(k, placement, kepler_arch());
  EXPECT_EQ(ev.insts_executed, r.counters.inst_executed);
  EXPECT_EQ(ev.global_transactions, r.counters.global_transactions);
  EXPECT_EQ(ev.shared_conflicts, r.counters.shared_bank_conflicts);
  EXPECT_EQ(ev.replay_global_divergence,
            r.counters.replay_global_divergence);
  EXPECT_EQ(ev.mem_insts, r.counters.ldst_executed);
  EXPECT_LE(ev.load_insts, ev.mem_insts);

  // 3. The predictor returns finite, positive, anchored predictions for
  //    another random placement.
  Predictor pred(k, kepler_arch());
  pred.set_sample(placement, r);
  const DataPlacement target = random_legal_placement(k, rng);
  const Prediction p = pred.predict(target);
  EXPECT_TRUE(std::isfinite(p.total_cycles));
  EXPECT_GT(p.total_cycles, 0.0);
  EXPECT_TRUE(std::isfinite(p.amat));
  EXPECT_GE(p.inst.issued_total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace gpuhms
