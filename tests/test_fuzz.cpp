// Randomized end-to-end robustness: generate random DSL kernels (random op
// mixes, access patterns, divergence, barriers, partial warps) and random
// legal placements, then assert the pipeline-wide invariants that must hold
// for ANY kernel: the simulator terminates with consistent counters, the
// trace analysis agrees with it on order-insensitive counts, and the
// predictor returns finite positive predictions.
#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/predictor.hpp"
#include "trace/serialize.hpp"

namespace gpuhms {
namespace {

KernelInfo random_kernel(std::uint64_t seed) {
  Rng rng(seed);
  KernelInfo k;
  k.name = "fuzz";
  k.num_blocks = static_cast<std::int64_t>(rng.next_range(1, 24));
  k.threads_per_block = static_cast<int>(rng.next_range(1, 8)) * 32;
  if (rng.next_bool(0.2)) k.threads_per_block += 7;  // partial tail warp

  const int n_arrays = static_cast<int>(rng.next_range(1, 4));
  for (int a = 0; a < n_arrays; ++a) {
    ArrayDecl d;
    d.name = "arr" + std::to_string(a);
    d.dtype = rng.next_bool(0.3) ? DType::F64
              : rng.next_bool(0.5) ? DType::I32
                                   : DType::F32;
    d.elems = 1u << rng.next_range(8, 14);
    d.width = rng.next_bool(0.5) ? 64 : 0;
    d.written = a == 0;  // one writable array
    d.shared_slice_elems =
        rng.next_bool(0.5) ? static_cast<std::size_t>(k.threads_per_block) : 0;
    if (d.shared_slice_elems > d.elems) d.shared_slice_elems = d.elems;
    d.default_space = MemSpace::Global;
    k.arrays.push_back(d);
  }

  // Program: a random recipe, identical across warps (well-formed barriers).
  struct Step {
    int kind;      // 0 compute, 1 load, 2 store, 3 sync
    int array;
    int count;
    std::int64_t stride;
    bool dep;
  };
  std::vector<Step> steps;
  const int n_steps = static_cast<int>(rng.next_range(3, 12));
  bool has_shared_like = false;
  for (int s = 0; s < n_steps; ++s) {
    Step st;
    st.kind = static_cast<int>(rng.next_below(10));
    st.kind = st.kind < 4 ? 0 : st.kind < 8 ? 1 : st.kind < 9 ? 2 : 3;
    st.array = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(n_arrays)));
    if (st.kind == 2) st.array = 0;  // stores to the writable array only
    st.count = static_cast<int>(rng.next_range(1, 4));
    st.stride = rng.next_bool(0.3) ? rng.next_range(1, 33) : 1;
    st.dep = rng.next_bool(0.5);
    steps.push_back(st);
    has_shared_like = true;
  }
  (void)has_shared_like;

  k.fn = [steps, arrays = k.arrays](WarpEmitter& em, const WarpCtx& ctx) {
    for (const auto& st : steps) {
      switch (st.kind) {
        case 0:
          em.falu(st.count, st.dep);
          break;
        case 1:
        case 2: {
          const auto& arr = arrays[static_cast<std::size_t>(st.array)];
          const std::int64_t n = static_cast<std::int64_t>(arr.elems);
          const auto idx = em.by_lane([&](int l) {
            const std::int64_t e =
                (ctx.thread_id(l) * st.stride) % n;
            return e;
          });
          if (st.kind == 1) {
            em.load(st.array, idx, st.dep);
          } else {
            em.store(st.array, idx, st.dep);
          }
          break;
        }
        case 3:
          em.sync();
          break;
      }
    }
  };
  return k;
}

DataPlacement random_legal_placement(const KernelInfo& k, Rng& rng) {
  DataPlacement p = DataPlacement::defaults(k);
  for (std::size_t a = 0; a < k.arrays.size(); ++a) {
    const auto legal = legal_spaces(k, static_cast<int>(a), kepler_arch());
    p.set(static_cast<int>(a),
          legal[rng.next_below(legal.size())]);
  }
  // Joint constraints (total shared/constant capacity) may still fail;
  // fall back to defaults in that case.
  if (validate_placement(k, p, kepler_arch())) return DataPlacement::defaults(k);
  return p;
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, InvariantsHoldForRandomKernels) {
  const std::uint64_t seed = GetParam();
  const KernelInfo k = random_kernel(seed);
  Rng rng(seed ^ 0xabcdef);
  const DataPlacement placement = random_legal_placement(k, rng);

  // 1. The simulator terminates and its counters are self-consistent.
  const SimResult r = simulate(k, placement);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.counters.inst_issued, r.counters.inst_executed);
  EXPECT_EQ(r.counters.inst_issued,
            r.counters.inst_executed + r.counters.replays_total());
  EXPECT_EQ(r.counters.issue_slots, r.counters.inst_issued);
  EXPECT_LE(r.counters.l2_misses, r.counters.l2_transactions);
  EXPECT_LE(r.counters.dram_requests, r.counters.l2_misses);
  EXPECT_EQ(r.dram.total_requests, r.counters.dram_requests);
  EXPECT_EQ(r.dram.row_hits() + r.dram.row_misses() + r.dram.row_conflicts(),
            r.dram.total_requests);

  // 2. Trace analysis agrees on order-insensitive counts.
  const PlacementEvents ev = analyze_trace(k, placement, kepler_arch());
  EXPECT_EQ(ev.insts_executed, r.counters.inst_executed);
  EXPECT_EQ(ev.global_transactions, r.counters.global_transactions);
  EXPECT_EQ(ev.shared_conflicts, r.counters.shared_bank_conflicts);
  EXPECT_EQ(ev.replay_global_divergence,
            r.counters.replay_global_divergence);
  EXPECT_EQ(ev.mem_insts, r.counters.ldst_executed);
  EXPECT_LE(ev.load_insts, ev.mem_insts);

  // 3. The predictor returns finite, positive, anchored predictions for
  //    another random placement.
  Predictor pred(k, kepler_arch());
  pred.set_sample(placement, r);
  const DataPlacement target = random_legal_placement(k, rng);
  const Prediction p = pred.predict(target);
  EXPECT_TRUE(std::isfinite(p.total_cycles));
  EXPECT_GT(p.total_cycles, 0.0);
  EXPECT_TRUE(std::isfinite(p.amat));
  EXPECT_GE(p.inst.issued_total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, 33));

// --- serialization mutation corpus -------------------------------------------
// Mutate a valid trace file in ways real corruption produces — truncation,
// swapped fields, huge integers, NUL bytes, deleted/duplicated tokens — and
// assert the parser NEVER crashes: it either parses (benign mutation) or
// returns a non-empty diagnostic naming a line number.

std::string reference_trace(std::uint64_t seed) {
  const KernelInfo k = random_kernel(seed);
  TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  std::ostringstream os;
  write_trace(os, mat, 0, 1);
  return os.str();
}

void expect_parse_or_diagnose(const std::string& text) {
  std::istringstream is(text);
  std::string error;
  const auto parsed = read_trace(is, &error);
  if (!parsed) {
    EXPECT_FALSE(error.empty()) << "rejection must carry a diagnostic";
    EXPECT_NE(error.find("line"), std::string::npos)
        << "diagnostic must name a line: " << error;
  }
  // Either way: no crash, and the Status variant agrees with the optional.
  std::istringstream is2(text);
  const auto st = try_read_trace(is2);
  EXPECT_EQ(st.ok(), parsed.has_value());
  if (!st.ok()) {
    EXPECT_EQ(st.status().code(), StatusCode::kDataLoss);
  }
}

class FuzzSerialize : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSerialize, MutatedTracesNeverCrashTheParser) {
  const std::uint64_t seed = GetParam();
  const std::string base = reference_trace(seed);
  ASSERT_FALSE(base.empty());
  Rng rng(seed ^ 0x5e11a11);

  for (int round = 0; round < 24; ++round) {
    std::string m = base;
    switch (rng.next_below(6)) {
      case 0:  // truncate mid-file (often mid-record)
        m.resize(rng.next_below(m.size()));
        break;
      case 1: {  // swap two whitespace-separated fields on one line
        const std::size_t at = rng.next_below(m.size());
        const std::size_t sp1 = m.find(' ', at);
        if (sp1 == std::string::npos || sp1 + 1 >= m.size()) break;
        const std::size_t sp2 = m.find(' ', sp1 + 1);
        if (sp2 == std::string::npos) break;
        const std::size_t end = m.find_first_of(" \n", sp2 + 1);
        const std::string a = m.substr(at, sp1 - at);
        const std::string b = m.substr(
            sp2 + 1, (end == std::string::npos ? m.size() : end) - sp2 - 1);
        m = m.substr(0, at) + b + m.substr(sp1, sp2 + 1 - sp1) + a +
            (end == std::string::npos ? "" : m.substr(end));
        break;
      }
      case 2: {  // splice in a huge integer (overflow probe)
        const std::size_t at = rng.next_below(m.size());
        m.insert(at, "999999999999999999999999999");
        break;
      }
      case 3: {  // NUL and control bytes
        for (int i = 0; i < 4 && !m.empty(); ++i)
          m[rng.next_below(m.size())] = static_cast<char>(
              rng.next_below(2) ? '\0' : 0x1f);
        break;
      }
      case 4: {  // delete a random span
        const std::size_t at = rng.next_below(m.size());
        m.erase(at, rng.next_range(1, 16));
        break;
      }
      default: {  // duplicate a random line
        const std::size_t at = rng.next_below(m.size());
        const std::size_t bol = m.rfind('\n', at);
        const std::size_t eol = m.find('\n', at);
        const std::size_t b = bol == std::string::npos ? 0 : bol + 1;
        const std::size_t e = eol == std::string::npos ? m.size() : eol + 1;
        m.insert(e, m.substr(b, e - b));
        break;
      }
    }
    SCOPED_TRACE("round " + std::to_string(round));
    expect_parse_or_diagnose(m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSerialize,
                         ::testing::Range<std::uint64_t>(1, 9));

// Hand-picked corpus of historically nasty shapes.
TEST(FuzzSerialize, DirectedCorpus) {
  const char* corpus[] = {
      "",                                   // empty file
      "\n\n\n",                             // only blank lines
      "# just a comment\n",                 // no kernel header
      "kernel\n",                           // header with no fields
      "kernel k -1 32\n",                   // negative block count
      "kernel k 1 32\nwarp 0 0 33\n",       // lanes_active > warp size
      "kernel k 1 32\nwarp 0 0 32\nop load global 0 0 0 zz\n",  // bad hex
      "kernel k 1 32\nop load global 0 0 0 ffffffff\n",  // op before warp
      "kernel k 1 32\nwarp 0 0 32\nop ld 0 0\n",         // short op record
      "kernel k 99999999999999999999 32\n",              // overflow
      "kernel k 1 32\nkernel k2 1 32\n",                 // duplicate header
      "warp 0 0 32\n",                                   // warp before kernel
  };
  for (const char* text : corpus) {
    SCOPED_TRACE(std::string("corpus: ") + text);
    std::istringstream is(text);
    std::string error;
    const auto parsed = read_trace(is, &error);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_FALSE(error.empty());
  }
}

// A memory op must carry exactly 32 lane addresses — short and long lists
// are both rejected with the token named.
TEST(FuzzSerialize, WrongLaneCountRejected) {
  const std::string head = "kernel k 1 32\nwarp 0 0 32\n";
  std::string short_op = head + "op load global 0 0 0 ffffffff";
  for (int i = 0; i < 31; ++i) short_op += " " + std::to_string(i);
  short_op += "\n";
  std::string long_op = head + "op load global 0 0 0 ffffffff";
  for (int i = 0; i < 33; ++i) long_op += " " + std::to_string(i);
  long_op += "\n";
  for (const std::string& text : {short_op, long_op}) {
    std::istringstream is(text);
    std::string error;
    EXPECT_FALSE(read_trace(is, &error).has_value());
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  }
}

}  // namespace
}  // namespace gpuhms
