// Crash-safe anytime search: try_resume_branch_and_bound must yield the
// SAME certified result as an uninterrupted run — bit-identical placement,
// cycles, counters, and certificate — after a mid-search stop, a torn or
// corrupted journal tail, or a checkpoint-append fault. The crash model is
// byte-prefix truncation (what a SIGKILL between write(2) calls leaves).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/journal.hpp"
#include "model/search.hpp"
#include "model/search_checkpoint.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

Predictor profiled_predictor(const KernelInfo& k) {
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  return pred;
}

// Every field that encode_result round-trips; a resumed run must agree on
// all of them, not just the argmin.
void expect_same_result(const SearchResult& got, const SearchResult& want) {
  EXPECT_EQ(got.placement, want.placement)
      << "got " << got.placement.to_string() << " want "
      << want.placement.to_string();
  EXPECT_EQ(got.predicted_cycles, want.predicted_cycles);  // bit-for-bit
  EXPECT_EQ(got.evaluated, want.evaluated);
  EXPECT_EQ(got.pruned, want.pruned);
  EXPECT_EQ(got.prune_checks, want.prune_checks);
  EXPECT_EQ(got.prune_bound_ratio, want.prune_bound_ratio);
  EXPECT_STREQ(got.prune_gate_reason, want.prune_gate_reason);
  EXPECT_EQ(got.space_truncated, want.space_truncated);
  EXPECT_EQ(got.space_skipped, want.space_skipped);
  EXPECT_EQ(got.deadline_hit, want.deadline_hit);
  EXPECT_EQ(got.cancelled, want.cancelled);
  EXPECT_EQ(got.not_evaluated, want.not_evaluated);
  EXPECT_EQ(got.lower_bound, want.lower_bound);
  EXPECT_EQ(got.optimality_gap, want.optimality_gap);
  EXPECT_EQ(got.proven_optimal, want.proven_optimal);
  EXPECT_EQ(got.nodes_expanded, want.nodes_expanded);
  EXPECT_EQ(got.pruned_subtrees, want.pruned_subtrees);
  EXPECT_EQ(got.incumbent_updates, want.incumbent_updates);
  EXPECT_EQ(got.beam_fallback, want.beam_fallback);
}

class SearchResume : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "resume_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jnl";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    fault::disarm_all();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string read_bytes(const std::string& p) const {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void write_bytes(const std::string& p, const std::string& bytes) const {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Byte offsets at which a record ends (including the post-magic origin);
  // truncating at any of these leaves a clean prefix, truncating a few bytes
  // past one tears the next record.
  static std::vector<std::size_t> record_boundaries(const std::string& bytes) {
    std::vector<std::size_t> ends;
    std::size_t off = journal::kMagic.size();
    ends.push_back(off);
    while (bytes.size() - off >= 12) {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes[off + i]))
               << (8 * i);
      if (bytes.size() - off - 12 < len) break;
      off += 12 + len;
      ends.push_back(off);
    }
    return ends;
  }

  std::string path_;
};

SearchOptions small_interval_options() {
  SearchOptions o;
  o.checkpoint_interval = 32;  // force frequent checkpoints on tiny spaces
  return o;
}

// --- journaling is free of observable effect ---------------------------------

TEST_F(SearchResume, JournaledRunMatchesPlainRunOnSeedWorkloads) {
  const std::vector<KernelInfo> kernels = {
      workloads::make_stencil2d(128, 64), workloads::make_vecadd(1 << 12),
      workloads::make_triad(1 << 12), workloads::make_spmv(256, 16),
      workloads::make_bnb_synth(5)};
  for (const KernelInfo& k : kernels) {
    SCOPED_TRACE(k.name);
    std::remove(path_.c_str());
    const Predictor pred = profiled_predictor(k);
    const SearchOptions options = small_interval_options();
    const SearchResult plain = search_branch_and_bound(pred, options);
    ResumeInfo info;
    const auto journaled =
        try_resume_branch_and_bound(pred, options, path_, &info);
    ASSERT_TRUE(journaled.ok()) << journaled.status().to_string();
    expect_same_result(*journaled, plain);
    EXPECT_FALSE(info.resumed);
    EXPECT_FALSE(info.already_complete);
    EXPECT_FALSE(info.journal_write_failed);
    if (k.arrays.size() >= 4) {  // big enough walk to cross the interval
      EXPECT_GT(info.checkpoints_written, 0u);
    }
  }
}

TEST_F(SearchResume, SecondRunOnSealedJournalReturnsResultVerbatim) {
  const KernelInfo kern = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const auto first = try_resume_branch_and_bound(pred, options, path_);
  ASSERT_TRUE(first.ok());
  ResumeInfo info;
  const auto second = try_resume_branch_and_bound(pred, options, path_, &info);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_TRUE(info.already_complete);
  EXPECT_FALSE(info.resumed);
  EXPECT_EQ(info.checkpoints_written, 0u);
  expect_same_result(*second, *first);
}

// --- mid-search stop, then resume --------------------------------------------

TEST_F(SearchResume, CancelledRunResumesToTheUninterruptedResult) {
  const KernelInfo kern = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const SearchResult reference = search_branch_and_bound(pred, options);

  // Leg 1: a watcher thread fires the cancel token as soon as the first
  // periodic checkpoint lands in the journal (appends are fsynced, so the
  // file observably grows), stopping the walk at its next cadence check —
  // a genuine mid-search cancellation with a resumable snapshot on disk.
  std::atomic<bool> stop{false};
  SearchOptions cancelled = options;
  cancelled.cancel = &stop;
  std::thread killer([&] {
    for (;;) {
      if (journal::exists(path_)) {
        const auto rr = journal::read_records(path_);
        if (rr.ok() && rr->records.size() >= 2) break;  // header + one 'C'
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    stop.store(true);
  });
  ResumeInfo info1;
  const auto leg1 =
      try_resume_branch_and_bound(pred, cancelled, path_, &info1);
  killer.join();
  ASSERT_TRUE(leg1.ok()) << leg1.status().to_string();
  ASSERT_TRUE(leg1->cancelled);
  EXPECT_GE(info1.checkpoints_written, 1u);
  EXPECT_LT(leg1->evaluated, reference.evaluated);
  EXPECT_LE(leg1->lower_bound, reference.predicted_cycles);

  // Leg 2: resume without the token and finish.
  ResumeInfo info2;
  const auto leg2 = try_resume_branch_and_bound(pred, options, path_, &info2);
  ASSERT_TRUE(leg2.ok()) << leg2.status().to_string();
  EXPECT_TRUE(info2.resumed);
  EXPECT_FALSE(info2.already_complete);
  EXPECT_GT(info2.resumed_visits, 0u);
  expect_same_result(*leg2, reference);
  // The certificate never regresses across the kill.
  EXPECT_GE(leg2->lower_bound, leg1->lower_bound);
}

// A cancel that fires before the walk's first node leaves nothing resumable
// (only the header is durable) — and that must be safe too: the rerun is a
// fresh, exact run, not an error and not a bogus "already complete".
TEST_F(SearchResume, CancelBeforeFirstCheckpointRerunsFreshAndExact) {
  const KernelInfo kern = workloads::make_bnb_synth(4);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const SearchResult reference = search_branch_and_bound(pred, options);

  std::atomic<bool> stop{true};  // pre-fired: stops before the root expands
  SearchOptions cancelled = options;
  cancelled.cancel = &stop;
  ResumeInfo info1;
  const auto leg1 =
      try_resume_branch_and_bound(pred, cancelled, path_, &info1);
  ASSERT_TRUE(leg1.ok()) << leg1.status().to_string();
  ASSERT_TRUE(leg1->cancelled);
  EXPECT_EQ(info1.checkpoints_written, 0u);

  ResumeInfo info2;
  const auto leg2 = try_resume_branch_and_bound(pred, options, path_, &info2);
  ASSERT_TRUE(leg2.ok()) << leg2.status().to_string();
  EXPECT_FALSE(info2.resumed);
  EXPECT_FALSE(info2.already_complete);
  expect_same_result(*leg2, reference);
}

// The SIGKILL model: the on-disk journal after a kill is a byte prefix of
// the full journal. Resume from a prefix cut at EVERY record boundary, and
// from torn cuts inside records, must reproduce the reference bit-for-bit.
TEST_F(SearchResume, ResumeFromAnyPrefixReproducesTheResult) {
  const KernelInfo kern = workloads::make_bnb_synth(4);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const SearchResult reference = search_branch_and_bound(pred, options);
  {
    const auto full = try_resume_branch_and_bound(pred, options, path_);
    ASSERT_TRUE(full.ok());
  }
  const std::string full = read_bytes(path_);
  const std::vector<std::size_t> ends = record_boundaries(full);
  ASSERT_GE(ends.size(), 4u) << "journal too small to exercise resume";

  int resumed_runs = 0;
  for (std::size_t i = 0; i < ends.size(); ++i) {
    for (const std::size_t cut : {ends[i], ends[i] + 5}) {
      if (cut > full.size()) continue;
      SCOPED_TRACE(cut);
      write_bytes(path_, full.substr(0, cut));
      ResumeInfo info;
      const auto r = try_resume_branch_and_bound(pred, options, path_, &info);
      if (!r.ok()) {
        // Only legal below the header record: nothing usable survived, and
        // that is reported, not silently recomputed.
        EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
        EXPECT_LE(cut, ends[1]);
        continue;
      }
      expect_same_result(*r, reference);
      EXPECT_EQ(info.tail_truncated, cut != ends[i]);
      if (info.resumed) ++resumed_runs;
    }
  }
  EXPECT_GT(resumed_runs, 2);  // the sweep actually exercised warm resumes
}

TEST_F(SearchResume, CorruptedTailIsTruncatedAndResumeStaysExact) {
  const KernelInfo kern = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const SearchResult reference = search_branch_and_bound(pred, options);
  {
    const auto full = try_resume_branch_and_bound(pred, options, path_);
    ASSERT_TRUE(full.ok());
  }
  std::string bytes = read_bytes(path_);
  bytes.back() ^= 0x40;  // corrupt the sealed final-result record
  write_bytes(path_, bytes);
  ResumeInfo info;
  const auto r = try_resume_branch_and_bound(pred, options, path_, &info);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_FALSE(info.already_complete);  // the 'F' record was the casualty
  EXPECT_TRUE(info.resumed);
  expect_same_result(*r, reference);
}

// --- checkpoint-append failure degrades, never corrupts ----------------------

TEST_F(SearchResume, JournalWriteFaultDisablesJournalingButResultIsCorrect) {
  const KernelInfo kern = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const SearchResult reference = search_branch_and_bound(pred, options);
  fault::arm("journal.write", 2);  // append #1 is the header, #2 a checkpoint
  ResumeInfo info;
  const auto r = try_resume_branch_and_bound(pred, options, path_, &info);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  expect_same_result(*r, reference);
  EXPECT_TRUE(info.journal_write_failed);
  EXPECT_FALSE(info.journal_write_error.empty());
  EXPECT_EQ(info.checkpoints_written, 0u);
  // The journal was left un-sealed (no 'F' after a failed sink), so a rerun
  // recomputes from scratch instead of trusting a half-written file.
  const auto contents = journal::read_records(path_);
  ASSERT_TRUE(contents.ok());
  for (std::size_t i = 1; i < contents->records.size(); ++i)
    EXPECT_NE(contents->records[i][0], 'F');
}

// --- binding ------------------------------------------------------------------

TEST_F(SearchResume, JournalFromDifferentSearchIsRejected) {
  const KernelInfo vecadd_kern = workloads::make_vecadd(1 << 12);
  const Predictor vecadd = profiled_predictor(vecadd_kern);
  const SearchOptions options = small_interval_options();
  {
    const auto r = try_resume_branch_and_bound(vecadd, options, path_);
    ASSERT_TRUE(r.ok());
  }
  const KernelInfo spmv_kern = workloads::make_spmv(256, 16);
  const Predictor spmv = profiled_predictor(spmv_kern);
  const auto r = try_resume_branch_and_bound(spmv, options, path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("fingerprint"), std::string::npos)
      << r.status().to_string();
}

TEST_F(SearchResume, UnprofiledPredictorIsRejectedBeforeTouchingTheJournal) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const Predictor pred(k, kepler_arch());  // no profile_sample
  const auto r =
      try_resume_branch_and_bound(pred, small_interval_options(), path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(journal::exists(path_));
}

// --- the anytime certificate across resumes ----------------------------------

// Rebuild prefix journals at every record boundary and ask each one for its
// certified lower bound (resume with a pre-fired cancel = "where was I?").
// The certificate must be monotone non-decreasing in journal progress and
// converge to the sealed result.
TEST_F(SearchResume, CertifiedLowerBoundIsMonotoneAcrossResumePoints) {
  const KernelInfo kern = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(kern);
  const SearchOptions options = small_interval_options();
  const auto sealed = try_resume_branch_and_bound(pred, options, path_);
  ASSERT_TRUE(sealed.ok());
  const auto contents = journal::read_records(path_);
  ASSERT_TRUE(contents.ok());
  const std::vector<std::string>& records = contents->records;
  ASSERT_GE(records.size(), 4u);

  const std::string prefix_path = path_ + ".prefix";
  double prev_lb = 0.0;
  for (std::size_t count = 1; count <= records.size(); ++count) {
    SCOPED_TRACE(count);
    {
      auto w = journal::Writer::create(prefix_path);
      ASSERT_TRUE(w.ok());
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_TRUE(w->append(records[i]).ok());
    }
    std::atomic<bool> stop{true};
    SearchOptions peek = options;
    peek.cancel = &stop;
    const auto r = try_resume_branch_and_bound(pred, peek, prefix_path);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_GE(r->lower_bound, prev_lb);
    EXPECT_LE(r->lower_bound, sealed->predicted_cycles);
    prev_lb = r->lower_bound;
  }
  // The last prefix is the whole sealed journal: certificate fully closed.
  EXPECT_EQ(prev_lb, sealed->lower_bound);
  std::remove(prefix_path.c_str());
  std::remove((prefix_path + ".tmp").c_str());
}

// --- thread-count independence -----------------------------------------------

TEST_F(SearchResume, KillAndResumeIsExactAcrossThreadCounts) {
  const KernelInfo k = workloads::make_bnb_synth(6);
  const Predictor pred = profiled_predictor(k);
  const SearchOptions options = small_interval_options();
  const SearchResult reference = [&] {
    testutil::ScopedEnv env("GPUHMS_THREADS", "1");
    return search_branch_and_bound(pred, options);
  }();

  for (const char* threads : {"1", "4", "16"}) {
    SCOPED_TRACE(threads);
    testutil::ScopedEnv env("GPUHMS_THREADS", threads);
    std::remove(path_.c_str());

    // Complete a journaled run under this thread count, then "kill" it by
    // truncating the journal mid-walk — torn 3 bytes into a middle record,
    // so the sealed result is gone and the tail is dirty.
    {
      const auto full = try_resume_branch_and_bound(pred, options, path_);
      ASSERT_TRUE(full.ok()) << full.status().to_string();
    }
    const std::string bytes = read_bytes(path_);
    const std::vector<std::size_t> ends = record_boundaries(bytes);
    ASSERT_GE(ends.size(), 5u) << "journal too small to kill mid-walk";
    write_bytes(path_, bytes.substr(0, ends[ends.size() / 2] + 3));

    ResumeInfo info;
    const auto leg2 = try_resume_branch_and_bound(pred, options, path_, &info);
    ASSERT_TRUE(leg2.ok()) << leg2.status().to_string();
    EXPECT_TRUE(info.tail_truncated);
    EXPECT_TRUE(info.resumed);
    EXPECT_GT(info.resumed_visits, 0u);
    expect_same_result(*leg2, reference);
  }
}

}  // namespace
}  // namespace gpuhms
