// Parallel search engine: thread-pool correctness, serial/parallel
// bit-identity of the searches, deterministic tie-breaking, batch
// prediction, trace memoization, and cap observability. This test is also
// rebuilt under -fsanitize=thread (test_search_parallel_tsan) to lock in the
// thread-safety of the shared Predictor/TraceSkeleton.
#include "model/search.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

Predictor profiled_predictor(const KernelInfo& k) {
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  return pred;
}

SearchOptions options_with_threads(int threads, bool memoize = true,
                                   bool prune = true,
                                   std::size_t cap = 4096) {
  SearchOptions o;
  o.cap = cap;
  o.num_threads = threads;
  o.memoize_trace = memoize;
  o.prune = prune;
  return o;
}

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.predicted_cycles, b.predicted_cycles);  // bit-identical
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.space_truncated, b.space_truncated);
  EXPECT_EQ(a.space_skipped, b.space_skipped);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](int worker, std::size_t i) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, 4);
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](int, std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * 45u);
}

// (a) Parallel exhaustive == serial exhaustive — placement, cycle count and
// all bookkeeping — on every registered workload (both Table IV suites).
TEST(SearchParallel, BitIdenticalToSerialOnEveryWorkload) {
  std::vector<workloads::BenchmarkCase> cases = workloads::evaluation_suite();
  for (auto& c : workloads::training_suite()) cases.push_back(std::move(c));
  ASSERT_FALSE(cases.empty());
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const Predictor pred = profiled_predictor(c.kernel);
    // Small cap keeps the sweep tractable while still covering every kernel.
    const auto serial = search_exhaustive(pred, options_with_threads(1, true,
                                                                     true, 12));
    const auto parallel = search_exhaustive(
        pred, options_with_threads(4, true, true, 12));
    expect_identical(serial, parallel);
  }
}

// Memoizing the trace skeleton must not change predictions, and pruning must
// never change the returned placement or its predicted cycles.
TEST(SearchParallel, MemoizationAndPruningPreserveTheWinner) {
  const KernelInfo k = workloads::make_stencil2d(128, 64);
  const Predictor pred = profiled_predictor(k);
  const auto plain =
      search_exhaustive(pred, options_with_threads(1, false, false));
  const auto memoized =
      search_exhaustive(pred, options_with_threads(1, true, false));
  const auto pruned = search_exhaustive(pred, options_with_threads(2));
  expect_identical(plain, memoized);
  EXPECT_EQ(plain.placement, pruned.placement);
  EXPECT_EQ(plain.predicted_cycles, pruned.predicted_cycles);
  EXPECT_EQ(plain.evaluated, pruned.evaluated + pruned.pruned);
}

// (b) Deterministic winner under ties: an array the kernel never touches
// makes every non-shared space for it predict *exactly* the same cycles; the
// search must return the lowest enumeration index (Global, the first space)
// for any thread count.
TEST(SearchParallel, DeterministicWinnerUnderTies) {
  KernelInfo k;
  k.name = "tie";
  k.num_blocks = 16;
  k.threads_per_block = 128;
  ArrayDecl data;
  data.name = "data";
  data.elems = 4096;
  ArrayDecl unused;
  unused.name = "unused";
  unused.elems = 1024;
  k.arrays = {data, unused};
  k.fn = [](WarpEmitter& em, const WarpCtx& ctx) {
    const std::int64_t base = ctx.warp_global_id() * kWarpSize;
    em.load(0, em.linear(base % 4096));
    em.falu(4, true);
  };
  const Predictor pred = profiled_predictor(k);
  const auto serial = search_exhaustive(pred, options_with_threads(1));
  const auto parallel = search_exhaustive(pred, options_with_threads(4));
  expect_identical(serial, parallel);
  // All placements of `unused` except Shared tie exactly; Global enumerates
  // first and must win the tie.
  EXPECT_EQ(serial.placement.of(1), MemSpace::Global);
}

// (c) predict_batch must match per-call predict bit-for-bit, pooled or not.
TEST(SearchParallel, PredictBatchMatchesPredict) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  const auto space = enumerate_placements(k, kepler_arch(), 24);
  ThreadPool pool(3);
  const auto batch = pred.predict_batch(space, &pool);
  const auto batch_local = pred.predict_batch(space);  // internal pool
  ASSERT_EQ(batch.size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    const Prediction one = pred.predict(space[i]);
    EXPECT_EQ(batch[i].total_cycles, one.total_cycles) << i;
    EXPECT_EQ(batch[i].t_comp, one.t_comp) << i;
    EXPECT_EQ(batch[i].t_mem, one.t_mem) << i;
    EXPECT_EQ(batch[i].t_overlap, one.t_overlap) << i;
    EXPECT_EQ(batch_local[i].total_cycles, one.total_cycles) << i;
  }
}

// A single Predictor shared by many threads (the const-correctness fix):
// concurrent predict() calls must agree with the serial answer. Under the
// TSan build this is the canonical data-race probe.
TEST(SearchParallel, SharedPredictorIsThreadSafe) {
  const KernelInfo k = workloads::make_triad(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  pred.memoize_trace();
  const auto space = enumerate_placements(k, kepler_arch(), 16);
  std::vector<double> expected;
  for (const auto& p : space) expected.push_back(pred.predict(p).total_cycles);
  ThreadPool pool(4);
  std::vector<double> got(space.size());
  pool.parallel_for(space.size(), [&](int, std::size_t i) {
    got[i] = pred.predict(space[i]).total_cycles;
  });
  EXPECT_EQ(expected, got);
}

TEST(SearchParallel, OracleBitIdenticalToSerial) {
  const KernelInfo k = workloads::make_stencil2d(96, 48);
  const auto serial = search_oracle(k, kepler_arch(), options_with_threads(1));
  const auto parallel =
      search_oracle(k, kepler_arch(), options_with_threads(4));
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cycles, parallel.best_cycles);
  EXPECT_EQ(serial.worst, parallel.worst);
  EXPECT_EQ(serial.worst_cycles, parallel.worst_cycles);
  EXPECT_EQ(serial.simulated, parallel.simulated);
  EXPECT_EQ(serial.space_truncated, parallel.space_truncated);
  EXPECT_EQ(serial.space_skipped, parallel.space_skipped);
}

TEST(SearchParallel, TruncationIsObservable) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const auto capped = enumerate_placement_space(k, kepler_arch(), 5);
  EXPECT_EQ(capped.placements.size(), 5u);
  EXPECT_TRUE(capped.truncated);
  EXPECT_GT(capped.skipped_combinations, 0u);
  const auto full = enumerate_placement_space(k, kepler_arch());
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.skipped_combinations, 0u);
  EXPECT_GT(full.placements.size(), 5u);

  const Predictor pred = profiled_predictor(k);
  const auto r = search_exhaustive(pred, options_with_threads(2, true, true, 5));
  EXPECT_TRUE(r.space_truncated);
  EXPECT_EQ(r.space_skipped, capped.skipped_combinations);
  EXPECT_EQ(r.evaluated + r.pruned, 5u);
}

// --- deadlines and cancellation ---------------------------------------------

// An already-expired deadline returns immediately, but still with a valid,
// *scored* best-so-far placement and the deadline observable on the result.
TEST(SearchDeadline, ZeroDeadlineReturnsScoredBestSoFar) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  SearchOptions o = options_with_threads(4);
  o.deadline = std::chrono::milliseconds(0);
  const SearchResult r = search_exhaustive(pred, o);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.evaluated, 1u);  // the first candidate is always scored
  EXPECT_GT(r.not_evaluated, 0u);
  EXPECT_GT(r.predicted_cycles, 0.0);
  // The returned placement is a real scored candidate: re-predicting it
  // reproduces the reported cycles bit-for-bit.
  EXPECT_EQ(pred.predict(r.placement).total_cycles, r.predicted_cycles);
}

// A generous deadline must not change anything: same winner, same
// bookkeeping, no flags.
TEST(SearchDeadline, FarFutureDeadlineIsIdentityOperation) {
  const KernelInfo k = workloads::make_stencil2d(96, 48);
  const Predictor pred = profiled_predictor(k);
  const SearchResult plain = search_exhaustive(pred, options_with_threads(2));
  SearchOptions o = options_with_threads(2);
  o.deadline = std::chrono::hours(24);
  const SearchResult bounded = search_exhaustive(pred, o);
  expect_identical(plain, bounded);
  EXPECT_FALSE(bounded.deadline_hit);
  EXPECT_FALSE(bounded.cancelled);
  EXPECT_EQ(bounded.not_evaluated, 0u);
}

TEST(SearchDeadline, PreSetCancelTokenStopsImmediately) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  std::atomic<bool> cancel{true};
  SearchOptions o = options_with_threads(4);
  o.cancel = &cancel;
  const SearchResult r = search_exhaustive(pred, o);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.deadline_hit);
  EXPECT_EQ(r.evaluated, 1u);
  EXPECT_GT(r.predicted_cycles, 0.0);
  EXPECT_EQ(pred.predict(r.placement).total_cycles, r.predicted_cycles);

  // An unset token is inert.
  cancel.store(false);
  const SearchResult full = search_exhaustive(pred, o);
  EXPECT_FALSE(full.cancelled);
  expect_identical(full, search_exhaustive(pred, options_with_threads(4)));
}

TEST(SearchDeadline, OracleHonorsDeadlineWithBestSoFar) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  SearchOptions o = options_with_threads(2, true, true, 16);
  o.deadline = std::chrono::milliseconds(0);
  const OracleResult r = search_oracle(k, kepler_arch(), o);
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_EQ(r.simulated, 1u);
  EXPECT_GT(r.not_simulated, 0u);
  EXPECT_GT(r.best_cycles, 0u);
  EXPECT_EQ(r.best, r.worst);  // only one candidate examined
}

// try_search reports deadline expiry as OK-with-flag, not as an error.
TEST(SearchDeadline, TrySearchTreatsDeadlineAsOk) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  SearchOptions o = options_with_threads(2);
  o.deadline = std::chrono::milliseconds(0);
  const auto r = try_search_exhaustive(pred, o);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->deadline_hit);
}

TEST(SearchParallel, TrainOverlapModelDeterministicAcrossPools) {
  std::vector<workloads::BenchmarkCase> suite = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : suite) {
    cases.push_back({&c.kernel, c.sample});
    if (cases.size() >= 4) break;  // a slice is enough to pin determinism
  }
  ThreadPool serial(1), wide(4);
  const ToverlapModel a =
      train_overlap_model(cases, kepler_arch(), {}, 1e-3, &serial);
  const ToverlapModel b =
      train_overlap_model(cases, kepler_arch(), {}, 1e-3, &wide);
  EXPECT_EQ(a.coefficients(), b.coefficients());
}

}  // namespace
}  // namespace gpuhms
