// Per-workload access-pattern signature tests: each Table IV kernel stands
// in for a real CUDA benchmark, so its memory behaviour must carry the
// defining fingerprint of the original (divergence, conflicts, broadcast,
// 2-D locality...). These tests keep a workload edit from silently turning
// md's gathers coalesced or fft's butterflies conflict-free.
#include <gtest/gtest.h>

#include "model/trace_analysis.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

PlacementEvents events_of(const char* name) {
  const auto c = workloads::get_benchmark(name);
  return analyze_trace(c.kernel, c.sample, kepler_arch());
}

double transactions_per_request(const PlacementEvents& ev) {
  return static_cast<double>(ev.global_transactions) /
         std::max<std::uint64_t>(1, ev.global_requests);
}

TEST(Signatures, VecaddIsPerfectlyCoalesced) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch());
  EXPECT_DOUBLE_EQ(transactions_per_request(ev), 1.0);
  EXPECT_EQ(ev.replays_1_4(), 0u);
}

TEST(Signatures, MdGathersDiverge) {
  // Neighbor-position gathers go through the texture path (d_position
  // defaults to Texture1D): far more transactions than requests there,
  // while the neighbor-list reads stay coalesced on the global path.
  const auto ev = events_of("md");
  const double tex_tpr = static_cast<double>(ev.tex_transactions) /
                         std::max<std::uint64_t>(1, ev.tex_requests);
  EXPECT_GT(tex_tpr, 2.0);
  EXPECT_LT(transactions_per_request(ev), 2.0);
}

TEST(Signatures, MdTextureDefaultUsesTexPath) {
  const auto ev = events_of("md");
  EXPECT_GT(ev.tex_requests, 0u);  // d_position defaults to Texture1D
}

TEST(Signatures, SpmvGatherMissesL2) {
  const auto ev = events_of("spmv");
  EXPECT_GT(ev.dram_requests, 0u);
  EXPECT_GT(ev.tex_requests, 0u);  // d_vec through texture
}

TEST(Signatures, SpmvScalarDivergesWhereVectorCoalesces) {
  // The classic CSR trade-off: the scalar kernel's val/cols reads scatter
  // across rows while the vector kernel streams within a row.
  const KernelInfo vec = workloads::make_spmv(512, 24);
  const KernelInfo sca = workloads::make_spmv_scalar(512, 24);
  const auto ev_v = analyze_trace(vec, DataPlacement::defaults(vec),
                                  kepler_arch());
  const auto ev_s = analyze_trace(sca, DataPlacement::defaults(sca),
                                  kepler_arch());
  const double tpr_v = static_cast<double>(ev_v.global_transactions) /
                       std::max<std::uint64_t>(1, ev_v.global_requests);
  const double tpr_s = static_cast<double>(ev_s.global_transactions) /
                       std::max<std::uint64_t>(1, ev_s.global_requests);
  EXPECT_GT(tpr_s, 2.0 * tpr_v);
}

TEST(Signatures, TransposeStoresFullyDiverge) {
  // Column-major stores: each lane its own line -> 32 transactions/request
  // on the store side; loads stay coalesced.
  const auto c = workloads::get_benchmark("transpose");
  const auto r = simulate(c.kernel, c.sample);
  EXPECT_GT(r.counters.replay_global_divergence, 0u);
  // Half the requests (the stores) produce 32 transactions each:
  // avg transactions/request ~ (1 + 32) / 2.
  const double tpr = static_cast<double>(r.counters.global_transactions) /
                     static_cast<double>(r.counters.global_requests);
  EXPECT_NEAR(tpr, 16.5, 1.5);
}

TEST(Signatures, FftSharedButterfliesConflict) {
  const auto c = workloads::get_benchmark("fft");
  const auto r = simulate(c.kernel, c.sample);
  EXPECT_GT(r.counters.shared_bank_conflicts, 0u);
  EXPECT_GT(r.counters.shared_requests, 0u);
}

TEST(Signatures, ConvolutionTapsBroadcastThroughConstant) {
  const auto c = workloads::get_benchmark("convolution");
  const auto r = simulate(c.kernel, c.sample);
  EXPECT_GT(r.counters.const_requests, 0u);
  // Broadcast taps: no indexed-constant divergence.
  EXPECT_EQ(r.counters.replay_const_divergence, 0u);
}

TEST(Signatures, NeuralnetConstantPlacementDiverges) {
  // The defining NN_C behaviour: weights reads are 32 distinct words.
  const auto c = workloads::get_benchmark("neuralnet");
  const int iw = c.kernel.array_index("weights");
  const auto r =
      simulate(c.kernel, c.sample.with(iw, MemSpace::Constant));
  EXPECT_GT(r.counters.replay_const_divergence,
            r.counters.const_requests * 10);
}

TEST(Signatures, ReductionAlternatesSharedAndSyncs) {
  const auto c = workloads::get_benchmark("reduction");
  const auto ev = analyze_trace(c.kernel, c.sample, kepler_arch());
  // The tree reduction keeps touching shared memory between barriers (the
  // upper tree levels predicate off whole warps, which do not count as
  // requests).
  EXPECT_GT(ev.shared_requests, 1000u);
  EXPECT_GT(ev.sync_insts, 8u * 512u);  // >= 9 barriers x 512 warps
}

TEST(Signatures, Md5hashIsComputeBound) {
  const auto ev = events_of("md5hash");
  EXPECT_LT(static_cast<double>(ev.mem_insts),
            0.01 * static_cast<double>(ev.insts_executed));
}

TEST(Signatures, S3dIssuesDoublePrecision) {
  const auto c = workloads::get_benchmark("s3d");
  const auto r = simulate(c.kernel, c.sample);
  EXPECT_GT(r.counters.inst_fp64, 0u);
  EXPECT_GT(r.counters.replay_double_issue, 0u);
}

TEST(Signatures, CfdGathersNeighborsWithDivergence) {
  const auto ev = events_of("cfd");
  EXPECT_GT(transactions_per_request(ev), 1.5);
}

TEST(Signatures, QtcReadsDistanceMatrixRows) {
  const auto ev = events_of("qtc");
  EXPECT_GT(ev.global_transactions, 0u);
  EXPECT_GT(ev.dram_requests, 0u);
}

TEST(Signatures, Stencil2dBenefitsFromTexture) {
  // The defining stencil property: the 9-point window reuses lines, and the
  // per-SM texture cache captures that reuse, cutting L2 traffic.
  const auto c = workloads::get_benchmark("stencil2d");
  const int idata = c.kernel.array_index("data");
  const auto rg = simulate(c.kernel, c.sample);
  const auto rt = simulate(c.kernel, c.sample.with(idata, MemSpace::Texture1D));
  EXPECT_LT(rt.counters.l2_transactions, rg.counters.l2_transactions);
  EXPECT_LT(rt.cycles, rg.cycles);
}

TEST(Signatures, Texture2DHelpsColumnMajorTraffic) {
  // transpose's strided stores stay, but reading idata via 2-D texture
  // tiles turns the row-major reads + column-major reuse into fewer
  // texture misses than the 1-D (pitch-linear) texture view.
  const auto c = workloads::get_benchmark("qtc");
  const int id = c.kernel.array_index("distance_matrix_txt");
  const auto r1 = simulate(c.kernel, c.sample.with(id, MemSpace::Texture1D));
  const auto r2 = simulate(c.kernel, c.sample.with(id, MemSpace::Texture2D));
  EXPECT_NE(r1.counters.tex_cache_misses, r2.counters.tex_cache_misses);
}

TEST(Signatures, SharedStagingCostsOccupancyOnlyWhenLarge) {
  // triad's 512 B slice must not cost occupancy; neuralnet's 24 KiB must.
  const auto triad = workloads::get_benchmark("triad");
  const int ib = triad.kernel.array_index("B");
  const auto lt = MemoryLayout(triad.kernel,
                               triad.sample.with(ib, MemSpace::Shared),
                               kepler_arch());
  EXPECT_EQ(lt.blocks_per_sm(kepler_arch()), 16);

  const auto nn = workloads::get_benchmark("neuralnet");
  const int iw = nn.kernel.array_index("weights");
  const auto ln = MemoryLayout(nn.kernel, nn.sample.with(iw, MemSpace::Shared),
                               kepler_arch());
  EXPECT_EQ(ln.blocks_per_sm(kepler_arch()), 2);
}

// Every benchmark's sample placement must produce a non-trivial event
// profile (a kernel that stops touching memory is a porting bug).
class SignatureSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SignatureSweep, NontrivialEventProfile) {
  const auto c = workloads::get_benchmark(GetParam());
  const auto ev = analyze_trace(c.kernel, c.sample, kepler_arch());
  EXPECT_GT(ev.insts_executed, 100u);
  if (GetParam() != "md5hash") {
    EXPECT_GT(ev.total_mem_events(), 10.0);
  }
  EXPECT_GE(ev.warps_per_sm, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, SignatureSweep,
    ::testing::Values("bfs", "fft", "neuralnet", "reduction", "scan", "sort",
                      "stencil2d", "md5hash", "s3d", "convolution", "md",
                      "matrixmul", "spmv", "transpose", "cfd", "triad", "qtc"),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace gpuhms
