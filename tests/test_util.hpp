// Shared helpers for the test binaries.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace gpuhms::testutil {

// RAII environment-variable guard: sets (or, with nullptr, unsets) a
// variable for the guard's lifetime and restores the previous state on
// destruction. Tests that steer the library through the environment
// (GPUHMS_FAULT, GPUHMS_THREADS, GPUHMS_METRICS, ...) must use this so a
// failing or early-returning test cannot leak configuration into the tests
// that run after it in the same binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    apply(value);
  }
  ~ScopedEnv() { apply(saved_ ? saved_->c_str() : nullptr); }

  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  void apply(const char* value) {
    if (value != nullptr) {
      ::setenv(name_.c_str(), value, /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

  std::string name_;
  std::optional<std::string> saved_;
};

}  // namespace gpuhms::testutil
