// Property tests for common/lru_cache.hpp — the bounded cache under the
// serving layer — plus the serve.parse fault-injection case: a poisoned
// request line degrades to a structured error response, never a crash.
#include <algorithm>
#include <list>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.hpp"
#include "common/lru_cache.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace gpuhms {
namespace {

TEST(LruCache, EvictionOrderIsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  EXPECT_EQ(cache.keys_mru_order(), (std::vector<int>{3, 2, 1}));

  // A get refreshes recency: 1 becomes MRU, 2 becomes the victim.
  EXPECT_EQ(cache.get(1), 10);
  EXPECT_EQ(cache.keys_mru_order(), (std::vector<int>{1, 3, 2}));
  cache.put(4, 40);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.get(2), std::nullopt);  // evicted
  EXPECT_EQ(cache.keys_mru_order(), (std::vector<int>{4, 1, 3}));

  // put of an existing key refreshes recency too (and counts as update).
  cache.put(3, 33);
  EXPECT_EQ(cache.keys_mru_order(), (std::vector<int>{3, 4, 1}));
  EXPECT_EQ(cache.get(3), 33);

  const auto s = cache.stats();
  EXPECT_EQ(s.inserts, 4u);
  EXPECT_EQ(s.updates, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.inserts - s.evictions, cache.size());
}

TEST(LruCache, CapacityZeroDisablesCaching) {
  LruCache<std::string, int> cache(0);
  cache.put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), std::nullopt);
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// Reference model: the same semantics written the obvious slow way. Random
// op sequences must produce identical contents, order, and counters.
struct ReferenceLru {
  explicit ReferenceLru(std::size_t cap) : cap(cap) {}
  std::size_t cap;
  std::list<std::pair<int, int>> entries;  // MRU first
  LruCache<int, int>::Stats stats;

  std::optional<int> get(int k) {
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->first == k) {
        ++stats.hits;
        entries.splice(entries.begin(), entries, it);
        return it->second;
      }
    }
    ++stats.misses;
    return std::nullopt;
  }
  void put(int k, int v) {
    if (cap == 0) return;
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->first == k) {
        ++stats.updates;
        it->second = v;
        entries.splice(entries.begin(), entries, it);
        return;
      }
    }
    if (entries.size() >= cap) {
      ++stats.evictions;
      entries.pop_back();
    }
    ++stats.inserts;
    entries.emplace_front(k, v);
  }
};

TEST(LruCache, MatchesReferenceModelOnRandomOps) {
  std::mt19937 rng(20260807);
  for (const std::size_t cap : {1u, 2u, 7u, 32u}) {
    LruCache<int, int> cache(cap);
    ReferenceLru ref(cap);
    std::uniform_int_distribution<int> key(0, 40);  // keys >> capacity
    for (int step = 0; step < 5000; ++step) {
      const int k = key(rng);
      if (rng() % 2 == 0) {
        EXPECT_EQ(cache.get(k), ref.get(k)) << "cap=" << cap << " step=" << step;
      } else {
        const int v = static_cast<int>(rng() % 1000);
        cache.put(k, v);
        ref.put(k, v);
      }
      ASSERT_LE(cache.size(), cap);
    }
    std::vector<int> ref_keys;
    for (const auto& e : ref.entries) ref_keys.push_back(e.first);
    EXPECT_EQ(cache.keys_mru_order(), ref_keys) << "cap=" << cap;
    const auto a = cache.stats();
    const auto b = ref.stats;
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.inserts, b.inserts);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.inserts - a.evictions, cache.size());
  }
}

TEST(LruCache, CapacityInvariantHoldsUnderConcurrentPutGet) {
  static constexpr std::size_t kCap = 8;
  LruCache<int, int> cache(kCap);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::mt19937 rng(static_cast<unsigned>(1000 + t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = static_cast<int>(rng() % 64);
        if (rng() % 2 == 0) {
          const std::optional<int> v = cache.get(k);
          if (v) {
            ASSERT_EQ(*v, k * 3);  // values never tear
          }
        } else {
          cache.put(k, k * 3);
        }
        ASSERT_LE(cache.size(), kCap);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = cache.stats();
  EXPECT_EQ(s.inserts - s.evictions, cache.size());
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread -
                (s.inserts + s.updates));
  EXPECT_LE(cache.size(), kCap);
  EXPECT_EQ(cache.keys_mru_order().size(), cache.size());
}

// --- serve.parse fault injection ---------------------------------------------

TEST(ServeFaultInjection, PoisonedRequestDegradesToErrorResponse) {
  serve::ServeOptions options;
  serve::PredictionService service(options);
  const std::string line =
      R"({"id":7,"op":"predict","benchmark":"triad","placement":"G,G,G"})";

  fault::arm("serve.parse");
  const std::string poisoned = service.handle_line(line);
  fault::disarm_all();

  const StatusOr<serve::Json> parsed = serve::Json::parse(poisoned);
  ASSERT_TRUE(parsed.ok()) << poisoned;
  ASSERT_NE(parsed->find("ok"), nullptr);
  EXPECT_FALSE(parsed->find("ok")->as_bool());
  const serve::Json* error = parsed->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("code")->as_string(), "INTERNAL");
  EXPECT_NE(error->find("message")->as_string().find("serve.parse"),
            std::string::npos);

  // The service survives: the same request now succeeds, bit-identically
  // on repetition.
  const std::string ok1 = service.handle_line(line);
  const std::string ok2 = service.handle_line(line);
  const StatusOr<serve::Json> good = serve::Json::parse(ok1);
  ASSERT_TRUE(good.ok()) << ok1;
  EXPECT_TRUE(good->find("ok")->as_bool()) << ok1;
  EXPECT_EQ(ok1, ok2);
  EXPECT_EQ(service.stats().errors, 1u);
}

}  // namespace
}  // namespace gpuhms
