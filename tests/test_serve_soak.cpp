// Concurrency soak for the serving layer: many client threads hammer one
// PredictionService with mixed requests and every response must come back
// well-formed, matched to its request id (no lost / duplicated / misrouted
// responses), with the caches never exceeding their bounds. Runs in the
// plain test suite AND — via tests/CMakeLists.txt — inside the
// ThreadSanitizer binary (test_search_parallel_tsan) and any GPUHMS_SANITIZE
// build, which is where a locking mistake in the service would surface.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kernel/placement.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

// TSan instrumentation costs ~10x; keep the per-thread request count high
// enough to churn the caches but bounded for the sanitizer run.
#if defined(__SANITIZE_THREAD__)
constexpr int kRequestsPerThread = 200;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kRequestsPerThread = 200;
#else
constexpr int kRequestsPerThread = 500;
#endif
#else
constexpr int kRequestsPerThread = 500;
#endif
constexpr int kThreads = 8;

std::vector<std::string> legal_placement_strings(const std::string& name,
                                                 std::size_t cap) {
  const workloads::BenchmarkCase bench = workloads::get_benchmark(name);
  std::vector<std::string> out;
  for (const DataPlacement& p :
       enumerate_placements(bench.kernel, kepler_arch(), cap))
    out.push_back(p.to_string());
  return out;
}

TEST(ServeSoak, EightClientsMixedRequestsNoLostOrMisroutedResponses) {
  serve::ServeOptions options;
  options.prediction_cache_capacity = 48;  // << distinct keys: force churn
  options.kernel_cache_capacity = 4;
  serve::PredictionService service(options);

  const std::vector<std::string> benchmarks = {"triad", "spmv"};
  std::vector<std::vector<std::string>> placements;
  for (const std::string& b : benchmarks)
    placements.push_back(legal_placement_strings(b, 48));

  std::atomic<std::uint64_t> responses_checked{0};
  std::atomic<std::uint64_t> ok_responses{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kRequestsPerThread && !failed.load(); ++k) {
        const int id = t * 1000000 + k;
        const std::size_t b = static_cast<std::size_t>((t + k) % 2);
        // k has fixed parity per (thread, benchmark); index by k/2 so the
        // walk covers every placement, not just one parity class.
        const std::string& placement =
            placements[b][static_cast<std::size_t>((k / 2) * 7 + t * 3) %
                          placements[b].size()];
        std::string line;
        bool malformed = false;
        if (k % 101 == 50) {
          line = "{\"id\":" + std::to_string(id) +
                 ",\"op\":\"search\",\"benchmark\":\"" + benchmarks[b] +
                 "\",\"algo\":\"exhaustive\",\"cap\":16}";
        } else if (k % 37 == 17) {
          line = "{\"id\":" + std::to_string(id) + ",\"op\":\"metrics\"}";
        } else if (k % 11 == 5) {
          line = "{\"id\":" + std::to_string(id) +
                 ",\"op\":\"predict_batch\",\"benchmark\":\"" + benchmarks[b] +
                 "\",\"placements\":[\"" + placement + "\",\"" +
                 placements[b][0] + "\"]}";
        } else if (k % 29 == 13) {
          line = "this line is not json {{{";  // must degrade, not crash
          malformed = true;
        } else {
          line = "{\"id\":" + std::to_string(id) +
                 ",\"op\":\"predict\",\"benchmark\":\"" + benchmarks[b] +
                 "\",\"placement\":\"" + placement + "\"}";
        }
        const std::string response = service.handle_line(line);

        const StatusOr<serve::Json> parsed = serve::Json::parse(response);
        if (!parsed.ok()) {
          ADD_FAILURE() << "malformed response: " << response;
          failed.store(true);
          return;
        }
        responses_checked.fetch_add(1);
        const serve::Json* rid = parsed->find("id");
        const serve::Json* ok = parsed->find("ok");
        if (rid == nullptr || ok == nullptr || !ok->is_bool()) {
          ADD_FAILURE() << "response missing id/ok: " << response;
          failed.store(true);
          return;
        }
        if (malformed) {
          // The malformed line can't echo an id; everything else must echo
          // exactly the id this thread sent — a cross-thread mixup would
          // surface here as a misrouted response.
          if (!rid->is_null()) {
            ADD_FAILURE() << "unparseable request grew an id: " << response;
            failed.store(true);
            return;
          }
        } else if (!rid->is_number() ||
                   rid->as_number() != static_cast<double>(id)) {
          ADD_FAILURE() << "misrouted response for id " << id << ": "
                        << response;
          failed.store(true);
          return;
        }
        if (ok->as_bool()) ok_responses.fetch_add(1);

        // The cache bound must hold at every observation point.
        const serve::ServeStats stats = service.stats();
        if (stats.prediction_cache.size > stats.prediction_cache.capacity ||
            stats.kernel_cache.size > stats.kernel_cache.capacity) {
          ADD_FAILURE() << "cache exceeded its bound: prediction "
                        << stats.prediction_cache.size << "/"
                        << stats.prediction_cache.capacity << ", kernel "
                        << stats.kernel_cache.size << "/"
                        << stats.kernel_cache.capacity;
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  ASSERT_FALSE(failed.load());

  // No lost or duplicated responses: handle_line returned exactly once per
  // request, and the counters agree.
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kRequestsPerThread;
  EXPECT_EQ(responses_checked.load(), total);
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(stats.responses, total);
  // Only the deliberately-malformed lines error; everything else succeeds.
  EXPECT_EQ(stats.errors, total - ok_responses.load());
  EXPECT_GT(ok_responses.load(), total * 8 / 10);
  EXPECT_GT(stats.prediction_cache.hits, 0u);
  EXPECT_GT(stats.prediction_cache.evictions, 0u);  // churn really happened
  EXPECT_LE(stats.prediction_cache.size, stats.prediction_cache.capacity);
  EXPECT_EQ(stats.rejected, 0u);  // default admission limits never tripped
}

TEST(ServeSoak, TinyInflightLimitShedsLoadWithStructuredRejections) {
  serve::ServeOptions options;
  options.max_inflight = 1;  // every concurrent second request is shed
  serve::PredictionService service(options);
  // Warm the kernel + prediction caches so the hammering below is hit-path.
  ASSERT_NE(service
                .handle_line(R"({"op":"predict","benchmark":"triad",)"
                             R"("placement":"G,G,G"})")
                .find("\"ok\":true"),
            std::string::npos);

  std::atomic<std::uint64_t> ok_count{0}, rejected_count{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int k = 0; k < 200 && !failed.load(); ++k) {
        const std::string response = service.handle_line(
            R"({"id":1,"op":"predict","benchmark":"triad",)"
            R"("placement":"G,G,G"})");
        const StatusOr<serve::Json> parsed = serve::Json::parse(response);
        if (!parsed.ok()) {
          ADD_FAILURE() << "malformed response: " << response;
          failed.store(true);
          return;
        }
        if (parsed->find("ok")->as_bool()) {
          ok_count.fetch_add(1);
        } else {
          const serve::Json* error = parsed->find("error");
          if (error == nullptr ||
              error->find("code")->as_string() != "RESOURCE_EXHAUSTED") {
            ADD_FAILURE() << "unexpected failure: " << response;
            failed.store(true);
            return;
          }
          rejected_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(ok_count.load() + rejected_count.load(),
            static_cast<std::uint64_t>(kThreads) * 200);
  EXPECT_GT(ok_count.load(), 0u);  // admission never deadlocks into 100% shed
  EXPECT_EQ(service.stats().rejected, rejected_count.load());
}

// The supervision story under load: a drain begins while eight clients are
// mid-hammer. Every request still gets exactly one response — ok before the
// drain, a structured UNAVAILABLE shed after — none lost, none misrouted,
// and the service settles into drained() (zero inflight) once the clients
// stop. This is the in-process half of the gpuhms_serve SIGTERM contract.
TEST(ServeSoak, DrainMidSoakLosesNoResponses) {
  serve::ServeOptions options;
  options.prediction_cache_capacity = 48;
  options.kernel_cache_capacity = 4;
  serve::PredictionService service(options);

  constexpr int kPerThread = 200;
  std::atomic<std::uint64_t> sent{0}, ok_count{0}, shed_count{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kPerThread && !failed.load(); ++k) {
        const std::uint64_t seq = sent.fetch_add(1);
        // One thread flips the drain switch mid-stream; traffic continues.
        if (seq == static_cast<std::uint64_t>(kThreads) * kPerThread / 2)
          service.begin_drain();
        const int id = t * 1000000 + k;
        const std::string response = service.handle_line(
            "{\"id\":" + std::to_string(id) +
            ",\"op\":\"predict\",\"benchmark\":\"triad\"," +
            "\"placement\":\"G,G,G\"}");
        const StatusOr<serve::Json> parsed = serve::Json::parse(response);
        if (!parsed.ok()) {
          ADD_FAILURE() << "malformed response: " << response;
          failed.store(true);
          return;
        }
        const serve::Json* rid = parsed->find("id");
        if (rid == nullptr || !rid->is_number() ||
            rid->as_number() != static_cast<double>(id)) {
          ADD_FAILURE() << "misrouted response for id " << id << ": "
                        << response;
          failed.store(true);
          return;
        }
        if (parsed->find("ok")->as_bool()) {
          ok_count.fetch_add(1);
        } else {
          const serve::Json* error = parsed->find("error");
          if (error == nullptr ||
              error->find("code")->as_string() != "UNAVAILABLE") {
            ADD_FAILURE() << "unexpected failure: " << response;
            failed.store(true);
            return;
          }
          shed_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  ASSERT_FALSE(failed.load());

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(ok_count.load() + shed_count.load(), total);
  EXPECT_GT(ok_count.load(), 0u);    // pre-drain traffic was served
  EXPECT_GT(shed_count.load(), 0u);  // the drain actually shed traffic
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(stats.responses, total);  // exactly one response per request
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.shed_draining, shed_count.load());
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_TRUE(service.drained());
  // Supervisors can still probe a draining instance.
  const std::string health = service.handle_line(R"({"op":"health"})");
  EXPECT_NE(health.find("\"status\":\"draining\""), std::string::npos)
      << health;
}

// Regression for the cache-counter snapshot race (DESIGN §14): every
// serve.cache.* total must be monotone non-decreasing across successive
// snapshots taken WHILE traffic runs. Before the sharded cache, a snapshot
// could interleave with an update and read a mix of old and new counters;
// per-counter atomic reads (and LruCache's lock) now guarantee each counter
// never appears to go backwards. Observer threads hammer both the stats()
// accessor and the metrics verb against concurrent predict traffic.
TEST(ServeSoak, MetricsTotalsMonotoneDuringSoak) {
  serve::ServeOptions options;
  options.prediction_cache_capacity = 12;  // << triad's placement count:
  options.kernel_cache_capacity = 4;       // eviction counters move too
  serve::PredictionService service(options);

  const std::vector<std::string> placements =
      legal_placement_strings("triad", 48);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kRequestsPerThread && !stop.load(); ++k) {
        service.handle_line(
            "{\"id\":" + std::to_string(t * 1000000 + k) +
            ",\"op\":\"predict\",\"benchmark\":\"triad\",\"placement\":\"" +
            placements[static_cast<std::size_t>(k * 7 + t * 3) %
                       placements.size()] +
            "\"}");
      }
    });
  }

  auto cache_monotone = [](const serve::ServeStats::CacheStats& prev,
                           const serve::ServeStats::CacheStats& now) {
    return now.hits >= prev.hits && now.misses >= prev.misses &&
           now.inserts >= prev.inserts && now.updates >= prev.updates &&
           now.evictions >= prev.evictions;
  };
  std::vector<std::thread> observers;
  for (int o = 0; o < 2; ++o) {
    observers.emplace_back([&] {
      serve::ServeStats prev;
      while (!stop.load()) {
        // Exercise the metrics verb too (same snapshot path, plus the JSON
        // dump), then compare structured snapshots for monotonicity.
        service.handle_line(R"({"op":"metrics"})");
        const serve::ServeStats now = service.stats();
        if (!cache_monotone(prev.prediction_cache, now.prediction_cache) ||
            !cache_monotone(prev.kernel_cache, now.kernel_cache) ||
            !cache_monotone(prev.idem_cache, now.idem_cache) ||
            now.requests < prev.requests || now.responses < prev.responses) {
          ADD_FAILURE() << "a serve.cache.* total went backwards between "
                           "snapshots (prediction hits "
                        << prev.prediction_cache.hits << " -> "
                        << now.prediction_cache.hits << ", misses "
                        << prev.prediction_cache.misses << " -> "
                        << now.prediction_cache.misses << ")";
          failed.store(true);
          return;
        }
        prev = now;
      }
    });
  }

  for (std::thread& c : clients) c.join();
  stop.store(true);
  for (std::thread& o : observers) o.join();
  ASSERT_FALSE(failed.load());
  const serve::ServeStats stats = service.stats();
  EXPECT_GT(stats.prediction_cache.hits + stats.prediction_cache.misses, 0u);
  EXPECT_GT(stats.prediction_cache.evictions, 0u);  // churn really happened
}

}  // namespace
}  // namespace gpuhms
