#include "workloads/workloads.hpp"

#include <set>

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace gpuhms {
namespace {

using workloads::BenchmarkCase;

std::vector<BenchmarkCase> all_cases() {
  auto v = workloads::evaluation_suite();
  auto t = workloads::training_suite();
  for (auto& c : t) v.push_back(std::move(c));
  return v;
}

TEST(Workloads, SuitesMatchTableIV) {
  const auto eval = workloads::evaluation_suite();
  std::set<std::string> names;
  for (const auto& c : eval) names.insert(c.name);
  for (const char* n : {"bfs", "fft", "neuralnet", "reduction", "scan",
                        "sort", "stencil2d", "md5hash", "s3d"}) {
    EXPECT_TRUE(names.count(n)) << n;
  }
  const auto train = workloads::training_suite();
  // 38 training placements counting each benchmark's sample (Table IV).
  std::size_t total = 0;
  for (const auto& c : train) total += c.tests.size() + 1;
  EXPECT_EQ(total, 38u);
}

TEST(Workloads, EventScreeningSuiteMatchesTableI) {
  const auto suite = workloads::event_screening_suite();
  std::set<std::string> names;
  for (const auto& c : suite) names.insert(c.name);
  EXPECT_EQ(names,
            (std::set<std::string>{"cfd", "convolution", "convolution_cols",
                                   "md", "matrixmul", "spmv", "transpose"}));
}

TEST(Workloads, AllPlacementsValidate) {
  for (const auto& c : all_cases()) {
    EXPECT_FALSE(
        validate_placement(c.kernel, c.sample, kepler_arch()).has_value())
        << c.name;
    for (const auto& t : c.tests) {
      EXPECT_FALSE(
          validate_placement(c.kernel, t.placement, kepler_arch()).has_value())
          << c.name << "/" << t.id;
      EXPECT_NE(t.placement, c.sample) << c.name << "/" << t.id;
    }
  }
}

TEST(Workloads, TestIdsUniqueAcrossSuites) {
  std::set<std::string> ids;
  for (const auto& c : all_cases()) {
    for (const auto& t : c.tests) {
      EXPECT_TRUE(ids.insert(t.id).second) << "duplicate id " << t.id;
    }
  }
}

TEST(Workloads, GetBenchmarkRoundTrips) {
  const auto c = workloads::get_benchmark("neuralnet");
  EXPECT_EQ(c.name, "neuralnet");
  EXPECT_EQ(c.tests.size(), 4u);
  EXPECT_DEATH(workloads::get_benchmark("nope"), "unknown benchmark");
}

// Every kernel must simulate cleanly under its sample placement and produce
// a sensible profile. Parameterized over the whole registry.
class EveryBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryBenchmark, SimulatesUnderSampleAndFirstTest) {
  const auto c = workloads::get_benchmark(GetParam());
  const auto r = simulate(c.kernel, c.sample);
  EXPECT_GT(r.cycles, 0u) << c.name;
  EXPECT_GT(r.counters.inst_executed, 0u);
  EXPECT_EQ(r.counters.total_warps,
            static_cast<std::uint64_t>(c.kernel.total_warps()));
  if (!c.tests.empty()) {
    const auto rt = simulate(c.kernel, c.tests.front().placement);
    EXPECT_GT(rt.cycles, 0u);
    EXPECT_NE(rt.cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryBenchmark,
    ::testing::Values("bfs", "fft", "neuralnet", "reduction", "scan", "sort",
                      "stencil2d", "md5hash", "s3d", "convolution", "md",
                      "matrixmul", "spmv", "transpose", "cfd", "triad", "qtc"),
    [](const auto& info) { return info.param; });

TEST(Workloads, KernelsAreDeterministic) {
  const auto a = workloads::make_spmv();
  const auto b = workloads::make_spmv();
  const auto ra = simulate(a, DataPlacement::defaults(a));
  const auto rb = simulate(b, DataPlacement::defaults(b));
  EXPECT_EQ(ra.cycles, rb.cycles);
}

TEST(Workloads, MatrixmulNaiveVariantIsHeavierOffChip) {
  // Without tiling, the same problem size produces far more off-chip
  // traffic than the shared-memory tiled version.
  const auto tiled = workloads::make_matrixmul(64, 16);
  const auto naive = workloads::make_matrixmul_naive(64);
  const auto rt = simulate(tiled, DataPlacement::defaults(tiled));
  const auto rn = simulate(naive, DataPlacement::defaults(naive));
  EXPECT_GT(rn.counters.global_transactions, rt.counters.global_transactions);
  EXPECT_GT(rn.counters.l2_transactions, rt.counters.l2_transactions);
}

TEST(Workloads, VecaddMatchesFig2Structure) {
  const auto k = workloads::make_vecadd(1 << 10);
  EXPECT_EQ(k.arrays.size(), 3u);
  EXPECT_TRUE(k.array("v").written);
  EXPECT_FALSE(k.array("a").written);
}

}  // namespace
}  // namespace gpuhms
