#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include "isa/addressing.hpp"

namespace gpuhms {
namespace {

KernelInfo one_load_kernel(MemSpace def = MemSpace::Global) {
  KernelInfo k;
  k.name = "oneload";
  k.num_blocks = 2;
  k.threads_per_block = 64;
  ArrayDecl x{.name = "x", .dtype = DType::F32, .elems = 4096, .width = 64,
              .shared_slice_elems = 64, .default_space = def};
  ArrayDecl y{.name = "y", .dtype = DType::F32, .elems = 4096,
              .written = true};
  k.arrays = {x, y};
  k.fn = [](WarpEmitter& em, const WarpCtx& ctx) {
    em.load(0, em.linear(ctx.warp_global_id() * kWarpSize));
    em.falu(1, true);
    em.store(1, em.linear(ctx.warp_global_id() * kWarpSize), true);
  };
  return k;
}

int count_addr_calcs(const std::vector<TraceOp>& ops) {
  int n = 0;
  for (const auto& op : ops) n += op.is_addr_calc;
  return n;
}

TEST(ActiveMask, FullAndPartial) {
  LaneIdx idx{};
  for (int l = 0; l < kWarpSize; ++l)
    idx[static_cast<std::size_t>(l)] = l < 10 ? l : kInactiveLane;
  EXPECT_EQ(active_mask_of(idx), 0x3ffu);
}

TEST(Materializer, GlobalPlacementInsertsTwoAddrInstructions) {
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(0, 1);
  ASSERT_EQ(traces.size(), 2u);
  // load x: 2 addr IALUs, falu, store y: 2 addr IALUs -> 4 total.
  EXPECT_EQ(count_addr_calcs(traces[0].ops), 4);
  EXPECT_EQ(traces[0].ops.size(), 2u + 1u + 1u + 2u + 1u);
}

// Parameterized over target spaces: addressing instruction counts in the
// lowered trace match the Sec. III-B table.
class MaterializeSpace : public ::testing::TestWithParam<MemSpace> {};

TEST_P(MaterializeSpace, AddrCalcCountsFollowTable) {
  const MemSpace space = GetParam();
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k).with(0, space);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(0, 1);
  // Staging (shared only) adds its own global addr calcs; count only the
  // body by looking after the final Sync when staging exists.
  const auto& ops = traces[0].ops;
  std::size_t body_start = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].cls == OpClass::Sync) body_start = i + 1;
  }
  int body_addr = 0;
  for (std::size_t i = body_start; i < ops.size(); ++i)
    body_addr += ops[i].is_addr_calc;
  const int expected_x = addr_calc_instructions(space, DType::F32);
  const int expected_y = addr_calc_instructions(MemSpace::Global, DType::F32);
  EXPECT_EQ(body_addr, expected_x + expected_y);
}

INSTANTIATE_TEST_SUITE_P(
    AllSpaces, MaterializeSpace,
    ::testing::Values(MemSpace::Global, MemSpace::Shared, MemSpace::Constant,
                      MemSpace::Texture1D, MemSpace::Texture2D),
    [](const auto& info) { return std::string(to_string(info.param)); });

TEST(Materializer, LoadDependsOnItsAddressCalc) {
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(0, 1);
  const auto& ops = traces[0].ops;
  ASSERT_EQ(ops[2].cls, OpClass::Load);
  EXPECT_TRUE(ops[2].uses_prev);
}

TEST(Materializer, Texture1DLoadKeepsDslDependency) {
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Texture1D);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(0, 1);
  // No addr calc for 1-D texture; the load keeps uses_prev = false.
  ASSERT_EQ(traces[0].ops[0].cls, OpClass::Load);
  EXPECT_FALSE(traces[0].ops[0].uses_prev);
}

TEST(Materializer, AddressesMatchLayout) {
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(1, 2);  // second block
  const auto& ld = traces[0].ops[2];
  ASSERT_EQ(ld.cls, OpClass::Load);
  // Block 1, warp 0 -> warp_global_id 2 -> element 64.
  EXPECT_EQ(static_cast<std::uint64_t>(ld.addr[0]),
            mat.layout().device_addr(0, 64));
  EXPECT_EQ(ld.addr[1] - ld.addr[0], 4);
}

TEST(Materializer, StagingPreambleOnlyForArraysMovedIntoShared) {
  // Default shared arrays (kernel-managed) get no staging.
  const KernelInfo k_shared_default = one_load_kernel(MemSpace::Shared);
  const TraceMaterializer mat1(
      k_shared_default, DataPlacement::defaults(k_shared_default),
      kepler_arch());
  const auto t1 = mat1.generate(0, 1);
  for (const auto& op : t1[0].ops) EXPECT_NE(op.cls, OpClass::Sync);

  // Global-by-default array moved to shared gets the copy-in + barrier.
  const KernelInfo k = one_load_kernel(MemSpace::Global);
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Shared);
  const TraceMaterializer mat2(k, p, kepler_arch());
  const auto t2 = mat2.generate(0, 1);
  bool has_sync = false, has_shared_store = false;
  for (const auto& op : t2[0].ops) {
    has_sync = has_sync || op.cls == OpClass::Sync;
    has_shared_store = has_shared_store ||
                       (op.cls == OpClass::Store && op.space == MemSpace::Shared);
  }
  EXPECT_TRUE(has_sync);
  EXPECT_TRUE(has_shared_store);
}

TEST(Materializer, StagingCoversTheWholeSlice) {
  // Slice of 64 elements split over 2 warps: each stages 32 elements.
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Shared);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(0, 1);
  for (const auto& wt : traces) {
    int staged_lanes = 0;
    for (const auto& op : wt.ops) {
      if (op.cls == OpClass::Store && op.space == MemSpace::Shared)
        staged_lanes += popcount32(op.active_mask);
    }
    EXPECT_EQ(staged_lanes, 32);
  }
}

TEST(Materializer, RejectsInvalidPlacement) {
  const KernelInfo k = one_load_kernel();
  const auto p = DataPlacement::defaults(k).with(1, MemSpace::Constant);
  EXPECT_DEATH(TraceMaterializer(k, p, kepler_arch()), "read-only");
}

TEST(Materializer, InactiveLanesGetNoAddresses) {
  KernelInfo k = one_load_kernel();
  k.fn = [](WarpEmitter& em, const WarpCtx&) {
    em.load(0, em.by_lane([](int l) {
      return l < 4 ? std::int64_t{l} : kInactiveLane;
    }));
  };
  const TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  const auto traces = mat.generate(0, 1);
  const auto& ld = traces[0].ops[2];
  EXPECT_EQ(popcount32(ld.active_mask), 4);
  EXPECT_EQ(ld.addr[10], -1);
}

}  // namespace
}  // namespace gpuhms
