// The concurrency battery for the sharded epoch-reclaimed cache (DESIGN
// §14): epoch-reclamation unit tests (no reclaim while a reader holds an
// epoch; deferred frees drain after quiescence), a single-threaded
// differential test against the reference LruCache, linearizability-style
// randomized concurrent schedules (every observed value was inserted for
// exactly that key; the capacity bound holds at every observation point), a
// 16-thread mixed-verb soak (CacheSoak.*, also registered under `ctest -L
// soak`), and the serve-layer contract: responses are byte-identical across
// cache backends. The whole file also compiles into the ThreadSanitizer
// binary (tests/CMakeLists.txt), where the epoch protocol's happens-before
// edges are checked for real.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "arch/arch_registry.hpp"
#include "common/concurrent_cache.hpp"
#include "common/epoch.hpp"
#include "common/lru_cache.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"

namespace gpuhms {
namespace {

// TSan costs ~10x; shrink the randomized schedules there, same shapes.
#if defined(__SANITIZE_THREAD__)
constexpr int kSoakOpsPerThread = 2500;
constexpr int kScheduleOps = 4000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kSoakOpsPerThread = 2500;
constexpr int kScheduleOps = 4000;
#else
constexpr int kSoakOpsPerThread = 20000;
constexpr int kScheduleOps = 20000;
#endif
#else
constexpr int kSoakOpsPerThread = 20000;
constexpr int kScheduleOps = 20000;
#endif

// --- epoch reclamation -------------------------------------------------------

void count_free(void* p) {
  static_cast<std::atomic<int>*>(p)->fetch_add(1, std::memory_order_relaxed);
}

TEST(Epoch, NoReclaimWhileReaderHoldsAnEpoch) {
  epoch::Domain domain;
  std::atomic<int> freed{0};
  {
    epoch::Domain::Guard guard = domain.pin();
    domain.retire(&freed, count_free);
    EXPECT_EQ(domain.limbo_size(), 1u);
    // However hard the collector tries, a node retired while this guard is
    // pinned must not be freed: the guard caps the global epoch at pin + 1
    // and the node needs its tag + 3.
    for (int i = 0; i < 10; ++i) domain.collect();
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(domain.limbo_size(), 1u);
  }
  // Quiescent: three collects are always enough (one advance each).
  domain.collect();
  domain.collect();
  domain.collect();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(domain.limbo_size(), 0u);
}

TEST(Epoch, DeferredFreesDrainAfterQuiescence) {
  epoch::Domain domain;
  std::atomic<int> freed{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) domain.retire(&freed, count_free);
    { epoch::Domain::Guard guard = domain.pin(); }  // pin/unpin churn
    domain.collect();
    domain.collect();
    domain.collect();
    EXPECT_EQ(freed.load(), (round + 1) * 100);
    EXPECT_EQ(domain.limbo_size(), 0u);
  }
}

TEST(Epoch, ReaderPinnedAtRetireTimeBlocksOnlyItsGeneration) {
  epoch::Domain domain;
  std::atomic<int> freed_old{0}, freed_new{0};
  // Retire A with no reader; advance until A is one epoch from freeable.
  domain.retire(&freed_old, count_free);
  domain.collect();  // advance once
  domain.collect();  // advance twice; A one epoch from freeable
  {
    epoch::Domain::Guard guard = domain.pin();  // pinned at current epoch
    domain.retire(&freed_new, count_free);      // B retired under the pin
    // A predates the pin by two full epochs: the advance chain that let
    // the epoch get here already published A's unlink to this reader, so
    // the collector may free A (the pin allows one advance, to pin + 1)...
    domain.collect();
    EXPECT_EQ(freed_old.load(), 1);
    // ...but B, retired at (or just after) the pinned epoch, must survive:
    // the guard caps the global epoch at pin + 1 and B needs pin + 3.
    for (int i = 0; i < 5; ++i) domain.collect();
    EXPECT_EQ(freed_new.load(), 0);
  }
  domain.collect();
  domain.collect();
  domain.collect();
  EXPECT_EQ(freed_new.load(), 1);
}

TEST(Epoch, DestructorDrainsLimbo) {
  std::atomic<int> freed{0};
  {
    epoch::Domain domain;
    for (int i = 0; i < 7; ++i) domain.retire(&freed, count_free);
  }
  EXPECT_EQ(freed.load(), 7);
}

// --- sharding policy ---------------------------------------------------------

TEST(ConcurrentCache, ShardPolicyKeepsPerShardCapacityMeaningful) {
  EXPECT_EQ(concurrent_cache_shards(0), 1u);
  EXPECT_EQ(concurrent_cache_shards(1), 1u);
  EXPECT_EQ(concurrent_cache_shards(15), 1u);
  EXPECT_EQ(concurrent_cache_shards(16), 2u);
  EXPECT_EQ(concurrent_cache_shards(64), 8u);
  EXPECT_EQ(concurrent_cache_shards(128), 16u);
  EXPECT_EQ(concurrent_cache_shards(4096), 16u);

  // Per-shard capacities partition the global bound exactly.
  for (const std::size_t cap : {1u, 7u, 16u, 48u, 100u, 4096u}) {
    ConcurrentCache<int, int> cache(cap);
    std::size_t sum = 0;
    for (std::size_t s = 0; s < cache.num_shards(); ++s)
      sum += cache.shard_capacity(s);
    EXPECT_EQ(sum, cap) << "capacity " << cap;
  }
}

TEST(ConcurrentCache, CapacityZeroDisablesCaching) {
  ConcurrentCache<std::string, int> cache(0);
  cache.put("a", 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), std::nullopt);
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// --- single-threaded differential vs the LruCache reference ------------------

// Below capacity the two designs must be indistinguishable: no evictions
// ever fire, so CLOCK-vs-LRU cannot diverge and every counter matches.
TEST(ConcurrentCache, MatchesLruReferenceModelWhileUnderCapacity) {
  std::mt19937 rng(20260809);
  ConcurrentCache<int, int> cache(128);
  LruCache<int, int> ref(128);
  std::uniform_int_distribution<int> key(0, 63);  // keys << capacity
  for (int step = 0; step < 10000; ++step) {
    const int k = key(rng);
    if (rng() % 2 == 0) {
      EXPECT_EQ(cache.get(k), ref.get(k)) << "step " << step;
    } else {
      const int v = static_cast<int>(rng() % 1000);
      cache.put(k, v);
      ref.put(k, v);
    }
    ASSERT_LE(cache.size(), 128u);
  }
  const CacheCounters a = cache.stats();
  const LruCache<int, int>::Stats b = ref.stats();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.evictions, 0u);
  EXPECT_EQ(b.evictions, 0u);
  EXPECT_EQ(cache.size(), ref.size());
}

// With evictions the eviction *choice* may differ (CLOCK approximates LRU)
// but the semantics may not: a single-threaded observer must read exactly
// the last value it put for a key (or a miss), the capacity bound holds at
// every step, and the stats identity inserts - evictions == size survives.
TEST(ConcurrentCache, EvictionsPreserveSemanticsAndCapacityBound) {
  std::mt19937 rng(7);
  constexpr std::size_t kCap = 32;
  ConcurrentCache<int, std::string> cache(kCap);
  std::vector<std::optional<std::string>> last_put(128);
  std::uint64_t gets = 0, hits = 0;
  for (int step = 0; step < 20000; ++step) {
    const int k = static_cast<int>(rng() % 128);
    if (rng() % 2 == 0) {
      ++gets;
      const std::optional<std::string> got = cache.get(k);
      if (got.has_value()) {
        ++hits;
        ASSERT_TRUE(last_put[static_cast<std::size_t>(k)].has_value());
        // Never a stale, torn, or cross-key value.
        ASSERT_EQ(*got, *last_put[static_cast<std::size_t>(k)])
            << "step " << step;
      }
    } else {
      const std::string v =
          std::to_string(k) + ":" + std::to_string(rng() % 1000);
      cache.put(k, v);
      last_put[static_cast<std::size_t>(k)] = v;
    }
    ASSERT_LE(cache.size(), kCap);
  }
  const CacheCounters s = cache.stats();
  EXPECT_EQ(s.hits, hits);
  EXPECT_EQ(s.misses, gets - hits);
  EXPECT_GT(s.evictions, 0u);  // the schedule really churned
  EXPECT_EQ(s.inserts - s.evictions, cache.size());
}

// A key that keeps getting touched survives eviction pressure: the CLOCK
// reference bit is the second chance that approximates LRU recency.
TEST(ConcurrentCache, ClockGivesHotKeysASecondChance) {
  ConcurrentCache<int, int> cache(7);  // single shard (policy floor is 8)
  ASSERT_EQ(cache.num_shards(), 1u);
  for (int k = 0; k < 7; ++k) cache.put(k, k);
  // Prime the clock: the very first eviction sweep finds every reference
  // bit set (fresh inserts), clears them all, and evicts by hand position —
  // the one sweep where recency cannot protect anything. Sacrifice a key to
  // it, then make sure the hot key is (re)inserted with its bit set.
  cache.put(100, 100);
  cache.put(0, 0);
  for (int k = 7; k < 40; ++k) {
    // From here on, touching key 0 before every eviction keeps its bit set,
    // and each sweep always finds some other node with a clear bit first.
    ASSERT_EQ(cache.get(0), 0) << "hot key evicted at k=" << k;
    cache.put(k, k);  // forces one eviction per put
  }
  EXPECT_EQ(cache.get(0), 0);
  EXPECT_GT(cache.stats().evictions, 30u);
}

// --- randomized concurrent schedules (linearizability-style) -----------------

// Value encoding for concurrent runs: thread t writes key*kThreads + t.
// Any observed value must decode back to the key it was read under and a
// real thread id — i.e. it was genuinely inserted for that key at some
// point (no torn values, no cross-key leakage, no resurrection of freed
// memory — ASan/TSan turn the latter into hard failures).
constexpr int kSchedThreads = 8;

TEST(ConcurrentCache, RandomConcurrentSchedulesKeepInvariants) {
  for (const unsigned seed : {1u, 2u, 3u}) {
    constexpr std::size_t kCap = 64;
    ConcurrentCache<int, std::string> cache(kCap);
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(kSchedThreads);
    for (int t = 0; t < kSchedThreads; ++t) {
      threads.emplace_back([&cache, &failed, t, seed, kCap] {
        std::mt19937 rng(seed * 1000 + static_cast<unsigned>(t));
        const int ops = kScheduleOps / kSchedThreads;
        for (int i = 0; i < ops && !failed.load(); ++i) {
          const int k = static_cast<int>(rng() % 96);
          if (rng() % 100 < 60) {
            const std::optional<std::string> got = cache.get(k);
            if (got.has_value()) {
              const std::size_t colon = got->find(':');
              if (colon == std::string::npos ||
                  got->substr(0, colon) != std::to_string(k) ||
                  std::stoi(got->substr(colon + 1)) >= kSchedThreads) {
                ADD_FAILURE() << "corrupt value for key " << k << ": "
                              << *got;
                failed.store(true);
                return;
              }
            }
          } else {
            cache.put(k, std::to_string(k) + ":" + std::to_string(t));
          }
          // The capacity bound holds at every observation point.
          const std::size_t size = cache.size();
          if (size > kCap) {
            ADD_FAILURE() << "capacity bound broken: " << size << " > "
                          << kCap;
            failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    ASSERT_FALSE(failed.load()) << "seed " << seed;

    const CacheCounters s = cache.stats();
    EXPECT_EQ(s.inserts - s.evictions, cache.size()) << "seed " << seed;
    EXPECT_GT(s.hits, 0u);
    // Quiescent drain: everything retired during the run frees within
    // three collects once no reader is pinned.
    cache.epoch_domain().collect();
    cache.epoch_domain().collect();
    cache.epoch_domain().collect();
    EXPECT_EQ(cache.epoch_domain().limbo_size(), 0u) << "seed " << seed;
  }
}

// --- 16-thread mixed-verb soak (ctest -L soak via CacheSoak.*) ---------------

TEST(CacheSoak, SixteenThreadsMixedVerbs) {
  constexpr int kThreads = 16;
  constexpr std::size_t kCap = 256;
  ConcurrentCache<int, std::string> cache(kCap);
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(9000 + t));
      CacheCounters last{};  // per-thread monotonicity of the shared counters
      for (int i = 0; i < kSoakOpsPerThread && !failed.load(); ++i) {
        const int verb = static_cast<int>(rng() % 100);
        const int k = static_cast<int>(rng() % 512);
        if (verb < 65) {
          const std::optional<std::string> got = cache.get(k);
          if (got.has_value()) {
            observed_hits.fetch_add(1, std::memory_order_relaxed);
            const std::size_t colon = got->find(':');
            if (colon == std::string::npos ||
                got->substr(0, colon) != std::to_string(k)) {
              ADD_FAILURE() << "corrupt value for key " << k << ": " << *got;
              failed.store(true);
              return;
            }
          }
        } else if (verb < 92) {
          cache.put(k, std::to_string(k) + ":" + std::to_string(t));
        } else {
          // Observer verbs: the capacity bound and counter monotonicity
          // must hold mid-flight, not just at quiescence.
          const std::size_t size = cache.size();
          const CacheCounters now = cache.stats();
          if (size > kCap || now.hits < last.hits ||
              now.misses < last.misses || now.inserts < last.inserts ||
              now.updates < last.updates || now.evictions < last.evictions) {
            ADD_FAILURE() << "snapshot went backwards or over-bound "
                          << "(size " << size << "/" << kCap << ")";
            failed.store(true);
            return;
          }
          last = now;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_FALSE(failed.load());
  EXPECT_GT(observed_hits.load(), 0u);
  const CacheCounters s = cache.stats();
  EXPECT_EQ(s.inserts - s.evictions, cache.size());
  EXPECT_GT(s.evictions, 0u);  // 512 keys over 256 slots: churn happened
  cache.epoch_domain().collect();
  cache.epoch_domain().collect();
  cache.epoch_domain().collect();
  EXPECT_EQ(cache.epoch_domain().limbo_size(), 0u);
}

// --- serve contract: byte-identical responses across backends ----------------

std::vector<std::string> mixed_request_lines() {
  std::vector<std::string> lines;
  int id = 0;
  for (const char* bench : {"triad", "spmv"}) {
    for (const char* placement : {"G,G,G", "T,G,G", "G,S,G"}) {
      for (int rep = 0; rep < 2; ++rep)
        lines.push_back("{\"id\":" + std::to_string(id++) +
                        ",\"op\":\"predict\",\"benchmark\":\"" +
                        std::string(bench) + "\",\"placement\":\"" +
                        placement + "\"}");
    }
    lines.push_back("{\"id\":" + std::to_string(id++) +
                    ",\"op\":\"predict_batch\",\"benchmark\":\"" +
                    std::string(bench) +
                    "\",\"placements\":[\"G,G,G\",\"T,G,G\"]}");
    lines.push_back("{\"id\":" + std::to_string(id++) +
                    ",\"op\":\"search\",\"benchmark\":\"" +
                    std::string(bench) +
                    "\",\"algo\":\"exhaustive\",\"cap\":16}");
  }
  return lines;
}

TEST(ConcurrentCacheServe, ResponsesByteIdenticalAcrossBackends) {
  const std::vector<std::string> lines = mixed_request_lines();
  auto run = [&lines](CacheBackend backend) {
    serve::ServeOptions options;
    options.cache_backend = backend;
    options.prediction_cache_capacity = 8;  // tiny: force eviction traffic
    serve::PredictionService service(options);
    std::vector<std::string> cold = service.handle_pipeline(lines);
    std::vector<std::string> warm = service.handle_pipeline(lines);
    EXPECT_EQ(cold, warm) << "warm hits changed bytes under "
                          << to_string(backend);
    return cold;
  };
  const std::vector<std::string> sharded = run(CacheBackend::kSharded);
  const std::vector<std::string> legacy = run(CacheBackend::kLegacyLru);
  ASSERT_EQ(sharded.size(), legacy.size());
  for (std::size_t i = 0; i < sharded.size(); ++i)
    EXPECT_EQ(sharded[i], legacy[i]) << "line " << i;
}

// --- cross-arch fingerprints and arch-tagged concurrency ---------------------

// Prediction-cache keys embed fingerprint(arch); two backends (or two
// variants of one backend) colliding there would silently serve one arch's
// cycles for another. Every registered backend must digest distinctly, and
// the digest must cover the address map — two archs differing ONLY in
// addr_map are different machines to the DRAM model.
TEST(ConcurrentCacheServe, CrossArchFingerprintsNeverAlias) {
  std::vector<std::pair<std::string, std::uint64_t>> digests;
  for (const std::string& name : ArchRegistry::builtin().names()) {
    digests.emplace_back(
        name, serve::fingerprint(ArchRegistry::builtin().find(name)->arch));
  }
  for (std::size_t i = 0; i < digests.size(); ++i)
    for (std::size_t j = i + 1; j < digests.size(); ++j)
      EXPECT_NE(digests[i].second, digests[j].second)
          << digests[i].first << " vs " << digests[j].first;

  const GpuArch& base = kepler_arch();
  // Same SMs, latencies, DRAM timing — only the bit roles move.
  GpuArch swizzled = base;
  swizzled.addr_map.bank_xor_bits = {18, 19, 20, 21, 22, 23, 24};
  ASSERT_TRUE(validate(swizzled).ok());
  EXPECT_NE(serve::fingerprint(swizzled), serve::fingerprint(base));

  GpuArch swapped = base;
  std::swap(swapped.addr_map.column_bits.front(),
            swapped.addr_map.row_bits.front());
  ASSERT_TRUE(validate(swapped).ok());
  EXPECT_NE(serve::fingerprint(swapped), serve::fingerprint(base));

  // Same positions, different role order: extract_bits is order-sensitive,
  // so the digest must be too.
  GpuArch reordered = base;
  std::reverse(reordered.addr_map.bank_bits.begin(),
               reordered.addr_map.bank_bits.end());
  ASSERT_TRUE(validate(reordered).ok());
  EXPECT_NE(serve::fingerprint(reordered), serve::fingerprint(base));
}

// Concurrent clients mixing arch-tagged and untagged requests against ONE
// service must each read exactly the bytes the quiet sequential service
// produces — per-arch kernel entries and cache keys may never bleed across
// threads. Runs under both cache backends (and inside the TSan binary).
TEST(ConcurrentCacheServe, ConcurrentArchTaggedRequestsAreByteIdentical) {
  std::vector<std::string> lines;
  for (const char* arch : {"", "kepler", "maxwell", "hbm2"}) {
    for (const char* placement : {"G,G,G", "T,G,G", "G,S,G"}) {
      std::string line = "{\"id\":0,\"op\":\"predict\",\"benchmark\":"
                         "\"triad\",\"placement\":\"" +
                         std::string(placement) + "\"";
      if (arch[0] != '\0') line += ",\"arch\":\"" + std::string(arch) + "\"";
      line += "}";
      lines.push_back(std::move(line));
    }
  }
  for (const CacheBackend backend :
       {CacheBackend::kSharded, CacheBackend::kLegacyLru}) {
    serve::ServeOptions options;
    options.cache_backend = backend;
    std::vector<std::string> expected;
    {
      serve::PredictionService reference{options};
      for (const std::string& line : lines)
        expected.push_back(reference.handle_line(line));
    }
    serve::PredictionService service{options};
    constexpr int kThreads = 8;
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int rep = 0; rep < 3 && !failed.load(); ++rep) {
          for (std::size_t i = 0; i < lines.size(); ++i) {
            // Each thread walks the lines at its own rotation, so builds
            // of different (benchmark, arch) entries race for real.
            const std::size_t at = (i + static_cast<std::size_t>(t)) %
                                   lines.size();
            const std::string got = service.handle_line(lines[at]);
            if (got != expected[at]) {
              ADD_FAILURE() << "thread " << t << " line " << at
                            << " diverged:\n got: " << got
                            << "\nwant: " << expected[at];
              failed.store(true);
              return;
            }
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    ASSERT_FALSE(failed.load()) << to_string(backend);
  }
}

TEST(ConcurrentCacheServe, EnvEscapeHatchSelectsLegacyBackend) {
  {
    testutil::ScopedEnv env("GPUHMS_LEGACY_CACHE", "1");
    EXPECT_EQ(cache_backend_from_env(), CacheBackend::kLegacyLru);
    serve::ServeOptions options;  // default member init reads the env
    serve::PredictionService service(options);
    EXPECT_EQ(service.stats().cache_backend, "legacy_lru");
  }
  {
    testutil::ScopedEnv env("GPUHMS_LEGACY_CACHE", "0");
    EXPECT_EQ(cache_backend_from_env(), CacheBackend::kSharded);
  }
  {
    testutil::ScopedEnv env("GPUHMS_LEGACY_CACHE", nullptr);
    EXPECT_EQ(cache_backend_from_env(), CacheBackend::kSharded);
  }
}

}  // namespace
}  // namespace gpuhms
