// Unit tests for the observability layer (common/obs.hpp): metric
// primitives, registry, snapshot rendering, scoped phase timers, and the
// Chrome trace exporter.
//
// The registry is process-wide, so every test that records first calls
// obs::set_enabled(true) + obs::reset_all_metrics() and uses test-local
// metric names ("test.obs.*") that no library code touches.
#include "common/obs.hpp"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gpuhms {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_all_metrics();
  }
  void TearDown() override {
    obs::stop_tracing();
    obs::set_enabled(false);
    obs::reset_all_metrics();
  }
};

TEST_F(ObsTest, CounterAccumulates) {
  obs::Counter& c = obs::counter("test.obs.counter_basic");
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterSumsAcrossThreads) {
  // Each thread lands on its own shard (or shares one); the total must be
  // exact regardless of the shard assignment.
  obs::Counter& c = obs::counter("test.obs.counter_mt");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsTest, GaugeLastWriterWins) {
  obs::Gauge& g = obs::gauge("test.obs.gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST_F(ObsTest, HistogramLog2Buckets) {
  obs::Histogram& h = obs::histogram("test.obs.hist_buckets");
  // bucket 0: v == 0; bucket i>0: v in [2^(i-1), 2^i).
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1u);  // {1}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket_count(11), 1u);  // {1024}
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 1030.0 / 5.0);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(obs::Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_lo(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_lo(3), 4u);
  EXPECT_EQ(obs::Histogram::bucket_lo(64), 1ull << 63);
  // Extremes land in the outermost buckets.
  obs::Histogram& h = obs::histogram("test.obs.hist_extremes");
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(64), 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST_F(ObsTest, HistogramExactUnderConcurrency) {
  obs::Histogram& h = obs::histogram("test.obs.hist_mt");
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i)
        h.record(static_cast<std::uint64_t>(t) + 1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 8u);
  std::uint64_t expect_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    expect_sum += static_cast<std::uint64_t>(t + 1) * kRecords;
  EXPECT_EQ(h.sum(), expect_sum);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.obs.stable");
  obs::Counter& b = obs::counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  // Registering more metrics must not move existing ones.
  for (int i = 0; i < 100; ++i)
    obs::counter("test.obs.stable_filler_" + std::to_string(i));
  EXPECT_EQ(&obs::counter("test.obs.stable"), &a);
}

TEST_F(ObsTest, MacrosRespectEnableToggle) {
  obs::set_enabled(false);
  GPUHMS_COUNTER_ADD("test.obs.toggled", 5);
  obs::set_enabled(true);
  EXPECT_EQ(obs::counter("test.obs.toggled").value(), 0u);
  GPUHMS_COUNTER_ADD("test.obs.toggled", 5);
  EXPECT_EQ(obs::counter("test.obs.toggled").value(), 5u);
}

TEST_F(ObsTest, SnapshotSortedAndSearchable) {
  GPUHMS_COUNTER_ADD("test.obs.snap_b", 2);
  GPUHMS_COUNTER_ADD("test.obs.snap_a", 1);
  GPUHMS_GAUGE_SET("test.obs.snap_gauge", -3);
  GPUHMS_HISTOGRAM_RECORD("test.obs.snap_hist", 9);
  const obs::MetricsSnapshot s = obs::snapshot();
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].name, s.counters[i].name);
  const auto* ca = s.find_counter("test.obs.snap_a");
  const auto* cb = s.find_counter("test.obs.snap_b");
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(ca->value, 1u);
  EXPECT_EQ(cb->value, 2u);
  const auto* g = s.find_gauge("test.obs.snap_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -3);
  const auto* h = s.find_histogram("test.obs.snap_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 9u);
  ASSERT_EQ(h->buckets.size(), 1u);
  EXPECT_EQ(h->buckets[0].first, 8u);   // bucket_lo for 9
  EXPECT_EQ(h->buckets[0].second, 1u);
  EXPECT_EQ(s.find_counter("test.obs.does_not_exist"), nullptr);
}

TEST_F(ObsTest, SnapshotRenderingsAreStable) {
  GPUHMS_COUNTER_ADD("test.obs.render", 7);
  GPUHMS_HISTOGRAM_RECORD("test.obs.render_hist", 100);
  const obs::MetricsSnapshot s = obs::snapshot();
  const std::string text = s.to_text();
  EXPECT_NE(text.find("test.obs.render"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"test.obs.render\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Two snapshots of the same state render identically.
  EXPECT_EQ(json, obs::snapshot().to_json());
  EXPECT_EQ(text, obs::snapshot().to_text());
}

TEST_F(ObsTest, JsonSurvivesLargeHistogramValues) {
  // Regression: nanosecond-scale sums once overflowed a fixed-size format
  // buffer and truncated the histogram JSON mid-object.
  obs::Histogram& h = obs::histogram("test.obs.big_hist");
  h.record(2685847440ull);
  h.record(99827779ull);
  const std::string json = obs::snapshot().to_json();
  EXPECT_NE(json.find("\"sum\": 2785675219"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [["), std::string::npos);
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTest, ResetAllZeroesButKeepsRegistrations) {
  GPUHMS_COUNTER_ADD("test.obs.reset_me", 9);
  obs::reset_all_metrics();
  const obs::MetricsSnapshot s = obs::snapshot();
  const auto* c = s.find_counter("test.obs.reset_me");
  ASSERT_NE(c, nullptr);  // still registered
  EXPECT_EQ(c->value, 0u);
}

TEST_F(ObsTest, ScopedPhaseRecordsDuration) {
  obs::Histogram& h = obs::histogram("test.obs.phase_ns");
  {
    obs::ScopedPhase p(h, "test.obs.phase_ns");
    // Burn a little time so the duration is nonzero even on coarse clocks.
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
    (void)sink;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0u);
}

TEST_F(ObsTest, ScopedPhaseInactiveWhenDisabled) {
  obs::set_enabled(false);
  obs::Histogram& h = obs::histogram("test.obs.phase_off_ns");
  {
    obs::ScopedPhase p(h, "test.obs.phase_off_ns");
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsTest, TraceCollectsScopedPhases) {
  obs::start_tracing();
  {
    GPUHMS_SCOPED_PHASE("test.obs.trace_phase");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
    (void)sink;
  }
  obs::trace_emit("test.obs.manual_event", obs::now_ns(), 1000);
  obs::stop_tracing();
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.trace_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.manual_event\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Events survive from multiple threads.
  obs::start_tracing();
  std::thread t([] { obs::trace_emit("test.obs.thread_event",
                                     obs::now_ns(), 10); });
  t.join();
  obs::stop_tracing();
  EXPECT_NE(obs::chrome_trace_json().find("test.obs.thread_event"),
            std::string::npos);
}

TEST_F(ObsTest, StartTracingClearsPriorEvents) {
  obs::start_tracing();
  obs::trace_emit("test.obs.old_event", obs::now_ns(), 5);
  obs::start_tracing();  // restart: old events must vanish
  obs::trace_emit("test.obs.new_event", obs::now_ns(), 5);
  obs::stop_tracing();
  const std::string json = obs::chrome_trace_json();
  EXPECT_EQ(json.find("test.obs.old_event"), std::string::npos);
  EXPECT_NE(json.find("test.obs.new_event"), std::string::npos);
}

TEST_F(ObsTest, WriteChromeTraceProducesLoadableFile) {
  obs::start_tracing();
  obs::trace_emit("test.obs.file_event", obs::now_ns(), 1234);
  obs::stop_tracing();
  const std::string path =
      ::testing::TempDir() + "/gpuhms_test_trace.json";
  const Status st = obs::write_chrome_trace(path);
  ASSERT_TRUE(st.ok()) << st.to_string();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, obs::chrome_trace_json());
  EXPECT_EQ(content.front(), '{');
  EXPECT_EQ(content.back(), '\n');
  EXPECT_NE(content.find("test.obs.file_event"), std::string::npos);
}

TEST_F(ObsTest, WriteChromeTraceReportsUnwritablePath) {
  const Status st =
      obs::write_chrome_trace("/nonexistent-dir/definitely/not/here.json");
  EXPECT_FALSE(st.ok());
}

TEST(ObsEnv, ScopedEnvRestoresState) {
  // Meta-test for the shared guard: set, nest, unset, restore.
  ASSERT_EQ(std::getenv("GPUHMS_TEST_DUMMY"), nullptr);
  {
    testutil::ScopedEnv outer("GPUHMS_TEST_DUMMY", "outer");
    EXPECT_STREQ(std::getenv("GPUHMS_TEST_DUMMY"), "outer");
    {
      testutil::ScopedEnv inner("GPUHMS_TEST_DUMMY", nullptr);
      EXPECT_EQ(std::getenv("GPUHMS_TEST_DUMMY"), nullptr);
    }
    EXPECT_STREQ(std::getenv("GPUHMS_TEST_DUMMY"), "outer");
  }
  EXPECT_EQ(std::getenv("GPUHMS_TEST_DUMMY"), nullptr);
}

}  // namespace
}  // namespace gpuhms
