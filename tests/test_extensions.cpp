// Tests for the extension features: GTO scheduling, closed-page DRAM,
// the Fermi preset, and the report generator.
#include <sstream>

#include <gtest/gtest.h>

#include "tools/addrmap_detector.hpp"
#include "tools/report.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

TEST(GtoScheduler, RunsToCompletionWithSameWork) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto p = DataPlacement::defaults(k);
  GpuSimulator rr(kepler_arch(), SimOptions{});
  GpuSimulator gto(kepler_arch(),
                   SimOptions{.scheduler = WarpScheduler::Gto});
  const auto r1 = rr.run(k, p);
  const auto r2 = gto.run(k, p);
  // Work counters are schedule-invariant; timing may differ.
  EXPECT_EQ(r1.counters.inst_executed, r2.counters.inst_executed);
  EXPECT_EQ(r1.counters.global_transactions, r2.counters.global_transactions);
  EXPECT_GT(r2.cycles, 0u);
}

TEST(GtoScheduler, ChangesTimingOnRealKernels) {
  // The two disciplines interleave memory traffic differently; on a
  // row-buffer-sensitive kernel the times should not coincide.
  const auto c = workloads::get_benchmark("md");
  GpuSimulator rr(kepler_arch(), SimOptions{});
  GpuSimulator gto(kepler_arch(),
                   SimOptions{.scheduler = WarpScheduler::Gto});
  EXPECT_NE(rr.run(c.kernel, c.sample).cycles,
            gto.run(c.kernel, c.sample).cycles);
}

TEST(GtoScheduler, BarrierKernelsDoNotDeadlock) {
  const auto c = workloads::get_benchmark("fft");  // barrier-heavy
  GpuSimulator gto(kepler_arch(),
                   SimOptions{.scheduler = WarpScheduler::Gto});
  EXPECT_GT(gto.run(c.kernel, c.sample).cycles, 0u);
}

TEST(ClosedPage, EveryAccessPaysActivation) {
  GpuArch arch = kepler_arch();
  arch.dram.page_policy = PagePolicy::Closed;
  GddrSystem g(arch, kepler_mapping(arch));
  const std::uint64_t a = 0x100000;
  g.access(a, 0);
  // Same row, long after: open-page would hit; closed-page misses again.
  const std::uint64_t t = 1 << 20;
  const std::uint64_t done = g.access(a ^ (1ull << 14), t);
  EXPECT_EQ(done - t, arch.unloaded_row_miss());
  EXPECT_EQ(g.stats().row_hits(), 0u);
  EXPECT_EQ(g.stats().row_conflicts(), 0u);
  EXPECT_EQ(g.stats().row_misses(), 2u);
}

TEST(ClosedPage, DetectorSeesTwoLatencyLevels) {
  // Under closed-page there are no hit/conflict levels beyond the
  // intra-transaction bits (same-transaction probes still return the
  // row-miss latency): the "conflict" group collapses into the miss level.
  GpuArch arch = kepler_arch();
  arch.dram.page_policy = PagePolicy::Closed;
  AddressMapDetector det(arch, kepler_mapping(arch));
  const auto r = det.run();
  EXPECT_EQ(r.hit_latency, r.conflict_latency);  // single level
  EXPECT_TRUE(r.row_bits.empty());
}

TEST(ClosedPage, AnalysisAgreesWithSubstrate) {
  GpuArch arch = kepler_arch();
  arch.dram.page_policy = PagePolicy::Closed;
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto p = DataPlacement::defaults(k);
  const auto sim = simulate(k, p, arch);
  const auto ev = analyze_trace(k, p, arch);
  EXPECT_EQ(sim.dram.row_hits(), 0u);
  EXPECT_EQ(ev.row_hits, 0u);
  EXPECT_EQ(ev.row_conflicts, 0u);
  EXPECT_EQ(ev.row_misses, ev.dram_requests);
}

TEST(FermiPreset, DistinctAndConsistent) {
  const GpuArch& f = fermi_arch();
  const GpuArch& k = kepler_arch();
  EXPECT_NE(f.num_sms, k.num_sms);
  EXPECT_LT(f.l2_capacity, k.l2_capacity);
  EXPECT_LT(f.unloaded_row_hit(), f.unloaded_row_miss());
  EXPECT_LT(f.unloaded_row_miss(), f.unloaded_row_conflict());
  EXPECT_EQ(f.l2_capacity % (f.cache_line * f.l2_ways), 0u);
}

TEST(FermiPreset, FullPipelineWorks) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto sample = DataPlacement::defaults(k);
  Predictor pred(k, fermi_arch());
  pred.profile_sample(sample);
  const auto p = pred.predict(sample.with(0, MemSpace::Texture1D));
  EXPECT_GT(p.total_cycles, 0.0);
}

TEST(Report, ContainsExpectedSections) {
  const KernelInfo k = workloads::make_stencil2d(128, 64);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  std::stringstream ss;
  ReportOptions opts;
  opts.validate_top_choice = false;
  write_placement_report(ss, pred, opts);
  const std::string r = ss.str();
  EXPECT_NE(r.find("# Placement report: stencil2d"), std::string::npos);
  EXPECT_NE(r.find("## Arrays"), std::string::npos);
  EXPECT_NE(r.find("## Profiled sample placement"), std::string::npos);
  EXPECT_NE(r.find("## Ranked placements"), std::string::npos);
  EXPECT_NE(r.find("## Recommendation"), std::string::npos);
  EXPECT_NE(r.find("| data |"), std::string::npos);
}

TEST(Report, ValidationRunIncludedWhenRequested) {
  const KernelInfo k = workloads::make_transpose(96);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  std::stringstream ss;
  write_placement_report(ss, pred);
  EXPECT_NE(ss.str().find("Validation run:"), std::string::npos);
  EXPECT_NE(ss.str().find("predicted/measured"), std::string::npos);
}

TEST(Report, RespectsRowCap) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  std::stringstream ss;
  ReportOptions opts;
  opts.table_rows = 3;
  opts.validate_top_choice = false;
  write_placement_report(ss, pred, opts);
  // Ranking table has exactly 3 data rows: "| 1 |", "| 2 |", "| 3 |".
  EXPECT_NE(ss.str().find("| 3 | `"), std::string::npos);
  EXPECT_EQ(ss.str().find("| 4 | `"), std::string::npos);
}

}  // namespace
}  // namespace gpuhms
