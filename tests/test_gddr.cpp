#include "dram/gddr.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

GddrSystem fresh(bool record = false) {
  return GddrSystem(kepler_arch(), kepler_mapping(kepler_arch()), record);
}

TEST(Gddr, ColdAccessIsRowMissAtUnloadedLatency) {
  auto g = fresh();
  const std::uint64_t done = g.access(0x100000, 1000);
  EXPECT_EQ(done - 1000, kepler_arch().unloaded_row_miss());
  EXPECT_EQ(g.stats().row_misses(), 1u);
}

TEST(Gddr, RowHitAfterOpen) {
  auto g = fresh();
  g.access(0x100000, 0);
  // Same row (flip a column bit), long after the bank is idle.
  const std::uint64_t t = 1 << 20;
  const std::uint64_t done = g.access(0x100000 ^ (1ull << 14), t);
  EXPECT_EQ(done - t, kepler_arch().unloaded_row_hit());
  EXPECT_EQ(g.stats().row_hits(), 1u);
}

TEST(Gddr, RowConflictOnDifferentRowSameBank) {
  auto g = fresh();
  g.access(0x100000, 0);
  const std::uint64_t t = 1 << 20;
  const std::uint64_t done = g.access(0x100000 ^ (1ull << 20), t);
  EXPECT_EQ(done - t, kepler_arch().unloaded_row_conflict());
  EXPECT_EQ(g.stats().row_conflicts(), 1u);
}

TEST(Gddr, QueueingDelaysBackToBackRequestsToOneBank) {
  auto g = fresh();
  // Two simultaneous requests to the same bank, same row: the second waits
  // for the first's service.
  const std::uint64_t d1 = g.access(0x100000, 0);
  const std::uint64_t d2 = g.access(0x100000 ^ (1ull << 14), 0);
  EXPECT_GT(d2, d1);
  const auto& t = kepler_arch().dram;
  EXPECT_EQ(d2 - d1, t.row_hit_service);
  EXPECT_GT(g.stats().avg_queue_delay(), 0.0);
}

TEST(Gddr, ParallelBanksDontQueue) {
  auto g = fresh();
  // Same issue time, different banks: identical unloaded latency.
  const std::uint64_t d1 = g.access(0x100000, 0);
  const std::uint64_t d2 = g.access(0x100000 ^ (1ull << 8), 0);
  EXPECT_EQ(d1 - 0, kepler_arch().unloaded_row_miss());
  EXPECT_EQ(d2 - 0, kepler_arch().unloaded_row_miss());
  EXPECT_DOUBLE_EQ(g.stats().avg_queue_delay(), 0.0);
}

TEST(Gddr, PeekOutcomeMatchesNextAccess) {
  auto g = fresh();
  EXPECT_EQ(g.peek_outcome(0x100000), RowOutcome::Miss);
  g.access(0x100000, 0);
  EXPECT_EQ(g.peek_outcome(0x100000), RowOutcome::Hit);
  EXPECT_EQ(g.peek_outcome(0x100000 ^ (1ull << 14)), RowOutcome::Hit);
  EXPECT_EQ(g.peek_outcome(0x100000 ^ (1ull << 20)), RowOutcome::Conflict);
}

TEST(Gddr, InterarrivalRecordedPerBank) {
  auto g = fresh(/*record=*/true);
  const std::uint64_t addr = 0x100000;
  g.access(addr, 0);
  g.access(addr ^ (1ull << 14), 100);
  g.access(addr ^ (1ull << 15), 250);
  const int bank = g.mapping().decode(addr).bank;
  const auto& samples = g.interarrival_samples()[static_cast<std::size_t>(bank)];
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 100u);
  EXPECT_EQ(samples[1], 150u);
  const auto& bs = g.stats().banks[static_cast<std::size_t>(bank)];
  EXPECT_EQ(bs.arrivals, 3u);
  EXPECT_DOUBLE_EQ(bs.interarrival.mean(), 125.0);
}

TEST(Gddr, LatencyAccounting) {
  auto g = fresh();
  g.access(0x100000, 0);
  EXPECT_EQ(g.stats().total_requests, 1u);
  EXPECT_DOUBLE_EQ(g.stats().avg_latency(),
                   static_cast<double>(kepler_arch().unloaded_row_miss()));
}

TEST(Gddr, RejectsTimeTravel) {
  auto g = fresh();
  g.access(0x100000, 1000);
  EXPECT_DEATH(g.access(0x200000, 500), "nondecreasing");
}

TEST(Gddr, ResetRestoresColdState) {
  auto g = fresh(true);
  g.access(0x100000, 0);
  g.access(0x100000 ^ (1ull << 14), 50);
  g.reset();
  EXPECT_EQ(g.stats().total_requests, 0u);
  EXPECT_EQ(g.peek_outcome(0x100000), RowOutcome::Miss);
  const std::uint64_t done = g.access(0x100000, 0);
  EXPECT_EQ(done, kepler_arch().unloaded_row_miss());
}

TEST(Gddr, StatsAggregation) {
  auto g = fresh();
  g.access(0x100000, 0);                              // miss
  g.access(0x100000 ^ (1ull << 14), 1 << 16);         // hit
  g.access(0x100000 ^ (1ull << 20), 1 << 17);         // conflict
  EXPECT_EQ(g.stats().row_hits(), 1u);
  EXPECT_EQ(g.stats().row_misses(), 1u);
  EXPECT_EQ(g.stats().row_conflicts(), 1u);
  EXPECT_EQ(g.stats().total_requests, 3u);
}

}  // namespace
}  // namespace gpuhms
