// Golden-accuracy regression (ctest label: golden). Re-derives every Fig. 5
// per-test prediction error in-process through the same EvalHarness the
// figure benches use and locks it against tests/golden/fig5_errors.json.
// Any model change that moves a per-test absolute error by more than 0.5
// percentage points fails here — accuracy regressions become a diff in this
// test instead of a silently shifted bench table.
//
// To refresh the golden file after an intentional, reviewed accuracy change:
//   build/bench/bench_fig5_accuracy --write-golden tests/golden/fig5_errors.json
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval_common.hpp"

namespace gpuhms {
namespace {

#ifndef GPUHMS_GOLDEN_DIR
#error "GPUHMS_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

// Error moves of <= 0.5 percentage points are tolerated (numeric noise /
// benign refactors); anything larger is a real accuracy change.
constexpr double kTolerance = 0.005;

struct GoldenRow {
  double abs_error = 0.0;
  double predicted = 0.0;
  double measured = 0.0;
};

// Purpose-built reader for the fixed --write-golden output: one
// {"id": ..., "abs_error": ...} object per line in the "rows" array plus
// the two top-level averages. Not a general JSON parser.
class GoldenFile {
 public:
  static GoldenFile load(const std::string& path) {
    GoldenFile g;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return g;
    g.loaded_ = true;
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
      const std::string s(line);
      double avg = 0.0;
      if (std::sscanf(line, "  \"model_avg_abs_error\": %lf", &avg) == 1)
        g.model_avg_ = avg;
      const std::size_t id_at = s.find("\"id\": \"");
      if (id_at == std::string::npos) continue;
      const std::size_t id_from = id_at + 7;
      const std::size_t id_to = s.find('"', id_from);
      if (id_to == std::string::npos) continue;
      GoldenRow row;
      if (!scan_field(s, "\"abs_error\": ", &row.abs_error)) continue;
      scan_field(s, "\"predicted\": ", &row.predicted);
      scan_field(s, "\"measured\": ", &row.measured);
      g.rows_[s.substr(id_from, id_to - id_from)] = row;
    }
    std::fclose(f);
    return g;
  }

  bool loaded() const { return loaded_; }
  double model_avg() const { return model_avg_; }
  const std::map<std::string, GoldenRow>& rows() const { return rows_; }

 private:
  static bool scan_field(const std::string& s, const char* key,
                         double* out) {
    const std::size_t at = s.find(key);
    if (at == std::string::npos) return false;
    return std::sscanf(s.c_str() + at + std::strlen(key), "%lf", out) == 1;
  }

  bool loaded_ = false;
  double model_avg_ = -1.0;
  std::map<std::string, GoldenRow> rows_;
};

TEST(GoldenAccuracy, Fig5ErrorsMatchCheckedInGolden) {
  const std::string path =
      std::string(GPUHMS_GOLDEN_DIR) + "/fig5_errors.json";
  const GoldenFile golden = GoldenFile::load(path);
  ASSERT_TRUE(golden.loaded()) << "missing golden file: " << path;
  ASSERT_FALSE(golden.rows().empty()) << "no rows parsed from " << path;
  ASSERT_GE(golden.model_avg(), 0.0) << "no average parsed from " << path;

  bench::EvalHarness harness;
  const std::vector<bench::Row> rows = harness.run_variant(ModelOptions{});
  ASSERT_EQ(rows.size(), golden.rows().size())
      << "evaluation suite changed shape; regenerate the golden file";

  for (const bench::Row& r : rows) {
    const auto it = golden.rows().find(r.id);
    ASSERT_NE(it, golden.rows().end())
        << "test '" << r.id << "' has no golden row; regenerate the file";
    EXPECT_NEAR(r.abs_error(), it->second.abs_error, kTolerance)
        << r.id << ": prediction error drifted past 0.5pp (golden "
        << 100.0 * it->second.abs_error << "%, now "
        << 100.0 * r.abs_error() << "%)";
    // Ground truth must not move at all: the simulator is deterministic,
    // so a measured-cycles change means the substrate itself changed.
    EXPECT_DOUBLE_EQ(r.measured, it->second.measured) << r.id;
  }
  EXPECT_NEAR(bench::mean_abs_error(rows), golden.model_avg(), kTolerance)
      << "average Fig. 5 error drifted past 0.5pp";
}

// The headline claim of the paper's Fig. 5 — our model beats the Sim et al.
// baseline on average — must also survive any change that slips under the
// per-test tolerance.
TEST(GoldenAccuracy, ModelStaysAheadOfSim2012Baseline) {
  bench::EvalHarness harness;
  const double ours = bench::mean_abs_error(harness.run_variant(ModelOptions{}));
  const double baseline = bench::mean_abs_error(harness.run_sim2012());
  EXPECT_LT(ours, baseline);
}

}  // namespace
}  // namespace gpuhms
