#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gpuhms {
namespace {

CacheConfig small_cache(int ways = 2, std::size_t lines_total = 8) {
  return CacheConfig{lines_total * 128, 128, ways};
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(small_cache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1040));  // same 128 B line
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way cache: fill a set with A, B; touch A; insert C -> B evicted.
  SetAssocCache c(small_cache(2, 8));  // 4 sets
  const std::uint64_t set_stride = 4 * 128;
  const std::uint64_t A = 0, B = set_stride, C = 2 * set_stride;
  EXPECT_FALSE(c.access(A));
  EXPECT_FALSE(c.access(B));
  EXPECT_TRUE(c.access(A));   // A most recent
  EXPECT_FALSE(c.access(C));  // evicts B
  EXPECT_TRUE(c.probe(A));
  EXPECT_FALSE(c.probe(B));
  EXPECT_TRUE(c.probe(C));
}

TEST(Cache, WritebackCountsDirtyEvictions) {
  SetAssocCache c(small_cache(1, 4));  // direct-mapped, 4 sets
  const std::uint64_t set_stride = 4 * 128;
  EXPECT_FALSE(c.access(0, /*is_write=*/true));
  EXPECT_FALSE(c.access(set_stride, false));  // evicts dirty line 0
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_FALSE(c.access(2 * set_stride, false));  // evicts clean line
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksDirty) {
  SetAssocCache c(small_cache(1, 4));
  const std::uint64_t set_stride = 4 * 128;
  c.access(0, false);
  c.access(0, true);  // hit, dirties
  c.access(set_stride, false);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ResetClearsEverything) {
  SetAssocCache c(small_cache());
  c.access(0x1000);
  c.reset();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, CapacityWorkingSetFullyCached) {
  // A working set exactly the cache size misses once per line and then
  // always hits under LRU with a sequential sweep per set.
  const CacheConfig cfg = small_cache(4, 32);  // 8 sets x 4 ways
  SetAssocCache c(cfg);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < 32; ++i) c.access(i * cfg.line_size);
  }
  EXPECT_EQ(c.stats().misses, 32u);
  EXPECT_EQ(c.stats().accesses, 96u);
}

TEST(Cache, ThrashingWorkingSetMissesEveryTime) {
  // Working set = ways+1 lines in one set -> LRU thrashes on a cyclic sweep.
  const CacheConfig cfg = small_cache(2, 8);  // 4 sets
  SetAssocCache c(cfg);
  const std::uint64_t set_stride = 4 * 128;
  for (int pass = 0; pass < 5; ++pass) {
    for (std::uint64_t i = 0; i < 3; ++i) c.access(i * set_stride);
  }
  EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

TEST(Cache, MissRatioStats) {
  SetAssocCache c(small_cache());
  EXPECT_DOUBLE_EQ(c.stats().miss_ratio(), 0.0);
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.stats().miss_ratio(), 0.5);
  EXPECT_EQ(c.stats().hits(), 1u);
}

// Property-style sweep: for random traces, hits+misses == accesses and a
// probe right after an access always hits, across associativities.
class CacheWays : public ::testing::TestWithParam<int> {};

TEST_P(CacheWays, InvariantsUnderRandomTraffic) {
  SetAssocCache c(CacheConfig{16 * 1024, 128, GetParam()});
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t addr = rng.next_below(1 << 20);
    c.access(addr, rng.next_bool(0.3));
    EXPECT_TRUE(c.probe(addr));
  }
  EXPECT_EQ(c.stats().hits() + c.stats().misses, c.stats().accesses);
  EXPECT_LE(c.stats().writebacks, c.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheWays,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(CacheConfigs, ArchDerivedConfigsConstruct) {
  const GpuArch& a = kepler_arch();
  SetAssocCache l2(l2_config(a));
  SetAssocCache cc(const_cache_config(a));
  SetAssocCache tc(tex_cache_config(a));
  EXPECT_GT(l2.config().num_sets(), cc.config().num_sets());
}

}  // namespace
}  // namespace gpuhms
