// Cross-module integration tests: the full profile -> analyze -> predict
// pipeline on real benchmarks, including the aggregate accuracy property the
// evaluation (Fig. 5/7-9) relies on.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/sim2012.hpp"
#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

double rel_error(double pred, double meas) {
  return std::abs(pred - meas) / meas;
}

TEST(Integration, PredictionWithinBroadBandAcrossEvalTests) {
  // Even untrained (no overlap model), anchored predictions of real target
  // placements should stay within a sane multiplicative band. This is a
  // regression tripwire, not the accuracy claim (benches measure that).
  for (const char* name : {"stencil2d", "bfs", "s3d"}) {
    const auto c = workloads::get_benchmark(name);
    Predictor pred(c.kernel, kepler_arch());
    pred.profile_sample(c.sample);
    for (const auto& t : c.tests) {
      const auto p = pred.predict(t.placement);
      const auto m = simulate(c.kernel, t.placement);
      EXPECT_GT(p.total_cycles, 0.2 * static_cast<double>(m.cycles))
          << name << "/" << t.id;
      EXPECT_LT(p.total_cycles, 5.0 * static_cast<double>(m.cycles))
          << name << "/" << t.id;
    }
  }
}

TEST(Integration, TrainedOverlapModelHelpsOnHeldOutKernels) {
  // Train on a slice of the training suite, evaluate on evaluation kernels;
  // the trained model's mean error must not be (much) worse than untrained.
  std::vector<workloads::BenchmarkCase> train = workloads::training_suite();
  std::vector<TrainingCase> cases;
  std::vector<KernelInfo> keep_alive;
  keep_alive.reserve(64);
  for (const auto& c : train) {
    keep_alive.push_back(c.kernel);
    const KernelInfo* k = &keep_alive.back();
    cases.push_back({k, c.sample});
    if (!c.tests.empty()) cases.push_back({k, c.tests.front().placement});
  }
  const auto trained = train_overlap_model(cases, kepler_arch());
  ASSERT_TRUE(trained.trained());

  double err_trained = 0.0, err_untrained = 0.0;
  int n = 0;
  for (const char* name : {"stencil2d", "scan", "sort"}) {
    const auto c = workloads::get_benchmark(name);
    Predictor with(c.kernel, kepler_arch(), ModelOptions{}, trained);
    with.profile_sample(c.sample);
    Predictor without(c.kernel, kepler_arch());
    without.set_sample(c.sample, with.sample_result());
    for (const auto& t : c.tests) {
      const double m =
          static_cast<double>(simulate(c.kernel, t.placement).cycles);
      err_trained += rel_error(with.predict(t.placement).total_cycles, m);
      err_untrained += rel_error(without.predict(t.placement).total_cycles, m);
      ++n;
    }
  }
  EXPECT_LT(err_trained / n, err_untrained / n + 0.10);
}

TEST(Integration, FullModelBeatsBaselineOnInstructionHeavyCase) {
  // fft_1 (smem S->G) swaps bank-conflict replays for global-divergence
  // replays; only the detailed instruction counting can follow that.
  const auto c = workloads::get_benchmark("fft");
  const auto& t = c.tests.front();
  const double m = static_cast<double>(simulate(c.kernel, t.placement).cycles);

  Predictor full(c.kernel, kepler_arch());
  full.profile_sample(c.sample);
  Predictor base(c.kernel, kepler_arch(), ModelOptions::baseline());
  base.set_sample(c.sample, full.sample_result());

  const double e_full = rel_error(full.predict(t.placement).total_cycles, m);
  const double e_base = rel_error(base.predict(t.placement).total_cycles, m);
  EXPECT_LE(e_full, e_base + 0.05);
}

TEST(Integration, RankingIdentifiesGoodPlacementForNeuralnet) {
  // The Fig. 6 property: our model's ranking of the five weight placements
  // must put the measured-best placement in its top two.
  const auto c = workloads::get_benchmark("neuralnet");
  Predictor pred(c.kernel, kepler_arch());
  pred.profile_sample(c.sample);

  struct Entry {
    std::string id;
    double predicted, measured;
  };
  std::vector<Entry> entries;
  entries.push_back({"NN_G",
                     pred.predict(c.sample).total_cycles,
                     static_cast<double>(pred.sample_result().cycles)});
  for (const auto& t : c.tests) {
    entries.push_back({t.id, pred.predict(t.placement).total_cycles,
                       static_cast<double>(
                           simulate(c.kernel, t.placement).cycles)});
  }
  auto best_measured = std::min_element(
      entries.begin(), entries.end(),
      [](const Entry& a, const Entry& b) { return a.measured < b.measured; });
  std::vector<Entry> by_pred = entries;
  std::sort(by_pred.begin(), by_pred.end(),
            [](const Entry& a, const Entry& b) {
              return a.predicted < b.predicted;
            });
  const bool in_top2 = by_pred[0].id == best_measured->id ||
                       by_pred[1].id == best_measured->id;
  EXPECT_TRUE(in_top2) << "best measured " << best_measured->id
                       << " predicted best " << by_pred[0].id;
}

TEST(Integration, Sim2012AndOursAgreeOnSample) {
  const auto c = workloads::get_benchmark("transpose");
  Predictor ours(c.kernel, kepler_arch());
  ours.profile_sample(c.sample);
  Sim2012Predictor theirs(c.kernel, kepler_arch());
  theirs.set_sample(c.sample, ours.sample_result());
  EXPECT_NEAR(ours.predict(c.sample).total_cycles,
              theirs.predict(c.sample).total_cycles,
              static_cast<double>(ours.sample_result().cycles) * 0.02);
}

}  // namespace
}  // namespace gpuhms
