// Determinism lock-in: search_exhaustive and predict_batch must return
// byte-identical results regardless of GPUHMS_THREADS (the env-selected
// worker count), across repeated runs, and — the observability guarantee —
// with metrics and tracing enabled. Instrumentation observes, it must never
// participate in model results.
#include "model/search.hpp"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/obs.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

// Bitwise double comparison: "deterministic" here means identical bits, not
// identical within a tolerance.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

Predictor profiled_predictor(const KernelInfo& k) {
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  return pred;
}

// Search with the worker count taken from GPUHMS_THREADS (num_threads = 0),
// exactly how an end user steers parallelism.
SearchResult search_with_env_threads(const Predictor& pred,
                                     const char* threads) {
  testutil::ScopedEnv env("GPUHMS_THREADS", threads);
  SearchOptions o;
  o.cap = 64;
  o.num_threads = 0;
  return search_exhaustive(pred, o);
}

std::vector<Prediction> batch_with_env_threads(const Predictor& pred,
                                               const std::vector<DataPlacement>& space,
                                               const char* threads) {
  testutil::ScopedEnv env("GPUHMS_THREADS", threads);
  return pred.predict_batch(space);
}

void expect_identical(const SearchResult& a, const SearchResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_TRUE(same_bits(a.predicted_cycles, b.predicted_cycles));
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.space_truncated, b.space_truncated);
  EXPECT_EQ(a.space_skipped, b.space_skipped);
  EXPECT_EQ(a.not_evaluated, b.not_evaluated);
}

void expect_identical(const std::vector<Prediction>& a,
                      const std::vector<Prediction>& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_bits(a[i].total_cycles, b[i].total_cycles)) << i;
    EXPECT_TRUE(same_bits(a[i].raw_cycles, b[i].raw_cycles)) << i;
    EXPECT_TRUE(same_bits(a[i].t_comp, b[i].t_comp)) << i;
    EXPECT_TRUE(same_bits(a[i].t_mem, b[i].t_mem)) << i;
    EXPECT_TRUE(same_bits(a[i].t_overlap, b[i].t_overlap)) << i;
    EXPECT_TRUE(same_bits(a[i].amat, b[i].amat)) << i;
    EXPECT_TRUE(same_bits(a[i].dram_lat, b[i].dram_lat)) << i;
    EXPECT_EQ(a[i].queue_saturated, b[i].queue_saturated) << i;
  }
}

TEST(Determinism, SearchIdenticalAcrossThreadCounts) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  const SearchResult one = search_with_env_threads(pred, "1");
  for (const char* t : {"4", "16"}) {
    expect_identical(one, search_with_env_threads(pred, t),
                     std::string("GPUHMS_THREADS=") + t);
  }
}

TEST(Determinism, SearchIdenticalAcrossRepeatedRuns) {
  const KernelInfo k = workloads::make_stencil2d(96, 48);
  const Predictor pred = profiled_predictor(k);
  const SearchResult first = search_with_env_threads(pred, "4");
  for (int run = 0; run < 3; ++run) {
    expect_identical(first, search_with_env_threads(pred, "4"),
                     "repeat run " + std::to_string(run));
  }
}

TEST(Determinism, MetricsAndTracingDoNotChangeResults) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  const auto space = enumerate_placements(k, kepler_arch(), 32);

  obs::set_enabled(false);
  const SearchResult plain_search = search_with_env_threads(pred, "4");
  const auto plain_batch = batch_with_env_threads(pred, space, "4");

  // Full observability on: every instrumented path now records.
  obs::set_enabled(true);
  obs::reset_all_metrics();
  obs::start_tracing();
  const SearchResult obs_search = search_with_env_threads(pred, "4");
  const auto obs_batch = batch_with_env_threads(pred, space, "4");
  obs::stop_tracing();
  obs::set_enabled(false);

  expect_identical(plain_search, obs_search, "search with metrics+tracing");
  expect_identical(plain_batch, obs_batch, "batch with metrics+tracing");

  // The instrumented run actually observed the search (the comparison
  // above would be vacuous against dead instrumentation).
  const obs::MetricsSnapshot s = obs::snapshot();
  const auto* searches = s.find_counter("search.searches");
  ASSERT_NE(searches, nullptr);
  EXPECT_GE(searches->value, 1u);
  const auto* predictions = s.find_counter("predictor.predictions");
  ASSERT_NE(predictions, nullptr);
  EXPECT_GE(predictions->value, space.size());
  obs::reset_all_metrics();
}

TEST(Determinism, BatchIdenticalAcrossThreadCountsAndRuns) {
  const KernelInfo k = workloads::make_triad(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  pred.memoize_trace();
  const auto space = enumerate_placements(k, kepler_arch(), 24);
  const auto one = batch_with_env_threads(pred, space, "1");
  for (const char* t : {"4", "16"}) {
    expect_identical(one, batch_with_env_threads(pred, space, t),
                     std::string("GPUHMS_THREADS=") + t);
  }
  expect_identical(one, batch_with_env_threads(pred, space, "1"),
                   "repeat run");
}

}  // namespace
}  // namespace gpuhms
