#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

KernelInfo compute_only(std::int64_t blocks, int insts) {
  KernelInfo k;
  k.name = "compute";
  k.num_blocks = blocks;
  k.threads_per_block = 64;
  k.fn = [insts](WarpEmitter& em, const WarpCtx&) { em.ialu(insts); };
  return k;
}

TEST(Simulator, ComputeOnlyCounters) {
  const KernelInfo k = compute_only(13, 10);
  const auto r = simulate(k, DataPlacement::defaults(k));
  // 13 blocks x 2 warps x 10 IALU.
  EXPECT_EQ(r.counters.inst_executed, 260u);
  EXPECT_EQ(r.counters.inst_integer, 260u);
  EXPECT_EQ(r.counters.inst_issued, 260u);  // no replays
  EXPECT_EQ(r.counters.ldst_executed, 0u);
  EXPECT_EQ(r.dram.total_requests, 0u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto p = DataPlacement::defaults(k);
  const auto r1 = simulate(k, p);
  const auto r2 = simulate(k, p);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.counters.inst_issued, r2.counters.inst_issued);
  EXPECT_EQ(r1.dram.row_conflicts(), r2.dram.row_conflicts());
}

TEST(Simulator, DoublePrecisionCausesIssueReplays) {
  KernelInfo k = compute_only(1, 1);
  k.fn = [](WarpEmitter& em, const WarpCtx&) { em.dalu(5); };
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.counters.replay_double_issue, 2u * 5u);  // 2 warps x 5 DAlu
  EXPECT_EQ(r.counters.inst_issued, r.counters.inst_executed +
                                        r.counters.replays_total());
}

TEST(Simulator, GlobalDivergenceReplays) {
  KernelInfo k = compute_only(1, 1);
  k.arrays = {ArrayDecl{.name = "x", .dtype = DType::F32, .elems = 1 << 16}};
  k.fn = [](WarpEmitter& em, const WarpCtx&) {
    em.load(0, em.by_lane([](int l) { return std::int64_t{l} * 64; }));
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  // 64-element (256 B) stride: every lane its own line -> 32 transactions.
  EXPECT_EQ(r.counters.global_transactions, 2u * 32u);
  EXPECT_EQ(r.counters.replay_global_divergence, 2u * 31u);
}

TEST(Simulator, SharedBankConflictsDetected) {
  KernelInfo k = compute_only(1, 1);
  k.arrays = {ArrayDecl{.name = "s", .dtype = DType::F32, .elems = 8192,
                        .written = true, .shared_slice_elems = 8192,
                        .default_space = MemSpace::Shared}};
  k.fn = [](WarpEmitter& em, const WarpCtx&) {
    em.load(0, em.by_lane([](int l) { return std::int64_t{l} * 32; }));
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  // Stride 32 words: all lanes in one bank -> 31 conflicts per warp access.
  EXPECT_EQ(r.counters.shared_bank_conflicts, 2u * 31u);
  EXPECT_EQ(r.counters.replay_shared_conflict, 2u * 31u);
  EXPECT_EQ(r.counters.shared_requests, 2u);
}

TEST(Simulator, ConstantBroadcastVsDivergent) {
  KernelInfo k = compute_only(1, 1);
  k.arrays = {ArrayDecl{.name = "c", .dtype = DType::F32, .elems = 1024,
                        .default_space = MemSpace::Constant}};
  k.fn = [](WarpEmitter& em, const WarpCtx&) {
    em.load(0, em.bcast(3));                                   // broadcast
    em.load(0, em.by_lane([](int l) { return std::int64_t{l}; }));  // divergent
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.counters.const_requests, 4u);  // 2 warps x 2 loads
  // Divergent load: 32 distinct words -> 31 replays per warp.
  EXPECT_EQ(r.counters.replay_const_divergence, 2u * 31u);
  EXPECT_GE(r.counters.replay_const_miss, 1u);  // first touch misses
}

TEST(Simulator, CyclesScaleWithWork) {
  const KernelInfo small = workloads::make_vecadd(1 << 12);
  const KernelInfo large = workloads::make_vecadd(1 << 15);
  const auto rs = simulate(small, DataPlacement::defaults(small));
  const auto rl = simulate(large, DataPlacement::defaults(large));
  EXPECT_GT(rl.cycles, rs.cycles * 4);  // ~8x the work
}

TEST(Simulator, MoreSmsRunFaster) {
  GpuArch one_sm = kepler_arch();
  one_sm.num_sms = 1;
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto p = DataPlacement::defaults(k);
  const auto r13 = simulate(k, p, kepler_arch());
  const auto r1 = simulate(k, p, one_sm);
  EXPECT_GT(r1.cycles, r13.cycles * 3);
}

TEST(Simulator, SyncBarriersEnforced) {
  // One warp writes shared, all warps read after a barrier; no deadlock and
  // the barrier must show up as serialization versus the no-sync version.
  KernelInfo k = compute_only(4, 1);
  k.threads_per_block = 128;
  k.arrays = {ArrayDecl{.name = "s", .dtype = DType::F32, .elems = 128,
                        .written = true, .shared_slice_elems = 128,
                        .default_space = MemSpace::Shared}};
  k.fn = [](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.warp_in_block == 0) {
      em.store(0, em.linear(0));
    } else {
      em.ialu(1);
    }
    em.sync();
    em.load(0, em.linear(0));
    em.falu(3, true);
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_GT(r.cycles, 0u);
  // Warp 0: SHL+ST, sync, SHL+LD, 3 falu = 8 lowered ops; warps 1-3:
  // ialu, sync, SHL+LD, 3 falu = 7 -> 29 per block.
  EXPECT_EQ(r.counters.inst_executed, 4u * 29u);
}

TEST(Simulator, L2SharedAcrossSms) {
  // All blocks read the same small array: after the cold misses, L2 serves
  // everything, so DRAM requests stay equal to the distinct line count.
  KernelInfo k = compute_only(64, 1);
  k.arrays = {ArrayDecl{.name = "x", .dtype = DType::F32, .elems = 1024}};
  k.fn = [](WarpEmitter& em, const WarpCtx&) {
    em.load(0, em.linear(0));
    em.load(0, em.linear(32));
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.dram.total_requests, 2u);
  EXPECT_GT(r.counters.l2_transactions, 2u);
}

TEST(Simulator, TextureUsesPerSmCache) {
  KernelInfo k = compute_only(13, 1);
  k.arrays = {ArrayDecl{.name = "t", .dtype = DType::F32, .elems = 1024,
                        .default_space = MemSpace::Texture1D}};
  k.fn = [](WarpEmitter& em, const WarpCtx&) {
    em.load(0, em.linear(0));
    em.load(0, em.linear(0));  // second access hits the tex cache
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.counters.tex_requests, 13u * 2u * 2u);
  // One cold miss per SM's tex cache; the rest hit.
  EXPECT_EQ(r.counters.tex_cache_misses, 13u);
}

TEST(Simulator, StallAccountingNonzeroForMemoryBound) {
  const KernelInfo k = workloads::make_vecadd(1 << 14);
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_GT(r.counters.mem_stall_cycles, 0u);
}

TEST(Simulator, InterarrivalRecordingOptIn) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto p = DataPlacement::defaults(k);
  GpuSimulator off(kepler_arch());
  off.run(k, p);
  EXPECT_TRUE(off.interarrival_samples().empty());
  GpuSimulator on(kepler_arch(), SimOptions{.record_interarrivals = true});
  on.run(k, p);
  std::size_t total = 0;
  for (const auto& b : on.interarrival_samples()) total += b.size();
  EXPECT_GT(total, 0u);
}

TEST(Simulator, PartialTailBlockHandled) {
  const KernelInfo k = workloads::make_vecadd((1 << 12) + 17);
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_GT(r.cycles, 0u);
}

}  // namespace
}  // namespace gpuhms
