// Status/StatusOr core and the non-aborting validate()/try_* API surface:
// malformed kernels, placements, arch configs, measurements and traces must
// come back as descriptive Status values (never aborts), with the offending
// entity named in the message and call-site context attached via annotate().
#include "common/status.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arch/gpu_arch.hpp"
#include "model/search.hpp"
#include "sim/counters.hpp"
#include "trace/serialize.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

// --- Status / StatusOr mechanics --------------------------------------------

TEST(Status, DefaultIsOk) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(OkStatus(), st);
}

TEST(Status, HelpersCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(InvalidArgumentError("bad input").message(), "bad input");
}

TEST(Status, ToStringNamesTheCode) {
  EXPECT_EQ(InvalidArgumentError("bad placement").to_string(),
            "INVALID_ARGUMENT: bad placement");
  EXPECT_EQ(OkStatus().to_string(), "OK");
}

TEST(Status, AnnotateChainsInnermostFirst) {
  Status st = DataLossError("truncated record");
  st.annotate("reading trace 'a.trace'").annotate("loading benchmark");
  EXPECT_EQ(st.to_string(),
            "DATA_LOSS: truncated record (while reading trace 'a.trace'; "
            "while loading benchmark)");
  // Annotating OK is a no-op.
  Status ok;
  ok.annotate("anything");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "OK");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.value_or(-1), 42);

  const StatusOr<int> e(InvalidArgumentError("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(StatusOr, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return InternalError("boom"); };
  auto outer = [&]() -> Status {
    GPUHMS_RETURN_IF_ERROR(inner());
    return OkStatus();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);

  auto make = [](bool ok) -> StatusOr<int> {
    if (!ok) return InvalidArgumentError("no value");
    return 7;
  };
  auto chain = [&](bool ok) -> StatusOr<int> {
    GPUHMS_ASSIGN_OR_RETURN(const int x, make(ok));
    return x + 1;
  };
  EXPECT_EQ(*chain(true), 8);
  EXPECT_EQ(chain(false).status().code(), StatusCode::kInvalidArgument);
}

// --- validate() entry points -------------------------------------------------

TEST(Validate, ArchRejectsNonPositiveFieldsByName) {
  GpuArch arch = kepler_arch();
  EXPECT_TRUE(validate(arch).ok());
  arch.num_sms = 0;
  const Status st = validate(arch);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("num_sms"), std::string::npos) << st.to_string();
}

TEST(Validate, ArchRejectsNonWarpSize32AndOddCacheLine) {
  GpuArch arch = kepler_arch();
  arch.warp_size = 16;
  EXPECT_EQ(validate(arch).code(), StatusCode::kInvalidArgument);
  arch = kepler_arch();
  arch.cache_line = 100;  // not a power of two
  EXPECT_EQ(validate(arch).code(), StatusCode::kInvalidArgument);
}

TEST(Validate, KernelRejectsMissingFnAndBadGeometry) {
  KernelInfo k = workloads::make_vecadd(1 << 10);
  EXPECT_TRUE(validate(k).ok());

  KernelInfo no_fn = k;
  no_fn.fn = nullptr;
  EXPECT_EQ(validate(no_fn).code(), StatusCode::kInvalidArgument);

  KernelInfo zero_blocks = k;
  zero_blocks.num_blocks = 0;
  EXPECT_EQ(validate(zero_blocks).code(), StatusCode::kInvalidArgument);
}

TEST(Validate, KernelNamesTheOffendingArray) {
  KernelInfo k = workloads::make_vecadd(1 << 10);
  k.arrays[1].elems = 0;
  const Status st = validate(k);
  ASSERT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find(k.arrays[1].name), std::string::npos)
      << st.to_string();

  KernelInfo dup = workloads::make_vecadd(1 << 10);
  dup.arrays[1].name = dup.arrays[0].name;
  EXPECT_EQ(validate(dup).code(), StatusCode::kInvalidArgument);
}

TEST(Validate, PlacementRejectsSizeMismatchAndIllegalSpace) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  const GpuArch& arch = kepler_arch();
  EXPECT_TRUE(validate(k, DataPlacement::defaults(k), arch).ok());

  const DataPlacement short_p(std::vector<MemSpace>{MemSpace::Global});
  const Status mismatch = validate(k, short_p, arch);
  ASSERT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.message().find(k.name), std::string::npos);

  // vecadd writes its output array: read-only spaces are illegal for it.
  DataPlacement p = DataPlacement::defaults(k);
  for (std::size_t a = 0; a < k.arrays.size(); ++a) {
    if (!k.arrays[a].written) continue;
    p.set(static_cast<int>(a), MemSpace::Constant);
    const Status st = validate(k, p, arch);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find(k.arrays[a].name), std::string::npos)
        << st.to_string();
    break;
  }
}

TEST(Validate, SimResultRejectsInconsistentCounters) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  SimResult r = simulate(k, DataPlacement::defaults(k), kepler_arch());
  EXPECT_TRUE(validate(r).ok());

  SimResult zero_cycles = r;
  zero_cycles.cycles = 0;
  EXPECT_EQ(validate(zero_cycles).code(), StatusCode::kInvalidArgument);

  SimResult broken = r;
  broken.counters.inst_issued = broken.counters.inst_executed - 1;
  EXPECT_EQ(validate(broken).code(), StatusCode::kInvalidArgument);
}

// --- Predictor try_* surface -------------------------------------------------

TEST(TryApi, PredictBeforeSampleIsFailedPrecondition) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  Predictor pred(k, kepler_arch());
  EXPECT_FALSE(pred.has_sample());
  const auto r = pred.try_predict(DataPlacement::defaults(k));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find(k.name), std::string::npos);
}

TEST(TryApi, SetSampleValidatesMeasurementAndPlacement) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  Predictor pred(k, kepler_arch());
  const DataPlacement sample = DataPlacement::defaults(k);

  SimResult bogus;  // zero cycles, zero warps
  EXPECT_EQ(pred.try_set_sample(sample, bogus).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(pred.has_sample());

  const DataPlacement short_p(std::vector<MemSpace>{MemSpace::Global});
  const SimResult good = simulate(k, sample, kepler_arch());
  EXPECT_EQ(pred.try_set_sample(short_p, good).code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(pred.try_set_sample(sample, good).ok());
  EXPECT_TRUE(pred.has_sample());
}

TEST(TryApi, TryPredictMatchesPredict) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  Predictor pred(k, kepler_arch());
  ASSERT_TRUE(pred.try_profile_sample(DataPlacement::defaults(k)).ok());
  const auto space = enumerate_placements(k, kepler_arch(), 8);
  for (const auto& p : space) {
    const auto r = pred.try_predict(p);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->total_cycles, pred.predict(p).total_cycles);
  }
  // Batch variant agrees too and validates each target.
  const auto batch = pred.try_predict_batch(space);
  ASSERT_TRUE(batch.ok()) << batch.status().to_string();
  ASSERT_EQ(batch->size(), space.size());
  for (std::size_t i = 0; i < space.size(); ++i)
    EXPECT_EQ((*batch)[i].total_cycles, pred.predict(space[i]).total_cycles);

  std::vector<DataPlacement> bad = {space[0],
                                    DataPlacement(std::vector<MemSpace>{})};
  const auto bad_batch = pred.try_predict_batch(bad);
  ASSERT_FALSE(bad_batch.ok());
  EXPECT_EQ(bad_batch.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending batch index.
  EXPECT_NE(bad_batch.status().context().find("#1"), std::string::npos)
      << bad_batch.status().to_string();
}

TEST(TryApi, IllegalTargetPlacementIsInvalidArgument) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  Predictor pred(k, kepler_arch());
  ASSERT_TRUE(pred.try_profile_sample(DataPlacement::defaults(k)).ok());
  DataPlacement p = DataPlacement::defaults(k);
  for (std::size_t a = 0; a < k.arrays.size(); ++a) {
    if (!k.arrays[a].written) continue;
    p.set(static_cast<int>(a), MemSpace::Texture1D);
    break;
  }
  const auto r = pred.try_predict(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- search try_* surface ----------------------------------------------------

TEST(TryApi, SearchWithoutSampleIsFailedPrecondition) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  const Predictor pred(k, kepler_arch());
  const auto r = try_search_exhaustive(pred);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TryApi, TrySearchMatchesAbortingSearch) {
  const KernelInfo k = workloads::make_triad(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  SearchOptions o;
  o.cap = 16;
  o.num_threads = 2;
  const SearchResult plain = search_exhaustive(pred, o);
  const auto tried = try_search_exhaustive(pred, o);
  ASSERT_TRUE(tried.ok()) << tried.status().to_string();
  EXPECT_EQ(tried->placement, plain.placement);
  EXPECT_EQ(tried->predicted_cycles, plain.predicted_cycles);
  EXPECT_EQ(tried->evaluated, plain.evaluated);
}

TEST(TryApi, TrySearchOracleValidatesArch) {
  const KernelInfo k = workloads::make_vecadd(1 << 10);
  GpuArch broken = kepler_arch();
  broken.num_sms = -1;
  SearchOptions o;
  o.cap = 4;
  const auto r = try_search_oracle(k, broken, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- serialization try_* surface --------------------------------------------

TEST(TryApi, TryReadTraceReportsDataLossWithLineNumber) {
  std::istringstream is("kernel k 1 32\nwarp 0 0 32\nop bogus_class\n");
  const auto r = try_read_trace(is);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().to_string();
}

TEST(TryApi, TryWriteTraceRoundTrips) {
  const KernelInfo k = workloads::make_vecadd(1 << 8);
  TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  const auto warps = mat.generate(0, 1);
  std::ostringstream os;
  ASSERT_TRUE(try_write_trace(os, k, warps).ok());
  std::istringstream is(os.str());
  const auto parsed = try_read_trace(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->warps.size(), warps.size());
  EXPECT_TRUE(validate(*parsed).ok());
}

TEST(TryApi, SerializedTraceValidateCatchesBadGeometry) {
  SerializedTrace t;
  t.kernel_name = "k";
  t.num_blocks = 0;  // must be >= 1
  t.threads_per_block = 32;
  EXPECT_EQ(validate(t).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gpuhms
