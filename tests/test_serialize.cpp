#include "trace/serialize.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

SerializedTrace round_trip(const KernelInfo& k, const DataPlacement& p,
                           std::int64_t b0 = 0, std::int64_t b1 = 1) {
  const TraceMaterializer mat(k, p, kepler_arch());
  std::stringstream ss;
  write_trace(ss, mat, b0, b1);
  std::string error;
  const auto parsed = read_trace(ss, &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return parsed.value_or(SerializedTrace{});
}

TEST(Serialize, HeaderRoundTrips) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto t = round_trip(k, DataPlacement::defaults(k));
  EXPECT_EQ(t.kernel_name, "vecadd");
  EXPECT_EQ(t.num_blocks, k.num_blocks);
  EXPECT_EQ(t.threads_per_block, k.threads_per_block);
  EXPECT_EQ(t.warps.size(), static_cast<std::size_t>(k.warps_per_block()));
}

TEST(Serialize, OpsRoundTripExactly) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Shared);
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto original = mat.generate(0, 2);
  std::stringstream ss;
  write_trace(ss, k, original);
  const auto parsed = read_trace(ss);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->warps.size(), original.size());
  for (std::size_t w = 0; w < original.size(); ++w) {
    const auto& a = original[w].ops;
    const auto& b = parsed->warps[w].ops;
    ASSERT_EQ(a.size(), b.size()) << "warp " << w;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cls, b[i].cls);
      EXPECT_EQ(a[i].space, b[i].space);
      EXPECT_EQ(a[i].array, b[i].array);
      EXPECT_EQ(a[i].uses_prev, b[i].uses_prev);
      EXPECT_EQ(a[i].is_addr_calc, b[i].is_addr_calc);
      EXPECT_EQ(a[i].active_mask, b[i].active_mask);
      if (is_memory(a[i].cls)) {
        EXPECT_EQ(a[i].addr, b[i].addr) << "op " << i;
      }
    }
  }
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# header comment\n\nkernel demo 4 64\n# mid comment\n"
        "warp 0 0 32\nop ialu global -1 0 1 ffffffff\n";
  const auto parsed = read_trace(ss);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kernel_name, "demo");
  ASSERT_EQ(parsed->warps.size(), 1u);
  ASSERT_EQ(parsed->warps[0].ops.size(), 1u);
  EXPECT_TRUE(parsed->warps[0].ops[0].is_addr_calc);
}

TEST(Serialize, RejectsMalformedInput) {
  const char* bad_cases[] = {
      "warp 0 0 32\n",                                // warp before kernel
      "kernel k 1 64\nop ialu global -1 0 0 ff\n",     // op before warp
      "kernel k 1 64\nwarp 0 0 32\nop bogus global -1 0 0 ff\n",  // class
      "kernel k 1 64\nwarp 0 0 32\nop load mars -1 0 0 ff\n",     // space
      "kernel k 1 64\nwarp 0 0 32\nop load global -1 0 0 ff\n",   // no addrs
      "bogus record\n",
      "",
  };
  for (const char* text : bad_cases) {
    std::stringstream ss(text);
    std::string error;
    EXPECT_FALSE(read_trace(ss, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Serialize, DuplicateKernelHeaderRejected) {
  std::stringstream ss("kernel a 1 64\nkernel b 1 64\n");
  std::string error;
  EXPECT_FALSE(read_trace(ss, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(Serialize, StagingPreambleSurvives) {
  const KernelInfo k = workloads::make_triad(1 << 12);
  const auto p = DataPlacement::defaults(k).with(k.array_index("B"),
                                                 MemSpace::Shared);
  const auto t = round_trip(k, p);
  bool has_sync = false;
  for (const auto& op : t.warps[0].ops) {
    has_sync = has_sync || op.cls == OpClass::Sync;
  }
  EXPECT_TRUE(has_sync);
}

}  // namespace
}  // namespace gpuhms
