// Differential lock-in for the data-oriented SoA replay engine
// (src/trace/soa.*): on every skeleton-backed analysis the SoA path must be
// bit-for-bit identical to the legacy scalar replay — same counters, same
// per-bank arrival/service statistics (order-sensitive doubles), same
// predictions. The legacy path is reachable two ways (AnalysisOptions::
// legacy_replay and the GPUHMS_LEGACY_REPLAY environment variable); both are
// exercised.
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "arch/gpu_arch.hpp"
#include "model/predictor.hpp"
#include "model/trace_analysis.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_events_identical(const PlacementEvents& a,
                             const PlacementEvents& b) {
  EXPECT_EQ(a.insts_executed, b.insts_executed);
  EXPECT_EQ(a.addr_calc_insts, b.addr_calc_insts);
  EXPECT_EQ(a.mem_insts, b.mem_insts);
  EXPECT_EQ(a.load_insts, b.load_insts);
  EXPECT_EQ(a.sync_insts, b.sync_insts);
  EXPECT_EQ(a.replay_global_divergence, b.replay_global_divergence);
  EXPECT_EQ(a.replay_const_miss, b.replay_const_miss);
  EXPECT_EQ(a.replay_const_divergence, b.replay_const_divergence);
  EXPECT_EQ(a.replay_shared_conflict, b.replay_shared_conflict);
  EXPECT_EQ(a.global_requests, b.global_requests);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.l2_transactions, b.l2_transactions);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.const_requests, b.const_requests);
  EXPECT_EQ(a.const_misses, b.const_misses);
  EXPECT_EQ(a.tex_requests, b.tex_requests);
  EXPECT_EQ(a.tex_transactions, b.tex_transactions);
  EXPECT_EQ(a.tex_misses, b.tex_misses);
  EXPECT_EQ(a.shared_requests, b.shared_requests);
  EXPECT_EQ(a.shared_conflicts, b.shared_conflicts);
  EXPECT_EQ(a.dram_requests, b.dram_requests);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.offchip_load_transactions, b.offchip_load_transactions);
  EXPECT_EQ(a.shared_load_requests, b.shared_load_requests);
  EXPECT_EQ(a.dram_load_requests, b.dram_load_requests);
  EXPECT_EQ(a.trace_ticks, b.trace_ticks);
  EXPECT_TRUE(same_bits(a.ilp, b.ilp)) << a.ilp << " vs " << b.ilp;
  EXPECT_TRUE(same_bits(a.mlp, b.mlp)) << a.mlp << " vs " << b.mlp;
  EXPECT_TRUE(same_bits(a.warps_per_sm, b.warps_per_sm));
  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (std::size_t i = 0; i < a.banks.size(); ++i) {
    SCOPED_TRACE("bank " + std::to_string(i));
    EXPECT_EQ(a.banks[i].count, b.banks[i].count);
    EXPECT_EQ(a.banks[i].interarrival.count(), b.banks[i].interarrival.count());
    EXPECT_TRUE(same_bits(a.banks[i].interarrival.mean(),
                          b.banks[i].interarrival.mean()));
    EXPECT_TRUE(same_bits(a.banks[i].interarrival.variance(),
                          b.banks[i].interarrival.variance()));
    EXPECT_EQ(a.banks[i].service.count(), b.banks[i].service.count());
    EXPECT_TRUE(
        same_bits(a.banks[i].service.mean(), b.banks[i].service.mean()));
    EXPECT_TRUE(same_bits(a.banks[i].service.variance(),
                          b.banks[i].service.variance()));
  }
}

// Runs `placement` through the SoA and the legacy scalar replay against the
// same skeleton and requires bitwise-equal results.
void expect_soa_matches_legacy(const KernelInfo& k, const DataPlacement& p,
                               const TraceSkeleton& skel) {
  const GpuArch& arch = kepler_arch();
  TraceAnalyzer soa(k, arch);
  AnalysisOptions legacy_opts;
  legacy_opts.legacy_replay = true;
  TraceAnalyzer legacy(k, arch, legacy_opts);
  const PlacementEvents a = soa.analyze(p, &skel);
  const PlacementEvents b = legacy.analyze(p, &skel);
  expect_events_identical(a, b);
}

// The full seed-workload sweep: every benchmark of both suites, its sample
// placement plus every figure placement. (Suite name carries "EveryWorkload"
// so sanitizer binaries can filter the heavy sweep like the other sweeps.)
TEST(SoaReplayEveryWorkload, MatchesLegacyBitForBit) {
  std::vector<workloads::BenchmarkCase> cases = workloads::training_suite();
  for (workloads::BenchmarkCase& c : workloads::evaluation_suite())
    cases.push_back(std::move(c));
  for (const workloads::BenchmarkCase& c : cases) {
    SCOPED_TRACE(c.name);
    const TraceSkeleton skel(c.kernel);
    expect_soa_matches_legacy(c.kernel, c.sample, skel);
    for (const workloads::PlacementTest& t : c.tests) {
      SCOPED_TRACE(t.id);
      expect_soa_matches_legacy(c.kernel, t.placement, skel);
    }
  }
}

// Randomized synthetic kernels: irregular masks (including fully
// predicated-off warps), unsorted and duplicate lane indices, random
// dependencies and mixed compute/sync streams — the trace shapes the seed
// workloads are too regular to produce.
KernelInfo make_random_kernel(std::uint64_t seed) {
  std::mt19937_64 setup(seed);
  KernelInfo k;
  k.name = "soa_synth_" + std::to_string(seed);
  const int num_arrays = 3 + static_cast<int>(setup() % 3);
  for (int a = 0; a < num_arrays; ++a) {
    ArrayDecl d;
    d.name = "arr" + std::to_string(a);
    d.dtype = DType::F32;
    d.elems = 512 + setup() % 1024;
    d.width = setup() % 2 == 0 ? 32 : 0;
    d.written = setup() % 3 == 0;
    d.shared_slice_elems = 128;
    d.default_space = MemSpace::Global;
    k.arrays.push_back(d);
  }
  k.num_blocks = 6;
  k.threads_per_block = 64;
  std::vector<std::uint64_t> elems;
  std::vector<bool> written;
  for (const ArrayDecl& d : k.arrays) {
    elems.push_back(d.elems);
    written.push_back(d.written);
  }
  k.fn = [seed, num_arrays, elems, written](WarpEmitter& e,
                                            const WarpCtx& ctx) {
    std::mt19937_64 rng(seed ^ (static_cast<std::uint64_t>(ctx.block) *
                                    0x9e3779b97f4a7c15ull +
                                static_cast<std::uint64_t>(ctx.warp_in_block)));
    const int nops = 8 + static_cast<int>(rng() % 12);
    for (int j = 0; j < nops; ++j) {
      switch (rng() % 6) {
        case 0:
          e.ialu(1 + static_cast<int>(rng() % 3), rng() % 2 == 0);
          break;
        case 1:
          e.falu(1, rng() % 2 == 0);
          break;
        case 2:
          e.sync();
          break;
        default: {
          const int a = static_cast<int>(rng() % num_arrays);
          const bool fully_masked = rng() % 13 == 0;
          const LaneIdx idx = e.by_lane([&](int) -> std::int64_t {
            if (fully_masked || rng() % 8 == 0) return kInactiveLane;
            // Unsorted with duplicates: uniform random over the array.
            return static_cast<std::int64_t>(rng() % elems[a]);
          });
          if (written[a] && rng() % 3 == 0) {
            e.store(a, idx, rng() % 2 == 0);
          } else {
            e.load(a, idx, rng() % 2 == 0);
          }
          break;
        }
      }
    }
  };
  return k;
}

TEST(SoaReplay, RandomizedSyntheticTracesMatchLegacy) {
  const GpuArch& arch = kepler_arch();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const KernelInfo k = make_random_kernel(seed);
    const TraceSkeleton skel(k);
    std::mt19937_64 rng(seed * 77ull + 5ull);
    expect_soa_matches_legacy(k, DataPlacement::defaults(k), skel);
    int tried = 0;
    for (int cand = 0; cand < 24 && tried < 8; ++cand) {
      DataPlacement p = DataPlacement::defaults(k);
      for (int a = 0; a < static_cast<int>(k.arrays.size()); ++a) {
        const std::vector<MemSpace> spaces = legal_spaces(k, a, arch);
        p.set(a, spaces[rng() % spaces.size()]);
      }
      if (validate_placement(k, p, arch).has_value()) continue;
      ++tried;
      SCOPED_TRACE("candidate " + std::to_string(cand));
      expect_soa_matches_legacy(k, p, skel);
    }
    EXPECT_GT(tried, 0);
  }
}

// The environment escape hatch must select the same legacy path (and the
// analyzer must latch it at construction, like the other GPUHMS_* knobs).
TEST(SoaReplay, LegacyReplayEnvMatchesSoa) {
  const workloads::BenchmarkCase c = workloads::get_benchmark("matrixmul");
  const TraceSkeleton skel(c.kernel);
  const GpuArch& arch = kepler_arch();
  TraceAnalyzer soa(c.kernel, arch);
  const PlacementEvents a = soa.analyze(c.sample, &skel);
  PlacementEvents b;
  {
    testutil::ScopedEnv env("GPUHMS_LEGACY_REPLAY", "1");
    TraceAnalyzer legacy(c.kernel, arch);
    b = legacy.analyze(c.sample, &skel);
  }
  expect_events_identical(a, b);
}

// End-to-end: predictions (the models consume the events wholesale) must be
// bit-identical across the two replay engines.
TEST(SoaReplay, PredictionsMatchLegacyBitForBit) {
  const workloads::BenchmarkCase c = workloads::get_benchmark("matrixmul");
  Predictor pred(c.kernel, kepler_arch());
  pred.profile_sample(c.sample);
  pred.memoize_trace();
  std::vector<Prediction> soa;
  for (const workloads::PlacementTest& t : c.tests)
    soa.push_back(pred.predict(t.placement));
  testutil::ScopedEnv env("GPUHMS_LEGACY_REPLAY", "1");
  Predictor legacy_pred(c.kernel, kepler_arch());
  legacy_pred.profile_sample(c.sample);
  legacy_pred.memoize_trace();
  for (std::size_t i = 0; i < c.tests.size(); ++i) {
    SCOPED_TRACE(c.tests[i].id);
    const Prediction l = legacy_pred.predict(c.tests[i].placement);
    EXPECT_TRUE(same_bits(soa[i].total_cycles, l.total_cycles));
    EXPECT_TRUE(same_bits(soa[i].t_comp, l.t_comp));
    EXPECT_TRUE(same_bits(soa[i].t_mem, l.t_mem));
    EXPECT_TRUE(same_bits(soa[i].t_overlap, l.t_overlap));
    EXPECT_TRUE(same_bits(soa[i].amat, l.amat));
  }
}

}  // namespace
}  // namespace gpuhms
