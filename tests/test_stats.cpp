#include "common/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gpuhms {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.4);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(1);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStat a_copy = a;
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Cosine, IdenticalVectorsGiveOne) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_NEAR(cosine_similarity(v, v), 1.0, 1e-12);
}

TEST(Cosine, ScaledVectorsGiveOne) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {10.0, 20.0, 30.0};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(Cosine, OrthogonalVectorsGiveZero) {
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {0.0, 1.0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-12);
}

TEST(Cosine, ZeroVectorGivesZero) {
  std::vector<double> a = {0.0, 0.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
}

TEST(Cosine, BoundedForRandomNonNegativeVectors) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> a(8), b(8);
    for (int i = 0; i < 8; ++i) {
      a[static_cast<std::size_t>(i)] = rng.next_double() * 50.0;
      b[static_cast<std::size_t>(i)] = rng.next_double() * 50.0;
    }
    const double c = cosine_similarity(a, b);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
  }
}

TEST(Pearson, PerfectLinearCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {3.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = {9.0, 7.0, 5.0, 3.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Spearman, PerfectMonotoneIsOne) {
  std::vector<double> a = {1.0, 5.0, 3.0, 9.0};
  std::vector<double> b = {10.0, 500.0, 30.0, 100000.0};  // same ordering
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(spearman(a, b), -1.0, 1e-12);
}

TEST(Spearman, TiesShareAverageRank) {
  // a = {1, 2, 2, 3}: ranks {1, 2.5, 2.5, 4}; b strictly increasing.
  std::vector<double> a = {1.0, 2.0, 2.0, 3.0};
  std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  const double rho = spearman(a, b);
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(rho, 1.0);
}

TEST(Spearman, InvariantToMonotoneTransforms) {
  Rng rng(23);
  std::vector<double> a(16), b(16);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.next_double() * 100.0;
    b[i] = a[i] * a[i] + 7.0;  // monotone transform of a
  }
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Spearman, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(spearman({}, {}), 0.0);
  std::vector<double> one = {1.0};
  EXPECT_DOUBLE_EQ(spearman(one, one), 0.0);
}

TEST(MeanStddev, Basics) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.density(2), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(ExponentialBinMass, SumsToOne) {
  const double mean_v = 3.0;
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    total += exponential_bin_mass(mean_v, i * 0.1, (i + 1) * 0.1);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(ExponentialBinMass, DegenerateMean) {
  EXPECT_DOUBLE_EQ(exponential_bin_mass(0.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(exponential_bin_mass(-1.0, 0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace gpuhms
