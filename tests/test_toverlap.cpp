#include "model/toverlap.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "math/linreg.hpp"

namespace gpuhms {
namespace {

PlacementEvents synthetic_events(std::uint64_t g, std::uint64_t c,
                                 std::uint64_t t, std::uint64_t s,
                                 std::uint64_t row_bad) {
  PlacementEvents ev;
  ev.global_transactions = g;
  ev.l2_misses = g / 2;
  ev.const_requests = c;
  ev.const_misses = c / 10;
  ev.tex_requests = t;
  ev.tex_misses = t / 4;
  ev.shared_requests = s;
  ev.shared_conflicts = s / 8;
  ev.row_misses = row_bad / 2;
  ev.row_conflicts = row_bad - row_bad / 2;
  return ev;
}

TEST(ToverlapFeatures, ShapeAndConstantTerm) {
  const auto x = ToverlapModel::features(synthetic_events(100, 0, 0, 0, 20),
                                         32.0);
  ASSERT_EQ(x.size(), ToverlapModel::kNumFeatures);
  EXPECT_DOUBLE_EQ(x.back(), 1.0);
  EXPECT_DOUBLE_EQ(x[5], 0.5);  // 32 / 64 warps
}

TEST(ToverlapFeatures, RatiosNormalizedByTotalEvents) {
  const auto ev = synthetic_events(100, 50, 0, 50, 0);
  const auto x = ToverlapModel::features(ev, 64.0);
  const double r = ev.total_mem_events();
  EXPECT_DOUBLE_EQ(x[0], (50.0 + 100.0) / r);  // l2 misses + global trans
  EXPECT_DOUBLE_EQ(x[1], (5.0 + 50.0) / r);
  EXPECT_DOUBLE_EQ(x[3], (6.0 + 50.0) / r);
}

TEST(ToverlapFeatures, EmptyEventsDontDivideByZero) {
  const auto x = ToverlapModel::features(PlacementEvents{}, 8.0);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(ToverlapModel, UntrainedPredictsZero) {
  ToverlapModel m;
  EXPECT_FALSE(m.trained());
  EXPECT_DOUBLE_EQ(m.overlap_ratio(synthetic_events(10, 0, 0, 0, 0), 32.0),
                   0.0);
}

TEST(ToverlapModel, RecoversLinearGroundTruth) {
  // Generate events whose overlap ratio is an exact linear function of the
  // features; training must recover it.
  std::vector<double> truth = {0.3, -0.1, 0.2, 0.15, -0.25, 0.4, 0.1};
  Rng rng(31);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    const auto ev = synthetic_events(rng.next_below(500) + 1,
                                     rng.next_below(300),
                                     rng.next_below(300),
                                     rng.next_below(300),
                                     rng.next_below(200));
    const auto x = ToverlapModel::features(
        ev, static_cast<double>(rng.next_below(64) + 1));
    xs.push_back(x);
    ys.push_back(dot(x, truth));
  }
  ToverlapModel m;
  ASSERT_TRUE(m.train(xs, ys, 1e-9));
  for (std::size_t i = 0; i < truth.size(); ++i)
    EXPECT_NEAR(m.coefficients()[i], truth[i], 1e-4);
}

TEST(ToverlapModel, PredictionClamped) {
  ToverlapModel m;
  m.set_coefficients({0, 0, 0, 0, 0, 0, 5.0});  // constant ratio 5
  EXPECT_DOUBLE_EQ(m.overlap_ratio(PlacementEvents{}, 1.0), 1.0);
  m.set_coefficients({0, 0, 0, 0, 0, 0, -5.0});
  EXPECT_DOUBLE_EQ(m.overlap_ratio(PlacementEvents{}, 1.0), -0.5);
}

TEST(ToverlapModel, SetCoefficientsMarksTrained) {
  ToverlapModel m;
  m.set_coefficients(std::vector<double>(ToverlapModel::kNumFeatures, 0.1));
  EXPECT_TRUE(m.trained());
}

}  // namespace
}  // namespace gpuhms
