#!/usr/bin/env python3
"""Documentation consistency check (ctest -L docs).

Five guarantees:
  1. Every relative markdown link `[text](path)` in the repo's *.md files
     resolves to an existing file or directory (absolute URLs are
     skipped).
  2. Every `#fragment` on a markdown link — in-page (`#section`) or
     cross-file (`FILE.md#section`) — names a real heading in the target
     file, GitHub-slugged, so a renamed section cannot leave dangling
     anchors.
  3. docs/MODEL_MAP.md only references files that exist: every backtick
     token that looks like a repo path (src/..., tests/..., bench/...,
     examples/..., docs/...) must name a real file, so the equation-to-code
     map cannot silently rot as code moves.
  4. README.md's "Test labels & coverage" list is complete: every ctest
     label registered via LABELS in tests/CMakeLists.txt must appear in
     README.md spelled `-L <label>`, so a new label cannot ship
     undocumented.
  5. Every `GPUHMS_*` environment variable read via getenv in src/ or
     examples/ is documented in README.md or docs/SERVING.md, so an
     operator knob cannot ship undocumented.

Usage: check_docs.py [repo_root]   (default: parent of this script's dir)
Exit 0 when clean, 1 with a per-problem report otherwise.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "bench_build", "third_party", ".claude"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `src/model/tcomp.cpp` or `bench/bench_bnb_scaling.cpp (E19)` etc.
CODE_PATH_RE = re.compile(
    r"`((?:src|tests|bench|examples|docs)/[A-Za-z0-9_./-]+)`")


def find_markdown(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading):
    """GitHub's heading -> anchor slug: lowercase, drop punctuation except
    hyphens/underscores, spaces become hyphens. Backticks and links inside
    the heading contribute their text only."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [t](url) -> t
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md_path):
    """The set of valid anchor slugs in a markdown file, with GitHub's
    -1, -2 suffixes for duplicate headings."""
    anchors = set()
    counts = {}
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence or not line.startswith("#"):
                continue
            m = re.match(r"#{1,6}\s+(.*)", line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_links(md_path, root, anchor_cache):
    problems = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = heading_anchors(path)
        return anchor_cache[path]

    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue  # quoted/example content, not our documentation
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z]+://", target):
                continue  # external URL
            if target.startswith("mailto:"):
                continue
            path, _, fragment = target.partition("#")
            resolved = md_path if not path else os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(md_path, root)}:{lineno}: "
                    f"broken relative link '{target}'")
                continue
            if not fragment or not resolved.endswith(".md"):
                continue
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{os.path.relpath(md_path, root)}:{lineno}: "
                    f"dangling anchor '#{fragment}' — no heading in "
                    f"{os.path.relpath(resolved, root)} slugs to it")
    return problems


def check_model_map(root):
    problems = []
    path = os.path.join(root, "docs", "MODEL_MAP.md")
    if not os.path.exists(path):
        return [f"docs/MODEL_MAP.md is missing (expected at {path})"]
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for ref in CODE_PATH_RE.findall(line):
                if not os.path.exists(os.path.join(root, ref)):
                    problems.append(
                        f"docs/MODEL_MAP.md:{lineno}: "
                        f"references nonexistent file '{ref}'")
    return problems


# `LABELS robustness`, `LABELS "serve;soak;concurrency"`, and the
# `set(_san_... LABELS ...)`-free set_tests_properties spellings all reduce
# to: the token(s) after a LABELS keyword, optionally quoted, ';'-separated.
LABELS_RE = re.compile(r"\bLABELS\s+\"?([A-Za-z0-9;_-]+)\"?")


def check_readme_labels(root):
    problems = []
    cmake_path = os.path.join(root, "tests", "CMakeLists.txt")
    readme_path = os.path.join(root, "README.md")
    if not os.path.exists(cmake_path) or not os.path.exists(readme_path):
        return ["tests/CMakeLists.txt or README.md is missing"]
    with open(cmake_path, encoding="utf-8") as f:
        cmake = f.read()
    labels = set()
    for group in LABELS_RE.findall(cmake):
        labels.update(l for l in group.split(";") if l)
    if not labels:
        return ["tests/CMakeLists.txt: no LABELS found (regex rot?)"]
    with open(readme_path, encoding="utf-8") as f:
        readme = f.read()
    for label in sorted(labels):
        if f"-L {label}" not in readme:
            problems.append(
                f"README.md: ctest label '{label}' (registered in "
                f"tests/CMakeLists.txt) is not documented — add a "
                f"`ctest -L {label}` entry to 'Test labels & coverage'")
    return problems


GETENV_RE = re.compile(r'getenv\(\s*"(GPUHMS_[A-Z0-9_]+)"')


def check_env_vars(root):
    """Every GPUHMS_* variable read in src/ or examples/ must be documented
    in README.md or docs/SERVING.md."""
    problems = []
    read_vars = set()
    for subdir in ("src", "examples"):
        base = os.path.join(root, subdir)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if not name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    continue
                with open(os.path.join(dirpath, name),
                          encoding="utf-8", errors="replace") as f:
                    read_vars.update(GETENV_RE.findall(f.read()))
    if not read_vars:
        return ["no getenv(\"GPUHMS_...\") found in src/ or examples/ "
                "(regex rot?)"]
    docs = ""
    for doc in ("README.md", os.path.join("docs", "SERVING.md")):
        path = os.path.join(root, doc)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as f:
                docs += f.read()
    for var in sorted(read_vars):
        if var not in docs:
            problems.append(
                f"environment variable '{var}' is read in src/ or "
                f"examples/ but documented in neither README.md nor "
                f"docs/SERVING.md")
    return problems


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    problems = []
    md_files = sorted(find_markdown(root))
    anchor_cache = {}
    for md in md_files:
        problems.extend(check_links(md, root, anchor_cache))
    problems.extend(check_model_map(root))
    problems.extend(check_readme_labels(root))
    problems.extend(check_env_vars(root))

    if problems:
        print(f"docs check FAILED ({len(problems)} problem(s)):")
        for p in problems:
            print("  " + p)
        return 1
    print(f"docs check OK: {len(md_files)} markdown files, all relative "
          "links and anchors resolve, MODEL_MAP references exist, every "
          "ctest label and GPUHMS_* env var is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
