#!/usr/bin/env python3
"""Documentation consistency check (ctest -L docs).

Three guarantees:
  1. Every relative markdown link `[text](path)` in the repo's *.md files
     resolves to an existing file or directory (anchors and absolute URLs
     are skipped).
  2. docs/MODEL_MAP.md only references files that exist: every backtick
     token that looks like a repo path (src/..., tests/..., bench/...,
     examples/..., docs/...) must name a real file, so the equation-to-code
     map cannot silently rot as code moves.
  3. README.md's "Test labels & coverage" list is complete: every ctest
     label registered via LABELS in tests/CMakeLists.txt must appear in
     README.md spelled `-L <label>`, so a new label cannot ship
     undocumented.

Usage: check_docs.py [repo_root]   (default: parent of this script's dir)
Exit 0 when clean, 1 with a per-problem report otherwise.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "bench_build", "third_party", ".claude"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `src/model/tcomp.cpp` or `bench/bench_bnb_scaling.cpp (E19)` etc.
CODE_PATH_RE = re.compile(
    r"`((?:src|tests|bench|examples|docs)/[A-Za-z0-9_./-]+)`")


def find_markdown(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_links(md_path, root):
    problems = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue  # quoted/example content, not our documentation
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z]+://", target) or target.startswith("#"):
                continue  # external URL / in-page anchor
            if target.startswith("mailto:"):
                continue
            path = target.split("#", 1)[0]  # strip fragment
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(md_path, root)}:{lineno}: "
                    f"broken relative link '{target}'")
    return problems


def check_model_map(root):
    problems = []
    path = os.path.join(root, "docs", "MODEL_MAP.md")
    if not os.path.exists(path):
        return [f"docs/MODEL_MAP.md is missing (expected at {path})"]
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for ref in CODE_PATH_RE.findall(line):
                if not os.path.exists(os.path.join(root, ref)):
                    problems.append(
                        f"docs/MODEL_MAP.md:{lineno}: "
                        f"references nonexistent file '{ref}'")
    return problems


# `LABELS robustness`, `LABELS "serve;soak;concurrency"`, and the
# `set(_san_... LABELS ...)`-free set_tests_properties spellings all reduce
# to: the token(s) after a LABELS keyword, optionally quoted, ';'-separated.
LABELS_RE = re.compile(r"\bLABELS\s+\"?([A-Za-z0-9;_-]+)\"?")


def check_readme_labels(root):
    problems = []
    cmake_path = os.path.join(root, "tests", "CMakeLists.txt")
    readme_path = os.path.join(root, "README.md")
    if not os.path.exists(cmake_path) or not os.path.exists(readme_path):
        return ["tests/CMakeLists.txt or README.md is missing"]
    with open(cmake_path, encoding="utf-8") as f:
        cmake = f.read()
    labels = set()
    for group in LABELS_RE.findall(cmake):
        labels.update(l for l in group.split(";") if l)
    if not labels:
        return ["tests/CMakeLists.txt: no LABELS found (regex rot?)"]
    with open(readme_path, encoding="utf-8") as f:
        readme = f.read()
    for label in sorted(labels):
        if f"-L {label}" not in readme:
            problems.append(
                f"README.md: ctest label '{label}' (registered in "
                f"tests/CMakeLists.txt) is not documented — add a "
                f"`ctest -L {label}` entry to 'Test labels & coverage'")
    return problems


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    problems = []
    md_files = sorted(find_markdown(root))
    for md in md_files:
        problems.extend(check_links(md, root))
    problems.extend(check_model_map(root))
    problems.extend(check_readme_labels(root))

    if problems:
        print(f"docs check FAILED ({len(problems)} problem(s)):")
        for p in problems:
            print("  " + p)
        return 1
    print(f"docs check OK: {len(md_files)} markdown files, all relative "
          "links resolve, MODEL_MAP references exist, every ctest label "
          "is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
