#include "baselines/hong_kim.hpp"
#include "baselines/porple.hpp"
#include "baselines/sim2012.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

TEST(HongKim, PureComputeScalesWithWarps) {
  HongKimInputs in;
  in.comp_cycles_per_warp = 100.0;
  in.mem_insts_per_warp = 0.0;
  in.n_warps = 8.0;
  EXPECT_DOUBLE_EQ(hong_kim_cycles(in), 800.0);
}

TEST(HongKim, MemoryBoundDominatedByLatencyOverMwp) {
  HongKimInputs in;
  in.comp_cycles_per_warp = 10.0;
  in.mem_insts_per_warp = 10.0;
  in.mem_lat = 400.0;
  in.n_warps = 32.0;
  in.mwp = 4.0;
  in.cwp = 32.0;  // CWP >= MWP: memory bound
  const double t = hong_kim_cycles(in);
  EXPECT_NEAR(t, 10.0 * 400.0 * 32.0 / 4.0, 10.0);
}

TEST(HongKim, ComputeBoundHidesMemory) {
  HongKimInputs in;
  in.comp_cycles_per_warp = 1000.0;
  in.mem_insts_per_warp = 2.0;
  in.mem_lat = 100.0;
  in.n_warps = 16.0;
  in.mwp = 16.0;
  in.cwp = 2.0;  // MWP > CWP: compute bound
  EXPECT_DOUBLE_EQ(hong_kim_cycles(in), 1000.0 * 16.0 + 100.0);
}

TEST(HongKim, FewWarpsExposeLatency) {
  HongKimInputs in;
  in.comp_cycles_per_warp = 10.0;
  in.mem_insts_per_warp = 5.0;
  in.mem_lat = 400.0;
  in.n_warps = 2.0;
  in.mwp = 8.0;
  in.cwp = 16.0;
  // N < MWP and N < CWP: latency exposed each period.
  EXPECT_DOUBLE_EQ(hong_kim_cycles(in), 5.0 * (400.0 + 2.0 * 2.0));
}

TEST(HongKim, MoreWarpsNeverSlower) {
  for (double mem_lat : {100.0, 400.0, 800.0}) {
    HongKimInputs in;
    in.comp_cycles_per_warp = 50.0;
    in.mem_insts_per_warp = 5.0;
    in.mem_lat = mem_lat;
    in.mwp = 4.0;
    in.cwp = 6.0;
    double per_warp_prev = 1e18;
    for (double n : {2.0, 8.0, 32.0}) {
      in.n_warps = n;
      const double per_warp = hong_kim_cycles(in) / n;
      EXPECT_LE(per_warp, per_warp_prev * 1.01);
      per_warp_prev = per_warp;
    }
  }
}

TEST(Sim2012, SelfPredictionAnchorsExactly) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  Sim2012Predictor pred(k, kepler_arch());
  pred.profile_sample(sample);
  EXPECT_NEAR(pred.predict(sample).total_cycles,
              static_cast<double>(pred.sample_result().cycles), 1.0);
}

TEST(Sim2012, IssuedEqualsExecuted) {
  // The defining simplification: no replay accounting.
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  Sim2012Predictor pred(k, kepler_arch());
  pred.profile_sample(sample);
  const auto p = pred.predict(sample.with(0, MemSpace::Constant));
  EXPECT_DOUBLE_EQ(p.inst.replays_total, 0.0);
  EXPECT_DOUBLE_EQ(p.inst.issued_total, p.inst.executed_total);
}

TEST(Sim2012, InstructionsFrozenAcrossPlacements) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  Sim2012Predictor pred(k, kepler_arch());
  pred.profile_sample(sample);
  const auto p1 = pred.predict(sample.with(0, MemSpace::Texture1D));
  const auto p2 = pred.predict(sample.with(0, MemSpace::Shared));
  EXPECT_DOUBLE_EQ(p1.inst.issued_total, p2.inst.issued_total);
}

TEST(Porple, CostPositiveAndPlacementSensitive) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto base = DataPlacement::defaults(k);
  const double cg = porple_cost(k, base, kepler_arch());
  const double ct =
      porple_cost(k, base.with(0, MemSpace::Texture1D), kepler_arch());
  EXPECT_GT(cg, 0.0);
  EXPECT_NE(cg, ct);
}

TEST(Porple, SharedLooksFreeToIt) {
  // PORPLE's blind spot: it prices shared accesses at the flat latency with
  // no staging or conflicts, so moving a hot array to shared always looks
  // attractive.
  const KernelInfo k = workloads::make_neuralnet(32, 64, 64);
  const auto base = DataPlacement::defaults(k);
  const int iw = k.array_index("weights");
  const double cg = porple_cost(k, base, kepler_arch());
  const double cs = porple_cost(k, base.with(iw, MemSpace::Shared),
                                kepler_arch());
  EXPECT_LT(cs, cg);
}

TEST(Porple, DeterministicScores) {
  const auto bench = workloads::get_benchmark("stencil2d");
  const double c1 = porple_cost(bench.kernel, bench.sample, kepler_arch());
  const double c2 = porple_cost(bench.kernel, bench.sample, kepler_arch());
  EXPECT_DOUBLE_EQ(c1, c2);
}

}  // namespace
}  // namespace gpuhms
