// Crash-consistent record journal: round-trip, the prefix-after-crash
// property (every byte truncation of a valid journal reads back as a clean
// prefix, never UB or a propagated error), atomic creation, torn-tail
// repair via open_for_append, and both journal.* fault sites.
#include "common/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"

namespace gpuhms {
namespace {

class Journal : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "journal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jnl";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    fault::disarm_all();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string read_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void write_bytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST_F(Journal, RoundTripsRecordsInOrder) {
  const std::vector<std::string> payloads = {
      "first", std::string("\x00\x01\xff binary \n", 12), "", "last"};
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok()) << w.status().to_string();
    for (const std::string& p : payloads)
      ASSERT_TRUE(w->append(p).ok());
  }
  const auto r = journal::read_records(path_);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_FALSE(r->tail_truncated);
  EXPECT_EQ(r->records, payloads);
  EXPECT_EQ(r->valid_bytes, read_bytes().size());
}

TEST_F(Journal, CreateIsAtomicNoTmpFileLeftAndExistingFileReplaced) {
  write_bytes("previous contents, not a journal");
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("fresh").ok());
  }
  EXPECT_FALSE(journal::exists(path_ + ".tmp"));
  const auto r = journal::read_records(path_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "fresh");
}

// The crash model: a SIGKILL mid-append leaves a byte prefix of the file.
// EVERY prefix length must read back as some clean record prefix — shorter
// prefixes lose the tail record (tail_truncated when partially present),
// none are errors, none crash.
TEST_F(Journal, EveryByteTruncationReadsBackAsACleanPrefix) {
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("record-one").ok());
    ASSERT_TRUE(w->append("record-two-longer").ok());
    ASSERT_TRUE(w->append("r3").ok());
  }
  const std::string full = read_bytes();
  const std::size_t magic = journal::kMagic.size();
  std::size_t prev_count = 0;
  for (std::size_t cut = magic; cut <= full.size(); ++cut) {
    SCOPED_TRACE(cut);
    write_bytes(full.substr(0, cut));
    const auto r = journal::read_records(path_);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_LE(r->records.size(), 3u);
    EXPECT_GE(r->records.size(), prev_count);  // monotone in prefix length
    prev_count = r->records.size();
    EXPECT_LE(r->valid_bytes, cut);
    // Extra bytes past the valid prefix <=> a torn tail was reported.
    EXPECT_EQ(r->tail_truncated, r->valid_bytes != cut);
  }
  EXPECT_EQ(prev_count, 3u);  // the untruncated journal reads every record
}

TEST_F(Journal, TruncationBelowMagicIsDataLossNotACrash) {
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("x").ok());
  }
  const std::string full = read_bytes();
  for (std::size_t cut = 0; cut < journal::kMagic.size(); ++cut) {
    SCOPED_TRACE(cut);
    write_bytes(full.substr(0, cut));
    const auto r = journal::read_records(path_);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
}

TEST_F(Journal, CorruptedPayloadByteIsDetectedByChecksum) {
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("aaaa").ok());
    ASSERT_TRUE(w->append("bbbb").ok());
  }
  std::string bytes = read_bytes();
  bytes.back() ^= 0x5a;  // flip a bit inside the LAST record's payload
  write_bytes(bytes);
  const auto r = journal::read_records(path_);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->tail_truncated);
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0], "aaaa");
  EXPECT_NE(r->tail_error.find("checksum"), std::string::npos)
      << r->tail_error;
}

TEST_F(Journal, OpenForAppendRepairsTornTailAndContinues) {
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("keep").ok());
    ASSERT_TRUE(w->append("torn").ok());
  }
  std::string bytes = read_bytes();
  write_bytes(bytes.substr(0, bytes.size() - 2));  // tear the last record
  const auto torn = journal::read_records(path_);
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(torn->tail_truncated);
  {
    auto w = journal::Writer::open_for_append(path_, torn->valid_bytes);
    ASSERT_TRUE(w.ok()) << w.status().to_string();
    ASSERT_TRUE(w->append("appended-after-repair").ok());
  }
  const auto r = journal::read_records(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->tail_truncated);
  EXPECT_EQ(r->records,
            (std::vector<std::string>{"keep", "appended-after-repair"}));
}

TEST_F(Journal, NotAJournalIsDataLoss) {
  write_bytes("definitely not the journal magic bytes");
  const auto r = journal::read_records(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(Journal, AppendAfterCloseIsFailedPrecondition) {
  auto w = journal::Writer::create(path_);
  ASSERT_TRUE(w.ok());
  w->close();
  const Status st = w->append("late");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(Journal, OversizeRecordRefusedWithoutTouchingTheFile) {
  auto w = journal::Writer::create(path_);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->append("small").ok());
  const std::string huge(journal::kMaxRecordBytes + 1ull, 'x');
  const Status st = w->append(huge);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  w->close();
  const auto r = journal::read_records(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->tail_truncated);  // the refused append wrote nothing
  EXPECT_EQ(r->records, std::vector<std::string>{"small"});
}

// --- fault sites -------------------------------------------------------------

TEST_F(Journal, WriteFaultFailsTheAppendWithDataLossAndKeepsThePrefix) {
  auto w = journal::Writer::create(path_);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->append("before").ok());
  fault::arm("journal.write", 1);
  const Status st = w->append("lost");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("journal.write"), std::string::npos);
  // One-shot: the next append lands, and the lost record is simply absent.
  ASSERT_TRUE(w->append("after").ok());
  w->close();
  const auto r = journal::read_records(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records, (std::vector<std::string>{"before", "after"}));
}

TEST_F(Journal, ReadFaultDrivesTheTornTailPathOnAValidJournal) {
  {
    auto w = journal::Writer::create(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("one").ok());
    ASSERT_TRUE(w->append("two").ok());
  }
  fault::arm("journal.read", 2);  // miscompare the SECOND record's checksum
  const auto faulted = journal::read_records(path_);
  ASSERT_TRUE(faulted.ok()) << faulted.status().to_string();
  EXPECT_TRUE(faulted->tail_truncated);
  EXPECT_EQ(faulted->records, std::vector<std::string>{"one"});
  // One-shot: a clean re-read sees everything.
  const auto clean = journal::read_records(path_);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->tail_truncated);
  EXPECT_EQ(clean->records, (std::vector<std::string>{"one", "two"}));
}

}  // namespace
}  // namespace gpuhms
