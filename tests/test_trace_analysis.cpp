#include "model/trace_analysis.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

TEST(TraceAnalysis, CountsMatchSimulatorForDefaultVecadd) {
  // The analysis shares the coalescer and cache classes with the simulator;
  // its order-insensitive counts (executed instructions, transactions,
  // replay causes 1-4) must agree with the simulator's measured counters.
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto p = DataPlacement::defaults(k);
  const auto sim = simulate(k, p);
  const auto ev = analyze_trace(k, p, kepler_arch());
  EXPECT_EQ(ev.insts_executed, sim.counters.inst_executed);
  EXPECT_EQ(ev.global_transactions, sim.counters.global_transactions);
  EXPECT_EQ(ev.replay_global_divergence,
            sim.counters.replay_global_divergence);
  EXPECT_EQ(ev.shared_requests, sim.counters.shared_requests);
  EXPECT_EQ(ev.mem_insts, sim.counters.ldst_executed);
}

TEST(TraceAnalysis, RowOutcomesSumToDramRequests) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch());
  EXPECT_EQ(ev.row_hits + ev.row_misses + ev.row_conflicts, ev.dram_requests);
  EXPECT_GT(ev.dram_requests, 0u);
}

TEST(TraceAnalysis, BankStreamsCoverAllRequests) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch());
  std::uint64_t total = 0;
  for (const auto& b : ev.banks) total += b.count;
  EXPECT_EQ(total, ev.dram_requests);
}

TEST(TraceAnalysis, EvenDistributionSpreadsUniformly) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  AnalysisOptions opts;
  opts.even_bank_distribution = true;
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch(),
                                opts);
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& b : ev.banks) {
    lo = std::min(lo, b.count);
    hi = std::max(hi, b.count);
  }
  EXPECT_LE(hi - lo, 1u);  // round-robin is perfectly even
}

TEST(TraceAnalysis, PlacementChangesEventMix) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto base = DataPlacement::defaults(k);
  const auto ev_g = analyze_trace(k, base, kepler_arch());
  const auto ev_t = analyze_trace(
      k, base.with(k.array_index("a"), MemSpace::Texture1D), kepler_arch());
  const auto ev_c = analyze_trace(
      k, base.with(k.array_index("a"), MemSpace::Constant), kepler_arch());
  EXPECT_GT(ev_t.tex_requests, 0u);
  EXPECT_EQ(ev_g.tex_requests, 0u);
  EXPECT_GT(ev_c.const_requests, 0u);
  EXPECT_LT(ev_t.global_transactions, ev_g.global_transactions);
  // Texture addressing saves integer instructions (2 -> 0 per reference).
  EXPECT_LT(ev_t.insts_executed, ev_g.insts_executed);
  EXPECT_LT(ev_t.addr_calc_insts, ev_g.addr_calc_insts);
}

TEST(TraceAnalysis, SharedPlacementAddsStagingWork) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto base = DataPlacement::defaults(k);
  const auto ev_g = analyze_trace(k, base, kepler_arch());
  const auto ev_s = analyze_trace(
      k, base.with(k.array_index("a"), MemSpace::Shared), kepler_arch());
  EXPECT_GT(ev_s.shared_requests, 0u);
  EXPECT_GT(ev_s.insts_executed, ev_g.insts_executed);
  EXPECT_GT(ev_s.sync_insts, 0u);
}

TEST(TraceAnalysis, IlpAndMlpWithinBounds) {
  for (const char* name : {"vecadd", "md", "spmv"}) {
    const auto bench = workloads::get_benchmark(
        name == std::string("vecadd") ? "md" : name);
    const auto ev =
        analyze_trace(bench.kernel, bench.sample, kepler_arch());
    EXPECT_GE(ev.ilp, 1.0);
    EXPECT_LE(ev.ilp, 16.0);
    EXPECT_GE(ev.mlp, 1.0);
    EXPECT_LE(ev.mlp, 8.0);
  }
}

TEST(TraceAnalysis, TickCountEqualsInstructions) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch());
  EXPECT_EQ(ev.trace_ticks, ev.insts_executed);
}

TEST(TraceAnalysis, DeterministicAcrossCalls) {
  const auto bench = workloads::get_benchmark("spmv");
  const auto e1 = analyze_trace(bench.kernel, bench.sample, kepler_arch());
  const auto e2 = analyze_trace(bench.kernel, bench.sample, kepler_arch());
  EXPECT_EQ(e1.dram_requests, e2.dram_requests);
  EXPECT_EQ(e1.row_conflicts, e2.row_conflicts);
  EXPECT_EQ(e1.insts_executed, e2.insts_executed);
}

}  // namespace
}  // namespace gpuhms
