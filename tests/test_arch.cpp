#include "arch/gpu_arch.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

TEST(MemSpace, Properties) {
  EXPECT_TRUE(is_offchip(MemSpace::Global));
  EXPECT_TRUE(is_offchip(MemSpace::Constant));
  EXPECT_TRUE(is_offchip(MemSpace::Texture1D));
  EXPECT_TRUE(is_offchip(MemSpace::Texture2D));
  EXPECT_FALSE(is_offchip(MemSpace::Shared));

  EXPECT_TRUE(is_texture(MemSpace::Texture1D));
  EXPECT_TRUE(is_texture(MemSpace::Texture2D));
  EXPECT_FALSE(is_texture(MemSpace::Global));

  EXPECT_TRUE(is_device_writable(MemSpace::Global));
  EXPECT_TRUE(is_device_writable(MemSpace::Shared));
  EXPECT_FALSE(is_device_writable(MemSpace::Constant));
  EXPECT_FALSE(is_device_writable(MemSpace::Texture1D));
  EXPECT_FALSE(is_device_writable(MemSpace::Texture2D));
}

TEST(MemSpace, ShortCodesMatchTableIV) {
  EXPECT_EQ(short_code(MemSpace::Global), "G");
  EXPECT_EQ(short_code(MemSpace::Shared), "S");
  EXPECT_EQ(short_code(MemSpace::Constant), "C");
  EXPECT_EQ(short_code(MemSpace::Texture1D), "T");
  EXPECT_EQ(short_code(MemSpace::Texture2D), "2T");
}

TEST(DType, Sizes) {
  EXPECT_EQ(dtype_size(DType::F32), 4u);
  EXPECT_EQ(dtype_size(DType::F64), 8u);
  EXPECT_EQ(dtype_size(DType::I32), 4u);
}

TEST(GpuArch, KeplerDefaults) {
  const GpuArch& a = kepler_arch();
  EXPECT_EQ(a.num_sms, 13);
  EXPECT_EQ(a.warp_size, 32);
  EXPECT_EQ(a.total_banks(), a.dram_channels * a.banks_per_channel);
  EXPECT_EQ(a.total_banks(), 128);
}

TEST(GpuArch, UnloadedLatencyOrdering) {
  // The hit < miss < conflict ordering is what Algorithm 1 exploits; the
  // magnitudes mirror the paper's 352/742/1008 ns K80 measurements.
  const GpuArch& a = kepler_arch();
  EXPECT_LT(a.unloaded_row_hit(), a.unloaded_row_miss());
  EXPECT_LT(a.unloaded_row_miss(), a.unloaded_row_conflict());
  EXPECT_EQ(a.unloaded_row_hit(), 352u);
  EXPECT_EQ(a.unloaded_row_miss(), 742u);
  EXPECT_EQ(a.unloaded_row_conflict(), 1008u);
  // The paper reports up to 110% hit-to-miss latency variation.
  const double variation =
      static_cast<double>(a.unloaded_row_miss()) /
          static_cast<double>(a.unloaded_row_hit()) - 1.0;
  EXPECT_NEAR(variation, 1.10, 0.05);
}

TEST(GpuArch, CacheConfigsDivideEvenly) {
  const GpuArch& a = kepler_arch();
  EXPECT_EQ(a.l2_capacity % (a.cache_line * a.l2_ways), 0u);
  EXPECT_EQ(a.const_cache_capacity % (a.cache_line * a.const_cache_ways), 0u);
  EXPECT_EQ(a.tex_cache_capacity % (a.cache_line * a.tex_cache_ways), 0u);
}

}  // namespace
}  // namespace gpuhms
