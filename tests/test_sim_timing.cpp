// Golden timing-semantics tests: tiny hand-built kernels whose cycle counts
// can be derived on paper pin down the simulator's issue/dependency/replay
// timing rules, so substrate changes that alter semantics (not just
// constants) are caught immediately.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace gpuhms {
namespace {

// One block, one warp.
KernelInfo single_warp(WarpFn fn,
                       std::vector<ArrayDecl> arrays = {}) {
  KernelInfo k;
  k.name = "timing";
  k.num_blocks = 1;
  k.threads_per_block = 32;
  k.arrays = std::move(arrays);
  k.fn = std::move(fn);
  return k;
}

ArrayDecl global_array() {
  return ArrayDecl{.name = "g", .dtype = DType::F32, .elems = 1 << 16};
}

TEST(SimTiming, SingleIaluFinishesAtPipelineLatency) {
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) { em.ialu(1); });
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.cycles, kepler_arch().ialu_lat);
}

TEST(SimTiming, IndependentOpsPipelineBackToBack) {
  // Issue at t=0,1,2,3: last completes at 3 + lat.
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) { em.ialu(4); });
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.cycles, 3 + kepler_arch().ialu_lat);
}

TEST(SimTiming, DependentChainSerializes) {
  // Each op waits for the previous completion: 3 x lat.
  const KernelInfo k = single_warp([](WarpEmitter& em, const WarpCtx&) {
    em.falu(1);
    em.falu(1, true);
    em.falu(1, true);
  });
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.cycles, 3 * kepler_arch().falu_lat);
}

TEST(SimTiming, DoublePrecisionOccupiesTwoSlots) {
  // dalu at t=0 takes 2 slots; next dalu issues at t=2; etc.
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) { em.dalu(3); });
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.cycles, 2 * 2 + kepler_arch().dalu_lat);
  EXPECT_EQ(r.counters.issue_slots, 6u);
}

TEST(SimTiming, ColdGlobalLoadPaysL2PlusDramMiss) {
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) {
        em.load(0, em.linear(0));
        em.falu(1, true);  // consumer exposes the load latency
      },
      {global_array()});
  const auto r = simulate(k, DataPlacement::defaults(k));
  const GpuArch& a = kepler_arch();
  // Lowering: 2 addr IALUs (t=0,1), LD issues at t=2 (dep on addr calc at
  // t=1 completes t=1+9=10 -> LD at t=10), data back at 10 + hit_lat +
  // unloaded miss, consumer adds falu_lat.
  const std::uint64_t ld_issue = 1 + a.ialu_lat;
  EXPECT_EQ(r.cycles,
            ld_issue + a.cache_hit_lat + a.unloaded_row_miss() + a.falu_lat);
}

TEST(SimTiming, SecondLoadSameLineHitsL2) {
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) {
        em.load(0, em.linear(0));
        em.falu(1, true);
        em.load(0, em.linear(0));
        em.falu(1, true);
      },
      {global_array()});
  const auto r = simulate(k, DataPlacement::defaults(k));
  EXPECT_EQ(r.counters.l2_misses, 1u);
  EXPECT_EQ(r.dram.total_requests, 1u);
}

TEST(SimTiming, SharedLoadLatency) {
  ArrayDecl s{.name = "s", .dtype = DType::F32, .elems = 1024,
              .written = true, .shared_slice_elems = 1024,
              .default_space = MemSpace::Shared};
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) {
        em.load(0, em.linear(0));
        em.falu(1, true);
      },
      {s});
  const auto r = simulate(k, DataPlacement::defaults(k));
  const GpuArch& a = kepler_arch();
  // 1 addr IALU (t=0, completes 9) -> LDS at 9, data at 9 + shared_lat,
  // falu adds falu_lat.
  EXPECT_EQ(r.cycles, a.ialu_lat + a.shared_lat + a.falu_lat);
}

TEST(SimTiming, BankConflictSerializesSharedAccess) {
  ArrayDecl s{.name = "s", .dtype = DType::F32, .elems = 8192,
              .written = true, .shared_slice_elems = 8192,
              .default_space = MemSpace::Shared};
  auto make = [&](std::int64_t stride) {
    return single_warp(
        [stride](WarpEmitter& em, const WarpCtx&) {
          em.load(0, em.by_lane([&](int l) { return l * stride; }));
          em.falu(1, true);
        },
        {s});
  };
  const auto fast = simulate(make(1), DataPlacement::defaults(make(1)));
  const auto slow = simulate(make(32), DataPlacement::defaults(make(32)));
  const GpuArch& a = kepler_arch();
  // The dependent consumer waits on the serialized access; the 31 replay
  // slots are hidden under that wait.
  EXPECT_EQ(slow.cycles - fast.cycles, 31 * a.shared_conflict_penalty);
  EXPECT_EQ(slow.counters.issue_slots - fast.counters.issue_slots, 31u);
}

TEST(SimTiming, ReplaySlotsDelaySubsequentIssue) {
  // A 32-transaction divergent load occupies 32 issue slots; an independent
  // IALU behind it issues 32 cycles later than behind a coalesced load.
  auto make = [&](bool divergent) {
    return single_warp(
        [divergent](WarpEmitter& em, const WarpCtx&) {
          em.load(0, em.by_lane([&](int l) {
            return divergent ? std::int64_t{l} * 64 : std::int64_t{l};
          }));
          em.ialu(1);  // independent of the load
        },
        {global_array()});
  };
  const auto kc = make(false);
  const auto kd = make(true);
  const auto rc = simulate(kc, DataPlacement::defaults(kc));
  const auto rd = simulate(kd, DataPlacement::defaults(kd));
  EXPECT_EQ(rd.counters.issue_slots - rc.counters.issue_slots, 31u);
}

TEST(SimTiming, StoresDoNotBlockTheWarp) {
  // A store followed by independent compute: the compute issues right
  // behind the store regardless of DRAM state.
  const KernelInfo k = single_warp(
      [](WarpEmitter& em, const WarpCtx&) {
        em.store(0, em.linear(0), false);
        em.ialu(1);
      },
      {[] {
        auto a = global_array();
        a.written = true;
        return a;
      }()});
  const auto r = simulate(k, DataPlacement::defaults(k));
  const GpuArch& a = kepler_arch();
  // 2 addr IALUs (0,1), ST at 1+9=10 (dep), IALU at 11, completes 11+9.
  EXPECT_EQ(r.cycles, 1 + a.ialu_lat + 1 + a.ialu_lat);
}

TEST(SimTiming, BarrierWaitsForSlowestWarp) {
  // Warp 0 runs a long dependent chain before the barrier; warp 1 reaches
  // it immediately; both finish with one IALU after release.
  KernelInfo k;
  k.name = "barrier";
  k.num_blocks = 1;
  k.threads_per_block = 64;
  k.fn = [](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.warp_in_block == 0) {
      em.falu(1);
      for (int i = 0; i < 9; ++i) em.falu(1, true);
    } else {
      em.ialu(1);
    }
    em.sync();
    em.ialu(1);
  };
  const auto r = simulate(k, DataPlacement::defaults(k));
  const GpuArch& a = kepler_arch();
  // Warp 0's chain: 10 dependent falu ≈ 10 * falu_lat (first issues at 1,
  // since warp 1's ialu shares the issue port); sync released right after.
  EXPECT_GE(r.cycles, 10 * a.falu_lat);
  EXPECT_LE(r.cycles, 10 * a.falu_lat + 2 * a.ialu_lat + 8);
}

}  // namespace
}  // namespace gpuhms
