#include "sim/coalesce.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

TraceOp mem_op(std::uint32_t mask,
               const std::function<std::int64_t(int)>& addr) {
  TraceOp op;
  op.cls = OpClass::Load;
  op.active_mask = mask;
  for (int l = 0; l < kWarpSize; ++l)
    op.addr[static_cast<std::size_t>(l)] = addr(l);
  return op;
}

TEST(Coalesce, FullyCoalescedWarpIsOneLine) {
  const auto op = mem_op(0xffffffffu, [](int l) { return 0x1000 + l * 4; });
  std::vector<std::uint64_t> lines;
  coalesce_lines(op, 128, lines);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalesce, StridedAccessSplits) {
  const auto op = mem_op(0xffffffffu, [](int l) { return l * 128; });
  std::vector<std::uint64_t> lines;
  coalesce_lines(op, 128, lines);
  EXPECT_EQ(lines.size(), 32u);
}

TEST(Coalesce, StraddlingTwoLines) {
  const auto op = mem_op(0xffffffffu, [](int l) { return 0x1040 + l * 4; });
  std::vector<std::uint64_t> lines;
  coalesce_lines(op, 128, lines);
  EXPECT_EQ(lines.size(), 2u);
}

TEST(Coalesce, InactiveLanesIgnored) {
  const auto op = mem_op(0x1u, [](int l) { return l * 4096; });
  std::vector<std::uint64_t> lines;
  coalesce_lines(op, 128, lines);
  EXPECT_EQ(lines.size(), 1u);
}

TEST(Coalesce, OutputIsSortedUnique) {
  const auto op = mem_op(0xffffffffu, [](int l) {
    return ((l * 7) % 4) * 128;  // duplicates across 4 lines
  });
  std::vector<std::uint64_t> lines;
  coalesce_lines(op, 128, lines);
  ASSERT_EQ(lines.size(), 4u);
  for (std::size_t i = 1; i < lines.size(); ++i)
    EXPECT_LT(lines[i - 1], lines[i]);
}

TEST(DistinctWords, BroadcastIsOne) {
  const auto op = mem_op(0xffffffffu, [](int) { return 0x2000; });
  EXPECT_EQ(distinct_words(op), 1);
}

TEST(DistinctWords, FullDivergence) {
  const auto op = mem_op(0xffffffffu, [](int l) { return 0x2000 + l * 4; });
  EXPECT_EQ(distinct_words(op), 32);
}

TEST(DistinctWords, SubWordAccessesShareWords) {
  // Two lanes per 4 B word.
  const auto op = mem_op(0xffffffffu, [](int l) { return l * 2; });
  EXPECT_EQ(distinct_words(op), 16);
}

TEST(SharedConflict, ConflictFreeUnitStride) {
  const auto op = mem_op(0xffffffffu, [](int l) { return l * 4; });
  EXPECT_EQ(shared_conflict_degree(op, 32), 1);
}

TEST(SharedConflict, BroadcastIsConflictFree) {
  const auto op = mem_op(0xffffffffu, [](int) { return 64; });
  EXPECT_EQ(shared_conflict_degree(op, 32), 1);
}

TEST(SharedConflict, PowerOfTwoStrideConflicts) {
  // Stride of 2 words: lanes l and l+16 share bank (2l mod 32).
  const auto op = mem_op(0xffffffffu, [](int l) { return l * 8; });
  EXPECT_EQ(shared_conflict_degree(op, 32), 2);
}

TEST(SharedConflict, WorstCaseStride32) {
  // All lanes in bank 0 with distinct words: 32-way conflict.
  const auto op = mem_op(0xffffffffu, [](int l) { return l * 32 * 4; });
  EXPECT_EQ(shared_conflict_degree(op, 32), 32);
}

TEST(SharedConflict, PartialWarp) {
  const auto op = mem_op(0xfu, [](int l) { return l * 32 * 4; });
  EXPECT_EQ(shared_conflict_degree(op, 32), 4);
}

// Parameterized sweep over power-of-two strides: degree == min(stride, 32)
// for distinct-word strided access, the classic bank-conflict formula.
class ConflictStride : public ::testing::TestWithParam<int> {};

TEST_P(ConflictStride, MatchesClassicFormula) {
  const int stride = GetParam();
  const auto op =
      mem_op(0xffffffffu, [&](int l) { return l * stride * 4; });
  EXPECT_EQ(shared_conflict_degree(op, 32), std::min(stride, 32));
}

INSTANTIATE_TEST_SUITE_P(Strides, ConflictStride,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace gpuhms
