// End-to-end protocol tests for the serving layer (src/serve): request
// handling, structured error responses, admission control, deadline plumbing,
// the shutdown handshake, response determinism across thread counts, and the
// PR acceptance pipeline (100 mixed requests, in order, cache hit-rate > 0).
#include <cstdio>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/arch_registry.hpp"
#include "kernel/placement.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

serve::Json parse_ok(const std::string& line) {
  StatusOr<serve::Json> parsed = serve::Json::parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *std::move(parsed) : serve::Json::object();
}

// Response must be {"ok":false,"error":{"code":<code>,...}}.
void expect_error(const std::string& line, std::string_view code) {
  const serve::Json r = parse_ok(line);
  ASSERT_NE(r.find("ok"), nullptr) << line;
  EXPECT_FALSE(r.find("ok")->as_bool()) << line;
  const serve::Json* error = r.find("error");
  ASSERT_NE(error, nullptr) << line;
  EXPECT_EQ(error->find("code")->as_string(), code) << line;
  EXPECT_FALSE(error->find("message")->as_string().empty()) << line;
}

std::string predict_line(int id, const std::string& benchmark,
                         const std::string& placement) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"predict\",\"benchmark\":\"" +
         benchmark + "\",\"placement\":\"" + placement + "\"}";
}

std::vector<std::string> legal_placement_strings(const std::string& benchmark,
                                                 std::size_t cap) {
  const workloads::BenchmarkCase bench = workloads::get_benchmark(benchmark);
  std::vector<std::string> out;
  for (const DataPlacement& p :
       enumerate_placements(bench.kernel, kepler_arch(), cap))
    out.push_back(p.to_string());
  return out;
}

TEST(Serve, PredictHappyPathIsBitIdenticalOnRepeat) {
  serve::PredictionService service{serve::ServeOptions{}};
  const std::string line = predict_line(1, "triad", "G,G,G");
  const std::string first = service.handle_line(line);
  const std::string second = service.handle_line(line);
  EXPECT_EQ(first, second);  // cache hit must not change a single byte

  const serve::Json r = parse_ok(first);
  EXPECT_TRUE(r.find("ok")->as_bool()) << first;
  EXPECT_EQ(r.find("id")->as_number(), 1.0);
  EXPECT_EQ(r.find("op")->as_string(), "predict");
  EXPECT_EQ(r.find("benchmark")->as_string(), "triad");
  EXPECT_EQ(r.find("placement")->as_string(), "G,G,G");
  EXPECT_GT(r.find("predicted_cycles")->as_number(), 0.0);
  EXPECT_GT(r.find("t_comp")->as_number(), 0.0);
  ASSERT_NE(r.find("t_mem"), nullptr);
  ASSERT_NE(r.find("t_overlap"), nullptr);
  ASSERT_NE(r.find("queue_saturated"), nullptr);

  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.predictions, 2u);
  EXPECT_EQ(stats.prediction_cache.hits, 1u);
  EXPECT_EQ(stats.prediction_cache.misses, 1u);
}

TEST(Serve, PredictBatchMatchesSinglePredicts) {
  const std::vector<std::string> placements =
      legal_placement_strings("triad", 6);
  ASSERT_GE(placements.size(), 3u);

  serve::PredictionService batch_service{serve::ServeOptions{}};
  std::string line = R"({"id":1,"op":"predict_batch","benchmark":"triad",)"
                     R"("placements":[)";
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (i) line += ",";
    line += "\"" + placements[i] + "\"";
  }
  line += "]}";
  const serve::Json batch = parse_ok(batch_service.handle_line(line));
  ASSERT_TRUE(batch.find("ok")->as_bool());
  const serve::Json* results = batch.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), placements.size());
  EXPECT_EQ(batch_service.stats().batch_calls, 1u);  // one coalesced call

  serve::PredictionService single_service{serve::ServeOptions{}};
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const serve::Json single = parse_ok(single_service.handle_line(
        predict_line(static_cast<int>(i), "triad", placements[i])));
    ASSERT_TRUE(single.find("ok")->as_bool());
    EXPECT_EQ(results->at(i).find("predicted_cycles")->as_number(),
              single.find("predicted_cycles")->as_number())
        << placements[i];
    EXPECT_EQ(results->at(i).find("placement")->as_string(), placements[i]);
  }
}

TEST(Serve, MalformedRequestsGetStructuredErrors) {
  serve::PredictionService service{serve::ServeOptions{}};
  expect_error(service.handle_line("not json at all"), "INVALID_ARGUMENT");
  expect_error(service.handle_line("{\"op\":\"predict\""), "INVALID_ARGUMENT");
  expect_error(service.handle_line("[1,2,3]"), "INVALID_ARGUMENT");
  expect_error(service.handle_line("{}"), "INVALID_ARGUMENT");  // missing op
  expect_error(service.handle_line(R"({"op":42})"), "INVALID_ARGUMENT");
  expect_error(service.handle_line(R"({"op":"frobnicate"})"),
               "INVALID_ARGUMENT");
  expect_error(service.handle_line(R"({"op":"predict"})"), "INVALID_ARGUMENT");
  expect_error(
      service.handle_line(
          R"({"op":"predict","benchmark":"nope","placement":"G"})"),
      "INVALID_ARGUMENT");
  expect_error(service.handle_line(predict_line(1, "triad", "G,G")),
               "INVALID_ARGUMENT");  // wrong arity
  expect_error(service.handle_line(predict_line(1, "triad", "Q,Q,Q")),
               "INVALID_ARGUMENT");  // unknown code
  // Every error was counted, nothing crashed, the service still answers.
  EXPECT_EQ(service.stats().errors, 10u);
  const serve::Json r =
      parse_ok(service.handle_line(predict_line(2, "triad", "G,G,G")));
  EXPECT_TRUE(r.find("ok")->as_bool());
}

TEST(Serve, AdmissionControlRejectsOversizedInputs) {
  serve::ServeOptions options;
  options.max_line_bytes = 128;
  options.max_batch = 2;
  options.max_search_cap = 64;
  serve::PredictionService service(options);

  std::string big = R"({"op":"predict","benchmark":")";
  big.append(200, 'x');
  big += "\"}";
  expect_error(service.handle_line(big), "RESOURCE_EXHAUSTED");

  expect_error(
      service.handle_line(
          R"({"op":"predict_batch","benchmark":"triad",)"
          R"("placements":["G,G,G","G,G,G","G,G,G"]})"),
      "RESOURCE_EXHAUSTED");

  expect_error(service.handle_line(
                   R"({"op":"search","benchmark":"triad","cap":65536})"),
               "RESOURCE_EXHAUSTED");
  EXPECT_EQ(service.stats().rejected, 3u);
  EXPECT_EQ(service.stats().errors, 3u);
}

TEST(Serve, SearchDispatchesEveryAlgoAndRejectsUnknownOnes) {
  serve::PredictionService service{serve::ServeOptions{}};
  for (const std::string algo : {"exhaustive", "bnb", "beam"}) {
    const serve::Json r = parse_ok(service.handle_line(
        R"({"id":"s","op":"search","benchmark":"triad","algo":")" + algo +
        R"(","cap":128})"));
    ASSERT_TRUE(r.find("ok")->as_bool()) << algo;
    EXPECT_EQ(r.find("algo")->as_string(), algo);
    EXPECT_GT(r.find("predicted_cycles")->as_number(), 0.0) << algo;
    // The returned placement is parseable and legal for the kernel.
    const workloads::BenchmarkCase bench = workloads::get_benchmark("triad");
    const std::optional<DataPlacement> p = DataPlacement::from_string(
        bench.kernel, r.find("placement")->as_string());
    ASSERT_TRUE(p.has_value()) << algo;
    EXPECT_TRUE(validate(bench.kernel, *p, kepler_arch()).ok()) << algo;
  }
  // No silent fallback: an unknown algorithm is INVALID_ARGUMENT naming it.
  const std::string resp = service.handle_line(
      R"({"op":"search","benchmark":"triad","algo":"simulated_annealing"})");
  expect_error(resp, "INVALID_ARGUMENT");
  EXPECT_NE(parse_ok(resp).find("error")->find("message")->as_string().find(
                "simulated_annealing"),
            std::string::npos);
  EXPECT_EQ(service.stats().searches, 3u);
}

TEST(Serve, SearchDeadlineExpiryReturnsBestSoFarNotAnError) {
  serve::PredictionService service{serve::ServeOptions{}};
  // An already-expired deadline: the anytime contract still returns a valid
  // best-so-far placement with deadline_hit set, not an error.
  const serve::Json r = parse_ok(service.handle_line(
      R"({"op":"search","benchmark":"spmv","algo":"exhaustive",)"
      R"("cap":512,"deadline_ms":0})"));
  ASSERT_TRUE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("deadline_hit")->as_bool());
  EXPECT_GT(r.find("predicted_cycles")->as_number(), 0.0);
  EXPECT_FALSE(r.find("placement")->as_string().empty());
}

TEST(Serve, ShutdownHandshakeRefusesLaterRequests) {
  serve::PredictionService service{serve::ServeOptions{}};
  const serve::Json bye =
      parse_ok(service.handle_line(R"({"id":99,"op":"shutdown"})"));
  EXPECT_TRUE(bye.find("ok")->as_bool());
  EXPECT_TRUE(bye.find("stopped")->as_bool());
  EXPECT_EQ(bye.find("id")->as_number(), 99.0);
  EXPECT_TRUE(service.stopped());

  expect_error(service.handle_line(predict_line(1, "triad", "G,G,G")),
               "FAILED_PRECONDITION");
  // In one pipelined batch, lines behind the shutdown are refused too.
  const std::vector<std::string> lines = {R"({"op":"metrics"})"};
  expect_error(service.handle_pipeline(lines).front(), "FAILED_PRECONDITION");
}

// The stopped check must run BEFORE the idempotency replay: whether a replay
// hits depends on the cache backend's eviction choices (CLOCK vs strict
// LRU), so a trailing line that replayed cached bytes after a shutdown could
// answer different bytes under --legacy-cache than under the sharded
// default. Locked here: both backends shed the identical FAILED_PRECONDITION
// for every line behind the shutdown — including a retry of an
// already-executed idem-keyed request.
std::vector<std::string> shutdown_trailing_responses(CacheBackend backend) {
  serve::ServeOptions options;
  options.cache_backend = backend;
  serve::PredictionService service{options};
  const std::string idem_line =
      R"({"id":1,"op":"predict","benchmark":"triad",)"
      R"("placement":"G,G,G","idem":"trailing-after-shutdown"})";
  // Execute once so the idem key is definitely in the replay cache...
  const std::string first = service.handle_line(idem_line);
  EXPECT_TRUE(parse_ok(first).find("ok")->as_bool()) << first;
  // ...then a pipeline whose trailing lines land behind the shutdown.
  const std::vector<std::string> lines = {R"({"id":2,"op":"shutdown"})",
                                          idem_line,
                                          R"({"id":3,"op":"metrics"})"};
  return service.handle_pipeline(lines);
}

TEST(Serve, ShutdownTrailingLinesShedIdenticallyOnBothCacheBackends) {
  const std::vector<std::string> sharded =
      shutdown_trailing_responses(CacheBackend::kSharded);
  const std::vector<std::string> legacy =
      shutdown_trailing_responses(CacheBackend::kLegacyLru);
  ASSERT_EQ(sharded.size(), 3u);
  EXPECT_TRUE(parse_ok(sharded[0]).find("stopped")->as_bool()) << sharded[0];
  expect_error(sharded[1], "FAILED_PRECONDITION");  // NOT an idem replay
  expect_error(sharded[2], "FAILED_PRECONDITION");
  EXPECT_EQ(sharded, legacy);  // byte-identical shed on both cache backends
}

TEST(Serve, StdioLoopAnswersEveryLineInOrderAndStopsOnShutdown) {
  serve::PredictionService service{serve::ServeOptions{}};
  std::istringstream in(predict_line(1, "triad", "G,G,G") + "\n" +
                        predict_line(2, "triad", "G,G,G") + "\n" +
                        R"({"id":3,"op":"shutdown"})" + "\n" +
                        R"({"id":4,"op":"metrics"})" + "\n");
  std::ostringstream out;
  serve::run_stdio_loop(in, out, service);
  EXPECT_TRUE(service.stopped());

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string l; std::getline(split, l);) lines.push_back(l);
  // All four lines were already buffered, so they rode one pipeline; the
  // line behind the shutdown is answered — with a refusal.
  ASSERT_EQ(lines.size(), 4u) << out.str();
  EXPECT_EQ(parse_ok(lines[0]).find("id")->as_number(), 1.0);
  EXPECT_EQ(parse_ok(lines[1]).find("id")->as_number(), 2.0);
  EXPECT_TRUE(parse_ok(lines[2]).find("stopped")->as_bool());
  expect_error(lines[3], "FAILED_PRECONDITION");
  // The stringstream had everything buffered: the loop coalesced the two
  // identical predicts, so the cache saw one miss and one alias, not two
  // misses.
  EXPECT_EQ(service.stats().batched_predicts, 1u);
}

// --- the PR acceptance criterion ---------------------------------------------
// A pipelined batch of 100 mixed predict/search requests returns 100
// well-formed responses in request order, with a nonzero cache hit-rate,
// byte-identical for GPUHMS_THREADS=1/4/16.
std::vector<std::string> build_mixed_pipeline() {
  static const std::vector<std::string> spmv =
      legal_placement_strings("spmv", 24);
  static const std::vector<std::string> triad =
      legal_placement_strings("triad", 24);
  std::vector<std::string> lines;
  for (int i = 0; i < 100; ++i) {
    if (i % 25 == 24) {
      lines.push_back("{\"id\":" + std::to_string(i) +
                      ",\"op\":\"metrics\"}");
    } else if (i % 20 == 10) {
      lines.push_back(
          "{\"id\":" + std::to_string(i) +
          ",\"op\":\"search\",\"benchmark\":\"triad\",\"algo\":\"" +
          (i % 40 == 10 ? "bnb" : "exhaustive") + "\",\"cap\":64}");
    } else if (i % 2 == 0) {
      lines.push_back(
          predict_line(i, "spmv", spmv[static_cast<std::size_t>(i / 2) %
                                       spmv.size()]));
    } else {
      lines.push_back(
          predict_line(i, "triad", triad[static_cast<std::size_t>(i / 3) %
                                         triad.size()]));
    }
  }
  return lines;
}

std::vector<std::string> run_pipeline_with_threads(const char* threads) {
  testutil::ScopedEnv env("GPUHMS_THREADS", threads);
  serve::PredictionService service{serve::ServeOptions{}};  // pool sized from the env var
  const std::vector<std::string> lines = build_mixed_pipeline();
  std::vector<std::string> responses = service.handle_pipeline(lines);

  EXPECT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const serve::Json r = parse_ok(responses[i]);
    const serve::Json* rid = r.find("id");
    const serve::Json* ok = r.find("ok");
    EXPECT_NE(rid, nullptr) << responses[i];
    EXPECT_NE(ok, nullptr) << responses[i];
    if (rid == nullptr || ok == nullptr) continue;
    EXPECT_EQ(rid->as_number(), static_cast<double>(i))
        << "response out of request order at " << i;
    EXPECT_TRUE(ok->as_bool()) << responses[i];
  }
  const serve::ServeStats stats = service.stats();
  EXPECT_GT(stats.prediction_cache.hits, 0u);  // repeats hit the cache
  EXPECT_GT(stats.batch_calls, 0u);
  EXPECT_LT(stats.batch_calls, stats.predictions);  // coalescing happened
  EXPECT_LE(stats.prediction_cache.size, stats.prediction_cache.capacity);
  return responses;
}

TEST(Serve, Pipeline100MixedRequestsDeterministicAcrossThreadCounts) {
  const std::vector<std::string> t1 = run_pipeline_with_threads("1");
  const std::vector<std::string> t4 = run_pipeline_with_threads("4");
  const std::vector<std::string> t16 = run_pipeline_with_threads("16");
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t16);
}

// --- supervision: health, drain, idempotent replay, watchdog -----------------

TEST(Serve, HealthVerbReportsLifecycleAndSurvivesDrain) {
  serve::PredictionService service{serve::ServeOptions{}};
  const serve::Json fresh =
      parse_ok(service.handle_line(R"({"id":7,"op":"health"})"));
  EXPECT_TRUE(fresh.find("ok")->as_bool());
  EXPECT_EQ(fresh.find("status")->as_string(), "serving");
  EXPECT_FALSE(fresh.find("draining")->as_bool());
  EXPECT_GE(fresh.find("uptime_ms")->as_number(), 0.0);
  EXPECT_EQ(fresh.find("inflight")->as_number(), 0.0);

  service.begin_drain();
  // Model work is shed with a retryable rejection...
  expect_error(service.handle_line(predict_line(1, "triad", "G,G,G")),
               "UNAVAILABLE");
  // ...but supervision verbs keep answering so operators can watch.
  const serve::Json draining =
      parse_ok(service.handle_line(R"({"op":"health"})"));
  EXPECT_EQ(draining.find("status")->as_string(), "draining");
  EXPECT_TRUE(draining.find("draining")->as_bool());
  EXPECT_GT(draining.find("shed_draining")->as_number(), 0.0);
  const serve::Json metrics =
      parse_ok(service.handle_line(R"({"op":"metrics"})"));
  EXPECT_TRUE(metrics.find("ok")->as_bool());
  EXPECT_TRUE(service.drained());
}

TEST(Serve, IdempotentReplayIsByteIdenticalAndWorksWhileDraining) {
  serve::PredictionService service{serve::ServeOptions{}};
  const std::string line =
      R"({"id":5,"op":"predict","benchmark":"triad",)"
      R"("placement":"G,G,G","idem":"req-5-fingerprint"})";
  const std::string first = service.handle_line(line);
  ASSERT_TRUE(parse_ok(first).find("ok")->as_bool());
  EXPECT_EQ(service.stats().idem_hits, 0u);

  const std::string replay = service.handle_line(line);
  EXPECT_EQ(replay, first);  // the ORIGINAL bytes, not a recomputation
  EXPECT_EQ(service.stats().idem_hits, 1u);

  // The drain-safe retry story: a client retrying an executed request gets
  // its response back even though fresh work is being shed.
  service.begin_drain();
  EXPECT_EQ(service.handle_line(line), first);
  EXPECT_EQ(service.stats().idem_hits, 2u);
  expect_error(service.handle_line(
                   R"({"id":6,"op":"predict","benchmark":"triad",)"
                   R"("placement":"G,G,G","idem":"never-executed"})"),
               "UNAVAILABLE");
}

TEST(Serve, WatchdogCancelsRunawaySearchesAndSparesFastOnes) {
  {
    // A generous watchdog never fires on a small search.
    serve::ServeOptions options;
    options.watchdog_ms = 60000;
    serve::PredictionService service{options};
    const serve::Json r = parse_ok(service.handle_line(
        R"({"op":"search","benchmark":"triad","algo":"exhaustive","cap":64})"));
    ASSERT_TRUE(r.find("ok")->as_bool());
    EXPECT_FALSE(r.find("cancelled")->as_bool());
    EXPECT_EQ(service.stats().watchdog_cancels, 0u);
  }
  // A 1 ms watchdog against full-cap searches: the runaway is cancelled via
  // the cancel token and still answers with the anytime best-so-far. A few
  // attempts absorb scheduler jitter without ever making the test flaky.
  serve::ServeOptions options;
  options.watchdog_ms = 1;
  serve::PredictionService service{options};
  for (int attempt = 0; attempt < 20; ++attempt) {
    const serve::Json r = parse_ok(service.handle_line(
        R"({"op":"search","benchmark":"cfd","algo":"exhaustive",)"
        R"("cap":65536})"));
    ASSERT_TRUE(r.find("ok")->as_bool());  // cancelled or not: a real answer
    EXPECT_FALSE(r.find("placement")->as_string().empty());
    if (service.stats().watchdog_cancels > 0) break;
  }
  EXPECT_GT(service.stats().watchdog_cancels, 0u)
      << "no search ever outlived the 1 ms watchdog";
}

// --- the retrying client -----------------------------------------------------

serve::Json client_request(int id) {
  serve::Json req = serve::Json::object();
  req.set("id", serve::Json(id));
  req.set("op", serve::Json("predict"));
  req.set("benchmark", serve::Json("triad"));
  req.set("placement", serve::Json("G,G,G"));
  return req;
}

TEST(ServeClient, StampsAStableIdempotencyKey) {
  const std::string k1 = serve::Client::idempotency_key(client_request(1));
  const std::string k2 = serve::Client::idempotency_key(client_request(1));
  const std::string other = serve::Client::idempotency_key(client_request(2));
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, other);

  std::vector<std::string> seen;
  serve::ClientOptions copt;
  copt.sleeper = [](std::uint64_t) {};
  serve::Client client(
      [&](const std::string& line) -> StatusOr<std::string> {
        seen.push_back(line);
        return std::string(R"({"id":1,"ok":true})");
      },
      copt);
  ASSERT_TRUE(client.call(client_request(1)).ok());
  ASSERT_EQ(seen.size(), 1u);
  const serve::Json sent = parse_ok(seen[0]);
  ASSERT_NE(sent.find("idem"), nullptr) << seen[0];
  EXPECT_EQ(sent.find("idem")->as_string(), k1);
}

TEST(ServeClient, RetriesShedsWithExponentialBackoffThenSucceeds) {
  int calls = 0;
  std::vector<std::uint64_t> naps;
  serve::ClientOptions copt;
  copt.max_attempts = 4;
  copt.sleeper = [&](std::uint64_t ms) { naps.push_back(ms); };
  serve::Client client(
      [&](const std::string&) -> StatusOr<std::string> {
        if (++calls <= 2)
          return std::string(
              R"({"id":1,"ok":false,"error":{"code":"UNAVAILABLE",)"
              R"("message":"draining"}})");
        return std::string(R"({"id":1,"ok":true})");
      },
      copt);
  const auto r = client.call(client_request(1));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(client.attempts(), 3u);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(naps, (std::vector<std::uint64_t>{5, 10}));  // 5 * 2^k, capped
}

TEST(ServeClient, ExhaustedRetriesSurfaceTheLastOutcome) {
  serve::ClientOptions copt;
  copt.max_attempts = 2;
  copt.sleeper = [](std::uint64_t) {};
  // Permanent shed: UNAVAILABLE after every retry.
  serve::Client shed(
      [](const std::string&) -> StatusOr<std::string> {
        return std::string(
            R"({"id":1,"ok":false,"error":{"code":"UNAVAILABLE",)"
            R"("message":"draining"}})");
      },
      copt);
  const auto r1 = shed.call(client_request(1));
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r1.status().message().find("2 attempts"), std::string::npos)
      << r1.status().to_string();

  // Permanent transport failure: the last error comes back annotated.
  serve::Client broken(
      [](const std::string&) -> StatusOr<std::string> {
        return InternalError("connection reset");
      },
      copt);
  const auto r2 = broken.call(client_request(1));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInternal);
  EXPECT_NE(r2.status().to_string().find("connection reset"),
            std::string::npos);
}

TEST(ServeClient, NonRetryableErrorsReturnImmediately) {
  int calls = 0;
  serve::ClientOptions copt;
  copt.sleeper = [](std::uint64_t) {};
  serve::Client client(
      [&](const std::string&) -> StatusOr<std::string> {
        ++calls;
        return std::string(
            R"({"id":1,"ok":false,"error":{"code":"INVALID_ARGUMENT",)"
            R"("message":"bad placement"}})");
      },
      copt);
  const auto r = client.call(client_request(1));
  ASSERT_TRUE(r.ok());  // a definitive rejection IS the response
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(client.retries(), 0u);
}

// --- the arch field ----------------------------------------------------------
// Requests may name an ArchRegistry backend; entries are cached per
// (benchmark, arch), the response echoes the arch, and an unnamed arch keeps
// the historical byte format (no "arch" key) so old clients see no change.

std::string predict_line_arch(int id, const std::string& benchmark,
                              const std::string& placement,
                              const std::string& arch) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"predict\",\"benchmark\":\"" + benchmark +
         "\",\"placement\":\"" + placement + "\",\"arch\":\"" + arch + "\"}";
}

TEST(Serve, ArchFieldSelectsDistinctDeterministicBackends) {
  serve::PredictionService service{serve::ServeOptions{}};
  std::set<double> cycles;
  for (const std::string arch : {"kepler", "maxwell", "hbm2"}) {
    const std::string line = predict_line_arch(1, "triad", "G,T,G", arch);
    const std::string first = service.handle_line(line);
    EXPECT_EQ(service.handle_line(line), first) << arch;  // byte-stable repeat
    const serve::Json r = parse_ok(first);
    ASSERT_TRUE(r.find("ok")->as_bool()) << first;
    ASSERT_NE(r.find("arch"), nullptr) << first;
    EXPECT_EQ(r.find("arch")->as_string(), arch);
    cycles.insert(r.find("predicted_cycles")->as_number());
  }
  // Three geometries, three predictions: the field is not decorative.
  EXPECT_EQ(cycles.size(), 3u);
}

TEST(Serve, ExplicitKeplerEqualsImplicitDefaultNumerically) {
  serve::PredictionService service{serve::ServeOptions{}};
  const serve::Json implicit =
      parse_ok(service.handle_line(predict_line(1, "triad", "G,G,G")));
  const serve::Json explicit_kepler = parse_ok(
      service.handle_line(predict_line_arch(1, "triad", "G,G,G", "kepler")));
  ASSERT_TRUE(implicit.find("ok")->as_bool());
  ASSERT_TRUE(explicit_kepler.find("ok")->as_bool());
  EXPECT_EQ(implicit.find("predicted_cycles")->as_number(),
            explicit_kepler.find("predicted_cycles")->as_number());
  EXPECT_EQ(implicit.find("t_comp")->as_number(),
            explicit_kepler.find("t_comp")->as_number());
  // The unnamed-arch response keeps the pre-registry byte format.
  EXPECT_EQ(implicit.find("arch"), nullptr);
  EXPECT_EQ(explicit_kepler.find("arch")->as_string(), "kepler");
}

TEST(Serve, UnknownOrMalformedArchIsStructuredInvalidArgument) {
  serve::PredictionService service{serve::ServeOptions{}};
  const std::string resp =
      service.handle_line(predict_line_arch(1, "triad", "G,G,G", "volta"));
  expect_error(resp, "INVALID_ARGUMENT");
  // The error names the registered backends so a client can self-correct.
  const std::string message =
      parse_ok(resp).find("error")->find("message")->as_string();
  for (const char* name : {"kepler", "fermi", "maxwell", "hbm2"}) {
    EXPECT_NE(message.find(name), std::string::npos) << message;
  }
  // A non-string arch is malformed, including inside a pipeline.
  expect_error(service.handle_line(
                   R"({"op":"predict","benchmark":"triad",)"
                   R"("placement":"G,G,G","arch":42})"),
               "INVALID_ARGUMENT");
  const std::vector<std::string> pipeline = {
      predict_line_arch(0, "triad", "G,G,G", "hbm2"),
      R"({"id":1,"op":"predict","benchmark":"triad",)"
      R"("placement":"G,G,G","arch":[1]})",
  };
  const std::vector<std::string> responses = service.handle_pipeline(pipeline);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(parse_ok(responses[0]).find("ok")->as_bool());
  expect_error(responses[1], "INVALID_ARGUMENT");
  // The service still answers afterwards.
  EXPECT_TRUE(parse_ok(service.handle_line(predict_line(2, "triad", "G,G,G")))
                  .find("ok")
                  ->as_bool());
}

TEST(Serve, BatchAndSearchHonorTheArchField) {
  const std::vector<std::string> placements =
      legal_placement_strings("triad", 6);
  ASSERT_GE(placements.size(), 3u);
  serve::PredictionService service{serve::ServeOptions{}};
  std::string batch_line =
      R"({"id":1,"op":"predict_batch","benchmark":"triad",)"
      R"("arch":"hbm2","placements":[)";
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (i) batch_line += ",";
    batch_line += "\"" + placements[i] + "\"";
  }
  batch_line += "]}";
  const serve::Json batch = parse_ok(service.handle_line(batch_line));
  ASSERT_TRUE(batch.find("ok")->as_bool());
  EXPECT_EQ(batch.find("arch")->as_string(), "hbm2");
  const serve::Json* results = batch.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const serve::Json single = parse_ok(service.handle_line(predict_line_arch(
        static_cast<int>(i), "triad", placements[i], "hbm2")));
    ASSERT_TRUE(single.find("ok")->as_bool());
    EXPECT_EQ(results->at(i).find("predicted_cycles")->as_number(),
              single.find("predicted_cycles")->as_number())
        << placements[i];
  }

  const serve::Json search = parse_ok(service.handle_line(
      R"({"id":2,"op":"search","benchmark":"triad","algo":"exhaustive",)"
      R"("cap":64,"arch":"maxwell"})"));
  ASSERT_TRUE(search.find("ok")->as_bool());
  EXPECT_EQ(search.find("arch")->as_string(), "maxwell");
  const workloads::BenchmarkCase bench = workloads::get_benchmark("triad");
  const std::optional<DataPlacement> p = DataPlacement::from_string(
      bench.kernel, search.find("placement")->as_string());
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(validate(bench.kernel, *p,
                       ArchRegistry::builtin().find("maxwell")->arch)
                  .ok());
  expect_error(service.handle_line(
                   R"({"op":"search","benchmark":"triad","arch":"volta"})"),
               "INVALID_ARGUMENT");
}

// Arch-tagged traffic must stay byte-stable across thread counts and both
// cache backends — same bar as the un-tagged mixed pipeline above.
std::vector<std::string> run_arch_pipeline(const char* threads,
                                           CacheBackend backend) {
  testutil::ScopedEnv env("GPUHMS_THREADS", threads);
  serve::ServeOptions options;
  options.cache_backend = backend;
  serve::PredictionService service{options};
  static const std::vector<std::string> triad =
      legal_placement_strings("triad", 12);
  const char* archs[] = {"", "kepler", "maxwell", "hbm2"};
  std::vector<std::string> lines;
  for (int i = 0; i < 64; ++i) {
    const std::string& placement =
        triad[static_cast<std::size_t>(i / 2) % triad.size()];
    const char* arch = archs[i % 4];
    lines.push_back(arch[0] == '\0'
                        ? predict_line(i, "triad", placement)
                        : predict_line_arch(i, "triad", placement, arch));
  }
  std::vector<std::string> responses = service.handle_pipeline(lines);
  EXPECT_EQ(responses.size(), lines.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const serve::Json r = parse_ok(responses[i]);
    EXPECT_TRUE(r.find("ok")->as_bool()) << responses[i];
    EXPECT_EQ(r.find("id")->as_number(), static_cast<double>(i));
  }
  EXPECT_GT(service.stats().prediction_cache.hits, 0u);
  return responses;
}

TEST(Serve, ArchPipelineDeterministicAcrossThreadsAndCacheBackends) {
  const std::vector<std::string> base =
      run_arch_pipeline("1", CacheBackend::kSharded);
  EXPECT_EQ(run_arch_pipeline("4", CacheBackend::kSharded), base);
  EXPECT_EQ(run_arch_pipeline("16", CacheBackend::kSharded), base);
  EXPECT_EQ(run_arch_pipeline("1", CacheBackend::kLegacyLru), base);
  EXPECT_EQ(run_arch_pipeline("16", CacheBackend::kLegacyLru), base);
}

TEST(ServeClient, EndToEndReplayThroughARealService) {
  serve::PredictionService service{serve::ServeOptions{}};
  int failures_left = 1;
  serve::ClientOptions copt;
  copt.sleeper = [](std::uint64_t) {};
  // A transport that eats the first response AFTER the server executed it —
  // the classic ambiguous failure. The retry must replay, not re-run.
  serve::Client client(
      [&](const std::string& line) -> StatusOr<std::string> {
        const std::string response = service.handle_line(line);
        if (failures_left > 0) {
          --failures_left;
          return UnavailableError("connection reset mid-response");
        }
        return response;
      },
      copt);
  const auto r = client.call_json(client_request(9));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r->find("ok")->as_bool());
  EXPECT_EQ(r->find("id")->as_number(), 9.0);
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);   // the wire saw two sends...
  EXPECT_EQ(stats.idem_hits, 1u);  // ...but the second was a byte replay
}

}  // namespace
}  // namespace gpuhms
