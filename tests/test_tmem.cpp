#include "model/tmem.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

TmemInputs inputs_for(const PlacementEvents& ev, double warps = 32.0) {
  TmemInputs in;
  in.events = &ev;
  in.total_warps = 512.0;
  in.active_sms = 13;
  in.n_warps_per_sm = warps;
  in.issued_per_warp = 100.0;
  in.tick_to_cycles = 0.2;
  return in;
}

PlacementEvents analyzed(const char* bench) {
  const auto c = workloads::get_benchmark(bench);
  return analyze_trace(c.kernel, c.sample, kepler_arch());
}

TEST(Tmem, PositiveForRealKernel) {
  const auto ev = analyzed("stencil2d");
  const auto r = tmem(inputs_for(ev), kepler_arch());
  EXPECT_GT(r.t_mem, 0.0);
  EXPECT_GT(r.amat, static_cast<double>(kepler_arch().cache_hit_lat) - 1.0);
  EXPECT_GT(r.dram_lat, static_cast<double>(kepler_arch().dram.pipeline_lat));
  EXPECT_GE(r.miss_ratio, 0.0);
  EXPECT_LE(r.miss_ratio, 1.0);
}

TEST(Tmem, QueuingRaisesLatencyOverConstant) {
  // A memory-bound kernel's queued DRAM latency must exceed the unloaded
  // constant; the constant variant has zero queue delay by construction.
  const auto ev = analyzed("md");
  const auto in = inputs_for(ev);
  TmemOptions with_q;
  TmemOptions no_q;
  no_q.queuing_model = false;
  const auto rq = tmem(in, kepler_arch(), with_q);
  const auto rc = tmem(in, kepler_arch(), no_q);
  EXPECT_GT(rq.queue_delay, 0.0);
  EXPECT_DOUBLE_EQ(rc.queue_delay, 0.0);
  EXPECT_GT(rq.dram_lat, rc.dram_lat * 0.5);  // same order of magnitude
}

TEST(Tmem, RowBufferMixBelowPureMissConstant) {
  // With row-buffer modeling but no queue, the Eq. 8 mix must sit between
  // the hit and conflict service times (plus pipeline).
  const auto ev = analyzed("stencil2d");
  const auto in = inputs_for(ev);
  TmemOptions o;
  o.queuing_model = false;
  o.row_buffer_model = true;
  const auto r = tmem(in, kepler_arch(), o);
  const auto& arch = kepler_arch();
  EXPECT_GE(r.dram_lat, static_cast<double>(arch.unloaded_row_hit()));
  EXPECT_LE(r.dram_lat, static_cast<double>(arch.unloaded_row_conflict()));
}

TEST(Tmem, PureMissConstantWithoutRowModel) {
  const auto ev = analyzed("stencil2d");
  TmemOptions o;
  o.queuing_model = false;
  o.row_buffer_model = false;
  const auto r = tmem(inputs_for(ev), kepler_arch(), o);
  EXPECT_DOUBLE_EQ(r.dram_lat,
                   static_cast<double>(kepler_arch().unloaded_row_miss()));
}

TEST(Tmem, SharedOnlyKernelHasNoDramComponent) {
  PlacementEvents ev;
  ev.mem_insts = 1000;
  ev.load_insts = 1000;
  ev.shared_requests = 1000;
  ev.shared_load_requests = 1000;
  const auto r = tmem(inputs_for(ev), kepler_arch());
  EXPECT_DOUBLE_EQ(r.miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.shmem_ratio, 1.0);
  // Pure shared traffic never enters the cache hierarchy: AMAT is the
  // shared-memory latency alone.
  EXPECT_NEAR(r.amat, static_cast<double>(kepler_arch().shared_lat), 1e-9);
}

TEST(Tmem, Mm1AndGg1DifferUnderBurstyArrivals) {
  PlacementEvents ev;
  ev.mem_insts = ev.load_insts = 1000;
  ev.offchip_load_transactions = 1000;
  ev.dram_load_requests = ev.dram_requests = 1000;
  ev.banks.resize(4);
  for (auto& b : ev.banks) {
    b.count = 250;
    // Bursty: high arrival variance.
    for (int i = 0; i < 100; ++i) {
      b.interarrival.add(i % 10 == 0 ? 5000.0 : 10.0);
      b.service.add(i % 2 == 0 ? 36.0 : 692.0);
    }
  }
  const auto in = inputs_for(ev);
  TmemOptions gg1;
  TmemOptions mm1;
  mm1.discipline = QueueDiscipline::MM1;
  const auto rg = tmem(in, kepler_arch(), gg1);
  const auto rm = tmem(in, kepler_arch(), mm1);
  EXPECT_NE(rg.queue_delay, rm.queue_delay);
}

TEST(Tmem, MoreWarpsLowerEffectiveRequests) {
  // Eq. 17-19: more resident warps -> more ITMLP -> fewer serialized
  // effective requests per SM (until the bandwidth cap binds).
  const auto ev = analyzed("stencil2d");
  const auto r8 = tmem(inputs_for(ev, 8.0), kepler_arch());
  const auto r64 = tmem(inputs_for(ev, 64.0), kepler_arch());
  EXPECT_LE(r64.effective_requests_per_sm, r8.effective_requests_per_sm);
}

TEST(Tmem, RequiresEvents) {
  TmemInputs in;
  EXPECT_DEATH(tmem(in, kepler_arch()), "events");
}

}  // namespace
}  // namespace gpuhms
