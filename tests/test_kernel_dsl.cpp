#include "kernel/kernel.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

KernelInfo tiny_kernel(std::int64_t blocks = 2, int tpb = 64) {
  KernelInfo k;
  k.name = "tiny";
  k.num_blocks = blocks;
  k.threads_per_block = tpb;
  k.arrays = {ArrayDecl{.name = "x", .dtype = DType::F32, .elems = 4096}};
  k.fn = [](WarpEmitter& em, const WarpCtx& ctx) {
    em.ialu(1);
    em.load(0, em.linear(ctx.warp_global_id() * kWarpSize));
    em.falu(2, /*uses_prev=*/true);
  };
  return k;
}

TEST(WarpCtx, ThreadIds) {
  WarpCtx ctx;
  ctx.block = 3;
  ctx.warp_in_block = 1;
  ctx.threads_per_block = 128;
  EXPECT_EQ(ctx.thread_id(0), 3 * 128 + 32);
  EXPECT_EQ(ctx.thread_id(31), 3 * 128 + 63);
  EXPECT_EQ(ctx.warp_global_id(), 3 * 4 + 1);
}

TEST(KernelInfo, WarpCounts) {
  const KernelInfo k = tiny_kernel(5, 96);
  EXPECT_EQ(k.warps_per_block(), 3);
  EXPECT_EQ(k.total_warps(), 15);
}

TEST(KernelInfo, ArrayLookup) {
  const KernelInfo k = tiny_kernel();
  EXPECT_EQ(k.array_index("x"), 0);
  EXPECT_EQ(k.array("x").elems, 4096u);
}

TEST(ForEachWarp, VisitsEveryWarpInOrder) {
  const KernelInfo k = tiny_kernel(3, 64);
  std::vector<std::pair<std::int64_t, int>> visited;
  for_each_warp(k, 0, k.num_blocks,
                [&](const WarpCtx& ctx, std::vector<DslOp>&& ops) {
                  visited.emplace_back(ctx.block, ctx.warp_in_block);
                  EXPECT_EQ(ops.size(), 3u);  // ialu + load + falu(count=2)
                });
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited.front(), (std::pair<std::int64_t, int>{0, 0}));
  EXPECT_EQ(visited.back(), (std::pair<std::int64_t, int>{2, 1}));
}

TEST(ForEachWarp, BlockRangeSubsets) {
  const KernelInfo k = tiny_kernel(4, 64);
  int count = 0;
  for_each_warp(k, 1, 3, [&](const WarpCtx&, std::vector<DslOp>&&) { ++count; });
  EXPECT_EQ(count, 2 * 2);
}

TEST(WarpEmitter, ComputeCountsExpand) {
  WarpCtx ctx;
  ctx.threads_per_block = 32;
  WarpEmitter em(ctx);
  em.falu(3, true);
  auto ops = em.take();
  ASSERT_EQ(ops.size(), 1u);  // recorded as one DslOp with count 3
  EXPECT_EQ(ops[0].count, 3);
  EXPECT_TRUE(ops[0].uses_prev);
}

TEST(WarpEmitter, PartialWarpLanesInactive) {
  WarpCtx ctx;
  ctx.threads_per_block = 48;  // warp 1 has 16 active lanes
  ctx.warp_in_block = 1;
  ctx.lanes_active = 16;
  WarpEmitter em(ctx);
  const LaneIdx idx = em.linear(100);
  for (int l = 0; l < 16; ++l)
    EXPECT_EQ(idx[static_cast<std::size_t>(l)], 100 + l);
  for (int l = 16; l < kWarpSize; ++l)
    EXPECT_EQ(idx[static_cast<std::size_t>(l)], kInactiveLane);
}

TEST(WarpEmitter, BcastAndByLane) {
  WarpCtx ctx;
  ctx.threads_per_block = 32;
  WarpEmitter em(ctx);
  const LaneIdx b = em.bcast(7);
  for (int l = 0; l < kWarpSize; ++l)
    EXPECT_EQ(b[static_cast<std::size_t>(l)], 7);
  const LaneIdx custom = em.by_lane([](int l) {
    return l % 2 ? kInactiveLane : std::int64_t{l} * 3;
  });
  EXPECT_EQ(custom[0], 0);
  EXPECT_EQ(custom[1], kInactiveLane);
  EXPECT_EQ(custom[2], 6);
}

TEST(WarpEmitter, MemOpsCarryIndices) {
  WarpCtx ctx;
  ctx.threads_per_block = 32;
  WarpEmitter em(ctx);
  em.load(0, em.linear(10, 2));
  em.store(0, em.bcast(0));
  auto ops = em.take();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].cls, OpClass::Load);
  EXPECT_EQ(ops[0].idx[5], 20);
  EXPECT_EQ(ops[1].cls, OpClass::Store);
  EXPECT_TRUE(ops[1].uses_prev);  // stores default to consuming a value
}

}  // namespace
}  // namespace gpuhms
