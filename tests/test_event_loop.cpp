// Event-loop server core tests (DESIGN §15): incremental framing, timerfd
// deadlines, fd-budget scaling with 1k idle connections, the slow-reader
// backpressure bound, drain-under-load with zero lost or misrouted
// responses, and byte-identity between the epoll backend and the legacy
// thread-per-connection backend.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/event_loop.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"

namespace gpuhms {
namespace {

using namespace std::chrono_literals;

// --- framing -----------------------------------------------------------------

TEST(LineFramer, PartialLineWaitsForItsNewline) {
  serve::LineFramer framer;
  framer.feed("{\"a\":1}\n{\"b\"");
  std::vector<std::string> lines = framer.take_lines(10);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(framer.partial(), "{\"b\"");
  EXPECT_FALSE(framer.has_line());

  framer.feed(":2}\n");
  lines = framer.take_lines(10);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"b\":2}");
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LineFramer, ByteAtATimeArrivalFramesTheSameLine) {
  serve::LineFramer framer;
  const std::string request = R"({"id":9,"op":"health"})";
  for (const char c : request) framer.feed(std::string_view(&c, 1));
  EXPECT_FALSE(framer.has_line());
  framer.feed("\n");
  const std::vector<std::string> lines = framer.take_lines(10);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], request);
}

TEST(LineFramer, MultiLineChunkRespectsTheBatchCap) {
  serve::LineFramer framer;
  framer.feed("one\ntwo\nthree\nfour\npart");
  std::vector<std::string> lines = framer.take_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  lines = framer.take_lines(100);  // the rest, order preserved
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "three");
  EXPECT_EQ(lines[1], "four");
  EXPECT_EQ(framer.partial(), "part");
  // Empty lines are real (empty) requests, not swallowed.
  framer.feed("ial\n\n");
  lines = framer.take_lines(10);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "partial");
  EXPECT_EQ(lines[1], "");
}

// --- reactor timers ----------------------------------------------------------

TEST(EventLoop, DeadlinesFireViaTimerfdInOrderAndCancelHolds) {
  serve::EventLoop loop;
  ASSERT_TRUE(loop.status().ok()) << loop.status().to_string();
  std::vector<int> order;
  const auto now = std::chrono::steady_clock::now();
  loop.add_timer(now + 30ms, [&order] { order.push_back(1); });
  const serve::EventLoop::TimerId cancelled =
      loop.add_timer(now + 40ms, [&order] { order.push_back(99); });
  loop.add_timer(now + 60ms, [&order, &loop] {
    order.push_back(2);
    loop.stop();
  });
  loop.cancel_timer(cancelled);
  loop.run();
  const auto elapsed = std::chrono::steady_clock::now() - now;
  EXPECT_GE(elapsed, 60ms);  // the timerfd really gated the last deadline
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(loop.counters().timers_fired, 2u);
}

TEST(EventLoop, CrossThreadPostRunsOnTheLoop) {
  serve::EventLoop loop;
  ASSERT_TRUE(loop.status().ok());
  std::atomic<int> ran{0};
  std::thread poster([&] {
    for (int i = 0; i < 100; ++i)
      loop.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    loop.post([&loop] { loop.stop(); });
  });
  loop.run();
  poster.join();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_GE(loop.counters().tasks_run, 101u);
}

// --- socket-server harness ---------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/gpuhms_evloop_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

struct ServerHarness {
  serve::PredictionService service;
  serve::SocketServer server;
  std::thread thread;
  std::atomic<int> rc{-1};

  ServerHarness(const serve::ServeOptions& serve_options,
                serve::ServerOptions server_options)
      : service(serve_options), server(service, std::move(server_options)) {
    const Status st = server.listen();
    EXPECT_TRUE(st.ok()) << st.to_string();
    thread = std::thread([this] { rc = server.run(); });
  }

  int join() {
    if (thread.joinable()) thread.join();
    return rc.load();
  }

  ~ServerHarness() {
    if (thread.joinable()) {
      server.stop();
      thread.join();
    }
  }
};

int connect_or_die(const std::string& path) {
  // The listener is bound before run() starts, but give a saturated backlog
  // a few retries under load.
  for (int attempt = 0; attempt < 200; ++attempt) {
    StatusOr<int> fd = serve::connect_unix(path);
    if (fd.ok()) return *fd;
    std::this_thread::sleep_for(5ms);
  }
  ADD_FAILURE() << "could not connect to " << path;
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

// Reads complete response lines until `want` arrive, EOF, or the deadline.
std::vector<std::string> read_lines(int fd, std::size_t want,
                                    std::chrono::milliseconds timeout) {
  std::vector<std::string> lines;
  serve::LineFramer framer;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  char chunk[1 << 14];
  while (lines.size() < want) {
    // Drain already-framed lines before touching the socket again.
    std::vector<std::string> got = framer.take_lines(want - lines.size());
    if (!got.empty()) {
      for (std::string& line : got) lines.push_back(std::move(line));
      continue;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining <= 0ms) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF
    framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
  return lines;
}

// Reads until the server closes the connection, returning every line.
std::vector<std::string> read_until_eof(int fd,
                                        std::chrono::milliseconds timeout) {
  std::vector<std::string> lines;
  serve::LineFramer framer;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  char chunk[1 << 14];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining <= 0ms) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) break;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    for (std::string& line : framer.take_lines(1u << 20))
      lines.push_back(std::move(line));
  }
  return lines;
}

double response_id(const std::string& line) {
  StatusOr<serve::Json> parsed = serve::Json::parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  if (!parsed.ok()) return -1.0;
  const serve::Json* id = parsed->find("id");
  EXPECT_NE(id, nullptr) << line;
  return id == nullptr ? -1.0 : id->as_number();
}

bool wait_until(const std::function<bool()>& done,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return done();
}

// --- fd-budget scaling -------------------------------------------------------

TEST(EventLoopServer, HoldsAThousandIdleConnectionsUnderTheFdBudget) {
  // Each connection costs two fds in this process (client end + server end);
  // stay well inside the soft limit, scaling down on constrained machines.
  rlimit nofile{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &nofile), 0);
  const std::size_t budget =
      nofile.rlim_cur > 256 ? (nofile.rlim_cur - 256) / 2 : 8;
  const std::size_t idle = std::min<std::size_t>(1000, budget);

  serve::ServerOptions server_options;
  server_options.socket_path = test_socket_path("idle");
  server_options.listen_backlog = 1024;
  ServerHarness harness{serve::ServeOptions{}, server_options};

  std::vector<int> fds;
  fds.reserve(idle);
  for (std::size_t i = 0; i < idle; ++i) {
    const int fd = connect_or_die(server_options.socket_path);
    ASSERT_GE(fd, 0) << "connection " << i;
    fds.push_back(fd);
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.server.stats().connections_open >= idle; }, 30s))
      << "accepted only " << harness.server.stats().connections_open << "/"
      << idle;
  EXPECT_GE(harness.server.stats().connections_accepted, idle);

  // The idle herd must not tax the active connection: a few round-trips on
  // one socket while the other 999 sit in the epoll set.
  const int active = connect_or_die(server_options.socket_path);
  ASSERT_GE(active, 0);
  for (int i = 0; i < 3; ++i) {
    const std::string request =
        "{\"id\":" + std::to_string(i) + ",\"op\":\"health\"}\n";
    ASSERT_TRUE(send_all(active, request));
    const std::vector<std::string> lines = read_lines(active, 1, 10s);
    ASSERT_EQ(lines.size(), 1u) << "round-trip " << i;
    EXPECT_EQ(response_id(lines[0]), static_cast<double>(i));
  }
  ::close(active);
  for (const int fd : fds) ::close(fd);
  ASSERT_TRUE(wait_until(
      [&] { return harness.server.stats().connections_open == 0; }, 30s));
}

// --- backpressure ------------------------------------------------------------

TEST(EventLoopServer, SlowReaderStallsDispatchWithinTheWriteBufferBound) {
  constexpr std::size_t kWriteBound = 2048;
  constexpr std::size_t kBatchLines = 8;
  // The metrics responses (the fattest verb, ~1-2 KiB each) must comfortably
  // out-volume the kernel socket buffers (~200 KiB) so the user-space write
  // buffer actually backs up against the bound.
  constexpr int kRequests = 1000;

  serve::ServerOptions server_options;
  server_options.socket_path = test_socket_path("slow");
  server_options.max_write_buffer_bytes = kWriteBound;
  server_options.max_batch_lines = kBatchLines;
  server_options.executor_threads = 1;
  ServerHarness harness{serve::ServeOptions{}, server_options};

  const int fd = connect_or_die(server_options.socket_path);
  ASSERT_GE(fd, 0);
  std::string burst;
  std::size_t max_response_bytes = 0;
  for (int i = 0; i < kRequests; ++i)
    burst += "{\"id\":" + std::to_string(i) + ",\"op\":\"metrics\"}\n";
  // Send everything without reading a byte: the session must stall dispatch
  // once kWriteBound of responses back up, not buffer all of them.
  ASSERT_TRUE(send_all(fd, burst));
  std::this_thread::sleep_for(200ms);  // let it stall, then start reading

  const std::vector<std::string> lines =
      read_lines(fd, kRequests, 60s);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(response_id(lines[static_cast<std::size_t>(i)]),
              static_cast<double>(i))
        << "responses out of order at " << i;
    max_response_bytes =
        std::max(max_response_bytes, lines[static_cast<std::size_t>(i)].size() + 1);
  }
  ::close(fd);
  ASSERT_TRUE(wait_until(
      [&] { return harness.server.stats().connections_open == 0; }, 10s));

  const serve::ServerStats stats = harness.server.stats();
  EXPECT_GT(stats.backpressure_stalls, 0u)
      << "a 200-response backlog against a 2 KiB bound must stall";
  // The invariant from session.hpp: bound + at most one batch of responses.
  EXPECT_LE(stats.write_buffer_high_water,
            kWriteBound + kBatchLines * max_response_bytes)
      << "high water " << stats.write_buffer_high_water;
}

// --- drain under load --------------------------------------------------------

TEST(EventLoopServer, DrainUnderLoadLosesAndMisroutesNothing) {
  constexpr int kConnections = 8;
  constexpr int kPerConnection = 50;

  serve::ServerOptions server_options;
  server_options.socket_path = test_socket_path("drain");
  server_options.drain_timeout_ms = 30000;
  ServerHarness harness{serve::ServeOptions{}, server_options};

  std::vector<int> fds;
  for (int c = 0; c < kConnections; ++c) {
    const int fd = connect_or_die(server_options.socket_path);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
    std::string burst;
    for (int i = 0; i < kPerConnection; ++i)
      burst += "{\"id\":" + std::to_string(c * 1000 + i) +
               ",\"op\":\"predict\",\"benchmark\":\"triad\",\"placement\":"
               "\"G,G,G\"}\n";
    ASSERT_TRUE(send_all(fd, burst));
  }
  // Every connection must be PAST the accept queue before the drain closes
  // the listener (a backlogged connection would be dropped unanswered, which
  // is a connect-time failure, not a lost response).
  ASSERT_TRUE(wait_until(
      [&] {
        return harness.server.stats().connections_open >=
               static_cast<std::uint64_t>(kConnections);
      },
      10s));
  // Drain while those batches are in flight. Every line above was already
  // delivered to the server's socket buffer, so every line is owed exactly
  // one response — executed or shed, never lost.
  harness.server.begin_drain();

  for (int c = 0; c < kConnections; ++c) {
    const std::vector<std::string> lines = read_until_eof(fds[c], 60s);
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(kPerConnection))
        << "connection " << c << " lost responses in the drain";
    for (int i = 0; i < kPerConnection; ++i) {
      const std::string& line = lines[static_cast<std::size_t>(i)];
      // In order, on the right connection (ids are connection-scoped)...
      EXPECT_EQ(response_id(line), static_cast<double>(c * 1000 + i)) << line;
      // ...and every response is either executed or a structured shed.
      StatusOr<serve::Json> parsed = serve::Json::parse(line);
      ASSERT_TRUE(parsed.ok()) << line;
      if (!parsed->find("ok")->as_bool()) {
        EXPECT_EQ(parsed->find("error")->find("code")->as_string(),
                  "UNAVAILABLE")
            << line;
      }
    }
    ::close(fds[c]);
  }
  EXPECT_EQ(harness.join(), 0);  // clean drain, not a timeout
  const serve::ServeStats stats = harness.service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kConnections * kPerConnection));
}

// --- backend differential ----------------------------------------------------

// One scripted conversation (no time-dependent verbs), byte-for-byte.
std::vector<std::string> run_script_against(serve::ServerBackend backend,
                                            const char* tag) {
  serve::ServerOptions server_options;
  server_options.socket_path = test_socket_path(tag);
  server_options.backend = backend;
  ServerHarness harness{serve::ServeOptions{}, server_options};

  const int fd = connect_or_die(server_options.socket_path);
  EXPECT_GE(fd, 0);
  const std::string script =
      "{\"id\":1,\"op\":\"predict\",\"benchmark\":\"triad\",\"placement\":"
      "\"G,G,G\"}\n"
      "{\"id\":2,\"op\":\"predict\",\"benchmark\":\"triad\",\"placement\":"
      "\"bogus\"}\n"
      "{\"id\":3,\"op\":\"search\",\"benchmark\":\"triad\",\"algo\":"
      "\"exhaustive\",\"cap\":16}\n"
      "{\"id\":4,\"op\":\"predict\",\"benchmark\":\"triad\",\"placement\":"
      "\"G,G,G\",\"idem\":\"differential-idem\"}\n"
      "{\"id\":5,\"op\":\"shutdown\"}\n"
      "{\"id\":6,\"op\":\"predict\",\"benchmark\":\"triad\",\"placement\":"
      "\"G,G,G\",\"idem\":\"differential-idem\"}\n";
  EXPECT_TRUE(send_all(fd, script));
  const std::vector<std::string> lines = read_until_eof(fd, 60s);
  ::close(fd);
  EXPECT_EQ(harness.join(), 0);
  return lines;
}

TEST(EventLoopServer, ByteIdenticalResponsesAcrossServerBackends) {
  const std::vector<std::string> event_loop =
      run_script_against(serve::ServerBackend::kEventLoop, "diff_event");
  const std::vector<std::string> threaded = run_script_against(
      serve::ServerBackend::kThreadPerConnection, "diff_threaded");
  ASSERT_EQ(event_loop.size(), 6u);
  EXPECT_EQ(event_loop, threaded);
  // Spot-check the interesting ones: the trailing idem retry behind the
  // shutdown sheds FAILED_PRECONDITION (never replays) on BOTH backends.
  StatusOr<serve::Json> last = serve::Json::parse(event_loop.back());
  ASSERT_TRUE(last.ok());
  EXPECT_FALSE(last->find("ok")->as_bool());
  EXPECT_EQ(last->find("error")->find("code")->as_string(),
            "FAILED_PRECONDITION");
}

}  // namespace
}  // namespace gpuhms
