#include "dram/address_mapping.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "arch/arch_registry.hpp"
#include "common/rng.hpp"

namespace gpuhms {
namespace {

TEST(ExtractBits, Basics) {
  EXPECT_EQ(extract_bits(0b101100, {2, 3, 5}), 0b111u);
  EXPECT_EQ(extract_bits(0xff, {}), 0u);
  EXPECT_EQ(extract_bits(1ull << 40, {40}), 1u);
}

TEST(KeplerMapping, FieldLayout) {
  const auto m = kepler_mapping(kepler_arch());
  EXPECT_EQ(m.num_banks(), 128);
  EXPECT_EQ(m.fields().transaction_bits, 7);
  EXPECT_EQ(m.usable_bits(), 34);
}

TEST(KeplerMapping, SequentialLinesSweepBanks) {
  const auto m = kepler_mapping(kepler_arch());
  std::set<int> banks;
  for (std::uint64_t line = 0; line < 128; ++line) {
    banks.insert(m.decode(line * 128).bank);
  }
  EXPECT_EQ(banks.size(), 128u);  // full bank-level parallelism on streams
}

TEST(KeplerMapping, SameRowWithinColumnSpan) {
  const auto m = kepler_mapping(kepler_arch());
  // Two addresses differing only in column bits: same bank, same row.
  const std::uint64_t a = 0x12340000;
  const std::uint64_t b = a ^ (1ull << 15);
  EXPECT_EQ(m.decode(a).bank, m.decode(b).bank);
  EXPECT_EQ(m.decode(a).row, m.decode(b).row);
  EXPECT_NE(m.decode(a).column, m.decode(b).column);
}

TEST(KeplerMapping, RowBitsChangeRowOnly) {
  const auto m = kepler_mapping(kepler_arch());
  const std::uint64_t a = 0x00ac3f80;
  const std::uint64_t b = a ^ (1ull << 20);
  EXPECT_EQ(m.decode(a).bank, m.decode(b).bank);
  EXPECT_NE(m.decode(a).row, m.decode(b).row);
}

TEST(KeplerMapping, BankBitsChangeBank) {
  const auto m = kepler_mapping(kepler_arch());
  for (int bit : {7, 8, 9, 10, 11, 12, 13}) {
    const std::uint64_t a = 0x00ac3f80;
    const std::uint64_t b = a ^ (1ull << bit);
    EXPECT_NE(m.decode(a).bank, m.decode(b).bank) << "bit " << bit;
  }
}

TEST(KeplerMapping, TransactionBitsAreNeutral) {
  const auto m = kepler_mapping(kepler_arch());
  for (int bit = 0; bit < 7; ++bit) {
    const std::uint64_t a = 0x00ac3f80;
    const std::uint64_t b = a ^ (1ull << bit);
    EXPECT_EQ(m.decode(a).bank, m.decode(b).bank);
    EXPECT_EQ(m.decode(a).row, m.decode(b).row);
    EXPECT_EQ(m.decode(a).column, m.decode(b).column);
  }
}

TEST(AddressMapping, RejectsOverlappingRoles) {
  AddressMapping::Fields f;
  f.transaction_bits = 4;
  f.bank_bits = {4, 5};
  f.column_bits = {5, 6};  // bit 5 doubly assigned
  f.row_bits = {7, 8};
  f.num_banks = 4;
  EXPECT_DEATH(AddressMapping{std::move(f)}, "two roles");
}

TEST(AddressMapping, RejectsBitsInsideTransaction) {
  AddressMapping::Fields f;
  f.transaction_bits = 7;
  f.bank_bits = {3};  // inside the transaction offset
  f.column_bits = {14};
  f.row_bits = {18};
  f.num_banks = 2;
  EXPECT_DEATH(AddressMapping{std::move(f)}, "transaction");
}

// Inverse of extract_bits: bit i of `value` lands at addr bit positions[i].
std::uint64_t scatter_bits(std::uint64_t value,
                           const std::vector<int>& positions) {
  std::uint64_t addr = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    addr |= ((value >> i) & 1ull) << positions[i];
  }
  return addr;
}

// Property: with a power-of-two bank count (the modulo fold in decode() is
// the identity) and every non-transaction bit classified, decode() loses no
// information — (bank, row, column) plus the transaction offset reassemble
// to the exact original address, for 10k random addresses. This pins both
// directions of the field extraction, including interleaved (non-contiguous)
// role assignments like the real bank/column striping.
TEST(AddressMapping, DecodeRoundTripsWithPowerOfTwoBanks) {
  AddressMapping::Fields f;
  f.transaction_bits = 7;
  f.bank_bits = {7, 9, 11};            // interleaved with column bits
  f.column_bits = {8, 10, 12, 13};
  f.row_bits = {14, 15, 16, 17, 18, 19, 20, 21};
  f.num_banks = 8;  // == 2^|bank_bits|: decode's % num_banks is lossless
  const std::vector<int> bank_bits = f.bank_bits;
  const std::vector<int> column_bits = f.column_bits;
  const std::vector<int> row_bits = f.row_bits;
  const AddressMapping m(std::move(f));
  ASSERT_EQ(m.usable_bits(), 22);

  Rng rng(0x5ca77e);
  const std::uint64_t txn_mask = (1ull << 7) - 1;
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t addr = rng.next_below(1ull << m.usable_bits());
    const auto d = m.decode(addr);
    EXPECT_GE(d.bank, 0);
    EXPECT_LT(d.bank, m.num_banks());
    const std::uint64_t rebuilt =
        (addr & txn_mask) |
        scatter_bits(static_cast<std::uint64_t>(d.bank), bank_bits) |
        scatter_bits(d.column, column_bits) | scatter_bits(d.row, row_bits);
    ASSERT_EQ(rebuilt, addr) << "trial " << trial;
  }
}

// The default Kepler mapping folds 7 bank bits into 96 banks (not a power
// of two), so full inversion is impossible by design — but decode() must
// still keep every field in range and respect the documented widths for
// random addresses across the whole usable window.
TEST(KeplerMapping, DecodeFieldsInRangeForRandomAddresses) {
  const auto m = kepler_mapping(kepler_arch());
  Rng rng(0xdec0de);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t addr = rng.next_below(1ull << m.usable_bits());
    const auto d = m.decode(addr);
    EXPECT_GE(d.bank, 0);
    EXPECT_LT(d.bank, m.num_banks());
    EXPECT_LT(d.column, 1ull << m.fields().column_bits.size());
    EXPECT_LT(d.row, 1ull << m.fields().row_bits.size());
  }
}

// --- registered-geometry properties ------------------------------------------
// Every ArchRegistry backend declares its own AddressMapSpec; these
// properties must hold for all of them — including maxwell's non-power-of-two
// 192-bank fold and hbm2's XOR-swizzled channel map.

// decode(encode(d)) == d for every mapping: encode() is a right inverse on
// the Decoded domain even when the bank field is modulo-folded or swizzled.
TEST(AddressMapping, EncodeDecodeRoundTripsForEveryRegisteredGeometry) {
  for (const std::string& name : ArchRegistry::builtin().names()) {
    SCOPED_TRACE(name);
    const GpuArch& arch = ArchRegistry::builtin().find(name)->arch;
    const AddressMapping m = arch_mapping(arch);
    Rng rng(0xdeca7 + static_cast<std::uint64_t>(name.size()));
    for (int trial = 0; trial < 10000; ++trial) {
      AddressMapping::Decoded d;
      d.bank = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(m.num_banks())));
      d.column = rng.next_below(1ull << m.fields().column_bits.size());
      d.row = rng.next_below(1ull << m.fields().row_bits.size());
      const std::uint64_t addr = m.encode(d);
      ASSERT_LT(addr, 1ull << m.usable_bits());
      const auto back = m.decode(addr);
      ASSERT_EQ(back.bank, d.bank) << "trial " << trial;
      ASSERT_EQ(back.column, d.column) << "trial " << trial;
      ASSERT_EQ(back.row, d.row) << "trial " << trial;
    }
  }
}

// encode(decode(a)) == a additionally requires invertibility (no modulo
// fold, gap-free bit coverage) and a zero transaction offset. The kepler and
// hbm2 geometries are invertible; maxwell's 8-bit field folded to 192 banks
// is not, by design.
TEST(AddressMapping, DecodeEncodeRoundTripsForInvertibleGeometries) {
  std::size_t invertible_count = 0;
  for (const std::string& name : ArchRegistry::builtin().names()) {
    SCOPED_TRACE(name);
    const GpuArch& arch = ArchRegistry::builtin().find(name)->arch;
    const AddressMapping m = arch_mapping(arch);
    if (!m.invertible()) continue;
    ++invertible_count;
    Rng rng(0x1d + static_cast<std::uint64_t>(name.size()));
    const std::uint64_t txn = 1ull << m.fields().transaction_bits;
    for (int trial = 0; trial < 10000; ++trial) {
      // Canonical (offset-zero) addresses only: encode() rebuilds those.
      const std::uint64_t addr =
          rng.next_below(1ull << m.usable_bits()) / txn * txn;
      ASSERT_EQ(m.encode(m.decode(addr)), addr) << "trial " << trial;
    }
  }
  EXPECT_GE(invertible_count, 2u);  // kepler-layout maps + the hbm2 swizzle
  EXPECT_FALSE(arch_mapping(ArchRegistry::builtin().find("maxwell")->arch)
                   .invertible());  // 2^8 folded to 192
}

// Bank-partition exhaustiveness: within one row sweep, decode() reaches
// every bank of every registered geometry — the modulo fold and the XOR
// swizzle may permute banks but must not orphan any (an unreachable bank
// would silently halve the queuing model's parallelism).
TEST(AddressMapping, EveryRegisteredGeometryReachesAllBanks) {
  for (const std::string& name : ArchRegistry::builtin().names()) {
    SCOPED_TRACE(name);
    const GpuArch& arch = ArchRegistry::builtin().find(name)->arch;
    const AddressMapping m = arch_mapping(arch);
    ASSERT_EQ(m.num_banks(), arch.total_banks());
    const std::uint64_t txn = 1ull << m.fields().transaction_bits;
    std::set<int> banks;
    // 2x the bank count of consecutive transactions covers the whole bank
    // field even under folding (the field is wider than the bank count).
    for (std::uint64_t line = 0;
         line < 4ull * static_cast<std::uint64_t>(m.num_banks()); ++line) {
      const int bank = m.decode(line * txn).bank;
      ASSERT_GE(bank, 0);
      ASSERT_LT(bank, m.num_banks());
      banks.insert(bank);
    }
    EXPECT_EQ(banks.size(), static_cast<std::size_t>(m.num_banks()));
  }
}

// The hbm2 swizzle is the point of bank_xor_bits: a row-sequential stream
// (fixed bank field, increasing row) must rotate over banks instead of
// hammering one — and the swizzle must stay a per-row bijection.
TEST(AddressMapping, XorSwizzleRotatesRowSequentialStreams) {
  const GpuArch& hbm2 = ArchRegistry::builtin().find("hbm2")->arch;
  ASSERT_FALSE(hbm2.addr_map.bank_xor_bits.empty());
  const AddressMapping swizzled = arch_mapping(hbm2);
  GpuArch plain = hbm2;
  plain.addr_map.bank_xor_bits.clear();
  const AddressMapping unswizzled = arch_mapping(plain);

  const int row_bit = hbm2.addr_map.row_bits.front();
  std::set<int> swizzled_banks, plain_banks;
  for (std::uint64_t row = 0; row < 64; ++row) {
    const std::uint64_t addr = row << row_bit;  // bank field stays zero
    swizzled_banks.insert(swizzled.decode(addr).bank);
    plain_banks.insert(unswizzled.decode(addr).bank);
    // Swizzling permutes banks within a row; row and column are untouched.
    EXPECT_EQ(swizzled.decode(addr).row, unswizzled.decode(addr).row);
    EXPECT_EQ(swizzled.decode(addr).column, unswizzled.decode(addr).column);
  }
  EXPECT_EQ(plain_banks.size(), 1u);       // no swizzle: one hot bank
  EXPECT_GT(swizzled_banks.size(), 32u);   // swizzle: spread over channels
}

TEST(AddressMapping, RejectsXorSwizzleWithFoldedBanks) {
  AddressMapping::Fields f;
  f.transaction_bits = 7;
  f.bank_bits = {7, 8, 9};
  f.column_bits = {10, 11};
  f.row_bits = {12, 13, 14};
  f.bank_xor_bits = {12, 13, 14};
  f.num_banks = 6;  // != 2^3: fold + XOR would alias
  EXPECT_DEATH(AddressMapping{std::move(f)},
               "require num_banks == 2");
}

TEST(AddressMapping, DecodeStableUnderRandomizedFields) {
  // Property: decode() only depends on the classified bits — flipping an
  // unclassified (higher) bit changes nothing.
  Rng rng(21);
  AddressMapping::Fields f;
  f.transaction_bits = 6;
  f.bank_bits = {6, 9, 12};
  f.column_bits = {7, 10};
  f.row_bits = {8, 11, 13, 14};
  f.num_banks = 8;
  const AddressMapping m(std::move(f));
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_below(1ull << 15);
    const auto d1 = m.decode(a);
    const auto d2 = m.decode(a ^ (1ull << 40));
    EXPECT_EQ(d1.bank, d2.bank);
    EXPECT_EQ(d1.row, d2.row);
    EXPECT_EQ(d1.column, d2.column);
  }
}

}  // namespace
}  // namespace gpuhms
