#include "model/search.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

Predictor profiled_predictor(const KernelInfo& k) {
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  return pred;
}

TEST(SearchExhaustive, FindsMinimumOfPredictedSpace) {
  const KernelInfo k = workloads::make_stencil2d(128, 64);
  const Predictor pred = profiled_predictor(k);
  const auto r = search_exhaustive(pred);
  // Recompute: no placement should predict faster than the returned one.
  for (const auto& p : enumerate_placements(k, kepler_arch())) {
    EXPECT_GE(pred.predict(p).total_cycles, r.predicted_cycles - 1e-6);
  }
  // Every candidate is either fully scored or provably dominated (pruned).
  EXPECT_EQ(r.evaluated + r.pruned,
            enumerate_placements(k, kepler_arch()).size());
  EXPECT_FALSE(r.space_truncated);
}

TEST(SearchExhaustive, RespectsCap) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const Predictor pred = profiled_predictor(k);
  const auto r = search_exhaustive(pred, 5);
  EXPECT_EQ(r.evaluated + r.pruned, 5u);
  EXPECT_TRUE(r.space_truncated);
  EXPECT_GT(r.space_skipped, 0u);
}

TEST(SearchGreedy, NeverWorseThanStartingPoint) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const Predictor pred = profiled_predictor(k);
  const double start = pred.predict(DataPlacement::defaults(k)).total_cycles;
  const auto r = search_greedy(pred);
  EXPECT_LE(r.predicted_cycles, start + 1e-9);
}

TEST(SearchGreedy, ProducesLegalPlacement) {
  const KernelInfo k = workloads::make_triad(1 << 12);
  const Predictor pred = profiled_predictor(k);
  const auto r = search_greedy(pred);
  EXPECT_FALSE(validate_placement(k, r.placement, kepler_arch()).has_value());
}

TEST(SearchGreedy, MatchesExhaustiveOnSmallSpaces) {
  // On a small, well-behaved space the two searches should agree on the
  // predicted optimum (greedy can in principle get stuck; these spaces are
  // smooth enough that it should not).
  for (auto make : {workloads::make_stencil2d}) {
    const KernelInfo k = make(128, 64);
    const Predictor pred = profiled_predictor(k);
    const auto ex = search_exhaustive(pred);
    const auto gr = search_greedy(pred);
    EXPECT_NEAR(gr.predicted_cycles, ex.predicted_cycles,
                ex.predicted_cycles * 0.01);
  }
}

TEST(SearchGreedy, CheaperThanExhaustiveOnLargerSpaces) {
  const KernelInfo k = workloads::make_spmv(256, 16);
  const Predictor pred = profiled_predictor(k);
  const auto ex = search_exhaustive(pred);
  const auto gr = search_greedy(pred);
  EXPECT_LT(gr.evaluated, ex.evaluated);
}

TEST(SearchOracle, BestNotWorseThanWorst) {
  const KernelInfo k = workloads::make_stencil2d(128, 64);
  const auto r = search_oracle(k, kepler_arch());
  EXPECT_LE(r.best_cycles, r.worst_cycles);
  EXPECT_GT(r.simulated, 1u);
  EXPECT_FALSE(validate_placement(k, r.best, kepler_arch()).has_value());
}

TEST(SearchOracle, BestBeatsOrMatchesDefault) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto r = search_oracle(k, kepler_arch());
  const auto dflt = simulate(k, DataPlacement::defaults(k), kepler_arch());
  EXPECT_LE(r.best_cycles, dflt.cycles);
}

}  // namespace
}  // namespace gpuhms
