#include "model/queuing.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gpuhms {
namespace {

GG1Bank bank(double tau_a, double sigma_a, double tau_s, double sigma_s) {
  GG1Bank b;
  b.tau_a = tau_a;
  b.sigma_a = sigma_a;
  b.tau_s = tau_s;
  b.sigma_s = sigma_s;
  b.lambda = tau_a > 0 ? 1.0 / tau_a : 0.0;
  return b;
}

TEST(Kingman, ZeroVariabilityZeroDelay) {
  // Deterministic arrivals and service (c_a = c_s = 0) -> no queuing delay
  // under the paper's Eq. 9 form.
  EXPECT_DOUBLE_EQ(kingman_queue_delay(bank(100, 0, 50, 0)), 0.0);
}

TEST(Kingman, GrowsWithUtilization) {
  const double d1 = kingman_queue_delay(bank(200, 100, 50, 25));
  const double d2 = kingman_queue_delay(bank(100, 50, 50, 25));
  const double d3 = kingman_queue_delay(bank(60, 30, 50, 25));
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
}

TEST(Kingman, GrowsWithArrivalVariability) {
  // Same rho, increasing c_a (the paper's bursty-GPU-arrivals point).
  const double low = kingman_queue_delay(bank(100, 50, 50, 0));
  const double high = kingman_queue_delay(bank(100, 220, 50, 0));
  EXPECT_LT(low, high);
  EXPECT_NEAR(high / low, 4.4, 1e-9);  // linear in c_a under Eq. 9
}

TEST(Kingman, SaturationClamped) {
  // rho >= 1 would blow up; the clamp keeps the delay finite.
  const double d = kingman_queue_delay(bank(10, 5, 50, 10), 0.95);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1e6);
}

TEST(Kingman, EmptyBankIsZero) {
  EXPECT_DOUBLE_EQ(kingman_queue_delay(GG1Bank{}), 0.0);
}

TEST(GG1Bank, DerivedQuantities) {
  const auto b = bank(100, 50, 25, 5);
  EXPECT_DOUBLE_EQ(b.ca(), 0.5);
  EXPECT_DOUBLE_EQ(b.cs(), 0.2);
  EXPECT_DOUBLE_EQ(b.rho(), 0.25);
}

TEST(DramLatencyGG1, WeightsByArrivalRate) {
  // A hot fast bank and a cold slow bank: the aggregate leans to the hot one.
  std::vector<GG1Bank> banks = {bank(10, 0, 5, 0), bank(1000, 0, 500, 0)};
  const auto r = dram_latency_gg1(banks);
  EXPECT_GT(r.dram_lat, 5.0);
  EXPECT_LT(r.dram_lat, 55.0);  // dominated by the lambda=0.1 bank
}

TEST(DramLatencyGG1, EmptySystem) {
  const auto r = dram_latency_gg1({});
  EXPECT_DOUBLE_EQ(r.dram_lat, 0.0);
}

TEST(DramLatencyGG1, SingleTouchBankContributesService) {
  GG1Bank b;
  b.tau_s = 400.0;  // touched once: no arrival stats
  const auto r = dram_latency_gg1({b});
  EXPECT_DOUBLE_EQ(r.dram_lat, 400.0);
  EXPECT_DOUBLE_EQ(r.avg_queue_delay, 0.0);
}

TEST(BuildBankInputs, ConvertsTicksToCycles) {
  PlacementEvents ev;
  ev.banks.resize(2);
  ev.banks[0].count = 3;
  ev.banks[0].interarrival.add(10.0);
  ev.banks[0].interarrival.add(20.0);
  ev.banks[0].service.add(400.0);
  ev.banks[0].service.add(700.0);
  const auto banks = build_bank_inputs(ev, 2.0);
  EXPECT_DOUBLE_EQ(banks[0].tau_a, 30.0);  // 15 ticks x 2 cycles/tick
  EXPECT_DOUBLE_EQ(banks[0].tau_s, 550.0);
  EXPECT_GT(banks[0].lambda, 0.0);
  EXPECT_DOUBLE_EQ(banks[1].tau_s, 0.0);  // untouched bank
}

TEST(BuildBankInputs, SingleRequestBankIsUnloaded) {
  PlacementEvents ev;
  ev.banks.resize(1);
  ev.banks[0].count = 1;
  ev.banks[0].service.add(426.0);
  const auto banks = build_bank_inputs(ev, 1.0);
  EXPECT_DOUBLE_EQ(banks[0].lambda, 0.0);
  EXPECT_DOUBLE_EQ(banks[0].tau_s, 426.0);
}

TEST(DramLatencyConstant, UsesRowOutcomeMix) {
  const GpuArch& arch = kepler_arch();
  PlacementEvents ev;
  ev.row_hits = 50;
  ev.row_misses = 25;
  ev.row_conflicts = 25;
  const double lat = dram_latency_constant(ev, arch);
  const double expect =
      0.5 * static_cast<double>(arch.dram.row_hit_service) +
      0.25 * static_cast<double>(arch.dram.row_miss_service) +
      0.25 * static_cast<double>(arch.dram.row_conflict_service);
  EXPECT_DOUBLE_EQ(lat, expect);
}

// --- randomized properties of the Eq. 9 Kingman form -------------------------

// W_q is strictly increasing in utilization: with the service process and
// the moment magnitudes fixed, pushing rho = tau_s/tau_a up (arrivals
// closing in on service) can only lengthen the queue. Substituting
// tau_a = tau_s/rho into Eq. 9 gives W_q = (sigma_a*rho + sigma_s)/(2(1-rho))
// — numerator rising, denominator falling.
TEST(KingmanProperty, MonotoneInUtilization) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 1000; ++trial) {
    const double tau_s = 1.0 + 500.0 * rng.next_double();
    const double sigma_s = tau_s * rng.next_double();
    const double sigma_a = 400.0 * rng.next_double();
    double prev = -1.0;
    for (const double rho : {0.05, 0.2, 0.4, 0.6, 0.8, 0.94}) {
      GG1Bank b;
      b.tau_a = tau_s / rho;
      b.sigma_a = sigma_a;
      b.tau_s = tau_s;
      b.sigma_s = sigma_s;
      b.lambda = 1.0 / b.tau_a;
      bool saturated = false;
      const double d = kingman_queue_delay(b, 0.95, &saturated);
      EXPECT_FALSE(saturated) << "rho=" << rho;
      EXPECT_GE(d, 0.0);
      EXPECT_GT(d, prev) << "trial " << trial << " rho=" << rho;
      prev = d;
    }
  }
}

// With c_a = c_s = 1 (exponential-looking moments) the variability term of
// Eq. 9 collapses to 1 and Kingman degenerates to the Markovian queue. The
// paper's form scales by tau_a where the classic M/M/1 scales by tau_s, so
// the collapse reads: kingman = (rho/(1-rho)) * tau_a, equivalently
// kingman * tau_s == mm1 * tau_a.
TEST(KingmanProperty, CollapsesToMm1WhenCvIsOne) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 1000; ++trial) {
    const double tau_s = 1.0 + 300.0 * rng.next_double();
    const double rho = 0.02 + 0.9 * rng.next_double();
    GG1Bank b;
    b.tau_a = tau_s / rho;
    b.sigma_a = b.tau_a;  // c_a = 1
    b.tau_s = tau_s;
    b.sigma_s = tau_s;  // c_s = 1
    b.lambda = 1.0 / b.tau_a;
    const double kingman = kingman_queue_delay(b);
    const double mm1 = mm1_queue_delay(b);
    const double rho_term = rho / (1.0 - rho);
    EXPECT_NEAR(kingman, rho_term * b.tau_a, 1e-9 * (1.0 + kingman));
    EXPECT_NEAR(kingman * b.tau_s, mm1 * b.tau_a,
                1e-9 * (1.0 + kingman * b.tau_s));
  }
}

// rho -> 1 would make the rho/(1-rho) pole blow up; the rho_max clamp must
// keep the delay finite for arbitrarily saturated banks and report the
// clamping through `saturated`. Below the clamp the flag stays untouched.
TEST(KingmanProperty, FiniteAndFlaggedNearSaturation) {
  Rng rng(0xcafe);
  for (int trial = 0; trial < 1000; ++trial) {
    const double tau_s = 1.0 + 200.0 * rng.next_double();
    // rho in [0.951, ~20]: at or past the default clamp.
    const double rho = 0.951 + 19.0 * rng.next_double();
    GG1Bank b;
    b.tau_a = tau_s / rho;
    b.sigma_a = b.tau_a * rng.next_double();
    b.tau_s = tau_s;
    b.sigma_s = tau_s * rng.next_double();
    b.lambda = 1.0 / b.tau_a;
    bool saturated = false;
    const double d = kingman_queue_delay(b, 0.95, &saturated);
    EXPECT_TRUE(std::isfinite(d)) << "rho=" << rho;
    EXPECT_GE(d, 0.0);
    EXPECT_TRUE(saturated) << "rho=" << rho;
    // The clamp pins the delay at the rho_max pole: never beyond the value
    // the formula yields at rho = 0.95 exactly.
    const double at_clamp =
        ((b.ca() + b.cs()) / 2.0) * (0.95 / 0.05) * b.tau_a;
    EXPECT_LE(d, at_clamp * (1.0 + 1e-12));

    bool unsat = false;
    GG1Bank calm = b;
    calm.tau_a = tau_s / 0.5;
    calm.lambda = 1.0 / calm.tau_a;
    (void)kingman_queue_delay(calm, 0.95, &unsat);
    EXPECT_FALSE(unsat);
  }
}

TEST(Mm1, ZeroWhenIdle) {
  EXPECT_DOUBLE_EQ(mm1_queue_delay(GG1Bank{}), 0.0);
}

TEST(Mm1, IgnoresVariability) {
  // Same rho, wildly different c_a: M/M/1 cannot tell them apart — the
  // paper's core criticism of Markovian queues for GPUs.
  const auto calm = bank(100, 0, 50, 0);
  const auto bursty = bank(100, 300, 50, 40);
  EXPECT_DOUBLE_EQ(mm1_queue_delay(calm), mm1_queue_delay(bursty));
  EXPECT_LT(kingman_queue_delay(calm), kingman_queue_delay(bursty));
}

TEST(Mm1, ClassicFormula) {
  // rho = 0.5 -> W_q = tau_s.
  EXPECT_DOUBLE_EQ(mm1_queue_delay(bank(100, 0, 50, 0)), 50.0);
}

TEST(DramLatencyMm1, AggregatesLikeGg1) {
  std::vector<GG1Bank> banks = {bank(100, 50, 50, 25), bank(200, 10, 20, 5)};
  const auto rg = dram_latency_gg1(banks);
  const auto rm = dram_latency_mm1(banks);
  EXPECT_GT(rm.dram_lat, 0.0);
  EXPECT_DOUBLE_EQ(rm.avg_service, rg.avg_service);  // same service mix
  EXPECT_NE(rm.avg_queue_delay, rg.avg_queue_delay);
}

TEST(DramLatencyConstant, FallsBackToMissServiceWhenNoData) {
  PlacementEvents ev;
  EXPECT_DOUBLE_EQ(dram_latency_constant(ev, kepler_arch()),
                   static_cast<double>(kepler_arch().dram.row_miss_service));
}

}  // namespace
}  // namespace gpuhms
