#include "tools/event_selector.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

SimResult synthetic_run(std::uint64_t cycles, std::uint64_t correlated,
                        std::uint64_t uncorrelated) {
  SimResult r;
  r.cycles = cycles;
  r.counters.inst_issued = correlated;
  r.counters.inst_executed = uncorrelated;
  return r;
}

TEST(EventSelector, RequiresTwoRuns) {
  EXPECT_DEATH(screen_events({synthetic_run(1, 1, 1)}), "two placements");
}

TEST(EventSelector, PicksOutProportionalEvent) {
  // inst_issued is exactly proportional to time, inst_executed is constant:
  // cosine(issued, time) = 1, cosine(executed, time) < 1 for varying times.
  std::vector<SimResult> runs = {
      synthetic_run(100, 200, 5000), synthetic_run(300, 600, 5000),
      synthetic_run(50, 100, 5000), synthetic_run(800, 1600, 5000)};
  const auto screen = screen_events(runs, 0.99);
  EXPECT_NEAR(screen.similarity.at("inst_issued"), 1.0, 1e-12);
  EXPECT_LT(screen.similarity.at("inst_executed"), 0.99);
  EXPECT_EQ(screen.selected.front(), "inst_issued");
  for (const auto& name : screen.selected)
    EXPECT_GE(screen.similarity.at(name), 0.99);
}

TEST(EventSelector, SelectedSortedDescending) {
  std::vector<SimResult> runs = {synthetic_run(100, 200, 90),
                                 synthetic_run(300, 600, 310),
                                 synthetic_run(700, 1400, 680)};
  const auto screen = screen_events(runs, 0.5);
  for (std::size_t i = 1; i < screen.selected.size(); ++i) {
    EXPECT_GE(screen.similarity.at(screen.selected[i - 1]),
              screen.similarity.at(screen.selected[i]));
  }
}

TEST(EventSelector, RealKernelScreensIssuedInstructions) {
  // Sec. II-B's headline finding: the number of issued instructions tracks
  // the time variation across placements. Check it holds on the substrate
  // for a placement sweep of vecadd.
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto base = DataPlacement::defaults(k);
  std::vector<SimResult> runs;
  for (MemSpace s : {MemSpace::Global, MemSpace::Shared, MemSpace::Constant,
                     MemSpace::Texture1D}) {
    runs.push_back(simulate(k, base.with(0, s).with(1, s)));
  }
  // Table I shows the passing events differ per kernel (N/A cells); on
  // this sweep we require a strong, though not threshold-level, correlation.
  const auto screen = screen_events(runs, 0.94);
  EXPECT_GE(screen.similarity.at("inst_issued"), 0.80);
  EXPECT_FALSE(screen.selected.empty());
}

TEST(EventSelector, AllSimilaritiesBounded) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto base = DataPlacement::defaults(k);
  std::vector<SimResult> runs = {
      simulate(k, base), simulate(k, base.with(0, MemSpace::Texture1D))};
  const auto screen = screen_events(runs);
  for (const auto& [name, sim] : screen.similarity) {
    EXPECT_GE(sim, 0.0) << name;
    EXPECT_LE(sim, 1.0 + 1e-12) << name;
  }
}

}  // namespace
}  // namespace gpuhms
