// Metamorphic / property tests of the full prediction pipeline: instead of
// asserting absolute numbers, assert how predictions MUST move when the
// input is transformed in a known direction.
#include <gtest/gtest.h>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

Predictor profiled(const KernelInfo& k, ModelOptions opts = {}) {
  Predictor p(k, kepler_arch(), opts);
  p.profile_sample(DataPlacement::defaults(k));
  return p;
}

TEST(ModelProperties, PredictionGrowsWithProblemSize) {
  // Same placement, 8x the elements, both large enough to be throughput-
  // bound (tiny kernels are latency-bound and scale sublinearly).
  const KernelInfo small = workloads::make_vecadd(1 << 13);
  const KernelInfo large = workloads::make_vecadd(1 << 16);
  const auto ps = profiled(small).predict(DataPlacement::defaults(small));
  const auto pl = profiled(large).predict(DataPlacement::defaults(large));
  EXPECT_GT(pl.total_cycles, 3.0 * ps.total_cycles);
}

TEST(ModelProperties, ForcedDivergenceRaisesPredictedCompCost) {
  // A strided copy has more transactions/replays than a unit-stride copy;
  // the predicted issued instructions and T_comp must reflect it.
  auto make = [](std::int64_t stride) {
    KernelInfo k;
    k.name = "copy";
    k.num_blocks = 64;
    k.threads_per_block = 128;
    k.arrays = {ArrayDecl{.name = "in", .dtype = DType::F32,
                          .elems = 1 << 16},
                ArrayDecl{.name = "out", .dtype = DType::F32,
                          .elems = 1 << 16, .written = true}};
    k.fn = [stride](WarpEmitter& em, const WarpCtx& ctx) {
      const std::int64_t n = 1 << 16;
      em.load(0, em.by_lane([&](int l) {
        return (ctx.thread_id(l) * stride) % n;
      }));
      em.store(1, em.by_lane([&](int l) {
        return ctx.thread_id(l) % n;
      }), true);
    };
    return k;
  };
  const KernelInfo unit = make(1);
  const KernelInfo strided = make(64);
  // Predict the strided kernel FROM the unit-stride structure is not
  // meaningful (different kernels); instead compare each one's self-analysis.
  const auto ev_u = analyze_trace(unit, DataPlacement::defaults(unit),
                                  kepler_arch());
  const auto ev_s = analyze_trace(strided, DataPlacement::defaults(strided),
                                  kepler_arch());
  EXPECT_GT(ev_s.replay_global_divergence, ev_u.replay_global_divergence);
  EXPECT_GT(ev_s.global_transactions, ev_u.global_transactions);
}

TEST(ModelProperties, AnchorScaleIndependentOfTargetOrder) {
  // Predicting targets in different orders must not change results (the
  // anchor is computed once from the sample).
  const auto c = workloads::get_benchmark("stencil2d");
  Predictor p1(c.kernel, kepler_arch());
  p1.profile_sample(c.sample);
  Predictor p2(c.kernel, kepler_arch());
  p2.set_sample(c.sample, p1.sample_result());

  const auto t1 = c.tests.front().placement;
  const auto t2 = c.sample.with(0, MemSpace::Texture2D);
  const double a1 = p1.predict(t1).total_cycles;
  const double a2 = p1.predict(t2).total_cycles;
  // Reverse order on the second predictor.
  const double b2 = p2.predict(t2).total_cycles;
  const double b1 = p2.predict(t1).total_cycles;
  EXPECT_DOUBLE_EQ(a1, b1);
  EXPECT_DOUBLE_EQ(a2, b2);
}

TEST(ModelProperties, EvenDistributionNeverSeesRealBankSkew) {
  // Under the even-distribution ablation, two arrays that collide on real
  // banks look identical to two that do not: predictions depend only on
  // request counts, not addresses. Verify via bank streams.
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  AnalysisOptions even;
  even.even_bank_distribution = true;
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch(),
                                even);
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& b : ev.banks) {
    if (b.count == 0) continue;
    lo = std::min(lo, b.count);
    hi = std::max(hi, b.count);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ModelProperties, QueueDelayRespondsToLoad) {
  // Doubling the number of resident blocks per SM (more concurrent traffic)
  // cannot *reduce* the G/G/1 queue delay estimate for the same kernel.
  const KernelInfo k = workloads::make_md(1536, 16);
  const auto ev = analyze_trace(k, DataPlacement::defaults(k), kepler_arch());
  const auto banks_fast = build_bank_inputs(ev, 0.1);  // compressed arrivals
  const auto banks_slow = build_bank_inputs(ev, 1.0);  // stretched arrivals
  const double d_fast = dram_latency_gg1(banks_fast).avg_queue_delay;
  const double d_slow = dram_latency_gg1(banks_slow).avg_queue_delay;
  EXPECT_GE(d_fast, d_slow);
}

TEST(ModelProperties, AmatBoundedByComponents) {
  for (const char* name : {"stencil2d", "spmv", "md5hash"}) {
    const auto c = workloads::get_benchmark(name);
    Predictor pred = profiled(c.kernel);
    for (const auto& t : c.tests) {
      const auto p = pred.predict(t.placement);
      const GpuArch& a = kepler_arch();
      EXPECT_GE(p.amat, static_cast<double>(a.shared_lat) * 0.5) << name;
      EXPECT_LE(p.amat,
                p.dram_lat + static_cast<double>(a.cache_hit_lat) + 1.0)
          << name;
    }
  }
}

TEST(ModelProperties, InstructionEstimateExactWhenNothingChanges) {
  // Predicting the sample placement itself must reproduce the measured
  // issued-instruction count exactly (Eq. 3 deltas all cancel).
  const auto c = workloads::get_benchmark("fft");
  Predictor pred = profiled(c.kernel);
  const auto p = pred.predict(c.sample);
  const auto& sc = pred.sample_result().counters;
  EXPECT_DOUBLE_EQ(p.inst.issued_total,
                   static_cast<double>(sc.inst_issued));
}

TEST(ModelProperties, BaselineInsensitiveToReplayHeavyMoves) {
  // The defining failure of the no-instruction-counting baseline: moving
  // neuralnet weights to constant memory barely moves its predicted
  // instruction count, while the full model's jumps.
  const auto c = workloads::get_benchmark("neuralnet");
  const int iw = c.kernel.array_index("weights");
  const auto target = c.sample.with(iw, MemSpace::Constant);

  Predictor full = profiled(c.kernel);
  Predictor base(c.kernel, kepler_arch(), ModelOptions::baseline());
  base.set_sample(c.sample, full.sample_result());

  const double full_ratio = full.predict(target).inst.issued_total /
                            full.predict(c.sample).inst.issued_total;
  const double base_ratio = base.predict(target).inst.issued_total /
                            base.predict(c.sample).inst.issued_total;
  EXPECT_GT(full_ratio, 3.0);
  EXPECT_NEAR(base_ratio, 1.0, 1e-9);
}

TEST(ModelProperties, OccupancyDropRaisesPredictedTime) {
  // Moving a large array into shared memory halves occupancy; the model's
  // prediction must rise accordingly (not only the staging instructions).
  const auto c = workloads::get_benchmark("neuralnet");
  const int iw = c.kernel.array_index("weights");
  Predictor pred = profiled(c.kernel);
  const auto pg = pred.predict(c.sample);
  const auto ps = pred.predict(c.sample.with(iw, MemSpace::Shared));
  EXPECT_GT(ps.total_cycles, 1.5 * pg.total_cycles);
}

}  // namespace
}  // namespace gpuhms
