#include "trace/allocation.hpp"

#include <gtest/gtest.h>

#include "dram/address_mapping.hpp"

namespace gpuhms {
namespace {

KernelInfo demo_kernel() {
  KernelInfo k;
  k.name = "demo";
  k.num_blocks = 4;
  k.threads_per_block = 128;
  k.arrays = {
      ArrayDecl{.name = "a", .dtype = DType::F32, .elems = 4096, .width = 64,
                .shared_slice_elems = 128},
      ArrayDecl{.name = "b", .dtype = DType::F64, .elems = 1024},
      ArrayDecl{.name = "c", .dtype = DType::F32, .elems = 4096,
                .written = true},
  };
  k.fn = [](WarpEmitter&, const WarpCtx&) {};
  return k;
}

TEST(MemoryLayout, DeviceBasesAreDisjointAndOrdered) {
  const KernelInfo k = demo_kernel();
  const auto p = DataPlacement::defaults(k);
  const MemoryLayout layout(k, p, kepler_arch());
  EXPECT_LT(layout.device_base(0) + k.arrays[0].bytes(),
            layout.device_base(1) + 1);
  EXPECT_LT(layout.device_base(1) + k.arrays[1].bytes(),
            layout.device_base(2) + 1);
  EXPECT_GT(layout.device_base(0), 0u);
}

TEST(MemoryLayout, DeviceAddressesStableAcrossOffchipPlacements) {
  // Sec. III-E: moving between off-chip spaces keeps addresses.
  const KernelInfo k = demo_kernel();
  const auto p1 = DataPlacement::defaults(k);
  const auto p2 = p1.with(0, MemSpace::Constant).with(1, MemSpace::Texture1D);
  const MemoryLayout l1(k, p1, kepler_arch());
  const MemoryLayout l2(k, p2, kepler_arch());
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(l1.device_base(a), l2.device_base(a));
  }
  EXPECT_EQ(l1.device_addr(0, 100), l2.device_addr(0, 100));
}

TEST(MemoryLayout, Texture2DUsesBlockLinear) {
  const KernelInfo k = demo_kernel();
  const auto pitch = DataPlacement::defaults(k);
  const auto bl = pitch.with(0, MemSpace::Texture2D);
  const MemoryLayout l1(k, pitch, kepler_arch());
  const MemoryLayout l2(k, bl, kepler_arch());
  EXPECT_EQ(l1.device_addr(0, 0), l2.device_addr(0, 0));
  // Element (0, 1) = index 64: pitch-linear offset 256, block-linear 64.
  EXPECT_EQ(l1.device_addr(0, 64) - l1.device_base(0), 256u);
  EXPECT_EQ(l2.device_addr(0, 64) - l2.device_base(0), 64u);
}

TEST(MemoryLayout, SharedOffsetsOnlyForSharedArrays) {
  const KernelInfo k = demo_kernel();
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Shared);
  const MemoryLayout layout(k, p, kepler_arch());
  EXPECT_TRUE(layout.in_shared(0));
  EXPECT_FALSE(layout.in_shared(1));
  EXPECT_EQ(layout.shared_offset(0), 0u);
  EXPECT_EQ(layout.total_shared_bytes(), 512u);  // 128 elems x 4 B, aligned
}

TEST(MemoryLayout, MultipleSharedArraysPackWithAlignment) {
  KernelInfo k = demo_kernel();
  k.arrays[2].shared_slice_elems = 33;  // 132 B -> padded to 256
  const auto p = DataPlacement::defaults(k)
                     .with(0, MemSpace::Shared)
                     .with(2, MemSpace::Shared);
  const MemoryLayout layout(k, p, kepler_arch());
  EXPECT_EQ(layout.shared_offset(0), 0u);
  EXPECT_EQ(layout.shared_offset(2), 512u);
  EXPECT_EQ(layout.total_shared_bytes(), 512u + 256u);
}

TEST(MemoryLayout, SharedSliceModuloIndexing) {
  const KernelInfo k = demo_kernel();
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Shared);
  const MemoryLayout layout(k, p, kepler_arch());
  EXPECT_EQ(layout.shared_slice_elems(0), 128);
  // Global element 128*3 + 5 maps to slice-local element 5.
  EXPECT_EQ(layout.shared_addr(0, 128 * 3 + 5),
            layout.shared_offset(0) + 5 * 4);
}

TEST(MemoryLayout, SharedSliceStartPartitionedVsReplicated) {
  KernelInfo k = demo_kernel();
  const auto p = DataPlacement::defaults(k).with(0, MemSpace::Shared);
  {
    const MemoryLayout layout(k, p, kepler_arch());
    EXPECT_EQ(layout.shared_slice_start(0, 0), 0);
    EXPECT_EQ(layout.shared_slice_start(0, 3), 3 * 128);
  }
  k.arrays[0].shared_slice_elems = 0;  // whole array replicated per block
  {
    const auto p2 = DataPlacement::defaults(k).with(0, MemSpace::Shared);
    const MemoryLayout layout(k, p2, kepler_arch());
    EXPECT_EQ(layout.shared_slice_start(0, 3), 0);
    EXPECT_EQ(layout.shared_slice_elems(0), 4096);
  }
}

TEST(MemoryLayout, BankStaggerSpreadsBases) {
  const KernelInfo k = demo_kernel();
  const auto p = DataPlacement::defaults(k);
  const MemoryLayout layout(k, p, kepler_arch());
  const auto m = kepler_mapping(kepler_arch());
  // Consecutive arrays start in different banks even with aligned sizes.
  EXPECT_NE(m.decode(layout.device_base(0)).bank,
            m.decode(layout.device_base(1)).bank);
  EXPECT_NE(m.decode(layout.device_base(1)).bank,
            m.decode(layout.device_base(2)).bank);
}

}  // namespace
}  // namespace gpuhms
