#include "isa/addressing.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

// Sec. III-B: "the numbers of instructions required to calculate the address
// of a 1D-array element are 2, 0, 1, 1 for global, 1D texture, constant, and
// shared memories".
TEST(Addressing, PaperCountsForF32) {
  EXPECT_EQ(addr_calc_instructions(MemSpace::Global, DType::F32), 2);
  EXPECT_EQ(addr_calc_instructions(MemSpace::Texture1D, DType::F32), 0);
  EXPECT_EQ(addr_calc_instructions(MemSpace::Constant, DType::F32), 1);
  EXPECT_EQ(addr_calc_instructions(MemSpace::Shared, DType::F32), 1);
}

// A parameterized sweep: counts are stable across the enumerated data types
// (the IMAD pair / SHL absorb the element-size scale on Kepler).
class AddressingDtype : public ::testing::TestWithParam<DType> {};

TEST_P(AddressingDtype, CountsIndependentOfType) {
  const DType t = GetParam();
  EXPECT_EQ(addr_calc_instructions(MemSpace::Global, t), 2);
  EXPECT_EQ(addr_calc_instructions(MemSpace::Texture1D, t), 0);
  EXPECT_EQ(addr_calc_instructions(MemSpace::Constant, t), 1);
  EXPECT_EQ(addr_calc_instructions(MemSpace::Shared, t), 1);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, AddressingDtype,
                         ::testing::Values(DType::F32, DType::F64, DType::I32));

TEST(Addressing, TwoDTextureCoordinatePath) {
  // With native 2-D coordinates the texture unit needs no index math, while
  // every other space must flatten the coordinates first.
  EXPECT_EQ(addr_calc_instructions_2d(MemSpace::Texture2D, DType::F32), 0);
  EXPECT_GT(addr_calc_instructions_2d(MemSpace::Global, DType::F32),
            addr_calc_instructions(MemSpace::Global, DType::F32));
}

TEST(Addressing, OrderingMatchesFigure2) {
  // texture <= constant == shared < global (for 1-D indexing).
  const auto g = addr_calc_instructions(MemSpace::Global, DType::F32);
  const auto t = addr_calc_instructions(MemSpace::Texture1D, DType::F32);
  const auto c = addr_calc_instructions(MemSpace::Constant, DType::F32);
  const auto s = addr_calc_instructions(MemSpace::Shared, DType::F32);
  EXPECT_LT(t, c);
  EXPECT_EQ(c, s);
  EXPECT_LT(s, g);
}

}  // namespace
}  // namespace gpuhms
