// Chaos harness (ctest -L chaos): every registered fault site is exercised
// through its real code path in BOTH modes — armed (the injected failure is
// observed as the documented degraded behavior, never UB) and disarmed (the
// same path runs clean) — plus randomized seeded kill/resume of the
// journaled search and a drain-under-fire serve run with the retrying
// client. The completeness table FAILS COMPILATION-OF-INTENT: registering a
// new fault site without adding a scenario here breaks the suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/fault_injection.hpp"
#include "common/journal.hpp"
#include "common/thread_pool.hpp"
#include "model/search.hpp"
#include "model/search_checkpoint.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"
#include "trace/serialize.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

class Chaos : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

Predictor profiled_predictor(const KernelInfo& k) {
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  return pred;
}

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "chaos_" + tag + ".jnl";
}

serve::Json parse_ok(const std::string& line) {
  StatusOr<serve::Json> parsed = serve::Json::parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *std::move(parsed) : serve::Json::object();
}

// --- fault-site completeness table -------------------------------------------
// One scenario per registered site. Each drives the site's real call path;
// with `fire` it arms the fault first and asserts the documented failure
// mode, without it the identical path must succeed.

using Scenario = std::function<void(bool fire)>;

void scenario_trace_lower(bool fire) {
  const KernelInfo kern = workloads::make_vecadd(1 << 10);
  const Predictor pred = profiled_predictor(kern);
  SearchOptions o;
  o.cap = 16;
  if (fire) fault::arm("trace.lower", 1);
  const auto r = try_search_exhaustive(pred, o);
  if (fire) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    EXPECT_NE(r.status().message().find("trace.lower"), std::string::npos);
  } else {
    EXPECT_TRUE(r.ok()) << r.status().to_string();
  }
}

void scenario_serialize_write(bool fire) {
  const KernelInfo k = workloads::make_vecadd(1 << 8);
  TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  const auto warps = mat.generate(0, 1);
  if (fire) fault::arm("serialize.write", 1);
  std::ostringstream os;
  const Status st = try_write_trace(os, k, warps);
  if (fire) {
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  } else {
    EXPECT_TRUE(st.ok()) << st.to_string();
  }
}

void scenario_serialize_read(bool fire) {
  const KernelInfo k = workloads::make_vecadd(1 << 8);
  TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  std::ostringstream os;
  ASSERT_TRUE(try_write_trace(os, k, mat.generate(0, 1)).ok());
  if (fire) fault::arm("serialize.read", 1);
  std::istringstream is(os.str());
  const auto r = try_read_trace(is);
  if (fire) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  } else {
    EXPECT_TRUE(r.ok()) << r.status().to_string();
  }
}

void scenario_queuing(const char* site, bool fire) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const Predictor pred = profiled_predictor(k);
  if (fire) fault::arm(site, 1);
  const auto r = pred.try_predict(DataPlacement::defaults(k));
  ASSERT_TRUE(r.ok()) << r.status().to_string();  // degraded, not failed
  EXPECT_TRUE(std::isfinite(r->total_cycles));
  EXPECT_GT(r->total_cycles, 0.0);
  EXPECT_EQ(r->queue_saturated, fire);
}

void scenario_pool_task(bool fire) {
  ThreadPool pool(2);
  if (fire) {
    fault::arm("pool.task", 3);
    EXPECT_THROW(pool.parallel_for(16, [](int, std::size_t) {}),
                 InjectedFault);
  }
  // Clean path (and post-throw reuse when fired).
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](int, std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 16);
}

void scenario_serve_parse(bool fire) {
  serve::PredictionService service;
  if (fire) fault::arm("serve.parse", 1);
  const std::string resp = service.handle_line(
      R"({"id":1,"op":"predict","benchmark":"triad","placement":"G,G,G"})");
  const serve::Json r = parse_ok(resp);
  ASSERT_NE(r.find("ok"), nullptr) << resp;
  EXPECT_EQ(r.find("ok")->as_bool(), !fire) << resp;
  if (fire) {
    EXPECT_EQ(r.find("error")->find("code")->as_string(), "INTERNAL") << resp;
  }
}

void scenario_serve_accept(bool fire) {
  serve::PredictionService service;
  if (fire) fault::arm("serve.accept", 1);
  const std::string resp = service.handle_line(
      R"({"id":1,"op":"predict","benchmark":"triad","placement":"G,G,G"})");
  const serve::Json r = parse_ok(resp);
  ASSERT_NE(r.find("ok"), nullptr) << resp;
  EXPECT_EQ(r.find("ok")->as_bool(), !fire) << resp;
  if (fire) {
    EXPECT_EQ(r.find("error")->find("code")->as_string(), "UNAVAILABLE")
        << resp;
  }
}

void scenario_arena_alloc(bool fire) {
  Arena arena;
  if (fire) {
    fault::arm("arena.alloc", 1);
    EXPECT_THROW(arena.alloc_bytes(64, 8), std::bad_alloc);
  } else {
    EXPECT_NE(arena.alloc_bytes(64, 8), nullptr);
  }
}

void scenario_journal_write(bool fire) {
  const std::string path = temp_path("journal_write");
  {
    auto w = journal::Writer::create(path);
    ASSERT_TRUE(w.ok());
    if (fire) fault::arm("journal.write", 1);
    const Status st = w->append("payload");
    if (fire) {
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.code(), StatusCode::kDataLoss);
    } else {
      EXPECT_TRUE(st.ok()) << st.to_string();
    }
  }
  std::remove(path.c_str());
}

void scenario_journal_read(bool fire) {
  const std::string path = temp_path("journal_read");
  {
    auto w = journal::Writer::create(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->append("payload").ok());
  }
  if (fire) fault::arm("journal.read", 1);
  const auto r = journal::read_records(path);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->tail_truncated, fire);
  EXPECT_EQ(r->records.size(), fire ? 0u : 1u);
  std::remove(path.c_str());
}

const std::map<std::string, Scenario>& scenario_table() {
  static const std::map<std::string, Scenario> table = {
      {"trace.lower", scenario_trace_lower},
      {"serialize.write", scenario_serialize_write},
      {"serialize.read", scenario_serialize_read},
      {"queuing.nan", [](bool f) { scenario_queuing("queuing.nan", f); }},
      {"queuing.saturate",
       [](bool f) { scenario_queuing("queuing.saturate", f); }},
      {"pool.task", scenario_pool_task},
      {"serve.parse", scenario_serve_parse},
      {"serve.accept", scenario_serve_accept},
      {"arena.alloc", scenario_arena_alloc},
      {"journal.write", scenario_journal_write},
      {"journal.read", scenario_journal_read},
  };
  return table;
}

// Satellite: the table must cover the registry exactly. A new
// GPUHMS_FAULT_POINT site registered in fault::known_sites() without a chaos
// scenario (or a stale scenario for a removed site) fails here by name.
TEST_F(Chaos, EveryKnownFaultSiteHasAScenario) {
  const std::span<const std::string_view> known = fault::known_sites();
  EXPECT_FALSE(known.empty());
  for (const std::string_view site : known)
    EXPECT_EQ(scenario_table().count(std::string(site)), 1u)
        << "fault site '" << site
        << "' is registered but has no chaos scenario in test_chaos.cpp";
  for (const auto& [site, fn] : scenario_table())
    EXPECT_NE(std::find(known.begin(), known.end(), site), known.end())
        << "chaos scenario '" << site
        << "' does not match any registered fault site";
}

TEST_F(Chaos, EverySiteRunsCleanWhenDisarmed) {
  for (const auto& [site, run] : scenario_table()) {
    SCOPED_TRACE(site);
    run(/*fire=*/false);
    EXPECT_EQ(fault::hits(site), 0u) << "disarmed site counted hits";
    fault::disarm_all();
  }
}

TEST_F(Chaos, EverySiteFiresItsDocumentedFailureModeWhenArmed) {
  for (const auto& [site, run] : scenario_table()) {
    SCOPED_TRACE(site);
    run(/*fire=*/true);
    EXPECT_GE(fault::hits(site), 1u)
        << "armed scenario never reached its fault site";
    fault::disarm_all();
  }
}

// --- randomized kill/resume --------------------------------------------------
// The crash model again, but adversarial: SIGKILL at seeded-random byte
// offsets of the checkpoint journal. Every surviving prefix must resume to
// the bit-identical certified result, and the resume watermark must be
// monotone in how much journal survived.
TEST_F(Chaos, RandomizedKillResumeAlwaysReconvergesBitIdentical) {
  const KernelInfo kern = workloads::make_bnb_synth(5);
  const Predictor pred = profiled_predictor(kern);
  SearchOptions options;
  options.checkpoint_interval = 32;
  const SearchResult reference = search_branch_and_bound(pred, options);

  const std::string path = temp_path("kill_resume");
  std::remove(path.c_str());
  {
    const auto full = try_resume_branch_and_bound(pred, options, path);
    ASSERT_TRUE(full.ok()) << full.status().to_string();
  }
  std::ifstream in(path, std::ios::binary);
  const std::string full((std::istreambuf_iterator<char>(in)), {});
  in.close();

  std::mt19937 rng(0xC4A05u);  // seeded: failures replay exactly
  std::vector<std::size_t> cuts;
  std::uniform_int_distribution<std::size_t> dist(journal::kMagic.size(),
                                                  full.size());
  for (int i = 0; i < 32; ++i) cuts.push_back(dist(rng));
  std::sort(cuts.begin(), cuts.end());

  std::uint64_t prev_watermark = 0;
  int resumed = 0;
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE(cut);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    ResumeInfo info;
    const auto r = try_resume_branch_and_bound(pred, options, path, &info);
    if (!r.ok()) {
      // Only when the kill predates the first complete record.
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
      continue;
    }
    EXPECT_EQ(r->placement, reference.placement);
    EXPECT_EQ(r->predicted_cycles, reference.predicted_cycles);
    EXPECT_EQ(r->lower_bound, reference.lower_bound);
    EXPECT_EQ(r->optimality_gap, reference.optimality_gap);
    EXPECT_EQ(r->proven_optimal, reference.proven_optimal);
    EXPECT_EQ(r->evaluated, reference.evaluated);
    if (info.resumed) {
      ++resumed;
      // More surviving journal never rewinds the resume point.
      EXPECT_GE(info.resumed_visits, prev_watermark);
      prev_watermark = info.resumed_visits;
    }
  }
  EXPECT_GT(resumed, 4) << "random cuts never exercised a warm resume";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// --- drain under fire --------------------------------------------------------
// Clients hammer the service through the retrying Client while serve.accept
// faults fire and the service starts draining mid-stream. Invariant: every
// request reaches exactly one final outcome (an ok response with ITS id, or
// a definitive UNAVAILABLE after retries exhausted) — nothing lost, nothing
// misrouted, caches bounded.
TEST_F(Chaos, DrainUnderInjectedShedsLosesNoRequests) {
  serve::ServeOptions options;
  options.prediction_cache_capacity = 32;
  options.kernel_cache_capacity = 4;
  options.idem_cache_capacity = 256;
  serve::PredictionService service{options};

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  constexpr int kDrainAfter = 60;  // begin_drain mid-stream

  std::atomic<int> started{0};
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> anomalies{0};

  auto worker = [&](int tid) {
    serve::ClientOptions copt;
    copt.max_attempts = 3;
    copt.sleeper = [](std::uint64_t) {};  // no wall-clock waits
    serve::Client client(
        [&](const std::string& line) -> StatusOr<std::string> {
          return service.handle_line(line);
        },
        copt);
    for (int i = 0; i < kPerThread; ++i) {
      const int seq = started.fetch_add(1, std::memory_order_relaxed);
      if (seq == kDrainAfter) service.begin_drain();
      if (seq % 10 == 3) fault::arm("serve.accept", 1);  // random-ish sheds
      const int id = tid * 1000 + i;
      serve::Json req = serve::Json::object();
      req.set("id", serve::Json(static_cast<double>(id)));
      req.set("op", serve::Json("predict"));
      req.set("benchmark", serve::Json("triad"));
      req.set("placement", serve::Json("G,G,G"));
      const auto resp = client.call(req);
      if (!resp.ok()) {
        // Definitive outcome: shed through all retries (draining).
        if (resp.status().code() == StatusCode::kUnavailable)
          shed_count.fetch_add(1, std::memory_order_relaxed);
        else
          anomalies.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const auto parsed = serve::Json::parse(*resp);
      if (!parsed.ok() || parsed->find("id") == nullptr ||
          parsed->find("id")->as_number() != id ||
          parsed->find("ok") == nullptr || !parsed->find("ok")->as_bool()) {
        anomalies.fetch_add(1, std::memory_order_relaxed);  // misrouted/mangled
        continue;
      }
      ok_count.fetch_add(1, std::memory_order_relaxed);
      // The cache bound must hold at every observation point.
      const serve::ServeStats s = service.stats();
      if (s.prediction_cache.size > s.prediction_cache.capacity ||
          s.kernel_cache.size > s.kernel_cache.capacity)
        anomalies.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(anomalies.load(), 0);
  // Exactly one outcome per request, none lost.
  EXPECT_EQ(ok_count.load() + shed_count.load(), kThreads * kPerThread);
  EXPECT_GT(ok_count.load(), 0);    // pre-drain traffic succeeded
  EXPECT_GT(shed_count.load(), 0);  // the drain actually shed traffic
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.responses, stats.requests);  // service-side: nothing lost
  EXPECT_TRUE(stats.draining);
  EXPECT_GT(stats.shed_draining, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_TRUE(service.drained());
}

}  // namespace
}  // namespace gpuhms
