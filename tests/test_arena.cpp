// Arena (src/common/arena.hpp): the bump allocator backing the SoA replay
// engine's per-wave scratch. The properties locked here are exactly what the
// hot path relies on — aligned pointers, zero-allocation reuse after
// reset(), pointer stability across growth, and a fault-injectable OOM.
#include "common/arena.hpp"

#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.hpp"

namespace gpuhms {
namespace {

bool aligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreAligned) {
  Arena arena;
  EXPECT_TRUE(aligned(arena.alloc<std::uint8_t>(3), 1));
  EXPECT_TRUE(aligned(arena.alloc<std::uint16_t>(5), alignof(std::uint16_t)));
  EXPECT_TRUE(aligned(arena.alloc<std::uint32_t>(7), alignof(std::uint32_t)));
  EXPECT_TRUE(aligned(arena.alloc<std::uint64_t>(9), alignof(std::uint64_t)));
  EXPECT_TRUE(aligned(arena.alloc_bytes(1, 64), 64));
  EXPECT_TRUE(aligned(arena.alloc_bytes(1, 128), 128));
}

TEST(Arena, UsedBytesTracksAllocations) {
  Arena arena;
  EXPECT_EQ(arena.used_bytes(), 0u);
  arena.alloc<std::uint64_t>(4);
  EXPECT_EQ(arena.used_bytes(), 32u);
  arena.alloc_bytes(0, 8);  // zero-size: valid pointer, no advance
  EXPECT_EQ(arena.used_bytes(), 32u);
}

TEST(Arena, ResetReusesCapacityWithoutReallocating) {
  Arena arena;
  void* first = arena.alloc_bytes(1024, 8);
  const std::size_t cap = arena.capacity_bytes();
  for (int round = 0; round < 16; ++round) {
    arena.reset();
    EXPECT_EQ(arena.used_bytes(), 0u);
    // Same request after reset lands on the same memory: the chunk was kept.
    EXPECT_EQ(arena.alloc_bytes(1024, 8), first);
    EXPECT_EQ(arena.capacity_bytes(), cap);
  }
}

TEST(Arena, GrowthKeepsEarlierPointersValid) {
  Arena arena(64);  // tiny first chunk to force growth quickly
  std::vector<std::uint32_t*> ptrs;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    std::uint32_t* p = arena.alloc<std::uint32_t>(1);
    *p = i;
    ptrs.push_back(p);
  }
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  arena.alloc_bytes(16, 8);
  std::byte* big =
      static_cast<std::byte*>(arena.alloc_bytes(4096, 16));
  std::memset(big, 0xab, 4096);
  EXPECT_EQ(static_cast<unsigned char>(big[4095]), 0xabu);
  EXPECT_GE(arena.capacity_bytes(), 4096u + 64u);
}

TEST(Arena, HighWaterSurvivesReset) {
  Arena arena;
  arena.alloc_bytes(512, 8);
  arena.reset();
  arena.alloc_bytes(16, 8);
  EXPECT_GE(arena.high_water_bytes(), 512u);
  EXPECT_EQ(arena.used_bytes(), 16u);
}

TEST(Arena, ReleaseDropsCapacity) {
  Arena arena;
  arena.alloc_bytes(1024, 8);
  arena.release();
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // Still usable afterwards.
  EXPECT_NE(arena.alloc_bytes(8, 8), nullptr);
}

TEST(Arena, InjectedAllocationFailureThrowsBadAlloc) {
  fault::disarm_all();
  fault::arm("arena.alloc", 1);
  Arena arena;
  EXPECT_THROW(arena.alloc_bytes(64, 8), std::bad_alloc);
  fault::disarm_all();
  // The arena stays consistent after the failed growth.
  EXPECT_NE(arena.alloc_bytes(64, 8), nullptr);
}

}  // namespace
}  // namespace gpuhms
