// Golden test for the paper's Fig. 2: the exact lowered instruction
// sequences of the vecAdd kernel under the four placements of its input
// vectors. This pins down the addressing-mode lowering end to end — the
// SASS-level structure the paper derives its 2/0/1/1 instruction counts
// from.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

// Compact signature of a warp's lowered trace: one token per op.
//   i = IAlu, a = addressing IAlu, f = FAlu, Y = sync
//   Lg/Lc/Lt/L2/Ls = load from global/constant/tex1D/tex2D/shared
//   Sg/Ss          = store to global/shared
std::string signature(const std::vector<TraceOp>& ops) {
  std::string sig;
  for (const TraceOp& op : ops) {
    switch (op.cls) {
      case OpClass::IAlu:
        sig += op.is_addr_calc ? "a" : "i";
        break;
      case OpClass::FAlu: sig += "f"; break;
      case OpClass::DAlu: sig += "d"; break;
      case OpClass::Sfu: sig += "u"; break;
      case OpClass::Sync: sig += "Y"; break;
      case OpClass::Load:
      case OpClass::Store: {
        sig += op.cls == OpClass::Load ? "L" : "S";
        switch (op.space) {
          case MemSpace::Global: sig += "g"; break;
          case MemSpace::Constant: sig += "c"; break;
          case MemSpace::Texture1D: sig += "t"; break;
          case MemSpace::Texture2D: sig += "2"; break;
          case MemSpace::Shared: sig += "s"; break;
        }
        break;
      }
    }
  }
  return sig;
}

std::string warp0_signature(const KernelInfo& k, const DataPlacement& p) {
  const TraceMaterializer mat(k, p, kepler_arch());
  const auto traces = mat.generate(0, 1);
  return signature(traces.front().ops);
}

class Fig2 : public ::testing::Test {
 protected:
  Fig2() : kernel_(workloads::make_vecadd(1 << 12)),
           base_(DataPlacement::defaults(kernel_)),
           ia_(kernel_.array_index("a")), ib_(kernel_.array_index("b")) {}

  DataPlacement both(MemSpace s) const {
    return base_.with(ia_, s).with(ib_, s);
  }

  KernelInfo kernel_;
  DataPlacement base_;
  int ia_, ib_;
};

TEST_F(Fig2, GlobalPlacement) {
  // Fig. 2a: register-indirect addressing — an IMAD pair (aa) per reference.
  // v's store is always global.
  EXPECT_EQ(warp0_signature(kernel_, both(MemSpace::Global)),
            "i" "aaLg" "aaLg" "f" "aaSg");
}

TEST_F(Fig2, TexturePlacement) {
  // Fig. 2b: tex1Dfetch consumes the element index directly — no addressing
  // instructions for the loads.
  EXPECT_EQ(warp0_signature(kernel_, both(MemSpace::Texture1D)),
            "i" "Lt" "Lt" "f" "aaSg");
}

TEST_F(Fig2, ConstantPlacement) {
  // Fig. 2c: indexed-absolute addressing — one SHL per reference.
  EXPECT_EQ(warp0_signature(kernel_, both(MemSpace::Constant)),
            "i" "aLc" "aLc" "f" "aaSg");
}

TEST_F(Fig2, SharedPlacement) {
  // Fig. 2d: one SHL per reference, preceded by the one-time staging
  // copy-in (global load + shared store per array) and a barrier — the
  // "initialization phase" of Sec. III-B.
  EXPECT_EQ(warp0_signature(kernel_, both(MemSpace::Shared)),
            "aaLgSs" "aaLgSs" "Y" "i" "aLs" "aLs" "f" "aaSg");
}

TEST_F(Fig2, ExecutedInstructionOrdering) {
  // The per-placement executed-instruction counts order exactly as the
  // paper's 2/0/1/1 addressing table implies: T < C < G (< S, which adds
  // the staging phase).
  const auto len = [&](MemSpace s) {
    return warp0_signature(kernel_, both(s)).size();
  };
  EXPECT_LT(len(MemSpace::Texture1D), len(MemSpace::Constant));
  EXPECT_LT(len(MemSpace::Constant), len(MemSpace::Global));
  EXPECT_LT(len(MemSpace::Global), len(MemSpace::Shared));
}

TEST_F(Fig2, MixedPlacementComposes) {
  const auto p = base_.with(ia_, MemSpace::Texture1D)
                     .with(ib_, MemSpace::Constant);
  EXPECT_EQ(warp0_signature(kernel_, p), "i" "Lt" "aLc" "f" "aaSg");
}

}  // namespace
}  // namespace gpuhms
