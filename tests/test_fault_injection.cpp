// Deterministic fault injection: Nth-hit arming fires exactly once at the
// same execution regardless of thread count, injected worker exceptions
// surface as INTERNAL from the try_* APIs with the pool still usable, and
// the queuing/serialization sites drive their degraded-mode paths end to
// end (finite predictions with `saturated` set, DATA_LOSS statuses).
#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "common/thread_pool.hpp"
#include "model/search.hpp"
#include "trace/serialize.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

// Every test leaves the global fault registry clean.
class FaultInjection : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultInjection, FiresExactlyOnTheNthHitAndOnlyOnce) {
  fault::arm("test.site", 3);
  std::vector<int> fired;
  for (int i = 1; i <= 10; ++i) {
    if (GPUHMS_FAULT_POINT("test.site")) fired.push_back(i);
  }
  EXPECT_EQ(fired, std::vector<int>{3});
  // Once fired, the site stops counting (GPUHMS_FAULT_POINT short-circuits
  // at enabled() when nothing is left armed).
  EXPECT_EQ(fault::hits("test.site"), 3u);
}

TEST_F(FaultInjection, RearmingResetsTheHitCounter) {
  fault::arm("test.site", 2);
  EXPECT_FALSE(GPUHMS_FAULT_POINT("test.site"));
  EXPECT_TRUE(GPUHMS_FAULT_POINT("test.site"));
  fault::arm("test.site", 2);
  EXPECT_EQ(fault::hits("test.site"), 0u);
  EXPECT_FALSE(GPUHMS_FAULT_POINT("test.site"));
  EXPECT_TRUE(GPUHMS_FAULT_POINT("test.site"));
}

TEST_F(FaultInjection, DisarmedSitesNeverFire) {
  fault::arm("test.site", 1);
  fault::disarm("test.site");
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(GPUHMS_FAULT_POINT("test.site"));
  // Unarmed sites are not counted either.
  fault::disarm_all();
  EXPECT_EQ(fault::hits("test.site"), 0u);
}

TEST_F(FaultInjection, ArmFromSpecParsesAndRejects) {
  EXPECT_TRUE(fault::arm_from_spec("a.site:2,b.site:1"));
  EXPECT_FALSE(GPUHMS_FAULT_POINT("a.site"));
  EXPECT_TRUE(GPUHMS_FAULT_POINT("a.site"));
  EXPECT_TRUE(GPUHMS_FAULT_POINT("b.site"));
  fault::disarm_all();

  // Malformed specs arm nothing (whole-spec validation).
  EXPECT_FALSE(fault::arm_from_spec("a.site"));        // missing :nth
  EXPECT_FALSE(fault::arm_from_spec("a.site:0"));      // nth must be >= 1
  EXPECT_FALSE(fault::arm_from_spec("a.site:x"));      // not an integer
  EXPECT_FALSE(fault::arm_from_spec("good:1,bad"));    // one bad entry
  EXPECT_FALSE(GPUHMS_FAULT_POINT("good"));
}

TEST_F(FaultInjection, InjectedFaultNamesTheSite) {
  const InjectedFault f("trace.lower");
  EXPECT_NE(std::string(f.what()).find("trace.lower"), std::string::npos);
}

// --- ThreadPool exception capture -------------------------------------------

TEST_F(FaultInjection, PoolTaskFaultRethrownOnCallingThread) {
  ThreadPool pool(4);
  fault::arm("pool.task", 5);
  EXPECT_THROW(pool.parallel_for(64, [](int, std::size_t) {}), InjectedFault);
  // The pool must remain fully usable after a job threw.
  std::vector<std::atomic<int>> hitcount(100);
  pool.parallel_for(100, [&](int, std::size_t i) {
    hitcount[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hitcount.size(); ++i)
    EXPECT_EQ(hitcount[i].load(), 1) << i;
}

TEST_F(FaultInjection, UserExceptionAlsoCapturedNotTerminate) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(32, [](int, std::size_t i) {
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
    FAIL() << "expected the worker exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // Serial (size-1) pools capture on the inline path too.
  ThreadPool serial(1);
  EXPECT_THROW(
      serial.parallel_for(4,
                          [](int, std::size_t) {
                            throw std::runtime_error("inline");
                          }),
      std::runtime_error);
}

// --- faults inside the model pipeline ----------------------------------------

TEST_F(FaultInjection, SearchUnderInjectedLoweringFaultReturnsInternal) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));

  SearchOptions o;
  o.cap = 16;
  o.num_threads = 4;
  const SearchResult clean = search_exhaustive(pred, o);

  fault::arm("trace.lower", 1);
  const auto faulted = try_search_exhaustive(pred, o);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  EXPECT_NE(faulted.status().message().find("trace.lower"), std::string::npos)
      << faulted.status().to_string();
  EXPECT_NE(faulted.status().context().find(k.name), std::string::npos)
      << faulted.status().to_string();
  EXPECT_GT(fault::hits("trace.lower"), 0u);

  // One-shot: the very next search succeeds and matches the clean run.
  const auto retried = try_search_exhaustive(pred, o);
  ASSERT_TRUE(retried.ok()) << retried.status().to_string();
  EXPECT_EQ(retried->placement, clean.placement);
  EXPECT_EQ(retried->predicted_cycles, clean.predicted_cycles);
}

TEST_F(FaultInjection, PredictUnderInjectedFaultReturnsInternal) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));
  pred.memoize_trace();
  fault::arm("trace.lower", 1);
  const auto r = pred.try_predict(DataPlacement::defaults(k));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  // Recovers immediately (one-shot fault).
  EXPECT_TRUE(pred.try_predict(DataPlacement::defaults(k)).ok());
}

TEST_F(FaultInjection, QueuingNanFaultKeepsPredictionFiniteAndFlagged) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  Predictor pred(k, kepler_arch());  // queuing model on by default
  pred.profile_sample(DataPlacement::defaults(k));

  const Prediction clean = pred.predict(DataPlacement::defaults(k));
  EXPECT_FALSE(clean.queue_saturated);

  fault::arm("queuing.nan", 1);
  const auto r = pred.try_predict(DataPlacement::defaults(k));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_GT(fault::hits("queuing.nan"), 0u) << "fault site never reached";
  EXPECT_TRUE(std::isfinite(r->total_cycles));
  EXPECT_GT(r->total_cycles, 0.0);
  EXPECT_TRUE(std::isfinite(r->dram_lat));
  EXPECT_TRUE(r->queue_saturated);
}

TEST_F(FaultInjection, QueuingSaturateFaultKeepsPredictionFiniteAndFlagged) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(DataPlacement::defaults(k));

  fault::arm("queuing.saturate", 1);
  const auto r = pred.try_predict(DataPlacement::defaults(k));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_GT(fault::hits("queuing.saturate"), 0u) << "fault site never reached";
  EXPECT_TRUE(std::isfinite(r->total_cycles));
  EXPECT_GT(r->total_cycles, 0.0);
  EXPECT_TRUE(r->queue_saturated);
}

// --- serialization faults ----------------------------------------------------

TEST_F(FaultInjection, SerializeWriteFaultIsDataLoss) {
  const KernelInfo k = workloads::make_vecadd(1 << 8);
  TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  const auto warps = mat.generate(0, 1);
  fault::arm("serialize.write", 1);
  std::ostringstream os;
  const Status st = try_write_trace(os, k, warps);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.context().find(k.name), std::string::npos) << st.to_string();
}

TEST_F(FaultInjection, SerializeReadFaultIsDataLossWithLineNumber) {
  const KernelInfo k = workloads::make_vecadd(1 << 8);
  TraceMaterializer mat(k, DataPlacement::defaults(k), kepler_arch());
  std::ostringstream os;
  ASSERT_TRUE(try_write_trace(os, k, mat.generate(0, 1)).ok());

  fault::arm("serialize.read", 2);
  std::istringstream is(os.str());
  const auto r = try_read_trace(is);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().to_string();

  // Clean reread parses fine (one-shot fault).
  std::istringstream again(os.str());
  EXPECT_TRUE(try_read_trace(again).ok());
}

}  // namespace
}  // namespace gpuhms
