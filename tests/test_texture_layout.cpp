#include "cache/texture_layout.hpp"

#include <set>

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

ArrayDecl image(std::size_t width, std::size_t height) {
  return ArrayDecl{.name = "img", .dtype = DType::F32,
                   .elems = width * height, .width = width};
}

TEST(PitchLinear, Basics) {
  const ArrayDecl a = image(64, 64);
  EXPECT_EQ(pitch_linear_offset(a, 0), 0u);
  EXPECT_EQ(pitch_linear_offset(a, 10), 40u);
}

TEST(BlockLinear, FirstTileIsContiguous) {
  // Tile = 64 B x 8 rows: elements (x<16, y<8) live in bytes [0, 512).
  const ArrayDecl a = image(64, 64);
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      const auto off = block_linear_offset(a, y * 64 + x);
      EXPECT_LT(off, 512u);
      EXPECT_EQ(off, static_cast<std::uint64_t>(y) * 64 +
                         static_cast<std::uint64_t>(x) * 4);
    }
  }
}

TEST(BlockLinear, IsInjective) {
  const ArrayDecl a = image(48, 24);  // width not a multiple of the tile
  std::set<std::uint64_t> seen;
  for (std::size_t e = 0; e < a.elems; ++e) {
    const auto off = block_linear_offset(a, static_cast<std::int64_t>(e));
    EXPECT_TRUE(seen.insert(off).second) << "collision at element " << e;
  }
}

TEST(BlockLinear, VerticalNeighborsShareTile) {
  // The whole point of block-linear: (x, y) and (x, y+1) are 64 bytes apart
  // (same tile), not a full row apart.
  const ArrayDecl a = image(256, 64);
  const auto o1 = block_linear_offset(a, 5);          // (5, 0)
  const auto o2 = block_linear_offset(a, 256 + 5);    // (5, 1)
  EXPECT_EQ(o2 - o1, 64u);
  // Pitch-linear puts them 1 KiB apart.
  EXPECT_EQ(pitch_linear_offset(a, 256 + 5) - pitch_linear_offset(a, 5),
            1024u);
}

TEST(BlockLinear, ColumnWalkTouchesFewerLines) {
  // Walking a column of 32 rows: block-linear touches 4 tiles of 512 B
  // (16 cache lines of 128 B), pitch-linear touches 32 distinct lines.
  const ArrayDecl a = image(256, 64);
  std::set<std::uint64_t> bl_lines, pl_lines;
  for (std::int64_t y = 0; y < 32; ++y) {
    bl_lines.insert(block_linear_offset(a, y * 256 + 7) / 128);
    pl_lines.insert(pitch_linear_offset(a, y * 256 + 7) / 128);
  }
  EXPECT_EQ(pl_lines.size(), 32u);
  EXPECT_LT(bl_lines.size(), pl_lines.size());
  EXPECT_EQ(bl_lines.size(), 16u);  // 4 lines per 512 B tile, 4 tiles
}

TEST(BlockLinear, CustomTileShape) {
  const ArrayDecl a = image(128, 32);
  const TextureTileShape tile{.tile_w = 32, .tile_h = 4};
  // Element (8, 1): tile (1, 0), local (0, 1) -> 1*128 + 1*32.
  EXPECT_EQ(block_linear_offset(a, 128 + 8, tile), 128u + 32u);
}

TEST(BlockLinear, StaysWithinPaddedBounds) {
  const ArrayDecl a = image(100, 10);  // ragged against the 64 B x 8 tile
  const TextureTileShape tile;
  const std::uint64_t row_bytes = a.width * 4;
  const std::uint64_t tiles_x = (row_bytes + tile.tile_w - 1) / tile.tile_w;
  const std::uint64_t tiles_y = (a.height() + tile.tile_h - 1) / tile.tile_h;
  const std::uint64_t padded = tiles_x * tiles_y * tile.tile_w * tile.tile_h;
  for (std::size_t e = 0; e < a.elems; ++e) {
    EXPECT_LT(block_linear_offset(a, static_cast<std::int64_t>(e)), padded);
  }
}

}  // namespace
}  // namespace gpuhms
