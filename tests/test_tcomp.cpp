#include "model/tcomp.hpp"

#include <gtest/gtest.h>

#include "model/warp_parallelism.hpp"

namespace gpuhms {
namespace {

TcompInputs base_inputs() {
  TcompInputs in;
  in.inst.issued_per_warp = 100.0;
  in.total_warps = 1300.0;
  in.active_sms = 13;
  in.itilp = 9.0;  // saturated pipeline
  in.w_serial = 0.0;
  return in;
}

TEST(Tcomp, SaturatedPipelineOneSlotPerInstruction) {
  const auto in = base_inputs();
  // 100 insts/warp x 100 warps/SM x 1 cycle/inst.
  EXPECT_DOUBLE_EQ(tcomp(in, kepler_arch()), 100.0 * 100.0);
}

TEST(Tcomp, LowIlpExposesPipelineLatency) {
  auto in = base_inputs();
  in.itilp = 1.0;  // one warp, serial chain
  EXPECT_DOUBLE_EQ(tcomp(in, kepler_arch()),
                   100.0 * 100.0 * static_cast<double>(kepler_arch().avg_inst_lat));
}

TEST(Tcomp, ScalesLinearlyWithInstructions) {
  auto in = base_inputs();
  const double t1 = tcomp(in, kepler_arch());
  in.inst.issued_per_warp *= 3.0;
  EXPECT_DOUBLE_EQ(tcomp(in, kepler_arch()), 3.0 * t1);
}

TEST(Tcomp, SerializationAddsOn) {
  auto in = base_inputs();
  const double t1 = tcomp(in, kepler_arch());
  in.w_serial = 5000.0;
  EXPECT_DOUBLE_EQ(tcomp(in, kepler_arch()), t1 + 5000.0);
}

TEST(Tcomp, MoreSmsDivideWork) {
  auto in = base_inputs();
  const double t13 = tcomp(in, kepler_arch());
  in.active_sms = 1;
  EXPECT_DOUBLE_EQ(tcomp(in, kepler_arch()), 13.0 * t13);
}

TEST(WarpParallelism, ItilpCappedByPipelineDepth) {
  WarpParallelismInputs in;
  in.n_warps = 64.0;
  in.ilp = 4.0;
  in.issued_per_warp = 100.0;
  in.mem_insts_per_warp = 10.0;
  in.mem_lat = 400.0;
  const auto wp = compute_warp_parallelism(in, kepler_arch());
  EXPECT_DOUBLE_EQ(wp.itilp, static_cast<double>(kepler_arch().avg_inst_lat));
}

TEST(WarpParallelism, MwpBoundedByWarpsAndLatency) {
  WarpParallelismInputs in;
  in.n_warps = 4.0;
  in.issued_per_warp = 40.0;
  in.mem_insts_per_warp = 10.0;
  in.mem_lat = 800.0;
  in.transactions_per_mem = 1.0;
  in.dram_per_mem = 1.0;
  const auto wp = compute_warp_parallelism(in, kepler_arch());
  EXPECT_LE(wp.mwp, 4.0);
  EXPECT_GE(wp.mwp, 1.0);
}

TEST(WarpParallelism, CacheServedTrafficNotBandwidthCapped) {
  // dram_per_mem -> 0 means the DRAM bandwidth cap must not bind.
  WarpParallelismInputs in;
  in.n_warps = 64.0;
  in.issued_per_warp = 100.0;
  in.mem_insts_per_warp = 20.0;
  in.mem_lat = 300.0;
  in.mlp = 2.0;
  in.dram_per_mem = 1e-6;
  const auto hot = compute_warp_parallelism(in, kepler_arch());
  in.dram_per_mem = 2.0;
  const auto cold = compute_warp_parallelism(in, kepler_arch());
  EXPECT_GT(hot.mwp_peak_bw, cold.mwp_peak_bw);
  EXPECT_GE(hot.itmlp, cold.itmlp);
}

TEST(WarpParallelism, CwpGrowsWithMemoryLatency) {
  WarpParallelismInputs in;
  in.n_warps = 64.0;
  in.issued_per_warp = 100.0;
  in.mem_insts_per_warp = 10.0;
  in.dram_per_mem = 1.0;
  in.mem_lat = 100.0;
  const double cwp_fast = compute_warp_parallelism(in, kepler_arch()).cwp;
  in.mem_lat = 1000.0;
  const double cwp_slow = compute_warp_parallelism(in, kepler_arch()).cwp;
  EXPECT_GT(cwp_slow, cwp_fast);
}

// Parameterized invariant sweep: outputs stay within their defined ranges
// over a grid of inputs.
class WpGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WpGrid, OutputsWithinBounds) {
  const auto [n_warps, mem_lat] = GetParam();
  WarpParallelismInputs in;
  in.n_warps = n_warps;
  in.issued_per_warp = 200.0;
  in.mem_insts_per_warp = 25.0;
  in.mem_lat = mem_lat;
  in.mlp = 2.0;
  in.ilp = 2.0;
  in.dram_per_mem = 0.5;
  const auto wp = compute_warp_parallelism(in, kepler_arch());
  EXPECT_GE(wp.mwp, 1.0);
  EXPECT_LE(wp.mwp, n_warps + 1e-9);
  EXPECT_GE(wp.cwp, 1.0);
  EXPECT_LE(wp.cwp, n_warps + 1e-9);
  EXPECT_GE(wp.itmlp, 1.0);
  EXPECT_GE(wp.itilp, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WpGrid,
    ::testing::Combine(::testing::Values(1.0, 8.0, 32.0, 64.0),
                       ::testing::Values(50.0, 400.0, 2000.0)));

}  // namespace
}  // namespace gpuhms
