#include "model/instruction_counter.hpp"

#include <gtest/gtest.h>

namespace gpuhms {
namespace {

ProfileCounters sample_profile() {
  ProfileCounters c;
  c.inst_executed = 10000;
  c.replay_global_divergence = 300;
  c.replay_shared_conflict = 0;
  c.replay_const_miss = 0;
  c.replay_const_divergence = 0;
  c.replay_double_issue = 50;
  c.total_warps = 100;
  return c;
}

PlacementEvents events(std::uint64_t execd, std::uint64_t g_div,
                       std::uint64_t s_conf = 0) {
  PlacementEvents ev;
  ev.insts_executed = execd;
  ev.replay_global_divergence = g_div;
  ev.replay_shared_conflict = s_conf;
  return ev;
}

TEST(InstructionCounter, IdenticalPlacementsReproduceMeasurement) {
  const auto c = sample_profile();
  const auto ev = events(10000, 300);
  const auto e = estimate_issued_instructions(c, ev, ev, c.total_warps);
  EXPECT_DOUBLE_EQ(e.executed_total, 10000.0);
  EXPECT_DOUBLE_EQ(e.replays_total, 350.0);  // measured incl. cause 5
  EXPECT_DOUBLE_EQ(e.issued_total, 10350.0);
  EXPECT_DOUBLE_EQ(e.issued_per_warp, 103.5);
}

TEST(InstructionCounter, AddressingDeltaApplied) {
  const auto c = sample_profile();
  // Target saves 2000 addressing instructions (e.g. G -> 1D texture).
  const auto e = estimate_issued_instructions(c, events(10000, 300),
                                              events(8000, 300),
                                              c.total_warps);
  EXPECT_DOUBLE_EQ(e.executed_total, 8000.0);
  EXPECT_DOUBLE_EQ(e.addr_mode_delta, -2000.0);
  EXPECT_DOUBLE_EQ(e.replays_total, 350.0);
}

TEST(InstructionCounter, ReplaySwapPerEquation3) {
  const auto c = sample_profile();
  // Target trades 300 global-divergence replays for 120 bank conflicts.
  const auto e = estimate_issued_instructions(c, events(10000, 300),
                                              events(10000, 0, 120),
                                              c.total_warps);
  // replays = 350 (measured) - 300 (sample 1-4) + 120 (target 1-4) = 170.
  EXPECT_DOUBLE_EQ(e.replays_total, 170.0);
  EXPECT_DOUBLE_EQ(e.replay_delta, -180.0);
  EXPECT_DOUBLE_EQ(e.issued_total, 10170.0);
}

TEST(InstructionCounter, Cause5ReplaysAreInvariant) {
  // Even when causes 1-4 vanish in the target, the measured double-issue
  // replays (cause 5) survive the swap.
  const auto c = sample_profile();
  const auto e = estimate_issued_instructions(c, events(10000, 300),
                                              events(10000, 0),
                                              c.total_warps);
  EXPECT_DOUBLE_EQ(e.replays_total, 50.0);
}

TEST(InstructionCounter, DetailedCountingOffFreezesSample) {
  const auto c = sample_profile();
  InstructionCountOptions opts;
  opts.detailed_counting = false;
  const auto e = estimate_issued_instructions(c, events(10000, 300),
                                              events(42, 9999),
                                              c.total_warps, opts);
  EXPECT_DOUBLE_EQ(e.issued_total, 10350.0);
  EXPECT_DOUBLE_EQ(e.addr_mode_delta, 0.0);
}

TEST(InstructionCounter, NeverGoesNegative) {
  const auto c = sample_profile();
  // Pathological deltas larger than the measurement clamp at zero.
  const auto e = estimate_issued_instructions(c, events(50000, 5000),
                                              events(10, 0), c.total_warps);
  EXPECT_GE(e.executed_total, 0.0);
  EXPECT_GE(e.replays_total, 0.0);
}

}  // namespace
}  // namespace gpuhms
