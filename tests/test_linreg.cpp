#include "math/linreg.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gpuhms {
namespace {

TEST(SolveLinear, Identity) {
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  auto x = solve_linear(a, {4.0, 5.0, 6.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 4.0);
  EXPECT_DOUBLE_EQ((*x)[1], 5.0);
  EXPECT_DOUBLE_EQ((*x)[2], 6.0);
}

TEST(SolveLinear, RequiresPivoting) {
  // First pivot is zero: naive elimination fails, partial pivoting works.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  auto x = solve_linear(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(SolveLinear, SingularReturnsNullopt) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_FALSE(solve_linear(a, {1.0, 2.0}).has_value());
}

TEST(SolveLinear, RandomSystemsRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.next_double() * 10.0 - 5.0;
      for (std::size_t j = 0; j < n; ++j)
        a.at(i, j) = rng.next_double() * 4.0 - 2.0;
      a.at(i, i) += 5.0;  // diagonally dominant -> well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    auto x = solve_linear(a, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
  }
}

TEST(LeastSquares, ExactOnNoiselessLinearData) {
  // y = 2*x0 - 3*x1 + 0.5
  const std::size_t n = 50;
  Matrix x(n, 3);
  std::vector<double> y(n);
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.next_double() * 10.0;
    const double x1 = rng.next_double() * 10.0;
    x.at(i, 0) = x0;
    x.at(i, 1) = x1;
    x.at(i, 2) = 1.0;
    y[i] = 2.0 * x0 - 3.0 * x1 + 0.5;
  }
  auto beta = least_squares(x, y, 0.0);
  ASSERT_TRUE(beta.has_value());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-8);
  EXPECT_NEAR((*beta)[1], -3.0, 1e-8);
  EXPECT_NEAR((*beta)[2], 0.5, 1e-8);
}

TEST(LeastSquares, RidgeHandlesCollinearity) {
  // x1 == x0: plain OLS is singular, ridge still returns coefficients whose
  // predictions are right.
  const std::size_t n = 20;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    x.at(i, 1) = static_cast<double>(i);
    y[i] = 4.0 * static_cast<double>(i);
  }
  EXPECT_FALSE(least_squares(x, y, 0.0).has_value());
  auto beta = least_squares(x, y, 1e-6);
  ASSERT_TRUE(beta.has_value());
  EXPECT_NEAR((*beta)[0] + (*beta)[1], 4.0, 1e-3);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // Three points, one-parameter model y = b*x: OLS beta = sum(xy)/sum(xx).
  Matrix x(3, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 2.0;
  x.at(2, 0) = 3.0;
  std::vector<double> y = {1.0, 2.5, 2.5};
  auto beta = least_squares(x, y);
  ASSERT_TRUE(beta.has_value());
  EXPECT_NEAR((*beta)[0], (1.0 + 5.0 + 7.5) / 14.0, 1e-6);
}

TEST(Dot, Basics) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

}  // namespace
}  // namespace gpuhms
