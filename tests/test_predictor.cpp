#include "model/predictor.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace gpuhms {
namespace {

TEST(Predictor, AnchoredSelfPredictionIsExact) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(sample);
  const auto p = pred.predict(sample);
  EXPECT_NEAR(p.total_cycles,
              static_cast<double>(pred.sample_result().cycles),
              1.0);
}

TEST(Predictor, RequiresSampleBeforePredict) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  Predictor pred(k, kepler_arch());
  EXPECT_DEATH(pred.predict(DataPlacement::defaults(k)), "sample");
}

TEST(Predictor, ComponentsArePositiveAndConsistent) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(sample);
  const auto p =
      pred.predict(sample.with(k.array_index("a"), MemSpace::Texture1D));
  EXPECT_GT(p.t_comp, 0.0);
  EXPECT_GT(p.t_mem, 0.0);
  EXPECT_LE(p.t_overlap, std::min(p.t_comp, p.t_mem) + 1e-9);
  EXPECT_NEAR(p.raw_cycles, p.t_comp + p.t_mem - p.t_overlap, 1.0);
  EXPECT_GT(p.amat, static_cast<double>(kepler_arch().cache_hit_lat) - 1.0);
}

TEST(Predictor, TexturePlacementLowersPredictedInstructions) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  Predictor pred(k, kepler_arch());
  pred.profile_sample(sample);
  const auto pg = pred.predict(sample);
  const auto pt =
      pred.predict(sample.with(k.array_index("a"), MemSpace::Texture1D)
                       .with(k.array_index("b"), MemSpace::Texture1D));
  EXPECT_LT(pt.inst.issued_total, pg.inst.issued_total);
}

TEST(Predictor, InjectedSampleMatchesProfiledSample) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto sample = DataPlacement::defaults(k);
  const auto measured = simulate(k, sample);
  Predictor a(k, kepler_arch());
  a.profile_sample(sample);
  Predictor b(k, kepler_arch());
  b.set_sample(sample, measured);
  const auto target = sample.with(0, MemSpace::Constant);
  EXPECT_NEAR(a.predict(target).total_cycles, b.predict(target).total_cycles,
              1e-6);
}

TEST(Predictor, UnanchoredRawDiffersFromAnchored) {
  const KernelInfo k = workloads::make_vecadd(1 << 12);
  const auto sample = DataPlacement::defaults(k);
  ModelOptions opts;
  opts.anchor_to_sample = false;
  Predictor pred(k, kepler_arch(), opts);
  pred.profile_sample(sample);
  const auto p = pred.predict(sample);
  EXPECT_DOUBLE_EQ(p.total_cycles, p.raw_cycles);
}

TEST(Predictor, BaselineOptionsDisableEverything) {
  const auto o = ModelOptions::baseline();
  EXPECT_FALSE(o.detailed_instruction_counting);
  EXPECT_FALSE(o.queuing_model);
  EXPECT_FALSE(o.address_mapping);
  EXPECT_FALSE(o.row_buffer_model);
}

TEST(Predictor, AblationsChangePredictions) {
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  const auto sample = DataPlacement::defaults(k);
  const auto target = sample.with(0, MemSpace::Shared);

  Predictor full(k, kepler_arch());
  full.profile_sample(sample);
  Predictor base(k, kepler_arch(), ModelOptions::baseline());
  base.profile_sample(sample);

  const double full_pred = full.predict(target).total_cycles;
  const double base_pred = base.predict(target).total_cycles;
  EXPECT_NE(full_pred, base_pred);
}

TEST(Predictor, DeterministicPredictions) {
  const auto bench = workloads::get_benchmark("transpose");
  Predictor pred(bench.kernel, kepler_arch());
  pred.profile_sample(bench.sample);
  const auto& t = bench.tests.front().placement;
  EXPECT_DOUBLE_EQ(pred.predict(t).total_cycles,
                   pred.predict(t).total_cycles);
}

TEST(TrainOverlap, ProducesTrainedModelFromCases) {
  const KernelInfo k1 = workloads::make_vecadd(1 << 12);
  const KernelInfo k2 = workloads::make_triad(1 << 12);
  std::vector<TrainingCase> cases;
  cases.push_back({&k1, DataPlacement::defaults(k1)});
  cases.push_back({&k1, DataPlacement::defaults(k1).with(0, MemSpace::Texture1D)});
  cases.push_back({&k2, DataPlacement::defaults(k2)});
  cases.push_back(
      {&k2, DataPlacement::defaults(k2).with(1, MemSpace::Constant)});
  const auto model = train_overlap_model(cases, kepler_arch());
  EXPECT_TRUE(model.trained());
}

TEST(TrainOverlap, TrainedModelImprovesTrainingFit) {
  // With the trained overlap model, the *unanchored* prediction of a
  // training placement should be closer to its measurement than with the
  // untrained (zero-overlap) model, on aggregate.
  const KernelInfo k = workloads::make_vecadd(1 << 13);
  std::vector<TrainingCase> cases;
  const auto base = DataPlacement::defaults(k);
  cases.push_back({&k, base});
  cases.push_back({&k, base.with(0, MemSpace::Texture1D)});
  cases.push_back({&k, base.with(1, MemSpace::Constant)});
  cases.push_back({&k, base.with(0, MemSpace::Texture2D)});
  const auto trained = train_overlap_model(cases, kepler_arch());

  ModelOptions raw_opts;
  raw_opts.anchor_to_sample = false;
  double err_untrained = 0.0, err_trained = 0.0;
  for (const auto& c : cases) {
    const auto measured = simulate(*c.kernel, c.placement, kepler_arch());
    Predictor p0(*c.kernel, kepler_arch(), raw_opts);
    p0.set_sample(c.placement, measured);
    Predictor p1(*c.kernel, kepler_arch(), raw_opts, trained);
    p1.set_sample(c.placement, measured);
    const double m = static_cast<double>(measured.cycles);
    err_untrained +=
        std::abs(p0.predict(c.placement).total_cycles - m) / m;
    err_trained += std::abs(p1.predict(c.placement).total_cycles - m) / m;
  }
  EXPECT_LE(err_trained, err_untrained + 1e-9);
}

}  // namespace
}  // namespace gpuhms
