// Address-mapping explorer: runs Algorithm 1 against GDDR substrates with
// different (including custom) address mappings and shows how the detector
// classifies every bit from latency alone — the microbenchmark methodology
// of Sec. III-C2, usable against any bit-sliced mapping.
//
// Usage: ./examples/addrmap_explorer
#include <cstdio>
#include <cstring>

#include "tools/addrmap_detector.hpp"

using namespace gpuhms;

namespace {

void explore(const char* name, AddressMapping mapping, int max_bit) {
  std::printf("--- %s ---\n", name);
  AddressMapDetector det(kepler_arch(), std::move(mapping), max_bit);
  const auto r = det.run();
  std::printf("latency levels: hit %llu / miss %llu / conflict %llu cycles\n",
              static_cast<unsigned long long>(r.hit_latency),
              static_cast<unsigned long long>(r.miss_latency),
              static_cast<unsigned long long>(r.conflict_latency));
  std::printf("bit   0         1         2         3\n");
  std::printf("      0123456789012345678901234567890123\n");
  std::printf("role  ");
  for (int bit = 0; bit < max_bit; ++bit) {
    char c = '?';
    for (int b : r.column_bits) {
      if (b == bit) c = 'c';  // hit group: column / intra-transaction
    }
    for (int b : r.row_bits) {
      if (b == bit) c = 'r';
    }
    for (int b : r.bank_bits) {
      if (b == bit) c = 'b';
    }
    std::printf("%c", c);
  }
  std::printf("\n      (c = column/byte: row-buffer hit; b = bank/channel: "
              "miss; r = row: conflict)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::printf(
        "usage: addrmap_explorer (no arguments)\n"
        "Runs the Algorithm 1 address-mapping detector against GDDR\n"
        "substrates with different bit-sliced mappings and shows how every\n"
        "bit is classified from latency alone (Sec. III-C2).\n");
    return std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0
               ? 0
               : 2;
  }
  std::printf("Algorithm 1 against different GDDR address mappings\n\n");

  explore("Kepler-like default (the substrate's real map)",
          kepler_mapping(kepler_arch()), 34);

  {
    AddressMapping::Fields f;  // row bits low, bank high — DDR3-desktop-like
    f.transaction_bits = 7;
    f.bank_bits = {21, 22, 23, 24};
    f.column_bits = {7, 8, 9, 10};
    f.row_bits = {11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
    f.num_banks = 16;
    explore("row-low / bank-high (desktop-DDR style)",
            AddressMapping(std::move(f)), 25);
  }
  {
    AddressMapping::Fields f;  // interleaved roles
    f.transaction_bits = 7;
    f.bank_bits = {7, 10, 13, 16};
    f.column_bits = {8, 11, 14};
    f.row_bits = {9, 12, 15, 17, 18};
    f.num_banks = 16;
    explore("interleaved roles (stress test)", AddressMapping(std::move(f)),
            19);
  }
  return 0;
}
