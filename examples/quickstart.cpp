// Quickstart: predict the performance of every placement of the vecAdd
// kernel's two input vectors (the paper's Fig. 2 example) from a single
// profiled run of the default (global) placement, and compare against the
// simulated "measured" time of each placement.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/porple.hpp"
#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    std::printf(
        "usage: quickstart (no arguments)\n"
        "Predicts every placement of vecAdd's two input vectors from one\n"
        "profiled run of the default placement and compares against the\n"
        "simulated \"measured\" time of each (the paper's Fig. 2 example).\n");
    return 0;
  }
  const GpuArch& arch = kepler_arch();
  const KernelInfo kernel = workloads::make_vecadd();
  const DataPlacement sample = DataPlacement::defaults(kernel);

  std::printf("kernel: %s  (%lld blocks x %d threads)\n", kernel.name.c_str(),
              static_cast<long long>(kernel.num_blocks),
              kernel.threads_per_block);
  std::printf("arrays:");
  for (const auto& a : kernel.arrays) std::printf(" %s", a.name.c_str());
  std::printf("\n\n");

  // 1. Profile the sample placement once (paper: nvprof on the K80;
  //    here: the simulator substrate).
  Predictor predictor(kernel, arch);
  predictor.profile_sample(sample);
  std::printf("sample placement %s measured: %llu cycles\n\n",
              sample.to_string().c_str(),
              static_cast<unsigned long long>(predictor.sample_result().cycles));

  // 2. Predict every placement of the input arrays a and b.
  const int ia = kernel.array_index("a");
  const int ib = kernel.array_index("b");
  std::printf("%-12s %12s %12s %10s\n", "placement", "predicted", "measured",
              "pred/meas");
  for (MemSpace sa : legal_spaces(kernel, ia, arch)) {
    for (MemSpace sb : legal_spaces(kernel, ib, arch)) {
      DataPlacement p = sample.with(ia, sa).with(ib, sb);
      const Prediction pred = predictor.predict(p);
      const SimResult meas = simulate(kernel, p, arch);
      std::printf("%-12s %12.0f %12llu %10.3f\n", p.to_string().c_str(),
                  pred.total_cycles,
                  static_cast<unsigned long long>(meas.cycles),
                  pred.total_cycles / static_cast<double>(meas.cycles));
    }
  }
  return 0;
}
