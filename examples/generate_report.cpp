// Generates a Markdown placement report for a benchmark — the deliverable a
// performance engineer would attach to a review.
//
// Usage: ./examples/generate_report [benchmark] > report.md
#include <iostream>

#include "tools/report.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "stencil2d";
  if (name == "--help" || name == "-h") {
    std::cout << "usage: generate_report [benchmark] > report.md\n"
                 "Writes a Markdown placement report for the benchmark\n"
                 "(default: stencil2d) to stdout: predicted vs simulated\n"
                 "cycles for every legal placement, with recommendations.\n";
    return 0;
  }
  const auto bench = workloads::get_benchmark(name);

  // Train the overlap model on the training suite (excluding this kernel).
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    if (c.name == name) continue;
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  const ToverlapModel overlap = train_overlap_model(cases, kepler_arch());

  Predictor predictor(bench.kernel, kepler_arch(), ModelOptions{}, overlap);
  predictor.profile_sample(bench.sample);
  write_placement_report(std::cout, predictor);
  return 0;
}
