// Overlap-model training walkthrough: trains the Eq. 11 empirical model on
// the Table IV training placements, prints the learned coefficients, and
// shows the fit quality placement by placement — a look inside the one
// machine-learned component of the framework.
//
// Usage: ./examples/overlap_training
#include <cstdio>
#include <cstring>
#include <vector>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

int main(int argc, char** argv) {
  if (argc > 1) {
    std::printf(
        "usage: overlap_training (no arguments)\n"
        "Trains the Eq. 11 T_overlap model on the Table IV training\n"
        "placements, prints the learned coefficients, and shows the fit\n"
        "quality placement by placement.\n");
    return std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0
               ? 0
               : 2;
  }
  const GpuArch& arch = kepler_arch();
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();

  std::vector<MeasuredCase> cases;
  std::vector<std::string> labels;
  for (const auto& c : training) {
    cases.push_back({&c.kernel, c.sample, simulate(c.kernel, c.sample, arch)});
    labels.push_back(c.name + " (default)");
    for (const auto& t : c.tests) {
      cases.push_back(
          {&c.kernel, t.placement, simulate(c.kernel, t.placement, arch)});
      labels.push_back(t.id);
    }
  }
  std::printf("collected %zu training measurements (Table IV suite)\n\n",
              cases.size());

  const ToverlapModel model =
      train_overlap_model_measured(cases, arch, ModelOptions{});
  const char* feature_names[] = {
      "e_g (L2 miss + global trans)", "e_c (const miss + requests)",
      "e_t (tex miss + requests)",    "e_s (conflicts + shared req)",
      "e_r (row miss + conflict)",    "w   (warps per SM / 64)",
      "c   (constant)"};
  std::printf("learned Eq. 11 coefficients:\n");
  for (std::size_t i = 0; i < ToverlapModel::kNumFeatures; ++i) {
    std::printf("  %-30s %+.4f\n", feature_names[i], model.coefficients()[i]);
  }

  // Fit quality on the training set: prediction with the trained overlap,
  // unanchored, against the measurement.
  std::printf("\nfit on the training placements (unanchored prediction / "
              "measured):\n");
  ModelOptions opts;
  opts.anchor_to_sample = false;
  double sum_err = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    Predictor pred(*cases[i].kernel, arch, opts, model);
    pred.set_sample(cases[i].placement, cases[i].measured);
    const double norm = pred.predict(cases[i].placement).total_cycles /
                        static_cast<double>(cases[i].measured.cycles);
    sum_err += std::abs(norm - 1.0);
    std::printf("  %-24s %6.3f\n", labels[i].c_str(), norm);
  }
  std::printf("mean |error| on training set: %.1f%%\n",
              100.0 * sum_err / static_cast<double>(cases.size()));
  return 0;
}
