// Placement advisor: the end-to-end workflow the paper positions the models
// for — profile ONE sample placement of a kernel, then explore the legal
// placement space analytically and recommend the best placements without
// implementing them.
//
// Usage: ./examples/placement_advisor [benchmark] [max_placements]
//        (default: spmv, 64)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "spmv";
  const std::size_t cap = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  const GpuArch& arch = kepler_arch();
  const auto bench = workloads::get_benchmark(name);

  // Train the T_overlap model (Eq. 11) on the Table IV training suite,
  // excluding the kernel under advisement to keep the demo honest.
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    if (c.name == name) continue;
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  std::printf("training T_overlap on %zu placements...\n", cases.size());
  const ToverlapModel overlap = train_overlap_model(cases, arch);

  // Profile the sample placement once.
  Predictor pred(bench.kernel, arch, ModelOptions{}, overlap);
  pred.profile_sample(bench.sample);
  const double sample_cycles =
      static_cast<double>(pred.sample_result().cycles);
  std::printf("%s sample placement %s: %0.f cycles measured\n\n",
              name.c_str(), bench.sample.to_string().c_str(), sample_cycles);

  // Explore the legal placement space analytically.
  const auto space = enumerate_placements(bench.kernel, arch, cap);
  struct Scored {
    DataPlacement placement;
    double predicted;
  };
  std::vector<Scored> scored;
  for (const auto& p : space) {
    scored.push_back({p, pred.predict(p).total_cycles});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.predicted < b.predicted;
            });

  std::printf("explored %zu legal placements; top 5 recommendations:\n",
              scored.size());
  std::printf("%-4s %-16s %12s %14s %10s %s\n", "#", "placement", "predicted",
              "vs sample", "measured", "change");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, scored.size()); ++i) {
    const auto& s = scored[i];
    // Validate the recommendation against the substrate ("hardware").
    const double measured =
        static_cast<double>(simulate(bench.kernel, s.placement, arch).cycles);
    std::printf("%-4zu %-16s %12.0f %13.2fx %10.0f %s\n", i + 1,
                s.placement.to_string().c_str(), s.predicted,
                sample_cycles / s.predicted, measured,
                s.placement.describe_vs(bench.sample, bench.kernel).c_str());
  }
  std::printf("\nworst 3 (placements to avoid):\n");
  for (std::size_t i = scored.size() >= 3 ? scored.size() - 3 : 0;
       i < scored.size(); ++i) {
    const auto& s = scored[i];
    std::printf("     %-16s %12.0f %13.2fx            %s\n",
                s.placement.to_string().c_str(), s.predicted,
                sample_cycles / s.predicted,
                s.placement.describe_vs(bench.sample, bench.kernel).c_str());
  }
  return 0;
}
