// Placement advisor: the end-to-end workflow the paper positions the models
// for — profile ONE sample placement of a kernel, then explore the legal
// placement space analytically and recommend the best placements without
// implementing them.
//
// Demonstrates the non-aborting API surface: every model call goes through
// the try_* / Status entry points, malformed command lines and unknown
// benchmarks are reported on stderr (exit 1) instead of aborting, and an
// optional wall-clock budget shows deadline-bounded search returning its
// best-so-far recommendation.
//
// Observability: --metrics-out=PATH (or "-" for stdout) enables the metrics
// registry and dumps the final MetricsSnapshot as JSON; --trace-out=PATH
// records scoped-phase trace events and writes Chrome trace-event JSON
// loadable in chrome://tracing. Both default to off, leaving the hot path
// uninstrumented (GPUHMS_METRICS env also enables recording).
//
// Usage: ./examples/placement_advisor [benchmark] [max_placements]
//                                     [--search=bnb|exhaustive|beam]
//                                     [--deadline-ms=N]
//                                     [--metrics-out=PATH] [--trace-out=PATH]
//        (default: spmv, 64, exhaustive, no deadline, no metrics/trace)
// Run with --help for the full flag reference.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch_registry.hpp"
#include "common/journal.hpp"
#include "common/obs.hpp"
#include "model/search.hpp"
#include "model/search_checkpoint.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "placement_advisor: %s\n", message.c_str());
  std::exit(1);
}

// Full-token, range-checked decimal parse; dies with the offending token.
std::size_t parse_size(const char* arg, const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v == 0)
    die(std::string("invalid ") + what + " '" + arg +
        "': expected a positive integer");
  return static_cast<std::size_t>(v);
}

std::optional<workloads::BenchmarkCase> find_benchmark(
    const std::string& name, std::vector<std::string>* known) {
  for (auto suite : {workloads::training_suite(),
                     workloads::evaluation_suite()}) {
    for (auto& c : suite) {
      if (known != nullptr) known->push_back(c.name);
      if (c.name == name) return std::move(c);
    }
  }
  return std::nullopt;
}

// Accepts both --flag=value and --flag value spellings; returns nullptr
// when `arg` is not this flag, dies when the value is missing.
const char* flag_value(const char* arg, const char* flag, int argc,
                       char** argv, int* i) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] != '\0') return nullptr;  // e.g. --metrics-outX
  if (*i + 1 >= argc)
    die(std::string("missing value for ") + flag);
  return argv[++*i];
}

void print_help() {
  std::printf(
      "usage: placement_advisor [benchmark] [max_placements] [flags]\n"
      "\n"
      "Profiles one sample placement of `benchmark` (default: spmv), then\n"
      "searches the legal placement space with the analytical model and\n"
      "prints the best / worst placements without implementing them.\n"
      "\n"
      "positional arguments:\n"
      "  benchmark        a Table IV workload name (run with an unknown\n"
      "                   name to list them)\n"
      "  max_placements   enumeration cap for --search=exhaustive and the\n"
      "                   recommendation table (default: 64). When the cap\n"
      "                   truncates the space the advisor says so and warns\n"
      "                   that the result may be non-optimal.\n"
      "\n"
      "flags:\n"
      "  --arch=NAME      architecture backend to advise for: kepler\n"
      "                   (default), fermi, maxwell, or hbm2 (ArchRegistry;\n"
      "                   an unknown name lists the registered backends).\n"
      "                   Latencies, bank geometry and the DRAM address map\n"
      "                   all follow the backend.\n"
      "  --search=MODE    bnb | exhaustive | beam (default: exhaustive).\n"
      "                   bnb covers the FULL m^n space with an admissible\n"
      "                   branch-and-bound (certified optimality gap);\n"
      "                   beam is the fast heuristic with a root-bound\n"
      "                   certificate; exhaustive scores every placement\n"
      "                   up to max_placements.\n"
      "  --deadline-ms=N  wall-clock budget for the search; on expiry the\n"
      "                   best-so-far placement is returned (bnb still\n"
      "                   reports a certified gap).\n"
      "  --checkpoint=P   (bnb only) journal search checkpoints to P so a\n"
      "                   killed run can resume: re-running with the same\n"
      "                   flags continues from the last durable checkpoint\n"
      "                   and returns the same certified result as an\n"
      "                   uninterrupted run (bit-identical on completion).\n"
      "  --resume         require an existing checkpoint journal at the\n"
      "                   --checkpoint path (error if none): makes 'continue\n"
      "                   a previous run' explicit instead of silently\n"
      "                   starting fresh on a typo'd path.\n"
      "  --metrics-out=P  write the metrics registry snapshot as JSON to P\n"
      "                   ('-' for stdout); also enabled by GPUHMS_METRICS.\n"
      "  --trace-out=P    write a Chrome trace-event JSON of the scoped\n"
      "                   phases to P (open in chrome://tracing).\n"
      "  --help           this text.\n"
      "\n"
      "environment:\n"
      "  GPUHMS_THREADS   worker-thread count for search/batch prediction\n"
      "                   (results are bit-identical for any value)\n"
      "  GPUHMS_METRICS   =1 enables metrics recording without a flag\n"
      "  GPUHMS_FAULT     fault-injection spec (testing only)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "spmv";
  std::size_t cap = 64;
  std::string search_mode = "exhaustive";
  std::string arch_name = "kepler";
  std::optional<std::chrono::milliseconds> deadline;
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  std::optional<std::string> checkpoint_path;
  bool require_resume = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_help();
      return 0;
    }
    if (const char* v = flag_value(arg, "--search", argc, argv, &i)) {
      search_mode = v;  // validated below via parse_search_algo
    } else if (const char* v = flag_value(arg, "--arch", argc, argv, &i)) {
      arch_name = v;  // validated below via ArchRegistry
    } else if (const char* v =
                   flag_value(arg, "--deadline-ms", argc, argv, &i)) {
      deadline = std::chrono::milliseconds(
          static_cast<long long>(parse_size(v, "deadline")));
    } else if (std::strcmp(arg, "--resume") == 0) {
      require_resume = true;
    } else if (const char* v =
                   flag_value(arg, "--checkpoint", argc, argv, &i)) {
      checkpoint_path = v;
    } else if (const char* v =
                   flag_value(arg, "--metrics-out", argc, argv, &i)) {
      metrics_out = v;
    } else if (const char* v =
                   flag_value(arg, "--trace-out", argc, argv, &i)) {
      trace_out = v;
    } else if (positional == 0) {
      name = arg;
      ++positional;
    } else if (positional == 1) {
      cap = parse_size(arg, "max_placements");
      ++positional;
    } else {
      die(std::string("unexpected argument '") + arg + "'");
    }
  }
  // Algorithm selection goes through the Status layer: an unknown mode is a
  // structured INVALID_ARGUMENT out of parse_search_algo, never a silent
  // fallback to a default engine.
  const StatusOr<SearchAlgo> algo = parse_search_algo(search_mode);
  if (!algo.ok()) die(algo.status().to_string());
  const std::string algo_name(to_string(*algo));
  if (checkpoint_path && *algo != SearchAlgo::kBnb)
    die("--checkpoint requires --search=bnb (only branch-and-bound "
        "checkpoints its frontier)");
  if (require_resume && !checkpoint_path)
    die("--resume requires --checkpoint=PATH");
  if (require_resume && !journal::exists(*checkpoint_path))
    die("--resume: no checkpoint journal at '" + *checkpoint_path +
        "' (drop --resume to start a fresh journaled run)");

  if (metrics_out) obs::set_enabled(true);
  if (trace_out) obs::start_tracing();

  std::vector<std::string> known;
  const auto bench = find_benchmark(name, &known);
  if (!bench) {
    std::string msg = "unknown benchmark '" + name + "'; known benchmarks:";
    std::sort(known.begin(), known.end());
    known.erase(std::unique(known.begin(), known.end()), known.end());
    for (const auto& k : known) msg += " " + k;
    die(msg);
  }
  const StatusOr<const ArchBackend*> backend =
      ArchRegistry::builtin().try_find(arch_name);
  if (!backend.ok()) die(backend.status().to_string());
  const GpuArch& arch = (*backend)->arch;
  if (const Status st = validate(arch); !st.ok()) die(st.to_string());
  if (const Status st = validate(bench->kernel); !st.ok()) die(st.to_string());
  std::printf("arch: %s — %s\n", (*backend)->name.c_str(),
              (*backend)->summary.c_str());

  // Train the T_overlap model (Eq. 11) on the Table IV training suite,
  // excluding the kernel under advisement to keep the demo honest.
  std::vector<workloads::BenchmarkCase> training = workloads::training_suite();
  std::vector<TrainingCase> cases;
  for (const auto& c : training) {
    if (c.name == name) continue;
    cases.push_back({&c.kernel, c.sample});
    for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
  }
  std::printf("training T_overlap on %zu placements...\n", cases.size());
  const ToverlapModel overlap = train_overlap_model(cases, arch);

  // Profile the sample placement once.
  Predictor pred(bench->kernel, arch, ModelOptions{}, overlap);
  if (const Status st = pred.try_profile_sample(bench->sample); !st.ok())
    die(st.to_string());
  const double sample_cycles =
      static_cast<double>(pred.sample_result().cycles);
  std::printf("%s sample placement %s: %0.f cycles measured\n\n",
              name.c_str(), bench->sample.to_string().c_str(), sample_cycles);

  // Search the placement space with the selected engine.
  SearchOptions so;
  so.cap = cap;
  if (deadline) so.deadline = *deadline;
  ResumeInfo resume_info;
  const StatusOr<SearchResult> searched =
      checkpoint_path
          ? try_resume_branch_and_bound(pred, so, *checkpoint_path,
                                        &resume_info)
          : try_search(pred, *algo, so);
  if (!searched.ok()) die(searched.status().to_string());
  const SearchResult& sr = *searched;
  if (checkpoint_path) {
    if (resume_info.already_complete)
      std::printf("checkpoint journal '%s': run already complete, result "
                  "returned verbatim\n",
                  checkpoint_path->c_str());
    else if (resume_info.resumed)
      std::printf("resumed from checkpoint journal '%s' (%llu checkpoints, "
                  "visit watermark %llu%s); wrote %llu more\n",
                  checkpoint_path->c_str(),
                  static_cast<unsigned long long>(
                      resume_info.checkpoints_read),
                  static_cast<unsigned long long>(resume_info.resumed_visits),
                  resume_info.tail_truncated ? "; torn tail truncated" : "",
                  static_cast<unsigned long long>(
                      resume_info.checkpoints_written));
    else
      std::printf("journaling checkpoints to '%s' (%llu written)\n",
                  checkpoint_path->c_str(),
                  static_cast<unsigned long long>(
                      resume_info.checkpoints_written));
  }
  std::printf("%s search: best %s at %.0f predicted cycles "
              "(%zu evaluated%s%s)\n",
              algo_name.c_str(), sr.placement.to_string().c_str(),
              sr.predicted_cycles, sr.evaluated,
              sr.deadline_hit ? "; deadline hit" : "",
              sr.cancelled ? "; cancelled" : "");
  if (*algo == SearchAlgo::kBnb) {
    std::printf("  certificate: lower bound %.0f cycles, optimality gap "
                "%.2f%%%s (%zu nodes expanded, %zu subtrees pruned%s)\n",
                sr.lower_bound, 100.0 * sr.optimality_gap,
                sr.proven_optimal ? " [proven optimal]" : "",
                sr.nodes_expanded, sr.pruned_subtrees,
                sr.beam_fallback ? "; beam fallback ran" : "");
  } else if (*algo == SearchAlgo::kBeam) {
    std::printf("  certificate (root bound only): lower bound %.0f cycles, "
                "gap <= %.2f%%\n",
                sr.lower_bound, 100.0 * sr.optimality_gap);
  } else if (sr.space_truncated) {
    std::printf("  WARNING: enumeration capped at %zu placements; %llu "
                "combinations never examined — result may be non-optimal "
                "(raise max_placements or use --search=bnb)\n",
                cap, static_cast<unsigned long long>(sr.space_skipped));
  }
  // A checkpoint append that failed mid-run degraded durability: the result
  // above is still correct, but the journal the user asked for is stale —
  // that is an error exit, not a shrug (a later crash could not resume).
  if (resume_info.journal_write_failed)
    die("checkpoint journal write failed (result above is correct but NOT "
        "durable): " + resume_info.journal_write_error);
  std::printf("\n");

  // Explore the legal placement space analytically (batch prediction). The
  // cap is made visible: a truncated table is a partial view, not the
  // optimum, and must say so rather than silently reporting the capped best.
  const PlacementSpace enumerated =
      enumerate_placement_space(bench->kernel, arch, cap);
  const std::vector<DataPlacement>& space = enumerated.placements;
  const StatusOr<std::vector<Prediction>> batch =
      pred.try_predict_batch(space);
  if (!batch.ok()) die(batch.status().to_string());
  struct Scored {
    DataPlacement placement;
    double predicted;
    bool saturated;
  };
  std::vector<Scored> scored;
  scored.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    scored.push_back({space[i], (*batch)[i].total_cycles,
                      (*batch)[i].queue_saturated});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.predicted < b.predicted;
            });

  if (enumerated.truncated) {
    std::printf("explored %zu legal placements (CAPPED: %llu combinations "
                "not evaluated — table may miss the optimum; raise "
                "max_placements or use --search=bnb); top 5:\n",
                scored.size(),
                static_cast<unsigned long long>(
                    enumerated.skipped_combinations));
  } else {
    std::printf("explored all %zu legal placements; top 5 recommendations:\n",
                scored.size());
  }
  std::printf("%-4s %-16s %12s %14s %10s %s\n", "#", "placement", "predicted",
              "vs sample", "measured", "change");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, scored.size()); ++i) {
    const auto& s = scored[i];
    // Validate the recommendation against the substrate ("hardware").
    const double measured = static_cast<double>(
        simulate(bench->kernel, s.placement, arch).cycles);
    std::printf("%-4zu %-16s %12.0f %13.2fx %10.0f %s%s\n", i + 1,
                s.placement.to_string().c_str(), s.predicted,
                sample_cycles / s.predicted, measured,
                s.placement.describe_vs(bench->sample, bench->kernel).c_str(),
                s.saturated ? " [queue saturated]" : "");
  }
  std::printf("\nworst 3 (placements to avoid):\n");
  for (std::size_t i = scored.size() >= 3 ? scored.size() - 3 : 0;
       i < scored.size(); ++i) {
    const auto& s = scored[i];
    std::printf("     %-16s %12.0f %13.2fx            %s\n",
                s.placement.to_string().c_str(), s.predicted,
                sample_cycles / s.predicted,
                s.placement.describe_vs(bench->sample, bench->kernel).c_str());
  }

  if (trace_out) {
    obs::stop_tracing();
    if (const Status st = obs::write_chrome_trace(*trace_out); !st.ok())
      die(st.to_string());
    std::printf("\nwrote Chrome trace to %s (open in chrome://tracing)\n",
                trace_out->c_str());
  }
  if (metrics_out) {
    const std::string json = obs::snapshot().to_json();
    if (*metrics_out == "-") {
      std::printf("\n%s", json.c_str());
    } else {
      std::FILE* f = std::fopen(metrics_out->c_str(), "w");
      if (!f) die("cannot open metrics output file '" + *metrics_out + "'");
      std::fputs(json.c_str(), f);
      if (std::fclose(f) != 0)
        die("failed writing metrics to '" + *metrics_out + "'");
      std::printf("\nwrote metrics snapshot to %s\n", metrics_out->c_str());
    }
  }
  return 0;
}
