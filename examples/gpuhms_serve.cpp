// gpuhms_serve: the long-running prediction/search daemon.
//
// Speaks the newline-delimited JSON protocol of DESIGN §11 (operator guide:
// docs/SERVING.md) over stdin/stdout (the default; pipe requests in, read
// responses out) or over a Unix domain socket (--socket=PATH) served by the
// epoll event-loop backend of DESIGN §15 — one reactor thread holds every
// connection, request batches execute on a small worker pool, and all
// clients share one PredictionService (one kernel/prediction cache).
// --legacy-threaded restores the PR 5 thread-per-connection loop; responses
// are byte-identical on either backend.
//
// Quickstart (see README "Serving"):
//   $ ./examples/gpuhms_serve
//   {"id":1,"op":"predict","benchmark":"spmv","placement":"G,G,G,G"}
//   {"id":1,"op":"predict","ok":true,...}
//
// The daemon exits after a {"op":"shutdown"} request, EOF on stdin, or a
// SIGTERM/SIGINT — the signals trigger a graceful drain (DESIGN §13): stop
// accepting work, answer everything already received (new requests get a
// structured retryable UNAVAILABLE — one response per request line, never a
// dropped one), flush metrics to stderr, exit 0. A drain that cannot finish
// within --drain-timeout-ms forces exit code 3.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "arch/arch_registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace gpuhms;

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "gpuhms_serve: %s\n", message.c_str());
  std::exit(1);
}

std::size_t parse_size(const char* arg, const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE)
    die(std::string("invalid ") + what + " '" + arg +
        "': expected a non-negative integer");
  return static_cast<std::size_t>(v);
}

const char* flag_value(const char* arg, const char* flag, int argc,
                       char** argv, int* i) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] != '\0') return nullptr;
  if (*i + 1 >= argc) die(std::string("missing value for ") + flag);
  return argv[++*i];
}

void print_help() {
  std::printf(
      "usage: gpuhms_serve [flags]\n"
      "\n"
      "Long-running placement prediction/search daemon. Reads one JSON\n"
      "request per line, writes one JSON response per line, in order.\n"
      "Ops: predict, predict_batch, search (algo=bnb|exhaustive|beam),\n"
      "metrics, health, shutdown. Protocol grammar: DESIGN.md section 11;\n"
      "full operator and wire-protocol reference: docs/SERVING.md.\n"
      "SIGTERM/SIGINT drain gracefully: in-flight requests finish, new ones\n"
      "are shed with a retryable UNAVAILABLE, no response is ever lost.\n"
      "\n"
      "flags:\n"
      "  --socket=PATH        listen on a Unix domain socket instead of\n"
      "                       stdin/stdout (epoll event loop, one shared\n"
      "                       cache). The path is unlinked first.\n"
      "  --legacy-threaded    socket mode only: serve with the PR 5 thread-\n"
      "                       per-connection loop instead of the event loop\n"
      "                       (DESIGN sec 15; responses are byte-identical\n"
      "                       either way)\n"
      "  --executor-threads=N event-loop worker threads executing request\n"
      "                       batches off the reactor (default: hardware,\n"
      "                       clamped to [1,4])\n"
      "  --max-write-buffer=N per-connection response-buffer bound in bytes\n"
      "                       before dispatch stalls on a slow reader\n"
      "                       (default 262144)\n"
      "  --arch=NAME          default backend for requests that name no arch:\n"
      "                       kepler (default), fermi, maxwell, or hbm2\n"
      "                       (ArchRegistry; requests may override per line\n"
      "                       with an \"arch\" field)\n"
      "  --train-overlap      fit the Eq. 11 T_overlap model on the Table IV\n"
      "                       training suite at startup (seconds; better\n"
      "                       absolute predictions)\n"
      "  --threads=N          worker threads for batch prediction/search\n"
      "                       (default: GPUHMS_THREADS or hardware)\n"
      "  --kernel-cache=N     profiled-kernel cache capacity (default 16)\n"
      "  --prediction-cache=N memoized-prediction cache capacity (default 4096)\n"
      "  --legacy-cache       serve from the mutex-guarded LRU caches instead\n"
      "                       of the sharded wait-free caches (DESIGN sec 14;\n"
      "                       responses are byte-identical either way)\n"
      "  --max-inflight=N     concurrent requests admitted (default 64)\n"
      "  --watchdog-ms=N      cancel searches running longer than N ms via\n"
      "                       their cooperative token (anytime best-so-far\n"
      "                       response, never a hung request; default off)\n"
      "  --idem-cache=N       idempotency-replay cache capacity: retried\n"
      "                       requests carrying an 'idem' fingerprint replay\n"
      "                       their original response bytes (default 1024)\n"
      "  --drain-timeout-ms=N bound on the SIGTERM/SIGINT graceful drain;\n"
      "                       exceeded -> forced exit code 3 (default 5000)\n"
      "  --help               this text\n"
      "\n"
      "environment (full list: docs/SERVING.md):\n"
      "  GPUHMS_THREADS       default worker-thread count (responses are\n"
      "                       bit-identical for any value)\n"
      "  GPUHMS_LEGACY_CACHE  =1 is the env spelling of --legacy-cache\n"
      "  GPUHMS_METRICS       =1 mirrors serve.* counters into the obs\n"
      "                       registry (the metrics op works regardless)\n");
}

// --- signal plumbing ---------------------------------------------------------
// Classic self-pipe: the handler only touches a sig_atomic_t-ish flag and
// write(2) (both async-signal-safe); the serving loops poll the pipe's read
// end so a signal wakes a blocked poll immediately. No SA_RESTART, so
// blocked read(2) calls return EINTR promptly too.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signal{0};

void on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe[1], &byte, 1);
}

void install_signal_handlers() {
  if (::pipe(g_signal_pipe) != 0)
    die("pipe(): " + std::string(std::strerror(errno)));
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  if (::sigaction(SIGTERM, &sa, nullptr) != 0 ||
      ::sigaction(SIGINT, &sa, nullptr) != 0)
    die("sigaction(): " + std::string(std::strerror(errno)));
}

// Full write with EINTR handling; false means the peer is gone and the
// responses cannot be delivered.
bool write_all(int fd, const std::string& out) {
  std::size_t written = 0;
  while (written < out.size()) {
    const ssize_t w = ::write(fd, out.data() + written, out.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(w);
  }
  return true;
}

void log_drain_stats(const serve::PredictionService& service, int sig) {
  const serve::ServeStats s = service.stats();
  std::fprintf(stderr,
               "gpuhms_serve: drained after signal %d: requests=%llu "
               "responses=%llu errors=%llu shed_draining=%llu "
               "watchdog_cancels=%llu idem_hits=%llu\n",
               sig, static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.responses),
               static_cast<unsigned long long>(s.errors),
               static_cast<unsigned long long>(s.shed_draining),
               static_cast<unsigned long long>(s.watchdog_cancels),
               static_cast<unsigned long long>(s.idem_hits));
}

// --- stdio mode --------------------------------------------------------------
// Single-threaded fd loop (instead of run_stdio_loop) so a signal can wake
// the blocking read via the self-pipe. A signal drains: every COMPLETE line
// already received still gets its response (shed with UNAVAILABLE once
// draining flips), then one structured shutdown line is emitted and the
// process exits 0. A partial trailing line was never a complete request and
// is dropped by construction.
int run_stdio_server(serve::PredictionService& service) {
  serve::LineFramer framer;
  char chunk[1 << 16];
  bool eof = false;
  while (!eof && !service.stopped() && g_signal.load() == 0) {
    pollfd pfds[2] = {{STDIN_FILENO, POLLIN, 0},
                      {g_signal_pipe[0], POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      die("poll(): " + std::string(std::strerror(errno)));
    }
    if (pfds[1].revents != 0) break;  // signal: drain below
    if ((pfds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      die("read(stdin): " + std::string(std::strerror(errno)));
    }
    if (n == 0)
      eof = true;
    else
      framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    const std::vector<std::string> lines =
        framer.take_lines(std::numeric_limits<std::size_t>::max());
    if (lines.empty()) continue;
    std::string out;
    for (const std::string& response : service.handle_pipeline(lines)) {
      out += response;
      out += '\n';
    }
    // A failed response write is data loss, not a shrug: exit nonzero with
    // the errno so callers piping responses to a file notice.
    if (!write_all(STDOUT_FILENO, out))
      die("writing responses to stdout failed: " +
          std::string(std::strerror(errno)));
  }

  const int sig = g_signal.load();
  if (sig != 0) {
    service.begin_drain();
    // Buffered complete lines arrived before the signal; they are owed a
    // response each (the service sheds them with retryable UNAVAILABLE).
    const std::vector<std::string> lines =
        framer.take_lines(std::numeric_limits<std::size_t>::max());
    std::string out;
    if (!lines.empty())
      for (const std::string& response : service.handle_pipeline(lines)) {
        out += response;
        out += '\n';
      }
    serve::Json bye = serve::Json::object();
    bye.set("op", "shutdown");
    bye.set("ok", true);
    bye.set("signal", sig);
    bye.set("draining", true);
    bye.set("drained", service.drained());
    out += bye.dump();
    out += '\n';
    if (!write_all(STDOUT_FILENO, out))
      die("writing drain responses to stdout failed: " +
          std::string(std::strerror(errno)));
    log_drain_stats(service, sig);
  }
  return 0;
}

// --- socket mode -------------------------------------------------------------
// Accept/drain/dispatch live in the library now (serve/server.hpp); the
// daemon contributes only the signal-to-drain bridge: a watcher thread parks
// on the self-pipe and calls begin_drain() when a signal lands, so both
// backends share one drain entry point.
int run_socket_server(serve::PredictionService& service,
                      const serve::ServerOptions& server_options) {
  serve::SocketServer server(service, server_options);
  const Status st = server.listen();
  if (!st.ok()) die(st.to_string());
  std::fprintf(stderr, "gpuhms_serve: listening on %s (%s backend)\n",
               server_options.socket_path.c_str(),
               std::string(serve::to_string(server_options.backend)).c_str());

  int done_pipe[2] = {-1, -1};
  if (::pipe(done_pipe) != 0)
    die("pipe(): " + std::string(std::strerror(errno)));
  std::thread watcher([&server, &done_pipe] {
    for (;;) {
      pollfd pfds[2] = {{g_signal_pipe[0], POLLIN, 0},
                        {done_pipe[0], POLLIN, 0}};
      const int ready = ::poll(pfds, 2, -1);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return;
      if (pfds[0].revents != 0) {
        std::fprintf(stderr,
                     "gpuhms_serve: signal %d: draining (%llu connections, "
                     "timeout %zu ms)\n",
                     g_signal.load(),
                     static_cast<unsigned long long>(
                         server.stats().connections_open),
                     server.options().drain_timeout_ms);
        server.begin_drain();
        return;
      }
      if (pfds[1].revents != 0) return;  // clean exit: stop watching
    }
  });
  const int rc = server.run();
  {
    const char byte = 1;
    [[maybe_unused]] const ssize_t w = ::write(done_pipe[1], &byte, 1);
  }
  watcher.join();
  ::close(done_pipe[0]);
  ::close(done_pipe[1]);

  const int sig = g_signal.load();
  if (rc == 3) {
    std::fprintf(stderr,
                 "gpuhms_serve: drain timed out with %llu connections still "
                 "active; forcing exit\n",
                 static_cast<unsigned long long>(
                     server.stats().connections_open));
    std::fflush(stderr);
    // Worker/handler threads may still be running; a normal exit would run
    // static destructors under them. _Exit skips that — the kernel closes
    // the fds.
    std::_Exit(3);
  }
  if (sig != 0) log_drain_stats(service, sig);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions options;
  serve::ServerOptions server_options;
  std::optional<std::string> socket_path;
  std::string arch_name = "kepler";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_help();
      return 0;
    }
    if (std::strcmp(arg, "--train-overlap") == 0) {
      options.train_overlap = true;
    } else if (std::strcmp(arg, "--legacy-cache") == 0) {
      options.cache_backend = CacheBackend::kLegacyLru;
    } else if (std::strcmp(arg, "--legacy-threaded") == 0) {
      server_options.backend = serve::ServerBackend::kThreadPerConnection;
    } else if (const char* v = flag_value(arg, "--socket", argc, argv, &i)) {
      socket_path = v;
    } else if (const char* v = flag_value(arg, "--arch", argc, argv, &i)) {
      arch_name = v;
    } else if (const char* v = flag_value(arg, "--threads", argc, argv, &i)) {
      options.num_threads = static_cast<int>(parse_size(v, "--threads"));
    } else if (const char* v =
                   flag_value(arg, "--executor-threads", argc, argv, &i)) {
      server_options.executor_threads =
          static_cast<int>(parse_size(v, "--executor-threads"));
    } else if (const char* v =
                   flag_value(arg, "--max-write-buffer", argc, argv, &i)) {
      server_options.max_write_buffer_bytes =
          parse_size(v, "--max-write-buffer");
    } else if (const char* v =
                   flag_value(arg, "--kernel-cache", argc, argv, &i)) {
      options.kernel_cache_capacity = parse_size(v, "--kernel-cache");
    } else if (const char* v =
                   flag_value(arg, "--prediction-cache", argc, argv, &i)) {
      options.prediction_cache_capacity = parse_size(v, "--prediction-cache");
    } else if (const char* v =
                   flag_value(arg, "--max-inflight", argc, argv, &i)) {
      options.max_inflight = parse_size(v, "--max-inflight");
    } else if (const char* v =
                   flag_value(arg, "--watchdog-ms", argc, argv, &i)) {
      options.watchdog_ms = parse_size(v, "--watchdog-ms");
    } else if (const char* v =
                   flag_value(arg, "--idem-cache", argc, argv, &i)) {
      options.idem_cache_capacity = parse_size(v, "--idem-cache");
    } else if (const char* v =
                   flag_value(arg, "--drain-timeout-ms", argc, argv, &i)) {
      server_options.drain_timeout_ms = parse_size(v, "--drain-timeout-ms");
    } else {
      die(std::string("unexpected argument '") + arg + "' (--help lists "
          "the flags)");
    }
  }
  const StatusOr<const ArchBackend*> backend =
      ArchRegistry::builtin().try_find(arch_name);
  if (!backend.ok()) die(backend.status().to_string());
  const GpuArch* arch = &(*backend)->arch;

  install_signal_handlers();
  if (options.train_overlap)
    std::fprintf(stderr,
                 "gpuhms_serve: training the T_overlap model "
                 "(--train-overlap)...\n");
  serve::PredictionService service(options, *arch);

  if (socket_path) {
    server_options.socket_path = *socket_path;
    return run_socket_server(service, server_options);
  }
  return run_stdio_server(service);
}
