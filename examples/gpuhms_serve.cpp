// gpuhms_serve: the long-running prediction/search daemon.
//
// Speaks the newline-delimited JSON protocol of DESIGN §11 over stdin/stdout
// (the default; pipe requests in, read responses out) or over a Unix domain
// socket (--socket=PATH) where each connection gets its own handler thread
// against one shared PredictionService — so every client shares the kernel
// and prediction caches.
//
// Quickstart (see README "Serving"):
//   $ ./examples/gpuhms_serve
//   {"id":1,"op":"predict","benchmark":"spmv","placement":"G,G,G,G"}
//   {"id":1,"op":"predict","ok":true,...}
//
// The daemon exits after a {"op":"shutdown"} request or EOF on stdin.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/service.hpp"

using namespace gpuhms;

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "gpuhms_serve: %s\n", message.c_str());
  std::exit(1);
}

std::size_t parse_size(const char* arg, const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE)
    die(std::string("invalid ") + what + " '" + arg +
        "': expected a non-negative integer");
  return static_cast<std::size_t>(v);
}

const char* flag_value(const char* arg, const char* flag, int argc,
                       char** argv, int* i) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return nullptr;
  if (arg[len] == '=') return arg + len + 1;
  if (arg[len] != '\0') return nullptr;
  if (*i + 1 >= argc) die(std::string("missing value for ") + flag);
  return argv[++*i];
}

void print_help() {
  std::printf(
      "usage: gpuhms_serve [flags]\n"
      "\n"
      "Long-running placement prediction/search daemon. Reads one JSON\n"
      "request per line, writes one JSON response per line, in order.\n"
      "Ops: predict, predict_batch, search (algo=bnb|exhaustive|beam),\n"
      "metrics, shutdown. Protocol grammar: DESIGN.md section 11.\n"
      "\n"
      "flags:\n"
      "  --socket=PATH        listen on a Unix domain socket instead of\n"
      "                       stdin/stdout (one thread per connection, one\n"
      "                       shared cache). The path is unlinked first.\n"
      "  --arch=NAME          kepler (default) or fermi\n"
      "  --train-overlap      fit the Eq. 11 T_overlap model on the Table IV\n"
      "                       training suite at startup (seconds; better\n"
      "                       absolute predictions)\n"
      "  --threads=N          worker threads for batch prediction/search\n"
      "                       (default: GPUHMS_THREADS or hardware)\n"
      "  --kernel-cache=N     profiled-kernel LRU capacity (default 16)\n"
      "  --prediction-cache=N memoized-prediction LRU capacity (default 4096)\n"
      "  --max-inflight=N     concurrent requests admitted (default 64)\n"
      "  --help               this text\n"
      "\n"
      "environment:\n"
      "  GPUHMS_THREADS       default worker-thread count (responses are\n"
      "                       bit-identical for any value)\n"
      "  GPUHMS_METRICS       =1 mirrors serve.* counters into the obs\n"
      "                       registry (the metrics op works regardless)\n");
}

// One connection: line-buffered reads, one response line per request.
void serve_connection(int fd, serve::PredictionService& service) {
  std::string buf;
  char chunk[4096];
  std::vector<std::string> lines;
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    // Handle every complete line received so far as one pipelined batch
    // (same-kernel predicts coalesce into one batch prediction).
    lines.clear();
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n'); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      lines.push_back(buf.substr(start, nl - start));
      start = nl + 1;
    }
    buf.erase(0, start);
    if (lines.empty()) continue;
    std::string out;
    for (const std::string& response : service.handle_pipeline(lines)) {
      out += response;
      out += '\n';
    }
    std::size_t written = 0;
    while (written < out.size()) {
      const ssize_t w = ::write(fd, out.data() + written,
                                out.size() - written);
      if (w <= 0) break;
      written += static_cast<std::size_t>(w);
    }
    if (service.stopped()) break;
  }
  ::close(fd);
}

int run_socket_server(const std::string& path,
                      serve::PredictionService& service) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path)
    die("socket path too long: '" + path + "'");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) die("socket(): " + std::string(std::strerror(errno)));
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    die("bind('" + path + "'): " + std::string(std::strerror(errno)));
  if (::listen(listener, 16) != 0)
    die("listen(): " + std::string(std::strerror(errno)));
  std::fprintf(stderr, "gpuhms_serve: listening on %s\n", path.c_str());

  std::vector<std::thread> handlers;
  while (!service.stopped()) {
    // Poll with a timeout so a shutdown handled on a connection thread
    // unblocks the accept loop within a second.
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 1000);
    if (ready < 0 && errno != EINTR)
      die("poll(): " + std::string(std::strerror(errno)));
    if (ready <= 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    handlers.emplace_back(serve_connection, fd, std::ref(service));
  }
  for (std::thread& t : handlers) t.join();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions options;
  std::optional<std::string> socket_path;
  std::string arch_name = "kepler";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_help();
      return 0;
    }
    if (std::strcmp(arg, "--train-overlap") == 0) {
      options.train_overlap = true;
    } else if (const char* v = flag_value(arg, "--socket", argc, argv, &i)) {
      socket_path = v;
    } else if (const char* v = flag_value(arg, "--arch", argc, argv, &i)) {
      arch_name = v;
    } else if (const char* v = flag_value(arg, "--threads", argc, argv, &i)) {
      options.num_threads = static_cast<int>(parse_size(v, "--threads"));
    } else if (const char* v =
                   flag_value(arg, "--kernel-cache", argc, argv, &i)) {
      options.kernel_cache_capacity = parse_size(v, "--kernel-cache");
    } else if (const char* v =
                   flag_value(arg, "--prediction-cache", argc, argv, &i)) {
      options.prediction_cache_capacity = parse_size(v, "--prediction-cache");
    } else if (const char* v =
                   flag_value(arg, "--max-inflight", argc, argv, &i)) {
      options.max_inflight = parse_size(v, "--max-inflight");
    } else {
      die(std::string("unexpected argument '") + arg + "' (--help lists "
          "the flags)");
    }
  }
  const GpuArch* arch = nullptr;
  if (arch_name == "kepler") arch = &kepler_arch();
  else if (arch_name == "fermi") arch = &fermi_arch();
  else
    die("unknown --arch '" + arch_name + "': expected kepler or fermi");

  if (options.train_overlap)
    std::fprintf(stderr,
                 "gpuhms_serve: training the T_overlap model "
                 "(--train-overlap)...\n");
  serve::PredictionService service(options, *arch);

  if (socket_path) return run_socket_server(*socket_path, service);
  // Unsynced iostreams so rdbuf()->in_avail() sees buffered request lines —
  // that's what lets run_stdio_loop coalesce piped same-kernel predicts.
  std::ios::sync_with_stdio(false);
  std::cin.tie(nullptr);
  serve::run_stdio_loop(std::cin, std::cout, service);
  return 0;
}
