// CLI runner: simulate and/or predict any registered benchmark under any
// placement given on the command line — the "downstream user" entry point.
//
// Usage:
//   run_benchmark <name>                      # list arrays + legal spaces
//   run_benchmark <name> <placement>          # simulate, e.g. "G,S,T"
//   run_benchmark <name> <sample> <target>    # profile sample, predict target
//
// Placement strings use the Table IV codes (G, S, C, T, 2T), one per array
// in declaration order.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "model/predictor.hpp"
#include "workloads/workloads.hpp"

using namespace gpuhms;

namespace {

std::optional<DataPlacement> parse_placement(const KernelInfo& k,
                                             const std::string& str) {
  auto p = DataPlacement::from_string(k, str);
  if (!p) {
    std::fprintf(stderr,
                 "bad placement '%s' (expected %zu comma-separated codes "
                 "from G,S,C,T,2T)\n", str.c_str(), k.arrays.size());
    return std::nullopt;
  }
  if (const auto err = validate_placement(k, *p, kepler_arch())) {
    std::fprintf(stderr, "illegal placement: %s\n", err->c_str());
    return std::nullopt;
  }
  return p;
}

void describe(const workloads::BenchmarkCase& c) {
  std::printf("%s: %lld blocks x %d threads, arrays:\n", c.name.c_str(),
              static_cast<long long>(c.kernel.num_blocks),
              c.kernel.threads_per_block);
  for (std::size_t i = 0; i < c.kernel.arrays.size(); ++i) {
    const auto& a = c.kernel.arrays[i];
    std::printf("  [%zu] %-24s %8zu x %s%s  default=%s  legal:",
                i, a.name.c_str(), a.elems,
                std::string(to_string(a.dtype)).c_str(),
                a.written ? " (written)" : "",
                std::string(short_code(a.default_space)).c_str());
    for (MemSpace s :
         legal_spaces(c.kernel, static_cast<int>(i), kepler_arch())) {
      std::printf(" %s", std::string(short_code(s)).c_str());
    }
    std::printf("\n");
  }
  std::printf("placement tests from the paper:\n");
  for (const auto& t : c.tests) {
    std::printf("  %-14s %s -> %s\n", t.id.c_str(), t.description.c_str(),
                t.placement.to_string().c_str());
  }
}

void report(const char* tag, const SimResult& r) {
  const auto& c = r.counters;
  std::printf("%s: %llu cycles\n", tag,
              static_cast<unsigned long long>(r.cycles));
  std::printf("  inst executed/issued     %12llu / %llu (replays %llu)\n",
              static_cast<unsigned long long>(c.inst_executed),
              static_cast<unsigned long long>(c.inst_issued),
              static_cast<unsigned long long>(c.replays_total()));
  std::printf("  L2 transactions/misses   %12llu / %llu\n",
              static_cast<unsigned long long>(c.l2_transactions),
              static_cast<unsigned long long>(c.l2_misses));
  std::printf("  DRAM requests             %12llu (row hit/miss/conflict "
              "%llu/%llu/%llu)\n",
              static_cast<unsigned long long>(c.dram_requests),
              static_cast<unsigned long long>(r.dram.row_hits()),
              static_cast<unsigned long long>(r.dram.row_misses()),
              static_cast<unsigned long long>(r.dram.row_conflicts()));
  std::printf("  avg DRAM latency          %12.0f (queue %0.f)\n",
              r.dram.avg_latency(), r.dram.avg_queue_delay());
  std::printf("  shared requests/conflicts %12llu / %llu\n",
              static_cast<unsigned long long>(c.shared_requests),
              static_cast<unsigned long long>(c.shared_bank_conflicts));
}

}  // namespace

int main(int argc, char** argv) {
  const bool help =
      argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0);
  if (argc < 2 || help) {
    std::fprintf(help ? stdout : stderr,
                 "usage: %s <benchmark> [placement] [target-placement]\n"
                 "  <benchmark> alone lists its arrays + legal spaces;\n"
                 "  one placement simulates it; two placements profile the\n"
                 "  first as the sample and predict the second.\n"
                 "  Placements use Table IV codes (G,S,C,T,2T), one per\n"
                 "  array in declaration order, e.g. \"G,S,T\".\n"
                 "benchmarks: bfs fft neuralnet reduction scan sort stencil2d"
                 " md5hash s3d convolution md matrixmul spmv transpose cfd"
                 " triad qtc\n", argv[0]);
    return help ? 0 : 2;
  }
  const auto bench = workloads::get_benchmark(argv[1]);
  if (argc == 2) {
    describe(bench);
    return 0;
  }

  const auto sample = parse_placement(bench.kernel, argv[2]);
  if (!sample) return 2;
  const SimResult r = simulate(bench.kernel, *sample);
  report(("simulated " + sample->to_string()).c_str(), r);

  if (argc >= 4) {
    const auto target = parse_placement(bench.kernel, argv[3]);
    if (!target) return 2;
    Predictor pred(bench.kernel, kepler_arch());
    pred.set_sample(*sample, r);
    const Prediction p = pred.predict(*target);
    const SimResult rt = simulate(bench.kernel, *target);
    std::printf("\npredicted %s from sample %s: %.0f cycles "
                "(T_comp %.0f, T_mem %.0f, T_overlap %.0f)\n",
                target->to_string().c_str(), sample->to_string().c_str(),
                p.total_cycles, p.t_comp, p.t_mem, p.t_overlap);
    report(("simulated " + target->to_string()).c_str(), rt);
    std::printf("\nprediction / measured = %.3f (untrained overlap model; "
                "see examples/overlap_training)\n",
                p.total_cycles / static_cast<double>(rt.cycles));
  }
  return 0;
}
