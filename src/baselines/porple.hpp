// Baseline: PORPLE's memory-latency-oriented placement model (Chen et al.,
// MICRO'14 [4]). PORPLE ranks data placements by an aggregate memory access
// cost — per-space request counts weighted by per-space latencies — without
// modeling computation cost, instruction replays, queuing delay, shared-
// memory bank conflicts, or the staging copy. Fig. 6 of the paper shows this
// mis-ranks placements (notably the shared-memory one); we reproduce that
// comparison.
#pragma once

#include "kernel/placement.hpp"
#include "model/trace_analysis.hpp"

namespace gpuhms {

// PORPLE-style memory cost (lower = predicted faster). Only meaningful for
// ranking placements of one kernel, not as an execution-time estimate.
double porple_cost(const PlacementEvents& ev, const GpuArch& arch);

// Convenience: analyze + score.
double porple_cost(const KernelInfo& kernel, const DataPlacement& placement,
                   const GpuArch& arch);

}  // namespace gpuhms
