#include "baselines/hong_kim.hpp"

#include <algorithm>

namespace gpuhms {

double hong_kim_cycles(const HongKimInputs& in) {
  const double n = std::max(1.0, in.n_warps);
  const double mem_insts = std::max(0.0, in.mem_insts_per_warp);
  if (mem_insts < 1e-9) {
    // Pure compute: warps execute back to back on the SM.
    return in.comp_cycles_per_warp * n;
  }
  const double comp_per_period = in.comp_cycles_per_warp / mem_insts;
  const double mwp = std::max(1.0, in.mwp);
  const double cwp = std::max(1.0, in.cwp);

  if (n < mwp && n < cwp) {
    // Not enough warps to hide anything: latency fully exposed per period.
    return mem_insts * (in.mem_lat + comp_per_period * n);
  }
  if (cwp >= mwp) {
    // Memory bound: the memory system is the bottleneck; requests of the N
    // warps are serviced MWP at a time.
    return mem_insts * in.mem_lat * n / mwp +
           comp_per_period * (mwp - 1.0);
  }
  // Compute bound: computation of N warps covers the memory latency except
  // for the first exposed period.
  return in.comp_cycles_per_warp * n + in.mem_lat;
}

}  // namespace gpuhms
