#include "baselines/sim2012.hpp"

#include <algorithm>

#include "baselines/hong_kim.hpp"
#include "common/check.hpp"

namespace gpuhms {

Sim2012Predictor::Sim2012Predictor(const KernelInfo& kernel,
                                   const GpuArch& arch, bool anchor_to_sample)
    : kernel_(&kernel), arch_(&arch), anchor_(anchor_to_sample) {}

void Sim2012Predictor::profile_sample(const DataPlacement& sample) {
  set_sample(sample, simulate(*kernel_, sample, *arch_));
}

void Sim2012Predictor::set_sample(const DataPlacement& sample,
                                  const SimResult& measured) {
  sample_ = sample;
  sample_result_ = measured;
  sample_ev_ = analyze_trace(*kernel_, sample, *arch_, AnalysisOptions{});
  anchor_scale_.reset();
}

const SimResult& Sim2012Predictor::sample_result() const {
  GPUHMS_CHECK(sample_result_.has_value());
  return *sample_result_;
}

Prediction Sim2012Predictor::predict_from_events(
    const PlacementEvents& target_ev) const {
  GPUHMS_CHECK_MSG(sample_result_.has_value(), "no sample profiled");
  const ProfileCounters& sc = sample_result_->counters;
  const double total_warps =
      static_cast<double>(std::max<std::uint64_t>(1, sc.total_warps));
  const int active_sms = std::max(1, sc.active_sms);
  const double n_warps = std::max(1.0, target_ev.warps_per_sm);

  Prediction p;
  // Executed instructions, assumed placement-invariant ([7] has no replay or
  // addressing-mode accounting).
  p.inst.executed_total = static_cast<double>(sc.inst_executed);
  p.inst.replays_total = 0.0;
  p.inst.issued_total = p.inst.executed_total;
  p.inst.issued_per_warp = p.inst.issued_total / total_warps;

  // T_mem with the constant-latency assumption.
  TmemInputs tin;
  tin.events = &target_ev;
  tin.total_warps = total_warps;
  tin.active_sms = active_sms;
  tin.n_warps_per_sm = n_warps;
  tin.issued_per_warp = p.inst.issued_per_warp;
  tin.tick_to_cycles = 1.0;  // unused without the queuing model
  TmemOptions topts;
  topts.queuing_model = false;
  topts.row_buffer_model = false;  // fixed microbenchmark latency
  const TmemResult tm = tmem(tin, *arch_, topts);
  p.t_mem = tm.t_mem;
  p.amat = tm.amat;
  p.dram_lat = tm.dram_lat;

  TcompInputs cin;
  cin.inst = p.inst;
  cin.total_warps = total_warps;
  cin.active_sms = active_sms;
  const double itilp_max = static_cast<double>(arch_->avg_inst_lat);
  cin.itilp = std::max(1.0, std::min(target_ev.ilp * n_warps, itilp_max));
  p.t_comp = tcomp(cin, *arch_);

  // Overlap via the MWP/CWP case analysis.
  WarpParallelismInputs win;
  win.n_warps = n_warps;
  win.issued_per_warp = p.inst.issued_per_warp;
  win.mem_insts_per_warp =
      static_cast<double>(target_ev.mem_insts) / total_warps;
  win.transactions_per_mem =
      (target_ev.offchip_transactions() +
       static_cast<double>(target_ev.shared_requests)) /
      std::max(1.0, static_cast<double>(target_ev.mem_insts));
  win.mem_lat = tm.amat;
  win.mlp = target_ev.mlp;
  win.ilp = target_ev.ilp;
  win.unloaded_service = static_cast<double>(arch_->dram.row_miss_service);
  win.dram_per_mem =
      static_cast<double>(target_ev.dram_load_requests) /
      std::max(1.0, static_cast<double>(target_ev.load_insts));
  win.active_sms = active_sms;
  win.total_banks = arch_->total_banks();
  const WarpParallelism wp = compute_warp_parallelism(win, *arch_);

  HongKimInputs hin;
  hin.comp_cycles_per_warp = p.t_comp * active_sms / total_warps;
  hin.mem_insts_per_warp = win.mem_insts_per_warp;
  hin.mem_lat = tm.amat;
  hin.n_warps = n_warps;
  hin.mwp = wp.mwp;
  hin.cwp = wp.cwp;
  const double per_sm_warps = total_warps / active_sms;
  const double t_hk = hong_kim_cycles(hin) * per_sm_warps / n_warps;

  p.raw_cycles = std::clamp(t_hk, std::max(p.t_comp, p.t_mem),
                            p.t_comp + p.t_mem);
  p.t_overlap = p.t_comp + p.t_mem - p.raw_cycles;
  p.overlap_ratio = p.t_mem > 0.0 ? p.t_overlap / p.t_mem : 0.0;
  p.total_cycles = p.raw_cycles;
  return p;
}

Prediction Sim2012Predictor::predict(const DataPlacement& target) const {
  const PlacementEvents target_ev =
      analyze_trace(*kernel_, target, *arch_, AnalysisOptions{});
  Prediction p = predict_from_events(target_ev);
  if (anchor_) {
    if (!anchor_scale_.has_value()) {
      const Prediction self = predict_from_events(*sample_ev_);
      anchor_scale_ = static_cast<double>(sample_result_->cycles) /
                      std::max(1.0, self.raw_cycles);
    }
    p.total_cycles = p.raw_cycles * *anchor_scale_;
  }
  return p;
}

}  // namespace gpuhms
