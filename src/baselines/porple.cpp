#include "baselines/porple.hpp"

#include <algorithm>

namespace gpuhms {

double porple_cost(const PlacementEvents& ev, const GpuArch& arch) {
  const double dram_const = static_cast<double>(arch.dram.row_miss_service) +
                            static_cast<double>(arch.dram.pipeline_lat);
  const double hit = static_cast<double>(arch.cache_hit_lat);
  const double l2_miss_ratio =
      ev.l2_transactions
          ? static_cast<double>(ev.l2_misses) /
                static_cast<double>(ev.l2_transactions)
          : 0.0;

  // Off-chip spaces: every transaction pays its first cache's latency; the
  // ones missing into L2 pay the (constant) DRAM latency weighted by the
  // aggregate L2 miss ratio.
  const double global_cost =
      static_cast<double>(ev.global_transactions) *
      (hit + l2_miss_ratio * dram_const);
  const double tex_cost =
      static_cast<double>(ev.tex_transactions) *
          static_cast<double>(arch.tex_cache_hit_lat) +
      static_cast<double>(ev.tex_misses) * (hit + l2_miss_ratio * dram_const);
  const double const_cost =
      static_cast<double>(ev.const_requests) *
          static_cast<double>(arch.const_cache_hit_lat) +
      static_cast<double>(ev.const_misses) *
          (hit + l2_miss_ratio * dram_const);
  // Shared memory: flat latency, no bank-conflict serialization and no
  // staging copy — PORPLE's blind spot the paper highlights (NN_S).
  const double shared_cost = static_cast<double>(ev.shared_requests) *
                             static_cast<double>(arch.shared_lat);

  return global_cost + tex_cost + const_cost + shared_cost;
}

double porple_cost(const KernelInfo& kernel, const DataPlacement& placement,
                   const GpuArch& arch) {
  // PORPLE has no bank-conflict or staging model; analyze with defaults and
  // score only the events its model understands.
  const PlacementEvents ev =
      analyze_trace(kernel, placement, arch, AnalysisOptions{});
  return porple_cost(ev, arch);
}

}  // namespace gpuhms
