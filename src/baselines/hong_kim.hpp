// Hong & Kim's analytical GPU execution-time model (ISCA'09 [6]): MWP/CWP
// case analysis. Used directly as a baseline and as the overlap formulation
// inside the Sim et al. [7] baseline (the paper notes [7] uses the CWP/MWP
// formulation where our model uses the trained Eq. 11).
#pragma once

#include "arch/gpu_arch.hpp"
#include "model/warp_parallelism.hpp"

namespace gpuhms {

struct HongKimInputs {
  double comp_cycles_per_warp = 0.0;  // non-memory execution cycles per warp
  double mem_insts_per_warp = 0.0;    // memory requests per warp
  double mem_lat = 1.0;               // average latency per request
  double n_warps = 1.0;               // resident warps per SM
  double mwp = 1.0;
  double cwp = 1.0;
};

// Per-SM execution cycles under the MWP/CWP case analysis.
double hong_kim_cycles(const HongKimInputs& in);

}  // namespace gpuhms
