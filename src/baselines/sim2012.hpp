// Baseline: Sim et al., "A Performance Analysis Framework for Identifying
// Potential Benefits in GPGPU Applications" (PPoPP'12 [7]) — the model our
// work extends. Differences to our model (exactly the ones Sec. V evaluates):
//   * uses *executed* instructions, assumed unchanged across placements
//     (no instruction-replay or addressing-mode accounting),
//   * assumes a constant off-chip DRAM access latency (microbenchmark value,
//     no queuing, no row-buffer variation),
//   * computes the computation/memory overlap with the MWP/CWP case analysis
//     of Hong & Kim instead of the trained event model.
// It shares the cache models (Sim et al. model cache effects) and the same
// sample anchoring, so the comparison isolates the modeling differences.
#pragma once

#include "model/predictor.hpp"

namespace gpuhms {

class Sim2012Predictor {
 public:
  Sim2012Predictor(const KernelInfo& kernel, const GpuArch& arch,
                   bool anchor_to_sample = true);

  void profile_sample(const DataPlacement& sample);
  void set_sample(const DataPlacement& sample, const SimResult& measured);
  Prediction predict(const DataPlacement& target) const;
  const SimResult& sample_result() const;

 private:
  Prediction predict_from_events(const PlacementEvents& target_ev) const;

  const KernelInfo* kernel_;
  const GpuArch* arch_;
  bool anchor_;
  std::optional<DataPlacement> sample_;
  std::optional<SimResult> sample_result_;
  std::optional<PlacementEvents> sample_ev_;
  mutable std::optional<double> anchor_scale_;
};

}  // namespace gpuhms
