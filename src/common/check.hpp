// Lightweight runtime checking used across gpuhms.
//
// GPUHMS_CHECK aborts with a message on violation; it is kept enabled in all
// build types because the library is a research tool where silent state
// corruption is far more expensive than the branch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gpuhms {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "gpuhms: check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg && msg[0] ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace gpuhms

#define GPUHMS_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr)) ::gpuhms::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GPUHMS_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) ::gpuhms::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
