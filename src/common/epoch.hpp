// Epoch-based memory reclamation for read-mostly concurrent structures.
//
// The serving layer's sharded cache (common/concurrent_cache.hpp) lets
// readers probe its tables without taking any lock; the writer that evicts
// or replaces an entry therefore cannot free the old node immediately — a
// reader may still be copying its value out. epoch::Domain is the classic
// three-epoch deferred-reclamation protocol (Fraser-style, the scheme the
// ROADMAP's libttak epoch.c exemplar implements) packaged per structure:
//
//   * Readers pin() before touching shared nodes and let the returned Guard
//     unpin on scope exit. Pinning claims one of kSlots cache-line-padded
//     slots and publishes the current global epoch there; the claim is a
//     single CAS (lock-free; it retries only against other threads grabbing
//     the same slot or a concurrent epoch advance, never against a lock
//     holder — readers never block on eviction).
//   * Writers retire() unlinked nodes instead of deleting them, holding a
//     pin of their own across the unlink *and* the retire (the cache's
//     put()/clear() hold one Guard over both). Each retired node is tagged
//     with the global epoch at retire time and parked in a limbo list; the
//     writer's pin caps the global epoch at pin+1 for the duration, so the
//     tag can never lag the writer's pin epoch.
//   * collect() (called opportunistically by writers, and by tests) tries to
//     advance the global epoch — legal only when every pinned slot has
//     caught up to it (a slot may equal the current epoch, but never lag
//     it) — and then frees limbo nodes whose tag is at least THREE epochs
//     behind. Three epochs is the grace period that makes this safe: for
//     the global epoch to have reached a reader's pin epoch e, every writer
//     pinned at <= e-2 had to unpin first, and that unpin/slot-scan edge
//     publishes those writers' unlinks to every later pin — so a reader
//     pinned at e can hold a stale reference only to a node unlinked by a
//     writer pinned at e-1 or later. Such a node's tag is >= e-1, freeing
//     it needs the global epoch to reach (e-1)+3 = e+2, and the pinned
//     reader blocks any advance past e+1. See DESIGN §14 for the full
//     argument.
//
// All epoch bookkeeping uses seq_cst atomics: the pin loop's store-then-
// verify and the collector's slot scan form the happens-before edges that
// make the deferred frees race-free (ThreadSanitizer sees the same edges,
// so the TSan battery genuinely checks this protocol, not a suppression).
//
// A Domain supports at most kSlots concurrently pinned guards; pin() spins
// (yielding) when all slots are claimed. Guards are short (one cache probe),
// so with the default 64 slots this is unreachable below 64 simultaneous
// reader threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gpuhms::epoch {

class Domain {
 public:
  static constexpr int kSlots = 64;
  // Slot value meaning "no reader here"; real epochs start at 2 and only
  // ever grow, so 0 is never a legal pinned epoch.
  static constexpr std::uint64_t kIdle = 0;

  Domain() = default;
  // Precondition: no guard is live and no concurrent retire/collect runs.
  // Frees everything still in limbo, epoch tags ignored.
  ~Domain();

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  // RAII pin: the domain will not free any node retired at or after the
  // epoch this guard observed until the guard is destroyed.
  class Guard {
   public:
    Guard(Guard&& other) noexcept : slot_(other.slot_) {
      other.slot_ = nullptr;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard();

   private:
    friend class Domain;
    explicit Guard(std::atomic<std::uint64_t>* slot) : slot_(slot) {}
    std::atomic<std::uint64_t>* slot_;
  };

  Guard pin();

  // Hand `p` to the domain; `deleter(p)` runs once no reader pinned at
  // retire time can still hold it. Thread-safe against everything except
  // the destructor. Contract: a caller that unlinked `p` from a structure
  // readers still traverse must hold a Guard across the unlink and this
  // call — that is what bounds how far the tag can lag the unlink's
  // visibility (see the grace-period argument above).
  void retire(void* p, void (*deleter)(void*));

  // Try to advance the epoch and free quiescent limbo nodes. Returns the
  // number of nodes freed. Deleters run after the domain's limbo mutex is
  // released, so a slow value destructor never stalls concurrent
  // retire()/collect() callers. Safe to call from any thread at any time;
  // a pinned guard (including the caller's own) simply bounds what can be
  // freed. Three collect() calls after the last guard dropped are always
  // enough to drain every retired node (each call advances at most one
  // epoch; a node needs its tag + 3 <= global).
  std::size_t collect();

  // Nodes retired but not yet freed (test/introspection hook). Lock-free
  // atomic read: exact at quiescence, a point-in-time approximation while
  // retires/collects are in flight.
  std::size_t limbo_size() const;

  // Current global epoch (test hook; starts at 2, monotone).
  std::uint64_t global_epoch() const {
    return global_.load(std::memory_order_seq_cst);
  }

 private:
  struct Retired {
    void* p;
    void (*deleter)(void*);
    std::uint64_t tag;
  };
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
  };

  // Advance global by one iff every pinned slot already equals it.
  bool try_advance();

  std::atomic<std::uint64_t> global_{2};
  Slot slots_[kSlots];
  mutable std::mutex limbo_mu_;
  std::vector<Retired> limbo_;
  // Mirrors limbo_.size() (updated under limbo_mu_) so limbo_size() — the
  // check writers use to amortize collect() — never touches the mutex.
  std::atomic<std::size_t> limbo_count_{0};
};

}  // namespace gpuhms::epoch
