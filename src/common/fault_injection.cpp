#include "common/fault_injection.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace gpuhms::fault {

namespace {

struct Site {
  std::uint64_t nth = 0;   // fire when hits reaches this (0 = disarmed)
  std::uint64_t hits = 0;
  bool fired = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site, std::less<>> sites;
  // Number of armed-and-not-yet-fired sites; mirrored into `any_armed` so
  // GPUHMS_FAULT_POINT is one relaxed load when nothing is armed.
  int armed_count = 0;
  std::atomic<bool> any_armed{false};

  void recount_locked() {
    armed_count = 0;
    for (const auto& [name, s] : sites)
      if (s.nth != 0 && !s.fired) ++armed_count;
    any_armed.store(armed_count > 0, std::memory_order_relaxed);
  }
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: sites may fire during exit
  return *r;
}

std::once_flag env_once;

void parse_env() {
  if (const char* env = std::getenv("GPUHMS_FAULT")) {
    if (!arm_from_spec(env))
      std::fprintf(stderr,
                   "gpuhms: ignoring malformed GPUHMS_FAULT='%s' "
                   "(expected <site>:<nth>[,<site>:<nth>...])\n",
                   env);
  }
}

}  // namespace

void arm(std::string_view site, std::uint64_t nth) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  Site& s = r.sites[std::string(site)];
  s.nth = nth == 0 ? 1 : nth;
  s.hits = 0;
  s.fired = false;
  r.recount_locked();
}

void disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (auto it = r.sites.find(site); it != r.sites.end()) {
    r.sites.erase(it);
    r.recount_locked();
  }
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites.clear();
  r.recount_locked();
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

bool enabled() {
  std::call_once(env_once, parse_env);
  return registry().any_armed.load(std::memory_order_relaxed);
}

bool should_fire(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  if (s.nth == 0 || s.fired) return false;
  ++s.hits;
  if (s.hits != s.nth) return false;
  s.fired = true;
  r.recount_locked();
  return true;
}

std::span<const std::string_view> known_sites() {
  // Keep in lockstep with the site list in the header comment; the chaos
  // harness cross-checks this against its per-site scenario table.
  static constexpr std::string_view kSites[] = {
      "trace.lower",    "serialize.read", "serialize.write",
      "queuing.nan",    "queuing.saturate", "pool.task",
      "serve.parse",    "serve.accept",   "arena.alloc",
      "journal.write",  "journal.read",
  };
  return kSites;
}

bool arm_from_spec(std::string_view spec) {
  // Validate the whole spec before arming anything: a half-armed malformed
  // spec would fire an unpredictable subset.
  struct Parsed {
    std::string site;
    std::uint64_t nth;
  };
  std::vector<Parsed> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos : comma - pos);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == entry.size())
      return false;
    const std::string_view site = entry.substr(0, colon);
    const std::string_view num = entry.substr(colon + 1);
    std::uint64_t nth = 0;
    for (char c : num) {
      if (c < '0' || c > '9') return false;
      nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (nth == 0) return false;
    parsed.push_back({std::string(site), nth});
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (parsed.empty()) return false;
  for (const Parsed& p : parsed) arm(p.site, p.nth);
  return true;
}

}  // namespace gpuhms::fault
