#include "common/concurrent_cache.hpp"

#include <algorithm>
#include <cstdlib>

namespace gpuhms {

// Largest power of two <= min(kMaxShards, capacity / kMinShardCap), floor 1:
// every shard owns at least kMinShardCap entries before the cache fans out
// to another shard, so the CLOCK approximation never degenerates into
// per-shard capacity 1 (where a hash collision would evict a hot entry even
// with the rest of the cache empty). 16 shards saturate the design point —
// the serve prediction cache (4096) gets 16 x 256, the kernel cache (16)
// gets 2 x 8.
std::size_t concurrent_cache_shards(std::size_t capacity) {
  constexpr std::size_t kMaxShards = 16;
  constexpr std::size_t kMinShardCap = 8;
  const std::size_t ceiling =
      std::min(kMaxShards, std::max<std::size_t>(1, capacity / kMinShardCap));
  std::size_t shards = 1;
  while (shards * 2 <= ceiling) shards *= 2;
  return shards;
}

// splitmix64 finalizer: full-avalanche mix so shard selection (high bits)
// and probe start (low bits) are independent even for identity std::hash.
std::uint64_t concurrent_cache_mix(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

CacheBackend cache_backend_from_env() {
  const char* v = std::getenv("GPUHMS_LEGACY_CACHE");
  const bool legacy =
      v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
  return legacy ? CacheBackend::kLegacyLru : CacheBackend::kSharded;
}

const char* to_string(CacheBackend backend) {
  return backend == CacheBackend::kLegacyLru ? "legacy_lru" : "sharded";
}

}  // namespace gpuhms
