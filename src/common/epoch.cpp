#include "common/epoch.hpp"

#include <functional>
#include <thread>

namespace gpuhms::epoch {

Domain::~Domain() {
  // Caller guarantees quiescence; tags are irrelevant now.
  for (const Retired& r : limbo_) r.deleter(r.p);
  limbo_.clear();
}

Domain::Guard::~Guard() {
  if (slot_ != nullptr) slot_->store(Domain::kIdle, std::memory_order_seq_cst);
}

Domain::Guard Domain::pin() {
  // Claim a slot, then publish the current epoch and verify it did not move
  // while the store was in flight. The verify loop is what lets collect()
  // trust a scan: once it exits, either the collector saw this slot pinned
  // at the current epoch, or the pin happened entirely after the advance —
  // both keep the three-epoch grace argument intact.
  const std::uint64_t tid_seed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (int spin = 0;; ++spin) {
    for (int i = 0; i < kSlots; ++i) {
      Slot& slot = slots_[(tid_seed + static_cast<std::uint64_t>(i)) %
                          static_cast<std::uint64_t>(kSlots)];
      std::uint64_t idle = kIdle;
      std::uint64_t e = global_.load(std::memory_order_seq_cst);
      if (!slot.epoch.compare_exchange_strong(idle, e,
                                              std::memory_order_seq_cst))
        continue;  // someone else holds this slot
      for (;;) {
        const std::uint64_t g = global_.load(std::memory_order_seq_cst);
        if (g == e) return Guard(&slot.epoch);
        e = g;
        slot.epoch.store(e, std::memory_order_seq_cst);
      }
    }
    // All kSlots claimed: more concurrent readers than slots. Guards are
    // probe-length critical sections, so yield and retry.
    std::this_thread::yield();
    (void)spin;
  }
}

void Domain::retire(void* p, void (*deleter)(void*)) {
  const std::uint64_t tag = global_.load(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(limbo_mu_);
  limbo_.push_back({p, deleter, tag});
  limbo_count_.store(limbo_.size(), std::memory_order_relaxed);
}

bool Domain::try_advance() {
  const std::uint64_t g = global_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e != g) return false;  // a reader lags: no advance
  }
  std::uint64_t expected = g;
  global_.compare_exchange_strong(expected, g + 1,
                                  std::memory_order_seq_cst);
  return true;
}

std::size_t Domain::collect() {
  (void)try_advance();
  // Move the quiescent entries out under the lock, run their deleters
  // after releasing it: a slow destructor must not stall other writers'
  // retire()/collect() calls on the domain-wide mutex. Concurrent collects
  // move disjoint sets out, so no node can be freed twice.
  std::vector<Retired> ready;
  {
    std::lock_guard<std::mutex> lock(limbo_mu_);
    if (limbo_.empty()) return 0;
    const std::uint64_t g = global_.load(std::memory_order_seq_cst);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < limbo_.size(); ++i) {
      if (limbo_[i].tag + 3 <= g) {
        ready.push_back(limbo_[i]);
      } else {
        limbo_[keep++] = limbo_[i];
      }
    }
    limbo_.resize(keep);
    limbo_count_.store(keep, std::memory_order_relaxed);
  }
  for (const Retired& r : ready) r.deleter(r.p);
  return ready.size();
}

std::size_t Domain::limbo_size() const {
  return limbo_count_.load(std::memory_order_relaxed);
}

}  // namespace gpuhms::epoch
