// Statistics helpers used by the queuing model (coefficients of variation),
// the event selector (cosine similarity, Sec. II-B of the paper), and the
// evaluation harnesses (error summaries, histograms for Fig. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpuhms {

// Single-pass accumulator for mean / variance (Welford). Suitable for the
// long per-bank inter-arrival streams where storing samples is wasteful.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Population variance/stddev: the queuing model treats the observed request
  // stream as the full population of the kernel run, not a sample.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  // Coefficient of variation sigma/mean; 0 when mean == 0.
  double cov() const;
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

// Cosine similarity of two equal-length vectors, in [-1, 1]; for the
// non-negative event/time vectors of Sec. II-B the range is [0, 1].
// Returns 0 if either vector is all zeros.
double cosine_similarity(std::span<const double> a, std::span<const double> b);

// Pearson correlation, used in tests as a cross-check on event selection.
double pearson(std::span<const double> a, std::span<const double> b);

// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
// Used to grade placement *orderings*: a model that mispredicts absolute
// times but ranks placements correctly is still a perfect advisor.
double spearman(std::span<const double> a, std::span<const double> b);

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// edge bins. Used to reproduce the Fig. 4 inter-arrival distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::size_t count(std::size_t i) const { return counts_[i]; }
  std::size_t total() const { return total_; }
  // Fraction of samples in bin i (0 if empty histogram).
  double density(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Probability mass an exponential distribution with the given mean places on
// [lo, hi); reference curve for Fig. 4.
double exponential_bin_mass(double mean, double lo, double hi);

}  // namespace gpuhms
