// Sharded, open-addressing concurrent cache with wait-free reads.
//
// The serve warm path is where millions-of-users traffic lives, and under
// LruCache every one of those requests serializes on a single mutex — at
// high hit rates the lock, not the model, is the bottleneck (ROADMAP:
// "Lock-free epoch-reclaimed caches for the serve hot path"). This cache
// removes the reader lock entirely:
//
//   * The key space is split across up to kMaxShards power-of-two shards by
//     the high bits of the key hash (the serving layer's keys are already
//     FNV-1a fingerprint strings, so the hash is cheap and well mixed; a
//     final splitmix64 step protects weak std::hash specializations).
//   * Each shard is a fixed open-addressing table of atomic<Node*> slots at
//     <= 50% load. get() probes linearly with acquire loads, compares the
//     stored 64-bit hash then the key, and copies the value out — no lock,
//     no CAS, no retry loop: a bounded probe, wait-free.
//   * Writers (put) take one per-shard mutex, so two shards never contend
//     and readers never wait for a writer. Replaced and evicted nodes are
//     retired to a per-cache epoch::Domain (common/epoch.hpp) instead of
//     freed, so a reader mid-copy never sees its node die.
//   * Eviction is CLOCK (second-chance): every node carries a reference bit
//     that get() sets; the shard's clock hand clears bits until it finds a
//     node with the bit already clear and evicts that. This approximates
//     LRU without the recency list that forced LruCache to take a lock on
//     *reads*. Evicted slots become tombstones (probe chains stay intact);
//     inserts reuse the first tombstone on their probe path, so tombstones
//     never exceed the table and probes stay bounded.
//
// Semantics preserved from LruCache (the contract test_concurrent_cache.cpp
// diffs): capacity is a hard bound enforced per shard (the per-shard caps
// sum to exactly `capacity`, so the global bound holds at every observation
// point); capacity 0 disables the cache; put() of an existing key replaces
// the value (an update, not an insert); get() returns a copy. What changes
// is only the eviction *choice* — CLOCK may keep a different entry than
// strict LRU. The serving layer's responses are derived from deterministic
// predictions, so a different eviction victim can change hit counts but
// never a single response byte (DESIGN §14).
//
// Stats are per-shard atomics, with the reader-hot hit/miss pair and the
// writer-side insert/update/eviction group each padded onto their own
// cache line; stats() sums them with a per-counter atomic read, so every
// counter in a snapshot is monotone across repeated snapshots (C++
// read-read coherence) — the property the serve metrics verb promises and
// test_serve_soak's monotonicity regression locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/epoch.hpp"
#include "common/lru_cache.hpp"

namespace gpuhms {

// Backend-independent counter snapshot shared by both cache implementations
// (LruCache::Stats is the legacy spelling; BoundedCache converts).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t evictions = 0;
};

// Shard-count / table-geometry policy, exposed for tests and DESIGN §14:
// the largest power of two <= min(kMaxShards, capacity / kMinShardCap), at
// least 1 — so a shard always owns >= kMinShardCap entries (8) and the
// CLOCK approximation has room to breathe before sharding fans out.
std::size_t concurrent_cache_shards(std::size_t capacity);

// Final mixing step applied to the Hash functor's result; splitmix64's
// finalizer, so identity std::hash<int> still spreads across shards.
std::uint64_t concurrent_cache_mix(std::uint64_t h);

// GPUHMS_LEGACY_CACHE=1 selects the mutex-guarded LruCache backend
// process-wide (the differential escape hatch, same spelling as
// GPUHMS_LEGACY_REPLAY; "" and "0" leave the sharded cache on).
enum class CacheBackend { kSharded, kLegacyLru };
CacheBackend cache_backend_from_env();
const char* to_string(CacheBackend backend);

template <typename K, typename V, typename Hash = std::hash<K>>
class ConcurrentCache {
 public:
  explicit ConcurrentCache(std::size_t capacity)
      : capacity_(capacity), shards_(concurrent_cache_shards(capacity)) {
    shard_storage_.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      const std::size_t cap =
          capacity / shards_ + (s < capacity % shards_ ? 1 : 0);
      shard_storage_.push_back(std::make_unique<Shard>(cap));
    }
  }

  ~ConcurrentCache() {
    // Precondition (same as any destructor): no concurrent access. Nodes
    // still in the tables are freed directly; limbo drains via ~Domain.
    for (auto& shard : shard_storage_)
      for (auto& slot : shard->slots) {
        Node* n = slot.load(std::memory_order_relaxed);
        if (is_node(n)) delete n;
      }
  }

  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return shards_; }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shard_storage_)
      total += shard->count.load(std::memory_order_acquire);
    return total;
  }

  // Wait-free: one bounded probe of the key's shard, no lock, no retry.
  std::optional<V> get(const K& key) {
    if (capacity_ == 0) {
      shard_storage_[0]->reads.hits_misses[1].fetch_add(1,
                                                  std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::uint64_t h = mixed_hash(key);
    Shard& shard = *shard_storage_[shard_index(h)];
    const std::size_t mask = shard.slots.size() - 1;
    epoch::Domain::Guard guard = epoch_.pin();
    std::size_t i = probe_start(h, mask);
    for (std::size_t step = 0; step < shard.slots.size(); ++step) {
      Node* n = shard.slots[i].load(std::memory_order_acquire);
      if (n == nullptr) break;  // end of probe chain
      if (is_node(n) && n->hash == h && n->key == key) {
        n->referenced.store(1, std::memory_order_relaxed);  // CLOCK touch
        V value = n->value;  // copied under the epoch guard; node immutable
        shard.reads.hits_misses[0].fetch_add(1, std::memory_order_relaxed);
        return value;
      }
      i = (i + 1) & mask;
    }
    shard.reads.hits_misses[1].fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // Insert or replace; evicts one CLOCK victim when the shard is full. Only
  // writers take the (per-shard) lock — a put never delays a get.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    const std::uint64_t h = mixed_hash(key);
    Shard& shard = *shard_storage_[shard_index(h)];
    if (shard.cap == 0) return;  // unreachable under the sharding policy
    const std::size_t mask = shard.slots.size() - 1;
    {
      std::lock_guard<std::mutex> lock(shard.write_mu);
      // Pin across unlink + retire (epoch.hpp's retire() contract): the
      // pin caps the global epoch for the duration, so the retire tag can
      // never lag the unlink's visibility — the three-epoch grace argument
      // leans on exactly this.
      epoch::Domain::Guard guard = epoch_.pin();
      // Probe for the key, remembering the first tombstone for reuse.
      std::size_t insert_at = shard.slots.size();  // sentinel: none yet
      std::size_t i = probe_start(h, mask);
      std::size_t existing = shard.slots.size();
      for (std::size_t step = 0; step < shard.slots.size(); ++step) {
        Node* n = shard.slots[i].load(std::memory_order_relaxed);
        if (n == nullptr) {
          if (insert_at == shard.slots.size()) insert_at = i;
          break;
        }
        if (n == tombstone()) {
          if (insert_at == shard.slots.size()) insert_at = i;
        } else if (n->hash == h && n->key == key) {
          existing = i;
          break;
        }
        i = (i + 1) & mask;
      }
      if (existing != shard.slots.size()) {
        // Replace in place: publish a fresh immutable node, retire the old.
        Node* old = shard.slots[existing].load(std::memory_order_relaxed);
        Node* fresh = new Node{h, key, std::move(value)};
        shard.slots[existing].store(fresh, std::memory_order_release);
        retire_node(old);
        shard.writes.updates.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (shard.count.load(std::memory_order_relaxed) >= shard.cap) {
          const std::size_t freed = evict_clock(shard, mask);
          // The victim's tombstone may sit on our probe path earlier than
          // the slot we found; preferring it keeps chains short.
          if (insert_at == shard.slots.size()) insert_at = freed;
        }
        if (insert_at == shard.slots.size()) {
          // Table saturated with live nodes + tombstones and no eviction
          // ran (cap 0 shard): drop the insert, mirroring LruCache's
          // capacity-0 no-op.
          return;
        }
        Node* fresh = new Node{h, key, std::move(value)};
        shard.slots[insert_at].store(fresh, std::memory_order_release);
        shard.count.fetch_add(1, std::memory_order_release);
        shard.writes.inserts.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Outside the shard lock and the pin: amortized epoch maintenance.
    maybe_collect();
  }

  CacheCounters stats() const {
    CacheCounters c;
    for (const auto& shard : shard_storage_) {
      c.hits += shard->reads.hits_misses[0].load(std::memory_order_relaxed);
      c.misses += shard->reads.hits_misses[1].load(std::memory_order_relaxed);
      c.inserts += shard->writes.inserts.load(std::memory_order_relaxed);
      c.updates += shard->writes.updates.load(std::memory_order_relaxed);
      c.evictions += shard->writes.evictions.load(std::memory_order_relaxed);
    }
    return c;
  }

  void clear() {
    for (auto& shard : shard_storage_) {
      std::lock_guard<std::mutex> lock(shard->write_mu);
      // Same pin-across-unlink+retire contract as put().
      epoch::Domain::Guard guard = epoch_.pin();
      for (auto& slot : shard->slots) {
        Node* n = slot.load(std::memory_order_relaxed);
        if (is_node(n)) retire_node(n);
        slot.store(nullptr, std::memory_order_release);
      }
      shard->count.store(0, std::memory_order_release);
    }
    epoch_.collect();
  }

  // Test hooks.
  epoch::Domain& epoch_domain() { return epoch_; }
  std::size_t shard_capacity(std::size_t s) const {
    return shard_storage_[s]->cap;
  }

 private:
  struct Node {
    const std::uint64_t hash;
    const K key;
    const V value;
    // CLOCK reference bit: set on every hit, cleared by the sweeping hand.
    std::atomic<std::uint32_t> referenced{1};
  };

  struct Shard {
    explicit Shard(std::size_t cap_in) : cap(cap_in) {
      std::size_t table = 8;
      while (table < cap_in * 2) table <<= 1;  // <= 50% load factor
      slots = std::vector<std::atomic<Node*>>(table);
    }
    std::size_t cap;
    std::vector<std::atomic<Node*>> slots;
    std::mutex write_mu;
    std::size_t hand = 0;  // CLOCK position, guarded by write_mu
    std::atomic<std::size_t> count{0};
    // The reader-hot hit/miss pair and the writer-side counter group each
    // get their own cache line (both structs are 64-byte aligned AND
    // 64-byte sized), so a reader's hit update never false-shares with
    // put()'s bookkeeping — or with another shard's counters.
    struct alignas(64) ReadCounters {
      std::atomic<std::uint64_t> hits_misses[2] = {};
    };
    struct alignas(64) WriteCounters {
      std::atomic<std::uint64_t> inserts{0};
      std::atomic<std::uint64_t> updates{0};
      std::atomic<std::uint64_t> evictions{0};
    };
    ReadCounters reads;
    WriteCounters writes;
  };

  static Node* tombstone() {
    return reinterpret_cast<Node*>(static_cast<std::uintptr_t>(1));
  }
  static bool is_node(Node* n) { return n != nullptr && n != tombstone(); }

  std::uint64_t mixed_hash(const K& key) const {
    return concurrent_cache_mix(static_cast<std::uint64_t>(Hash{}(key)));
  }
  std::size_t shard_index(std::uint64_t h) const {
    // High bits pick the shard so the low-ish probe bits stay independent.
    return static_cast<std::size_t>(h >> 48) & (shards_ - 1);
  }
  static std::size_t probe_start(std::uint64_t h, std::size_t mask) {
    return static_cast<std::size_t>(h) & mask;
  }

  void retire_node(Node* n) {
    epoch_.retire(n, [](void* p) { delete static_cast<Node*>(p); });
  }

  // Amortized reclamation: collect() serializes every shard's writers on
  // the domain-wide limbo mutex, so rather than paying that on each put,
  // only the put that sees a full batch of retired nodes collects. Limbo
  // therefore carries at most ~kCollectBatch nodes per quiescent cache
  // (bounded memory), while the common put touches no global state.
  static constexpr std::size_t kCollectBatch = 64;
  void maybe_collect() {
    if (epoch_.limbo_size() >= kCollectBatch) epoch_.collect();
  }

  // CLOCK sweep under the shard lock: clear reference bits until a node
  // with the bit already clear appears; evict it, leaving a tombstone.
  // Returns the freed slot index. Terminates within two sweeps: the first
  // pass clears every bit it crosses, so the second pass finds a victim.
  std::size_t evict_clock(Shard& shard, std::size_t mask) {
    for (std::size_t step = 0; step <= 2 * shard.slots.size(); ++step) {
      const std::size_t i = shard.hand;
      shard.hand = (shard.hand + 1) & mask;
      Node* n = shard.slots[i].load(std::memory_order_relaxed);
      if (!is_node(n)) continue;
      if (n->referenced.exchange(0, std::memory_order_relaxed) == 0) {
        shard.slots[i].store(tombstone(), std::memory_order_release);
        shard.count.fetch_sub(1, std::memory_order_release);
        shard.writes.evictions.fetch_add(1, std::memory_order_relaxed);
        retire_node(n);
        return i;
      }
    }
    return shard.slots.size();  // unreachable while count > 0
  }

  const std::size_t capacity_;
  const std::size_t shards_;
  std::vector<std::unique_ptr<Shard>> shard_storage_;
  epoch::Domain epoch_;
};

// The serving layer's cache handle: one of the two backends, chosen at
// construction (ServeOptions::cache_backend, defaulted from the
// GPUHMS_LEGACY_CACHE env var). Both backends share the bounded-capacity
// contract and the CacheCounters observability surface, so the service and
// its tests are backend-agnostic — exactly what lets the differential
// battery diff them.
template <typename K, typename V, typename Hash = std::hash<K>>
class BoundedCache {
 public:
  BoundedCache(std::size_t capacity, CacheBackend backend)
      : backend_(backend) {
    if (backend_ == CacheBackend::kLegacyLru)
      legacy_ = std::make_unique<LruCache<K, V, Hash>>(capacity);
    else
      sharded_ = std::make_unique<ConcurrentCache<K, V, Hash>>(capacity);
  }

  CacheBackend backend() const { return backend_; }
  std::size_t capacity() const {
    return legacy_ ? legacy_->capacity() : sharded_->capacity();
  }
  std::size_t size() const {
    return legacy_ ? legacy_->size() : sharded_->size();
  }
  std::optional<V> get(const K& key) {
    return legacy_ ? legacy_->get(key) : sharded_->get(key);
  }
  void put(const K& key, V value) {
    if (legacy_)
      legacy_->put(key, std::move(value));
    else
      sharded_->put(key, std::move(value));
  }
  CacheCounters stats() const {
    if (!legacy_) return sharded_->stats();
    const auto s = legacy_->stats();
    return {s.hits, s.misses, s.inserts, s.updates, s.evictions};
  }

 private:
  CacheBackend backend_;
  std::unique_ptr<LruCache<K, V, Hash>> legacy_;
  std::unique_ptr<ConcurrentCache<K, V, Hash>> sharded_;
};

}  // namespace gpuhms
