// Crash-consistent append-only record journal.
//
// The durability substrate of the search checkpoint layer (model/
// search_checkpoint.*): an opaque byte file holding a sequence of
// length-prefixed, FNV-1a-checksummed records. The format and the write
// discipline are chosen so that the on-disk state after a crash (SIGKILL,
// power loss after fsync, torn final write) is ALWAYS either
//
//   * no file at all (creation is tmp-write + atomic rename: the journal
//     becomes visible only with its header already durable), or
//   * a byte prefix of the records appended so far, possibly ending in a
//     torn/corrupted partial record.
//
// read_records() validates every record against its checksum and length,
// returns the valid prefix, and reports — never propagates — a torn tail:
// the caller truncates to `valid_bytes` (a single atomic ftruncate) and
// resumes appending. Corruption is detected and logged, never UB.
//
// Layout:
//   [8-byte magic "GHMSJNL1"]
//   repeated records: [u32 LE payload length][u64 LE FNV-1a(payload)][payload]
//
// Every append is written with one write(2) call and fsync'd before
// returning, so a record either fully precedes a crash or reads as a torn
// tail — there is no state in between that read_records would accept.
//
// Fault sites (common/fault_injection.hpp): "journal.write" fails an append
// with DATA_LOSS before touching the file; "journal.read" corrupts the
// checksum check of one record during read_records, exercising the torn-tail
// path on demand.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace gpuhms::journal {

inline constexpr std::string_view kMagic = "GHMSJNL1";
// Sanity bound on a single record; a length prefix above this is corruption,
// not a record we haven't finished reading.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 28;

// Append handle over one journal file. Move-only; the destructor closes.
class Writer {
 public:
  Writer() = default;
  Writer(Writer&& other) noexcept;
  Writer& operator=(Writer&& other) noexcept;
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;
  ~Writer();

  // Creates a NEW journal at `path` (replacing any existing file) via
  // tmp-write + rename: the magic header is written and fsync'd to
  // `path + ".tmp"`, which is then atomically renamed into place — a crash
  // during creation never leaves a headerless journal visible at `path`.
  static StatusOr<Writer> create(const std::string& path);

  // Opens an existing journal for appending after its valid prefix
  // (read_records().valid_bytes). The file is first truncated to
  // `valid_bytes` — one atomic ftruncate — which repairs a torn tail.
  static StatusOr<Writer> open_for_append(const std::string& path,
                                          std::uint64_t valid_bytes);

  // Appends one checksummed record and fsyncs. DATA_LOSS on I/O failure (or
  // an armed "journal.write" fault); the journal's valid prefix is unchanged
  // on failure as far as read_records is concerned.
  Status append(std::string_view payload);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

struct ReadResult {
  std::vector<std::string> records;  // payloads of every valid record
  // Byte offset just past the last valid record — the append point.
  std::uint64_t valid_bytes = 0;
  // A torn or corrupted tail record was detected and dropped; `tail_error`
  // says what was wrong (for logging).
  bool tail_truncated = false;
  std::string tail_error;
};

// Reads and validates every record of the journal at `path`.
//   * DATA_LOSS when the file cannot be read or does not start with the
//     journal magic (it is not a journal; nothing can be salvaged);
//   * OK with tail_truncated set when the final record is torn or fails its
//     checksum — everything before it is returned and remains usable.
StatusOr<ReadResult> read_records(const std::string& path);

bool exists(const std::string& path);

}  // namespace gpuhms::journal
