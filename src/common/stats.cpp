#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace gpuhms {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::cov() const {
  return mean() != 0.0 ? stddev() / mean() : 0.0;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  RunningStat st;
  for (double x : xs) st.add(x);
  return st.stddev();
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  GPUHMS_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double pearson(std::span<const double> a, std::span<const double> b) {
  GPUHMS_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  const double ma = mean(a), mb = mean(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    dot += da * db;
    na += da * da;
    nb += db * db;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

namespace {

// Fractional ranks (1-based, ties share the average rank).
std::vector<double> ranks_of(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> a, std::span<const double> b) {
  GPUHMS_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const auto ra = ranks_of(a);
  const auto rb = ranks_of(b);
  return pearson(ra, rb);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  GPUHMS_CHECK(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::density(std::size_t i) const {
  return total_ ? static_cast<double>(counts_[i]) / static_cast<double>(total_)
                : 0.0;
}

double exponential_bin_mass(double mean, double lo, double hi) {
  if (mean <= 0.0) return 0.0;
  const double lam = 1.0 / mean;
  const double a = lo <= 0.0 ? 1.0 : std::exp(-lam * lo);
  const double b = std::exp(-lam * hi);
  return a - b;
}

}  // namespace gpuhms
