// Deterministic structural hashing for cache keys.
//
// Fnv1a is a streaming 64-bit FNV-1a hasher: feed it scalars, strings, or
// raw byte ranges and read the digest at any point. The serving layer keys
// its skeleton/prediction caches on fingerprints built with it (see
// src/serve/service.cpp), so the digest must be stable across processes and
// platforms — it depends only on the bytes fed in, never on pointer values,
// container addresses, or std::hash (whose result is implementation-
// defined). Do not feed raw struct memory (padding bytes); feed fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace gpuhms {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a() = default;
  explicit Fnv1a(std::uint64_t seed) : h_(kOffsetBasis ^ seed) {}

  Fnv1a& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kPrime;
    }
    return *this;
  }

  // Integral/enum values are widened to 8 little-endian bytes so the digest
  // does not depend on the declared width of a field.
  template <typename T>
    requires(std::is_integral_v<T> || std::is_enum_v<T>)
  Fnv1a& mix(T v) {
    std::uint64_t u;
    if constexpr (std::is_enum_v<T>)
      u = static_cast<std::uint64_t>(
          static_cast<std::underlying_type_t<T>>(v));
    else
      u = static_cast<std::uint64_t>(v);  // negatives wrap deterministically
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(u >> (8 * i));
    return bytes(b, sizeof b);
  }

  Fnv1a& mix(bool v) { return mix(static_cast<std::uint64_t>(v ? 1 : 0)); }

  // Doubles hash by bit pattern (bit-identical inputs, bit-identical keys).
  Fnv1a& mix(double v) {
    std::uint64_t u;
    static_assert(sizeof u == sizeof v);
    __builtin_memcpy(&u, &v, sizeof u);
    return mix(u);
  }

  // Length-prefixed so {"ab","c"} and {"a","bc"} digest differently.
  Fnv1a& mix(std::string_view s) {
    mix(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

// Boost-style combiner for composing already-computed 64-bit hashes.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

}  // namespace gpuhms
