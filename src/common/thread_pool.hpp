// Small reusable thread pool for the model layer's embarrassingly parallel
// loops (placement search, batch prediction, T_overlap training). One pool
// owns its workers for its whole lifetime, so per-search thread spawn cost is
// paid once; parallel_for hands out indices through an atomic counter and the
// calling thread participates, so a pool of size 1 degenerates to the plain
// serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuhms {

class ThreadPool {
 public:
  // num_threads <= 0 selects default_threads(). Size counts the calling
  // thread: a pool of size N spawns N-1 workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Runs fn(worker, index) for every index in [0, n), distributing indices
  // over the workers plus the calling thread; returns when all n calls
  // finished. `worker` is in [0, size()) and unique per concurrent caller of
  // fn (the calling thread is worker 0) — index per-worker scratch with it.
  // fn must not recursively call parallel_for on the same pool.
  void parallel_for(std::size_t n,
                    const std::function<void(int, std::size_t)>& fn);

  // GPUHMS_THREADS env var when set (clamped to >= 1), else
  // std::thread::hardware_concurrency().
  static int default_threads();

 private:
  // Claim indices for the current job until it is exhausted.
  void drain(int worker, const std::function<void(int, std::size_t)>& fn,
             std::size_t n);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // parallel_for waits for completion
  std::vector<std::thread> workers_;
  const std::function<void(int, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t inflight_ = 0;  // indices claimed but not yet finished
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int size_ = 1;
};

}  // namespace gpuhms
