// Small reusable thread pool for the model layer's embarrassingly parallel
// loops (placement search, batch prediction, T_overlap training). One pool
// owns its workers for its whole lifetime, so per-search thread spawn cost is
// paid once; parallel_for hands out indices through an atomic counter and the
// calling thread participates, so a pool of size 1 degenerates to the plain
// serial loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuhms {

class ThreadPool {
 public:
  // num_threads <= 0 selects default_threads(). Size counts the calling
  // thread: a pool of size N spawns N-1 workers.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Runs fn(worker, index) for every index in [0, n), distributing indices
  // over the workers plus the calling thread; returns when all n calls
  // finished. `worker` is in [0, size()) and unique per concurrent caller of
  // fn (the calling thread is worker 0) — index per-worker scratch with it.
  // fn must not recursively call parallel_for on the same pool.
  //
  // Exception safety: a throwing fn does NOT terminate the process. The
  // first exception (in completion order) is captured, the job's remaining
  // indices are abandoned via an internal cancellation flag, and the
  // exception is rethrown on the calling thread once every worker has left
  // the job. The pool stays fully usable for subsequent parallel_for calls.
  // Which indices ran before cancellation is unspecified — callers that need
  // partial results must track completion themselves.
  void parallel_for(std::size_t n,
                    const std::function<void(int, std::size_t)>& fn);

  // GPUHMS_THREADS env var when set, else
  // std::thread::hardware_concurrency(). The env value must be a positive
  // integer with no trailing junk; malformed values ("abc", "4x", "-2", "")
  // fall back to the hardware default with a single stderr warning per
  // process.
  static int default_threads();

 private:
  // Claim indices for the current job until it is exhausted or cancelled.
  void drain(int worker, const std::function<void(int, std::size_t)>& fn,
             std::size_t n);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // parallel_for waits for completion
  std::vector<std::thread> workers_;
  const std::function<void(int, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  // Set when a task threw: remaining claims of the current job are skipped.
  std::atomic<bool> job_cancelled_{false};
  std::exception_ptr first_error_;  // guarded by mu_
  std::size_t inflight_ = 0;  // indices claimed but not yet finished
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int size_ = 1;
};

}  // namespace gpuhms
