#include "common/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace gpuhms::obs {

namespace {

// --- enable toggle -----------------------------------------------------------

bool env_enabled() {
  const char* v = std::getenv("GPUHMS_METRICS");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

std::atomic<bool> g_tracing{false};

// --- per-thread shard index --------------------------------------------------

unsigned tls_shard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kValueShards);
  return shard;
}

// --- registry ----------------------------------------------------------------

// Name->metric maps sharded by name hash. Metrics are unique_ptr so the
// references handed out stay stable across rehashes; entries are never
// erased.
constexpr std::size_t kMapShards = 8;

template <typename M>
struct MetricMap {
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<M>> map;
  };
  std::array<Shard, kMapShards> shards;

  M& get(std::string_view name) {
    const std::size_t h = std::hash<std::string_view>{}(name) % kMapShards;
    Shard& s = shards[h];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(std::string(name));
    if (it == s.map.end()) {
      it = s.map.emplace(std::string(name), std::make_unique<M>()).first;
    }
    return *it->second;
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Shard& s : shards) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (auto& [name, m] : s.map) fn(name, *m);
    }
  }
};

struct RegistryState {
  MetricMap<Counter> counters;
  MetricMap<Gauge> gauges;
  MetricMap<Histogram> histograms;
};

RegistryState& registry() {
  static RegistryState* r = new RegistryState();  // never destroyed: handles
  return *r;                                      // outlive static teardown
}

// --- trace recorder ----------------------------------------------------------

struct TraceEvent {
  const char* name;
  std::uint32_t tid;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

// Per-thread event buffers, kept alive in a global list past thread exit so
// pool workers joined before export still contribute their events.
struct ThreadTraceBuf {
  std::uint32_t tid = 0;
  std::uint64_t epoch = 0;  // trace generation the buffer was cleared for
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mu;  // guards buffers/next_tid (registration + export)
  std::vector<std::shared_ptr<ThreadTraceBuf>> buffers;
  std::uint32_t next_tid = 0;
  std::atomic<std::uint64_t> epoch{0};  // bumped by start_tracing
  std::atomic<std::uint64_t> t0_ns{0};  // trace clock origin
};

TraceState& trace_state() {
  static TraceState* s = new TraceState();
  return *s;
}

ThreadTraceBuf& local_trace_buf() {
  thread_local std::shared_ptr<ThreadTraceBuf> buf = [] {
    auto b = std::make_shared<ThreadTraceBuf>();
    TraceState& s = trace_state();
    std::lock_guard<std::mutex> lk(s.mu);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

// --- toggles -----------------------------------------------------------------

bool metrics_active() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

bool tracing_active() { return g_tracing.load(std::memory_order_relaxed); }

void start_tracing() {
  TraceState& s = trace_state();
  s.t0_ns.store(now_ns(), std::memory_order_relaxed);
  s.epoch.fetch_add(1, std::memory_order_release);
  g_tracing.store(true, std::memory_order_release);
}

void stop_tracing() { g_tracing.store(false, std::memory_order_relaxed); }

// --- metric primitives -------------------------------------------------------

unsigned Counter::shard_index() { return tls_shard(); }
unsigned Histogram::shard_index() { return tls_shard(); }

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const Cell& c : shards_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (Cell& c : shards_) c.v.store(0, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t v) {
  Cell& c = shards_[shard_index()];
  c.buckets[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
      1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = c.min.load(std::memory_order_relaxed);
  while (v < cur &&
         !c.min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = c.max.load(std::memory_order_relaxed);
  while (v > cur &&
         !c.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const Cell& c : shards_) n += c.count.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t s = 0;
  for (const Cell& c : shards_) s += c.sum.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Histogram::min() const {
  std::uint64_t m = ~std::uint64_t{0};
  for (const Cell& c : shards_)
    m = std::min(m, c.min.load(std::memory_order_relaxed));
  return m == ~std::uint64_t{0} ? 0 : m;
}

std::uint64_t Histogram::max() const {
  std::uint64_t m = 0;
  for (const Cell& c : shards_)
    m = std::max(m, c.max.load(std::memory_order_relaxed));
  return m;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
               : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_count(int b) const {
  std::uint64_t n = 0;
  for (const Cell& c : shards_)
    n += c.buckets[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  return n;
}

void Histogram::reset() {
  for (Cell& c : shards_) {
    for (auto& b : c.buckets) b.store(0, std::memory_order_relaxed);
    c.count.store(0, std::memory_order_relaxed);
    c.sum.store(0, std::memory_order_relaxed);
    c.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    c.max.store(0, std::memory_order_relaxed);
  }
}

// --- registry accessors ------------------------------------------------------

Counter& counter(std::string_view name) {
  return registry().counters.get(name);
}
Gauge& gauge(std::string_view name) { return registry().gauges.get(name); }
Histogram& histogram(std::string_view name) {
  return registry().histograms.get(name);
}

void reset_all_metrics() {
  registry().counters.for_each([](const std::string&, Counter& c) {
    c.reset();
  });
  registry().gauges.for_each([](const std::string&, Gauge& g) { g.reset(); });
  registry().histograms.for_each([](const std::string&, Histogram& h) {
    h.reset();
  });
}

// --- snapshot ----------------------------------------------------------------

MetricsSnapshot snapshot() {
  MetricsSnapshot s;
  registry().counters.for_each([&](const std::string& n, Counter& c) {
    s.counters.push_back({n, c.value()});
  });
  registry().gauges.for_each([&](const std::string& n, Gauge& g) {
    s.gauges.push_back({n, g.value()});
  });
  registry().histograms.for_each([&](const std::string& n, Histogram& h) {
    MetricsSnapshot::HistogramEntry e;
    e.name = n;
    e.count = h.count();
    e.sum = h.sum();
    e.min = h.min();
    e.max = h.max();
    e.mean = h.mean();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t c = h.bucket_count(b);
      if (c != 0) e.buckets.emplace_back(Histogram::bucket_lo(b), c);
    }
    s.histograms.push_back(std::move(e));
  });
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.gauges.begin(), s.gauges.end(), by_name);
  std::sort(s.histograms.begin(), s.histograms.end(), by_name);
  return s;
}

const MetricsSnapshot::CounterEntry* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& e : counters)
    if (e.name == name) return &e;
  return nullptr;
}

const MetricsSnapshot::GaugeEntry* MetricsSnapshot::find_gauge(
    std::string_view name) const {
  for (const auto& e : gauges)
    if (e.name == name) return &e;
  return nullptr;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& e : histograms)
    if (e.name == name) return &e;
  return nullptr;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char buf[160];
  for (const auto& c : counters) {
    std::snprintf(buf, sizeof(buf), "counter   %-44s %20llu\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge     %-44s %20lld\n",
                  g.name.c_str(), static_cast<long long>(g.value));
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %-44s count=%llu mean=%.1f min=%llu max=%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean, static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  // Sized for the histogram header: five full-width u64 fields plus a
  // %.3f mean comfortably exceed 96 bytes.
  char buf[256];
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, c.name);
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, g.name);
    std::snprintf(buf, sizeof(buf), "\": %lld",
                  static_cast<long long>(g.value));
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, h.name);
    std::snprintf(buf, sizeof(buf),
                  "\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                  "\"max\": %llu, \"mean\": %.3f, \"buckets\": [",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.max), h.mean);
    out += buf;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s[%llu, %llu]", i ? ", " : "",
                    static_cast<unsigned long long>(h.buckets[i].first),
                    static_cast<unsigned long long>(h.buckets[i].second));
      out += buf;
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

// --- timers / trace ----------------------------------------------------------

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedPhase::~ScopedPhase() {
  if (!metrics_ && !tracing_) return;
  const std::uint64_t dur = now_ns() - start_;
  if (metrics_) hist_->record(dur);
  if (tracing_) trace_emit(name_, start_, dur);
}

void trace_emit(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns) {
  if (!tracing_active()) return;
  TraceState& s = trace_state();
  ThreadTraceBuf& buf = local_trace_buf();
  // Lazily reset buffers left over from a previous trace generation.
  const std::uint64_t epoch = s.epoch.load(std::memory_order_acquire);
  if (buf.epoch != epoch) {
    buf.epoch = epoch;
    buf.events.clear();
  }
  buf.events.push_back({name, buf.tid, start_ns, dur_ns});
}

std::string chrome_trace_json() {
  TraceState& s = trace_state();
  std::vector<std::shared_ptr<ThreadTraceBuf>> buffers;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    buffers = s.buffers;
  }
  const std::uint64_t epoch = s.epoch.load(std::memory_order_acquire);
  const std::uint64_t t0 = s.t0_ns.load(std::memory_order_relaxed);
  std::string out = "{\"traceEvents\": [";
  char buf[192];
  bool first = true;
  for (const auto& b : buffers) {
    if (b->epoch != epoch) continue;
    for (const TraceEvent& e : b->events) {
      const double ts_us =
          static_cast<double>(e.start_ns - std::min(e.start_ns, t0)) / 1e3;
      const double dur_us = static_cast<double>(e.dur_ns) / 1e3;
      out += first ? "\n" : ",\n";
      first = false;
      out += "  {\"name\": \"";
      append_json_escaped(out, e.name);
      std::snprintf(buf, sizeof(buf),
                    "\", \"cat\": \"gpuhms\", \"ph\": \"X\", \"ts\": %.3f, "
                    "\"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                    ts_us, dur_us, e.tid);
      out += buf;
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

Status write_chrome_trace(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f)
    return InvalidArgumentError("cannot open trace output file '" + path +
                                "'");
  const std::string json = chrome_trace_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.flush();
  if (!f)
    return InternalError("failed writing Chrome trace to '" + path + "'");
  return OkStatus();
}

}  // namespace gpuhms::obs
