// Bounded, thread-safe LRU cache with exact hit/miss/eviction accounting.
//
// The serving layer (src/serve) keeps two of these — lowered TraceSkeletons
// and memoized Predictions — so a long-lived daemon answers repeated
// requests from memory instead of re-deriving the Eq. 1 model per request.
// Kept generic and header-only in common so any layer can reuse it.
//
// Semantics:
//   * capacity is a hard bound: size() never exceeds it, the least-recently
//     *used* entry is evicted on insert overflow. A capacity of 0 disables
//     the cache entirely (every get misses, put is a no-op) so callers can
//     turn caching off without branching.
//   * get() and put() both count as a "use" of the key.
//   * put() of an existing key replaces the value in place (counted in
//     stats().updates, not inserts) and refreshes recency.
//   * All operations take one mutex; values are returned by copy so no
//     reference ever escapes the lock. Cache shared_ptrs for heavy values.
//
// Stats invariant (locked by tests/test_lru_cache.cpp): at any quiescent
// point, inserts - evictions == size(), and hits + misses equals the number
// of get() calls.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gpuhms {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;    // new keys admitted
    std::uint64_t updates = 0;    // existing keys overwritten
    std::uint64_t evictions = 0;  // entries displaced by capacity
  };

  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  // Copy of the cached value, refreshing the key's recency; nullopt on miss.
  std::optional<V> get(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }

  // Insert or overwrite; evicts the least-recently-used entry when a new
  // key would exceed capacity.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.updates;
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      ++stats_.evictions;
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    ++stats_.inserts;
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    index_.clear();
  }

  // Keys from most- to least-recently used (test/introspection hook; the
  // last element is the next eviction victim).
  std::vector<K> keys_mru_order() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<K> keys;
    keys.reserve(entries_.size());
    for (const auto& e : entries_) keys.push_back(e.first);
    return keys;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  // Most-recently used at the front.
  std::list<std::pair<K, V>> entries_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
  Stats stats_;
};

}  // namespace gpuhms
