#include "common/thread_pool.hpp"

#include <cstdlib>

namespace gpuhms {

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("GPUHMS_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  size_ = num_threads > 0 ? num_threads : default_threads();
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int t = 1; t < size_; ++t) {
    workers_.emplace_back([this, t] {
      std::uint64_t seen = 0;
      while (true) {
        const std::function<void(int, std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        {
          std::unique_lock<std::mutex> lk(mu_);
          work_cv_.wait(lk, [&] {
            return stop_ || (job_ != nullptr && generation_ != seen);
          });
          if (stop_) return;
          seen = generation_;
          fn = job_;
          n = job_n_;
          // Counted as in-flight from capture to loop exit, so parallel_for
          // cannot install the next job while this worker still holds `fn`.
          ++inflight_;
        }
        drain(t, *fn, n);
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (--inflight_ == 0) done_cv_.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain(int worker,
                       const std::function<void(int, std::size_t)>& fn,
                       std::size_t n) {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(worker, i);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(int, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  drain(0, fn, n);
  // All indices are claimed; wait until every worker that joined the job has
  // also left its claim loop (and thus dropped its reference to `fn`).
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return inflight_ == 0; });
  job_ = nullptr;
}

}  // namespace gpuhms
