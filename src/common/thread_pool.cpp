#include "common/thread_pool.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/fault_injection.hpp"
#include "common/obs.hpp"

namespace gpuhms {

int ThreadPool::default_threads() {
  const int hw_default = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }();
  const char* env = std::getenv("GPUHMS_THREADS");
  if (!env) return hw_default;
  // Full-string strtol parse: reject empty values, trailing junk ("4x"),
  // overflow, and non-positive counts instead of silently mapping them to
  // the fallback the way atoi did.
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(env, &end, 10);
  const bool malformed =
      end == env || *end != '\0' || errno == ERANGE || n < 1 || n > 1 << 20;
  if (malformed) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "gpuhms: GPUHMS_THREADS='%s' is not a positive integer; "
                   "using %d hardware threads\n",
                   env, hw_default);
    }
    return hw_default;
  }
  return static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  size_ = num_threads > 0 ? num_threads : default_threads();
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int t = 1; t < size_; ++t) {
    workers_.emplace_back([this, t] {
      std::uint64_t seen = 0;
      while (true) {
        const std::function<void(int, std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        {
          std::unique_lock<std::mutex> lk(mu_);
          work_cv_.wait(lk, [&] {
            return stop_ || (job_ != nullptr && generation_ != seen);
          });
          if (stop_) return;
          seen = generation_;
          fn = job_;
          n = job_n_;
          // Counted as in-flight from capture to loop exit, so parallel_for
          // cannot install the next job while this worker still holds `fn`.
          ++inflight_;
        }
        drain(t, *fn, n);
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (--inflight_ == 0) done_cv_.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::drain(int worker,
                       const std::function<void(int, std::size_t)>& fn,
                       std::size_t n) {
  while (!job_cancelled_.load(std::memory_order_relaxed)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    // A throwing task must not reach the thread entry function (that would
    // std::terminate the process): capture the first exception, cancel the
    // remaining claims, and let parallel_for rethrow on the calling thread.
    try {
      GPUHMS_SCOPED_PHASE("pool.task_ns");
      GPUHMS_GAUGE_SET("pool.queue_depth",
                       n - std::min(n, next_.load(std::memory_order_relaxed)));
      if (GPUHMS_FAULT_POINT("pool.task")) throw InjectedFault("pool.task");
      fn(worker, i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      job_cancelled_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(int, std::size_t)>& fn) {
  if (n == 0) return;
  GPUHMS_HISTOGRAM_RECORD("pool.job_size", n);
  if (workers_.empty() || n == 1) {
    // Serial path: exceptions propagate to the caller directly, matching the
    // pooled path's "first exception rethrown on the calling thread".
    for (std::size_t i = 0; i < n; ++i) {
      GPUHMS_SCOPED_PHASE("pool.task_ns");
      if (GPUHMS_FAULT_POINT("pool.task")) throw InjectedFault("pool.task");
      fn(0, i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    job_cancelled_.store(false, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  drain(0, fn, n);
  // All indices are claimed (or the job was cancelled); wait until every
  // worker that joined the job has also left its claim loop (and thus
  // dropped its reference to `fn`) before rethrowing or returning.
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return inflight_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace gpuhms
