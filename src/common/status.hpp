// Structured error propagation for the public API surface.
//
// Policy (see README "Error handling & robustness"): entry points that
// consume *caller-supplied* data — kernels, placements, arch configs, trace
// files, measurements — return Status/StatusOr instead of aborting, with the
// offending entity named in the message and call-site context attached via
// annotate(). GPUHMS_CHECK remains for *internal* invariants only: a failed
// check means the library itself is broken, not the input.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace gpuhms {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // malformed caller input (bad placement, bad config)
  kFailedPrecondition,  // call sequencing (predict before set_sample)
  kResourceExhausted,   // a capacity/cap was exceeded
  kDeadlineExceeded,    // SearchOptions::deadline expired
  kCancelled,           // caller's cancellation token fired
  kInternal,            // invariant violation surfaced non-fatally (e.g. a
                        // worker exception captured by the thread pool)
  kDataLoss,            // I/O truncation or corruption (trace serialization)
  kUnavailable,         // the service is transiently unable to take the
                        // request (draining for shutdown); retrying against
                        // another instance — or later — is expected to work
};

// Stable upper-case names ("INVALID_ARGUMENT") used in messages and logs.
std::string_view to_string(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok_status() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  // The root-cause message, without the annotation chain.
  const std::string& message() const { return message_; }
  // Innermost-first context chain, formatted " (while ...; while ...)".
  const std::string& context() const { return context_; }

  // Attaches call-site context, innermost first:
  //   st.annotate("lowering kernel 'matrixmul'").annotate("searching ...")
  // renders as "...: msg (while lowering kernel 'matrixmul'; while
  // searching ...)". No-op on OK.
  Status& annotate(std::string_view what) {
    if (ok() || what.empty()) return *this;
    if (context_.empty())
      context_ = std::string(what);
    else
      context_ += "; while " + std::string(what);
    return *this;
  }

  // "INVALID_ARGUMENT: <message> (while <context chain>)".
  std::string to_string() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_ &&
           context_ == other.context_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string context_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);

// Value-or-error result for the non-aborting API variants. Accessing value()
// on an error is an *internal* invariant violation (the caller must test
// ok() first) and aborts with the carried status message.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {
    GPUHMS_CHECK_MSG(!std::get<Status>(rep_).ok(),
                     "StatusOr constructed from an OK status without a value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // OK when a value is held.
  Status status() const {
    return ok() ? Status() : std::get<Status>(rep_);
  }

  const T& value() const& {
    check_has_value();
    return std::get<T>(rep_);
  }
  T& value() & {
    check_has_value();
    return std::get<T>(rep_);
  }
  T&& value() && {
    check_has_value();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? std::get<T>(rep_) : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void check_has_value() const {
    if (!ok())
      check_failed("StatusOr::value()", __FILE__, __LINE__,
                   std::get<Status>(rep_).to_string().c_str());
  }

  std::variant<Status, T> rep_;
};

}  // namespace gpuhms

// Early-return plumbing for Status-returning functions.
#define GPUHMS_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::gpuhms::Status gpuhms_status_ = (expr);         \
    if (!gpuhms_status_.ok()) return gpuhms_status_;  \
  } while (0)

// GPUHMS_ASSIGN_OR_RETURN(auto x, TrySomething()) — moves the value out on
// success, returns the error status otherwise.
#define GPUHMS_ASSIGN_OR_RETURN(lhs, expr)             \
  GPUHMS_ASSIGN_OR_RETURN_IMPL_(                       \
      GPUHMS_STATUS_CONCAT_(gpuhms_statusor_, __LINE__), lhs, expr)
#define GPUHMS_STATUS_CONCAT_INNER_(a, b) a##b
#define GPUHMS_STATUS_CONCAT_(a, b) GPUHMS_STATUS_CONCAT_INNER_(a, b)
#define GPUHMS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()
