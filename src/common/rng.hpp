// Deterministic, seedable pseudo-random number generator.
//
// All stochastic components of the library (workload generators, randomized
// property tests) draw from this splitmix64-based generator so runs are
// reproducible bit-for-bit across platforms, independent of libstdc++'s
// distribution implementations.
#pragma once

#include <cstdint>

namespace gpuhms {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  // splitmix64 step: full 64-bit output, passes BigCrush.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli(p).
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace gpuhms
