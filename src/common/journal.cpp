#include "common/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fault_injection.hpp"
#include "common/hashing.hpp"

namespace gpuhms::journal {

namespace {

std::string errno_string() { return std::strerror(errno); }

void put_u32le(std::uint32_t v, char* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64le(std::uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32le(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64le(const char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  return v;
}

std::uint64_t payload_checksum(std::string_view payload) {
  return Fnv1a().bytes(payload.data(), payload.size()).digest();
}

Status write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t w = ::write(fd, data + written, size - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return DataLossError("write failed: " + errno_string());
    }
    written += static_cast<std::size_t>(w);
  }
  return OkStatus();
}

}  // namespace

Writer::Writer(Writer&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

Writer& Writer::operator=(Writer&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

Writer::~Writer() { close(); }

void Writer::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Writer> Writer::create(const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0)
    return DataLossError("cannot create journal '" + tmp +
                         "': " + errno_string());
  Writer w;
  w.fd_ = fd;
  w.path_ = path;
  if (Status st = write_all(fd, kMagic.data(), kMagic.size()); !st.ok())
    return st.annotate("writing the header of journal '" + tmp + "'");
  if (::fsync(fd) != 0)
    return DataLossError("fsync('" + tmp + "') failed: " + errno_string());
  // The commit point: after the rename the journal is visible at `path` with
  // its header durable; before it, a crash leaves only the .tmp leftover.
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return DataLossError("rename('" + tmp + "' -> '" + path +
                         "') failed: " + errno_string());
  return w;
}

StatusOr<Writer> Writer::open_for_append(const std::string& path,
                                         std::uint64_t valid_bytes) {
  if (valid_bytes < kMagic.size())
    return InvalidArgumentError(
        "valid_bytes " + std::to_string(valid_bytes) +
        " is smaller than the journal header of '" + path + "'");
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0)
    return DataLossError("cannot open journal '" + path +
                         "': " + errno_string());
  Writer w;
  w.fd_ = fd;
  w.path_ = path;
  // One atomic syscall repairs a torn tail: everything past the valid prefix
  // is discarded before the first new append.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0)
    return DataLossError("ftruncate('" + path + "', " +
                         std::to_string(valid_bytes) +
                         ") failed: " + errno_string());
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0)
    return DataLossError("lseek('" + path + "') failed: " + errno_string());
  return w;
}

Status Writer::append(std::string_view payload) {
  if (fd_ < 0)
    return FailedPreconditionError("journal writer is closed");
  if (payload.size() > kMaxRecordBytes)
    return InvalidArgumentError("journal record of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the record size bound");
  if (GPUHMS_FAULT_POINT("journal.write"))
    return DataLossError("injected fault at site 'journal.write'");
  std::string buf;
  buf.resize(12 + payload.size());
  put_u32le(static_cast<std::uint32_t>(payload.size()), buf.data());
  put_u64le(payload_checksum(payload), buf.data() + 4);
  std::memcpy(buf.data() + 12, payload.data(), payload.size());
  GPUHMS_RETURN_IF_ERROR(write_all(fd_, buf.data(), buf.size())
                             .annotate("appending to journal '" + path_ + "'"));
  if (::fsync(fd_) != 0)
    return DataLossError("fsync('" + path_ + "') failed: " + errno_string());
  return OkStatus();
}

StatusOr<ReadResult> read_records(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return DataLossError("cannot open journal '" + path +
                         "': " + errno_string());
  std::string data;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_string();
      ::close(fd);
      return DataLossError("cannot read journal '" + path + "': " + err);
    }
    if (n == 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (data.size() < kMagic.size() ||
      std::string_view(data.data(), kMagic.size()) != kMagic)
    return DataLossError("'" + path + "' is not a gpuhms journal (bad magic)");

  ReadResult out;
  std::size_t off = kMagic.size();
  out.valid_bytes = off;
  while (off < data.size()) {
    if (data.size() - off < 12) {
      out.tail_truncated = true;
      out.tail_error = "torn record header (" +
                       std::to_string(data.size() - off) + " of 12 bytes)";
      break;
    }
    const std::uint32_t len = get_u32le(data.data() + off);
    const std::uint64_t sum = get_u64le(data.data() + off + 4);
    if (len > kMaxRecordBytes) {
      out.tail_truncated = true;
      out.tail_error =
          "corrupt record length " + std::to_string(len) + " at offset " +
          std::to_string(off);
      break;
    }
    if (data.size() - off - 12 < len) {
      out.tail_truncated = true;
      out.tail_error = "torn record payload (" +
                       std::to_string(data.size() - off - 12) + " of " +
                       std::to_string(len) + " bytes)";
      break;
    }
    const std::string_view payload(data.data() + off + 12, len);
    std::uint64_t computed = payload_checksum(payload);
    // Deterministic corruption of the checksum comparison: the torn-tail
    // path runs on demand without a handcrafted broken file.
    if (GPUHMS_FAULT_POINT("journal.read")) computed = ~computed;
    if (computed != sum) {
      out.tail_truncated = true;
      out.tail_error = "record checksum mismatch at offset " +
                       std::to_string(off) + " (record " +
                       std::to_string(out.records.size()) + ")";
      break;
    }
    out.records.emplace_back(payload);
    off += 12 + len;
    out.valid_bytes = off;
  }
  return out;
}

bool exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace gpuhms::journal
