// Bump allocator for per-candidate replay scratch.
//
// The data-oriented replay path (src/trace/soa.*) lowers every resident
// wave into struct-of-arrays batch buffers whose lifetime is exactly one
// wave. A general-purpose heap is the wrong tool for that pattern: the hot
// loop of a placement search would hit malloc/free thousands of times per
// candidate. An Arena instead hands out pointers by bumping a cursor through
// geometrically-grown chunks; reset() rewinds the cursor and *keeps* the
// chunks, so after the first wave of the first candidate the search's inner
// loop performs zero heap allocations.
//
// Pointers handed out stay valid until the next reset() — growth allocates
// a new chunk, it never moves existing ones — which is what lets the SoA
// lowering store raw pointers (line lists, staged address blocks) inside the
// batch it is still appending to.
//
// Only trivially-destructible payloads are supported (alloc<T> enforces
// this): reset() rewinds without running destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace gpuhms {

class Arena {
 public:
  // First chunk size; later chunks double until kMaxChunkBytes.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 16 * 1024 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes) {
    GPUHMS_CHECK(first_chunk_bytes_ > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // `align` must be a power of two. Zero-size requests return a valid
  // aligned pointer without advancing the cursor.
  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    GPUHMS_CHECK(align != 0 && (align & (align - 1)) == 0);
    std::size_t off = aligned_offset(align);
    if (chunk_ >= chunks_.size() || off + bytes > chunks_[chunk_].size) {
      grow(bytes + align);
      off = aligned_offset(align);
    }
    cursor_ = off + bytes;
    high_water_ = std::max(high_water_, allocated_before_ + cursor_);
    return chunks_[chunk_].data.get() + off;
  }

  // Typed array allocation, uninitialized. T must be trivially destructible
  // (reset() never runs destructors).
  template <class T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
  }

  // Rewind to empty, keeping every chunk for reuse. Previously returned
  // pointers become invalid.
  void reset() {
    chunk_ = 0;
    cursor_ = 0;
    allocated_before_ = 0;
  }

  // Release every chunk back to the heap (capacity drops to zero).
  void release() {
    chunks_.clear();
    reset();
  }

  // Bytes currently handed out (including alignment padding skipped over).
  std::size_t used_bytes() const { return allocated_before_ + cursor_; }
  // Total bytes owned across all chunks.
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  // Largest used_bytes() ever observed (survives reset; sizing telemetry).
  std::size_t high_water_bytes() const { return high_water_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  // Next cursor position whose *address* (not merely chunk offset) meets
  // `align` — operator new[] only guarantees the default new-alignment for
  // the chunk base, so over-aligned requests must account for it.
  std::size_t aligned_offset(std::size_t align) const {
    if (chunk_ >= chunks_.size()) return cursor_;
    const auto base =
        reinterpret_cast<std::uintptr_t>(chunks_[chunk_].data.get());
    return ((base + cursor_ + align - 1) & ~(align - 1)) - base;
  }

  void grow(std::size_t min_bytes) {
    // Finish the current chunk and move to the next one, allocating it if
    // this arena has never been this large before.
    if (chunk_ < chunks_.size()) {
      allocated_before_ += chunks_[chunk_].size;
      ++chunk_;
    }
    while (chunk_ < chunks_.size()) {
      if (chunks_[chunk_].size >= min_bytes) {
        cursor_ = 0;
        return;
      }
      allocated_before_ += chunks_[chunk_].size;
      ++chunk_;
    }
    std::size_t size = chunks_.empty()
                           ? first_chunk_bytes_
                           : std::min(chunks_.back().size * 2, kMaxChunkBytes);
    size = std::max(size, min_bytes);
    if (GPUHMS_FAULT_POINT("arena.alloc")) throw std::bad_alloc();
    Chunk c;
    c.data = std::make_unique<std::byte[]>(size);
    c.size = size;
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    cursor_ = 0;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // current chunk index
  std::size_t cursor_ = 0;  // offset within the current chunk
  std::size_t allocated_before_ = 0;  // sum of sizes of chunks before chunk_
  std::size_t high_water_ = 0;
};

}  // namespace gpuhms
