#include "common/status.hpp"

namespace gpuhms {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(gpuhms::to_string(code_));
  out += ": ";
  out += message_;
  if (!context_.empty()) {
    out += " (while ";
    out += context_;
    out += ')';
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace gpuhms
