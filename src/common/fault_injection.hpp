// Deterministic fault injection for robustness testing.
//
// A *site* is a named point in library code (GPUHMS_FAULT_POINT("pool.task"))
// that normally evaluates to false at ~zero cost. Arming a site makes its
// Nth execution return true exactly once, letting tests drive rare failure
// paths (worker exceptions, I/O corruption, queuing saturation)
// deterministically — the same arm always fires at the same hit regardless
// of thread count, because hits are counted under a lock in program order of
// the site's executions.
//
// Two ways to arm:
//   * programmatic: fault::arm("serialize.read", 2); ... fault::disarm_all();
//   * environment:  GPUHMS_FAULT=serialize.read:2 (comma-separated list;
//     parsed once on first use — intended for driving examples/benches).
//
// Registered sites:
//   trace.lower      — throws InjectedFault while lowering a warp trace
//   serialize.read   — read_trace reports an injected DATA_LOSS parse error
//   serialize.write  — write_trace sets failbit on the output stream
//   queuing.nan      — poisons one bank's inter-arrival stddev with NaN
//   queuing.saturate — poisons one bank to rho >= 1 (zero inter-arrival)
//   pool.task        — throws InjectedFault inside a ThreadPool task body
//   serve.parse      — PredictionService returns an INTERNAL error response
//                      instead of parsing the request line
//   serve.accept     — PredictionService sheds one request at admission with
//                      an UNAVAILABLE error response (a dropped accept)
//   arena.alloc      — Arena::grow throws std::bad_alloc instead of
//                      allocating the next chunk (replay-scratch OOM)
//   journal.write    — journal::Writer::append fails with DATA_LOSS before
//                      touching the file (checkpoint write lost)
//   journal.read     — journal::read_records miscompares one record checksum,
//                      exercising the torn-tail truncation path
//
// Every site name MUST also appear in fault::known_sites() below — the chaos
// harness (tests/test_chaos.cpp) enumerates that registry and fails if a
// site has no arming test covering both its fire and no-fire paths.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gpuhms {

// Thrown by throwing sites; derives from std::runtime_error so the generic
// exception capture paths (ThreadPool, try_* APIs) exercise exactly the code
// a real defect would.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at site '" + site + "'") {}
};

namespace fault {

// Arm `site` to fire on its nth execution from now (1-based; nth == 1 fires
// on the next hit). Re-arming resets the hit counter. Fires exactly once.
void arm(std::string_view site, std::uint64_t nth = 1);
void disarm(std::string_view site);
void disarm_all();  // also clears hit counters

// Executions of `site` observed since it was armed (0 for unarmed sites).
std::uint64_t hits(std::string_view site);

// True iff any site is armed (cheap: one relaxed atomic load). The first
// call parses GPUHMS_FAULT from the environment.
bool enabled();

// Counts a hit of `site` and returns true exactly when the armed Nth hit is
// reached. Call through GPUHMS_FAULT_POINT so disabled builds skip the lock.
bool should_fire(std::string_view site);

// Test hook: parse a GPUHMS_FAULT-style spec ("site:nth,site2:nth2") and arm
// the listed sites. Returns false (arming nothing) on malformed specs, with
// a one-line stderr warning.
bool arm_from_spec(std::string_view spec);

// The central registry of every fault site in the library. Adding a
// GPUHMS_FAULT_POINT without listing it here fails the fault-site
// completeness test in tests/test_chaos.cpp — which is the point: every
// injectable failure must have a test driving both of its paths.
std::span<const std::string_view> known_sites();

}  // namespace fault
}  // namespace gpuhms

// if (GPUHMS_FAULT_POINT("trace.lower")) throw InjectedFault("trace.lower");
#define GPUHMS_FAULT_POINT(site) \
  (::gpuhms::fault::enabled() && ::gpuhms::fault::should_fire(site))
