// Observability layer: a process-wide metrics registry (counters, gauges,
// log2-bucket histograms), RAII scoped phase timers, and a Chrome
// trace-event recorder.
//
// Design constraints, in order:
//   1. Zero overhead when off. Every hot-path macro is a single relaxed
//      atomic load + branch when metrics are disabled (the default), and a
//      compile-time no-op when GPUHMS_DISABLE_OBS is defined. Instrumented
//      code must never change model *results* — metrics observe, they do
//      not participate (the determinism test locks this in).
//   2. No allocation on the hot path. Metric handles are resolved once per
//      call site (function-local static) through the registry's cold path;
//      recording touches only pre-sized atomic arrays. Histograms use fixed
//      log2 buckets (bucket i counts values v with bit_width(v) == i), so a
//      nanosecond-scale timer and a percent-scale utilization share one
//      implementation without configuration.
//   3. Lock-sharded. The registry's name->metric maps are sharded by name
//      hash (registration-time contention only); counter/histogram cells
//      are sharded by thread so concurrent search workers never bounce one
//      cache line.
//
// Toggles:
//   * GPUHMS_METRICS env var (any value but "0"/"") enables metric
//     recording at process start; obs::set_enabled() overrides at runtime.
//   * Tracing is separate: obs::start_tracing() begins collecting scoped-
//     phase events; obs::write_chrome_trace() emits the standard Chrome
//     trace-event JSON (load it in chrome://tracing or Perfetto).
//   * Compiling with -DGPUHMS_DISABLE_OBS turns every macro below into
//     ((void)0) for a hard zero-overhead build.
//
// Naming convention: "layer.metric[_unit]", e.g. "predictor.tmem_ns",
// "search.evaluated", "queuing.bank_utilization_pct". Snapshots render
// metrics sorted by name, so stable names give stable output.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace gpuhms::obs {

// --- toggles -----------------------------------------------------------------

// True when metric recording is on (GPUHMS_METRICS env or set_enabled).
// One relaxed atomic load; safe to call from any thread at any time.
bool metrics_active();
void set_enabled(bool on);

// Trace-event collection (independent of metrics_active). start_tracing
// clears previously collected events and restarts the trace clock.
bool tracing_active();
void start_tracing();
void stop_tracing();

// --- metric primitives -------------------------------------------------------

inline constexpr int kValueShards = 8;

// Monotonic counter. add() is wait-free: one fetch_add on this thread's
// shard. value() sums the shards (reader-side cost only).
class Counter {
 public:
  void add(std::uint64_t delta) {
    shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  static unsigned shard_index();
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kValueShards> shards_{};
};

// Last-writer-wins signed gauge.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Histogram over unsigned 64-bit samples with fixed log2 buckets: bucket i
// counts samples whose bit_width is i (bucket 0 holds v == 0, bucket i>0
// holds v in [2^(i-1), 2^i)). 65 buckets cover the full range — nothing to
// configure, nothing to allocate. Sum/count/min/max are tracked exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v);
  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const;  // 0 when empty
  double mean() const;
  std::uint64_t bucket_count(int b) const;
  // Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  void reset();

 private:
  static unsigned shard_index();
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Cell, kValueShards> shards_{};
};

// --- registry ----------------------------------------------------------------

// Returns the process-wide metric with this name, registering it on first
// use. References stay valid for the process lifetime (reset() zeroes
// values, it never unregisters). Cold path: meant to be called once per
// call site and cached (the GPUHMS_* macros below do this).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

// Zero every registered metric (registrations survive). For tests/benches
// that want a clean window.
void reset_all_metrics();

// --- snapshot ----------------------------------------------------------------

struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    // (bucket lower bound, count), nonzero buckets only, ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };

  std::vector<CounterEntry> counters;      // sorted by name
  std::vector<GaugeEntry> gauges;          // sorted by name
  std::vector<HistogramEntry> histograms;  // sorted by name

  // Empty-result lookups return nullptr.
  const CounterEntry* find_counter(std::string_view name) const;
  const GaugeEntry* find_gauge(std::string_view name) const;
  const HistogramEntry* find_histogram(std::string_view name) const;

  // Stable renderings: one metric per line (text) / one object per metric
  // kind (JSON), both sorted by name.
  std::string to_text() const;
  std::string to_json() const;
};

// Consistent-enough point-in-time view of every registered metric. (Each
// cell is read atomically; a snapshot taken while writers run may split a
// logical update across cells — fine for the profiling use, documented so
// nobody builds an invariant on it.)
MetricsSnapshot snapshot();

// --- scoped phase timers -----------------------------------------------------

// Monotonic nanosecond clock used by the timers (exposed for tests).
std::uint64_t now_ns();

// Times a scope. On destruction records the duration into `hist` (when
// metrics are active) and emits a Chrome trace event named `name` (when
// tracing is active). `name` must outlive the recorder — string literals
// only. When both toggles are off, construction is two relaxed loads and
// destruction is one branch.
class ScopedPhase {
 public:
  ScopedPhase(Histogram& hist, const char* name)
      : hist_(&hist), name_(name),
        metrics_(metrics_active()), tracing_(tracing_active()) {
    if (metrics_ || tracing_) start_ = now_ns();
  }
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Histogram* hist_;
  const char* name_;
  bool metrics_;
  bool tracing_;
  std::uint64_t start_ = 0;
};

// --- Chrome trace export -----------------------------------------------------

// Writes every event collected since start_tracing() as Chrome trace-event
// JSON ({"traceEvents": [...]}, "X" complete events, microsecond
// timestamps relative to start_tracing). Loadable in chrome://tracing and
// Perfetto. Does not stop or clear the trace.
Status write_chrome_trace(const std::string& path);
// Same, rendered to a string (for tests / stdout).
std::string chrome_trace_json();

// Internal: append one complete event (used by ScopedPhase; exposed for
// instrumentation that cannot use RAII).
void trace_emit(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns);

}  // namespace gpuhms::obs

// --- instrumentation macros --------------------------------------------------
//
// Each macro caches its metric handle in a function-local static resolved on
// the first *active* execution, so the disabled path never touches the
// registry. Names must be string literals (they key the registry and outlive
// the call).

#define GPUHMS_OBS_CONCAT2(a, b) a##b
#define GPUHMS_OBS_CONCAT(a, b) GPUHMS_OBS_CONCAT2(a, b)

#ifdef GPUHMS_DISABLE_OBS

#define GPUHMS_COUNTER_ADD(name, delta) ((void)0)
#define GPUHMS_GAUGE_SET(name, value) ((void)0)
#define GPUHMS_HISTOGRAM_RECORD(name, value) ((void)0)
#define GPUHMS_SCOPED_PHASE(name) ((void)0)

#else

#define GPUHMS_COUNTER_ADD(name, delta)                               \
  do {                                                                \
    if (::gpuhms::obs::metrics_active()) {                            \
      static ::gpuhms::obs::Counter& gpuhms_obs_c =                   \
          ::gpuhms::obs::counter(name);                               \
      gpuhms_obs_c.add(static_cast<std::uint64_t>(delta));            \
    }                                                                 \
  } while (0)

#define GPUHMS_GAUGE_SET(name, value)                                 \
  do {                                                                \
    if (::gpuhms::obs::metrics_active()) {                            \
      static ::gpuhms::obs::Gauge& gpuhms_obs_g =                     \
          ::gpuhms::obs::gauge(name);                                 \
      gpuhms_obs_g.set(static_cast<std::int64_t>(value));             \
    }                                                                 \
  } while (0)

#define GPUHMS_HISTOGRAM_RECORD(name, value)                          \
  do {                                                                \
    if (::gpuhms::obs::metrics_active()) {                            \
      static ::gpuhms::obs::Histogram& gpuhms_obs_h =                 \
          ::gpuhms::obs::histogram(name);                             \
      gpuhms_obs_h.record(static_cast<std::uint64_t>(value));         \
    }                                                                 \
  } while (0)

// Times the enclosing scope into histogram `name` and (when tracing) emits
// a trace event of the same name. The histogram is registered eagerly so it
// appears in snapshots even before its first active pass.
#define GPUHMS_SCOPED_PHASE(name)                                     \
  static ::gpuhms::obs::Histogram& GPUHMS_OBS_CONCAT(                 \
      gpuhms_obs_ph_, __LINE__) = ::gpuhms::obs::histogram(name);     \
  const ::gpuhms::obs::ScopedPhase GPUHMS_OBS_CONCAT(                 \
      gpuhms_obs_sp_, __LINE__)(                                      \
      GPUHMS_OBS_CONCAT(gpuhms_obs_ph_, __LINE__), name)

#endif  // GPUHMS_DISABLE_OBS
