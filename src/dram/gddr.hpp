// Banked GDDR5 timing model: per-bank FCFS queues, row buffers, and the
// hit / miss / conflict service times of Sec. III-C of the paper. This is the
// substrate whose behaviour the analytical G/G/1 queuing model approximates
// and whose mapping Algorithm 1 detects.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/stats.hpp"
#include "dram/address_mapping.hpp"

namespace gpuhms {

enum class RowOutcome : int { Hit = 0, Miss = 1, Conflict = 2 };

struct BankStats {
  std::uint64_t arrivals = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;    // closed-row activation
  std::uint64_t row_conflicts = 0; // open different row: writeback + activate
  std::uint64_t queue_delay_sum = 0;
  std::uint64_t busy_cycles = 0;
  RunningStat interarrival;  // cycles between consecutive arrivals
};

struct DramStats {
  std::vector<BankStats> banks;
  std::uint64_t total_requests = 0;
  std::uint64_t latency_sum = 0;  // end-to-end, for measured AMAT

  std::uint64_t row_hits() const;
  std::uint64_t row_misses() const;
  std::uint64_t row_conflicts() const;
  double avg_latency() const;
  double avg_queue_delay() const;
};

class GddrSystem {
 public:
  GddrSystem(const GpuArch& arch, AddressMapping mapping,
             bool record_interarrival_samples = false);

  // Issue a transaction at `issue_time` (SM-side clock). Returns the cycle
  // the data is back at the requester. Calls must have nondecreasing
  // issue_time (FCFS arrival order); the timing simulator guarantees this by
  // processing events in global time order.
  std::uint64_t access(std::uint64_t addr, std::uint64_t issue_time,
                       bool is_write = false);

  // Row-buffer outcome the *next* access to `addr` would see (no state
  // change). Used by trace-order analysis and tests.
  RowOutcome peek_outcome(std::uint64_t addr) const;

  const AddressMapping& mapping() const { return map_; }
  const DramStats& stats() const { return stats_; }
  // Raw inter-arrival samples per bank (only when recording was enabled).
  const std::vector<std::vector<std::uint64_t>>& interarrival_samples() const {
    return samples_;
  }
  void reset();

 private:
  struct Bank {
    std::uint64_t busy_until = 0;
    std::uint64_t open_row = 0;
    bool row_open = false;
    std::uint64_t last_arrival = 0;
    bool seen_arrival = false;
  };

  const GpuArch* arch_;
  AddressMapping map_;
  bool record_samples_;
  std::vector<Bank> banks_;
  DramStats stats_;
  std::vector<std::vector<std::uint64_t>> samples_;
  std::uint64_t last_issue_ = 0;
};

}  // namespace gpuhms
