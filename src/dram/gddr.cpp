#include "dram/gddr.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuhms {

std::uint64_t DramStats::row_hits() const {
  std::uint64_t n = 0;
  for (const auto& b : banks) n += b.row_hits;
  return n;
}

std::uint64_t DramStats::row_misses() const {
  std::uint64_t n = 0;
  for (const auto& b : banks) n += b.row_misses;
  return n;
}

std::uint64_t DramStats::row_conflicts() const {
  std::uint64_t n = 0;
  for (const auto& b : banks) n += b.row_conflicts;
  return n;
}

double DramStats::avg_latency() const {
  return total_requests ? static_cast<double>(latency_sum) /
                              static_cast<double>(total_requests)
                        : 0.0;
}

double DramStats::avg_queue_delay() const {
  std::uint64_t d = 0;
  for (const auto& b : banks) d += b.queue_delay_sum;
  return total_requests
             ? static_cast<double>(d) / static_cast<double>(total_requests)
             : 0.0;
}

GddrSystem::GddrSystem(const GpuArch& arch, AddressMapping mapping,
                       bool record_interarrival_samples)
    : arch_(&arch), map_(std::move(mapping)),
      record_samples_(record_interarrival_samples) {
  banks_.resize(static_cast<std::size_t>(map_.num_banks()));
  stats_.banks.resize(banks_.size());
  if (record_samples_) samples_.resize(banks_.size());
}

std::uint64_t GddrSystem::access(std::uint64_t addr, std::uint64_t issue_time,
                                 bool is_write) {
  (void)is_write;  // writes occupy the bank identically in this model
  GPUHMS_CHECK_MSG(issue_time >= last_issue_,
                   "DRAM accesses must arrive in nondecreasing time order");
  last_issue_ = issue_time;

  const DramTiming& t = arch_->dram;
  const std::uint64_t front = t.pipeline_lat / 2;
  const std::uint64_t back = t.pipeline_lat - front;

  const auto d = map_.decode(addr);
  Bank& bank = banks_[static_cast<std::size_t>(d.bank)];
  BankStats& bs = stats_.banks[static_cast<std::size_t>(d.bank)];

  const std::uint64_t arrival = issue_time + front;
  if (bank.seen_arrival) {
    const std::uint64_t delta = arrival - bank.last_arrival;
    bs.interarrival.add(static_cast<double>(delta));
    if (record_samples_)
      samples_[static_cast<std::size_t>(d.bank)].push_back(delta);
  }
  bank.last_arrival = arrival;
  bank.seen_arrival = true;
  ++bs.arrivals;

  const std::uint64_t start = std::max(arrival, bank.busy_until);
  std::uint64_t service;
  if (!bank.row_open) {
    service = t.row_miss_service;
    ++bs.row_misses;
  } else if (bank.open_row == d.row) {
    service = t.row_hit_service;
    ++bs.row_hits;
  } else {
    service = t.row_conflict_service;
    ++bs.row_conflicts;
  }
  if (t.page_policy == PagePolicy::Open) {
    bank.row_open = true;
    bank.open_row = d.row;
  } else {
    // Closed page: auto-precharge after the access; the next request always
    // pays the activation (row-miss) service.
    bank.row_open = false;
  }
  bank.busy_until = start + service;
  bs.queue_delay_sum += start - arrival;
  bs.busy_cycles += service;

  const std::uint64_t completion = start + service + back;
  ++stats_.total_requests;
  stats_.latency_sum += completion - issue_time;
  return completion;
}

RowOutcome GddrSystem::peek_outcome(std::uint64_t addr) const {
  const auto d = map_.decode(addr);
  const Bank& bank = banks_[static_cast<std::size_t>(d.bank)];
  if (!bank.row_open) return RowOutcome::Miss;
  return bank.open_row == d.row ? RowOutcome::Hit : RowOutcome::Conflict;
}

void GddrSystem::reset() {
  std::fill(banks_.begin(), banks_.end(), Bank{});
  stats_ = DramStats{};
  stats_.banks.resize(banks_.size());
  for (auto& s : samples_) s.clear();
  last_issue_ = 0;
}

}  // namespace gpuhms
