// DRAM address-mapping scheme (Sec. III-C2).
//
// The mapping resolves a physical byte address into (bank, row, column).
// Which bits play which role determines how memory requests distribute over
// banks and whether consecutive requests hit open rows — exactly what
// Algorithm 1 of the paper detects on real hardware and what the queuing
// model consumes. The mapping here is fully configurable so the detector can
// be property-tested against randomized schemes; the default mirrors a
// Kepler-class GDDR5 layout (6 channels x 16 banks, 2 KiB row per bank,
// channel/bank interleaving right above the 128 B transaction).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"

namespace gpuhms {

class AddressMapping {
 public:
  struct Fields {
    // Bit positions (byte-address bit indices) for each role. Bits below
    // `transaction_bits` address bytes within one DRAM transaction.
    int transaction_bits = 7;  // 128 B transactions
    std::vector<int> bank_bits;    // folded modulo num_banks
    std::vector<int> column_bits;  // column within the open row
    std::vector<int> row_bits;     // row within the bank
    // Optional permutation-based interleaving: the bank index becomes
    // extract(bank_bits) XOR extract(bank_xor_bits). XOR bits may reuse
    // row/column positions (that is the point — row-sequential streams then
    // rotate over banks) but not bank positions or the transaction offset.
    // Non-empty requires num_banks == 2^|bank_bits| so the swizzle stays a
    // bijection; empty decodes exactly as before.
    std::vector<int> bank_xor_bits;
    int num_banks = 96;
  };

  explicit AddressMapping(Fields f);

  struct Decoded {
    int bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0;
  };
  Decoded decode(std::uint64_t addr) const;

  // Builds the canonical (transaction-offset-zero) address whose decode()
  // yields `d`. Requires d.bank in [0, num_banks) and d.row/d.column within
  // their field widths (checked). For swizzled maps the bank field is stored
  // pre-XORed so decode() recovers d.bank exactly. decode(encode(d)) == d for
  // every mapping; encode(decode(a)) == a additionally requires
  // invertible() and a transaction offset of zero in `a`.
  std::uint64_t encode(const Decoded& d) const;

  // True when decode() loses no information outside the transaction offset:
  // the bank field is not modulo-folded (num_banks == 2^|bank_bits|) and
  // every bit in [transaction_bits, usable_bits) has a role.
  bool invertible() const;

  int num_banks() const { return fields_.num_banks; }
  const Fields& fields() const { return fields_; }

  // Highest classified bit + 1; addresses must stay below 1 << usable_bits()
  // (the allocator guarantees this) so every relevant bit has a role.
  int usable_bits() const { return usable_bits_; }

 private:
  Fields fields_;
  int usable_bits_;
  std::uint64_t bank_mask_ = 0, column_mask_ = 0, row_mask_ = 0;
};

// Kepler-like default: transaction bits 0-6, bank-select bits 7-13
// (7 bits folded % 96 -> single-bit flips always change the bank), column
// bits 14-17 (16 x 128 B = 2 KiB row), row bits 18-33.
AddressMapping kepler_mapping(const GpuArch& arch);

// Builds the mapping an architecture declares via GpuArch::addr_map, with
// the bank field folded modulo arch.total_banks(). For a default-constructed
// GpuArch this is field-for-field identical to kepler_mapping(); registry
// backends with HBM-style or swizzled geometries diverge here.
AddressMapping arch_mapping(const GpuArch& arch);

// Extract the bits of `addr` at `positions` (low position = LSB of result).
std::uint64_t extract_bits(std::uint64_t addr, const std::vector<int>& positions);

}  // namespace gpuhms
