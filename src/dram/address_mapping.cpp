#include "dram/address_mapping.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuhms {

std::uint64_t extract_bits(std::uint64_t addr,
                           const std::vector<int>& positions) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    v |= ((addr >> positions[i]) & 1ull) << i;
  }
  return v;
}

AddressMapping::AddressMapping(Fields f) : fields_(std::move(f)) {
  GPUHMS_CHECK(fields_.num_banks > 0);
  GPUHMS_CHECK(!fields_.row_bits.empty());
  int hi = fields_.transaction_bits - 1;
  auto check_group = [&](const std::vector<int>& g) {
    for (int b : g) {
      GPUHMS_CHECK_MSG(b >= fields_.transaction_bits,
                       "field bit overlaps transaction offset");
      hi = std::max(hi, b);
    }
  };
  check_group(fields_.bank_bits);
  check_group(fields_.column_bits);
  check_group(fields_.row_bits);
  // No role may be assigned twice.
  std::vector<int> all;
  for (const auto* g : {&fields_.bank_bits, &fields_.column_bits,
                        &fields_.row_bits})
    all.insert(all.end(), g->begin(), g->end());
  std::sort(all.begin(), all.end());
  GPUHMS_CHECK_MSG(std::adjacent_find(all.begin(), all.end()) == all.end(),
                   "address bit assigned to two roles");
  usable_bits_ = hi + 1;
}

AddressMapping::Decoded AddressMapping::decode(std::uint64_t addr) const {
  Decoded d;
  d.bank = static_cast<int>(extract_bits(addr, fields_.bank_bits) %
                            static_cast<std::uint64_t>(fields_.num_banks));
  d.row = extract_bits(addr, fields_.row_bits);
  d.column = extract_bits(addr, fields_.column_bits);
  return d;
}

AddressMapping kepler_mapping(const GpuArch& arch) {
  AddressMapping::Fields f;
  f.transaction_bits = 7;
  f.bank_bits = {7, 8, 9, 10, 11, 12, 13};
  f.column_bits = {14, 15, 16, 17};
  f.row_bits = {18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33};
  f.num_banks = arch.total_banks();
  return AddressMapping(std::move(f));
}

}  // namespace gpuhms
