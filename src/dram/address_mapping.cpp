#include "dram/address_mapping.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuhms {

std::uint64_t extract_bits(std::uint64_t addr,
                           const std::vector<int>& positions) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    v |= ((addr >> positions[i]) & 1ull) << i;
  }
  return v;
}

AddressMapping::AddressMapping(Fields f) : fields_(std::move(f)) {
  GPUHMS_CHECK(fields_.num_banks > 0);
  GPUHMS_CHECK(!fields_.row_bits.empty());
  int hi = fields_.transaction_bits - 1;
  auto check_group = [&](const std::vector<int>& g) {
    for (int b : g) {
      GPUHMS_CHECK_MSG(b >= fields_.transaction_bits,
                       "field bit overlaps transaction offset");
      hi = std::max(hi, b);
    }
  };
  check_group(fields_.bank_bits);
  check_group(fields_.column_bits);
  check_group(fields_.row_bits);
  // No role may be assigned twice.
  std::vector<int> all;
  for (const auto* g : {&fields_.bank_bits, &fields_.column_bits,
                        &fields_.row_bits})
    all.insert(all.end(), g->begin(), g->end());
  std::sort(all.begin(), all.end());
  GPUHMS_CHECK_MSG(std::adjacent_find(all.begin(), all.end()) == all.end(),
                   "address bit assigned to two roles");
  if (!fields_.bank_xor_bits.empty()) {
    GPUHMS_CHECK_MSG(fields_.bank_xor_bits.size() == fields_.bank_bits.size(),
                     "bank_xor_bits must match bank_bits length");
    GPUHMS_CHECK_MSG(
        fields_.bank_bits.size() < 31 &&
            fields_.num_banks == (1 << static_cast<int>(fields_.bank_bits.size())),
        "XOR-swizzled maps require num_banks == 2^|bank_bits|");
    for (int b : fields_.bank_xor_bits) {
      GPUHMS_CHECK_MSG(b >= fields_.transaction_bits,
                       "xor bit overlaps transaction offset");
      GPUHMS_CHECK_MSG(std::find(fields_.bank_bits.begin(),
                                 fields_.bank_bits.end(),
                                 b) == fields_.bank_bits.end(),
                       "xor bit may not be a bank bit");
      hi = std::max(hi, b);
    }
  }
  usable_bits_ = hi + 1;
}

AddressMapping::Decoded AddressMapping::decode(std::uint64_t addr) const {
  Decoded d;
  std::uint64_t bank_field = extract_bits(addr, fields_.bank_bits);
  if (!fields_.bank_xor_bits.empty())
    bank_field ^= extract_bits(addr, fields_.bank_xor_bits);
  d.bank = static_cast<int>(bank_field %
                            static_cast<std::uint64_t>(fields_.num_banks));
  d.row = extract_bits(addr, fields_.row_bits);
  d.column = extract_bits(addr, fields_.column_bits);
  return d;
}

namespace {

// Inverse of extract_bits: scatter the low |positions| bits of `value` to
// the given address-bit positions.
std::uint64_t deposit_bits(std::uint64_t value,
                           const std::vector<int>& positions) {
  std::uint64_t addr = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    addr |= ((value >> i) & 1ull) << positions[i];
  }
  return addr;
}

}  // namespace

std::uint64_t AddressMapping::encode(const Decoded& d) const {
  GPUHMS_CHECK(d.bank >= 0 && d.bank < fields_.num_banks);
  GPUHMS_CHECK_MSG(fields_.bank_bits.size() >= 64 ||
                       static_cast<std::uint64_t>(d.bank) <
                           (1ull << fields_.bank_bits.size()),
                   "bank index does not fit the bank bit field");
  GPUHMS_CHECK(fields_.column_bits.size() >= 64 ||
               d.column < (1ull << fields_.column_bits.size()));
  GPUHMS_CHECK(fields_.row_bits.size() >= 64 ||
               d.row < (1ull << fields_.row_bits.size()));
  std::uint64_t addr = deposit_bits(d.row, fields_.row_bits) |
                       deposit_bits(d.column, fields_.column_bits);
  // Row/column bits are already placed, so the swizzle contribution is fixed;
  // store bank ^ x in the bank field and decode's XOR recovers d.bank.
  std::uint64_t bank_field = static_cast<std::uint64_t>(d.bank);
  if (!fields_.bank_xor_bits.empty())
    bank_field ^= extract_bits(addr, fields_.bank_xor_bits);
  return addr | deposit_bits(bank_field, fields_.bank_bits);
}

bool AddressMapping::invertible() const {
  if (fields_.bank_bits.size() >= 31 ||
      fields_.num_banks != (1 << static_cast<int>(fields_.bank_bits.size())))
    return false;
  std::size_t classified = fields_.bank_bits.size() +
                           fields_.column_bits.size() +
                           fields_.row_bits.size();
  return static_cast<int>(classified) + fields_.transaction_bits ==
         usable_bits_;
}

AddressMapping kepler_mapping(const GpuArch& arch) {
  AddressMapping::Fields f;
  f.transaction_bits = 7;
  f.bank_bits = {7, 8, 9, 10, 11, 12, 13};
  f.column_bits = {14, 15, 16, 17};
  f.row_bits = {18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33};
  f.num_banks = arch.total_banks();
  return AddressMapping(std::move(f));
}

AddressMapping arch_mapping(const GpuArch& arch) {
  AddressMapping::Fields f;
  f.transaction_bits = arch.addr_map.transaction_bits;
  f.bank_bits = arch.addr_map.bank_bits;
  f.column_bits = arch.addr_map.column_bits;
  f.row_bits = arch.addr_map.row_bits;
  f.bank_xor_bits = arch.addr_map.bank_xor_bits;
  f.num_banks = arch.total_banks();
  return AddressMapping(std::move(f));
}

}  // namespace gpuhms
