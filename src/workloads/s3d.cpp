// SHOC S3D (gr_base): per-cell chemistry rates — species-strided reads of
// pressure/temperature (gpu_p) and mass fractions (gpu_y) with heavy
// transcendental compute. Evaluation tests move gpu_p and/or gpu_y to 1-D
// texture (S3D_1..3 in Fig. 5).
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_s3d(int cells, int species) {
  KernelInfo k;
  k.name = "s3d";
  k.threads_per_block = 128;
  k.num_blocks = (cells + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl p{.name = "gpu_p", .dtype = DType::F32,
              .elems = static_cast<std::size_t>(cells) * 2, .width = 256};
  ArrayDecl y{.name = "gpu_y", .dtype = DType::F32,
              .elems = static_cast<std::size_t>(cells) *
                       static_cast<std::size_t>(species),
              .width = 256};
  ArrayDecl rf{.name = "gpu_rf", .dtype = DType::F32,
               .elems = static_cast<std::size_t>(cells) *
                        static_cast<std::size_t>(species),
               .written = true};
  k.arrays = {p, y, rf};

  const int ip = 0, iy = 1, irf = 2;
  const std::int64_t n = cells;
  k.fn = [n, species, ip, iy, irf](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= n) return;
    auto cell = [&](int l) {
      const std::int64_t i = ctx.thread_id(l);
      return i < n ? i : kInactiveLane;
    };
    // Pressure and temperature.
    em.load(ip, em.by_lane(cell));
    em.load(ip, em.by_lane([&](int l) {
      const std::int64_t i = cell(l);
      return i == kInactiveLane ? kInactiveLane : i + n;
    }));
    em.sfu(2, /*uses_prev=*/true);  // log/exp of temperature
    for (int s = 0; s < species; ++s) {
      // Mass fraction of species s: species-strided but coalesced per load.
      em.load(iy, em.by_lane([&](int l) {
        const std::int64_t i = cell(l);
        return i == kInactiveLane
                   ? kInactiveLane
                   : static_cast<std::int64_t>(s) * n + i;
      }));
      // Arrhenius terms: S3D's chemistry is double precision, so the rate
      // math issues over two cycles (replay cause 5 of Sec. III-B).
      em.dalu(2, /*uses_prev=*/true);
      em.sfu(1, /*uses_prev=*/true);
      em.dalu(1, /*uses_prev=*/true);
      em.falu(2, /*uses_prev=*/true);
      em.store(irf, em.by_lane([&](int l) {
        const std::int64_t i = cell(l);
        return i == kInactiveLane
                   ? kInactiveLane
                   : static_cast<std::int64_t>(s) * n + i;
      }), /*uses_prev=*/true);
    }
  };
  return k;
}

}  // namespace gpuhms::workloads
