// SHOC md (Lennard-Jones force, compute_lj_force): per-atom neighbor-list
// traversal with position gathers — the paper's canonical bursty kernel
// (c_a ~ 2.2). Positions default to 1-D texture as in SHOC.
#include "workloads/workloads.hpp"

#include <memory>

#include "common/rng.hpp"

namespace gpuhms::workloads {

KernelInfo make_md(int natoms, int neighbors, std::uint64_t seed) {
  KernelInfo k;
  k.name = "md";
  k.threads_per_block = 128;
  k.num_blocks = (natoms + k.threads_per_block - 1) / k.threads_per_block;

  // Neighbor lists: mostly spatially local with a random tail, stored
  // neighbor-major (j * natoms + i) as in SHOC.
  auto neigh = std::make_shared<std::vector<std::int64_t>>();
  neigh->resize(static_cast<std::size_t>(natoms) * neighbors);
  Rng rng(seed);
  for (int i = 0; i < natoms; ++i) {
    for (int j = 0; j < neighbors; ++j) {
      std::int64_t nb = rng.next_bool(0.7)
                            ? i + static_cast<std::int64_t>(rng.next_below(96)) - 48
                            : static_cast<std::int64_t>(rng.next_below(
                                  static_cast<std::uint64_t>(natoms)));
      if (nb < 0) nb = 0;
      if (nb >= natoms) nb = natoms - 1;
      (*neigh)[static_cast<std::size_t>(j) * natoms + i] = nb;
    }
  }

  ArrayDecl position{.name = "d_position", .dtype = DType::F32,
                     .elems = static_cast<std::size_t>(natoms) * 4,
                     .width = 256,
                     .default_space = MemSpace::Texture1D};
  ArrayDecl neigh_arr{.name = "neighList", .dtype = DType::I32,
                      .elems = neigh->size(), .width = 256};
  ArrayDecl force{.name = "d_force", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(natoms) * 4,
                  .written = true};
  k.arrays = {position, neigh_arr, force};

  const int ipos = 0, ineigh = 1, iforce = 2;
  k.fn = [natoms, neighbors, neigh, ipos, ineigh, iforce](
             WarpEmitter& em, const WarpCtx& ctx) {
    auto atom = [&](int l) { return ctx.thread_id(l); };
    const std::int64_t first = atom(0);
    if (first >= natoms) return;
    // Own position (x,y,z).
    for (int c = 0; c < 3; ++c) {
      em.load(ipos, em.by_lane([&](int l) {
        const std::int64_t i = atom(l);
        return i < natoms ? i * 4 + c : kInactiveLane;
      }));
    }
    for (int j = 0; j < neighbors; ++j) {
      // neighList[j * natoms + i]: coalesced.
      em.load(ineigh, em.by_lane([&](int l) {
        const std::int64_t i = atom(l);
        return i < natoms ? static_cast<std::int64_t>(j) * natoms + i
                          : kInactiveLane;
      }));
      // Gather the neighbor position (x,y,z): divergent.
      for (int c = 0; c < 3; ++c) {
        em.load(ipos, em.by_lane([&](int l) {
          const std::int64_t i = atom(l);
          if (i >= natoms) return kInactiveLane;
          const std::int64_t nb =
              (*neigh)[static_cast<std::size_t>(j) * natoms + i];
          return nb * 4 + c;
        }), /*uses_prev=*/c == 0);
      }
      // r^2, LJ terms.
      em.falu(6, /*uses_prev=*/true);
      em.sfu(1, /*uses_prev=*/true);
      em.falu(3, /*uses_prev=*/true);
    }
    for (int c = 0; c < 3; ++c) {
      em.store(iforce, em.by_lane([&](int l) {
        const std::int64_t i = atom(l);
        return i < natoms ? i * 4 + c : kInactiveLane;
      }), /*uses_prev=*/c == 0);
    }
  };
  return k;
}

}  // namespace gpuhms::workloads
