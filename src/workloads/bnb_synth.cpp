// Synthetic many-array kernel for exercising branch-and-bound placement
// search: n small read-only arrays give a 5^n placement space (390625 at the
// default n = 8) — far past the exhaustive enumeration cap — while each array
// is tiny enough (2 KiB) that every combination of spaces is legal, so the
// search tree has no capacity-pruned branches and the admissible bound does
// all the cutting. The access pattern (wide bursts of independent coalesced
// loads, cache-resident working set) makes the texture path the clear
// optimum, which keeps the optimum near the bound's per-array floor — the
// regime where branch-and-bound provably explores a small fraction of the
// space.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_bnb_synth(int n_arrays, int iters) {
  KernelInfo k;
  k.name = "bnb_synth";
  k.threads_per_block = 256;
  // 104 blocks = 13 SMs x 8 blocks: a full wave at maximum occupancy.
  k.num_blocks = 104;

  constexpr std::size_t kElems = 512;  // 2 KiB per array
  for (int a = 0; a < n_arrays; ++a) {
    ArrayDecl d{.name = "A" + std::to_string(a), .dtype = DType::F32,
                .elems = kElems, .width = 64,
                .shared_slice_elems = kElems};
    k.arrays.push_back(d);
  }

  k.fn = [n_arrays, iters](WarpEmitter& em, const WarpCtx& ctx) {
    for (int r = 0; r < iters; ++r) {
      // A burst of 2 x n_arrays independent coalesced loads (no RAW chain),
      // rotating the 64-element window so every warp sweeps each array.
      for (int a = 0; a < n_arrays; ++a) {
        for (int s = 0; s < 2; ++s) {
          const std::int64_t base =
              (ctx.warp_global_id() * 64 + r * 64 + s * 32) %
              static_cast<std::int64_t>(kElems);
          em.load(a, em.by_lane([&](int l) { return base + l; }));
        }
      }
      em.falu(2, /*uses_prev=*/true);
      em.ialu(1);
    }
  };
  return k;
}

}  // namespace gpuhms::workloads
