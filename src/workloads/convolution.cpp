// CUDA SDK convolutionSeparable: the row pass (convo1 in the paper's
// Table I) slides a horizontal window; the column pass (convo2) slides a
// vertical one, turning the source reads into width-strided accesses whose
// 2-D locality the texture placements change materially. The filter taps
// (c_Kernel) default to constant memory, as in the SDK. Training benchmark
// in Table IV.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_convolution(int width, int height, int radius) {
  KernelInfo k;
  k.name = "convolution";
  k.threads_per_block = 128;
  const std::int64_t pixels = static_cast<std::int64_t>(width) * height;
  k.num_blocks = (pixels + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl src{.name = "d_Src", .dtype = DType::F32,
                .elems = static_cast<std::size_t>(pixels),
                .width = static_cast<std::size_t>(width)};
  ArrayDecl taps{.name = "c_Kernel", .dtype = DType::F32,
                 .elems = static_cast<std::size_t>(2 * radius + 1),
                 .shared_slice_elems = static_cast<std::size_t>(2 * radius + 1),
                 .default_space = MemSpace::Constant};
  ArrayDecl dst{.name = "d_Dst", .dtype = DType::F32,
                .elems = static_cast<std::size_t>(pixels), .written = true};
  k.arrays = {src, taps, dst};

  const int isrc = 0, itaps = 1, idst = 2;
  k.fn = [width, pixels, radius, isrc, itaps, idst](WarpEmitter& em,
                                                    const WarpCtx& ctx) {
    auto pixel = [&](int l) { return ctx.thread_id(l); };
    if (pixel(0) >= pixels) return;
    em.ialu(2);  // x/y decomposition
    for (int t = -radius; t <= radius; ++t) {
      // Clamped horizontal window: overlapping, well-coalesced reads.
      em.load(isrc, em.by_lane([&](int l) {
        const std::int64_t p = pixel(l);
        if (p >= pixels) return kInactiveLane;
        const std::int64_t y = p / width;
        std::int64_t x = p % width + t;
        if (x < 0) x = 0;
        if (x >= width) x = width - 1;
        return y * width + x;
      }));
      // Filter tap: same element for the whole warp (broadcast).
      em.load(itaps, em.bcast(t + radius));
      em.falu(1, /*uses_prev=*/true);  // fma
    }
    em.store(idst, em.by_lane([&](int l) {
      const std::int64_t p = pixel(l);
      return p < pixels ? p : kInactiveLane;
    }), /*uses_prev=*/true);
  };
  return k;
}

KernelInfo make_convolution_cols(int width, int height, int radius) {
  KernelInfo k = make_convolution(width, height, radius);
  k.name = "convolution_cols";
  const int isrc = 0, itaps = 1, idst = 2;
  const std::int64_t pixels = static_cast<std::int64_t>(width) * height;
  k.fn = [width, height, pixels, radius, isrc, itaps, idst](
             WarpEmitter& em, const WarpCtx& ctx) {
    auto pixel = [&](int l) { return ctx.thread_id(l); };
    if (pixel(0) >= pixels) return;
    em.ialu(2);
    for (int t = -radius; t <= radius; ++t) {
      // Clamped vertical window: width-strided reads across rows.
      em.load(isrc, em.by_lane([&](int l) {
        const std::int64_t p = pixel(l);
        if (p >= pixels) return kInactiveLane;
        const std::int64_t x = p % width;
        std::int64_t y = p / width + t;
        if (y < 0) y = 0;
        if (y >= height) y = height - 1;
        return y * width + x;
      }));
      em.load(itaps, em.bcast(t + radius));
      em.falu(1, /*uses_prev=*/true);
    }
    em.store(idst, em.by_lane([&](int l) {
      const std::int64_t p = pixel(l);
      return p < pixels ? p : kInactiveLane;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
