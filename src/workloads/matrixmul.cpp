// Tiled dense matrix multiply (CUDA SDK matrixMul): each block stages a
// tile of A and B into shared memory and iterates the inner product. The
// Table IV tests move A/B to 1-D and 2-D texture memory.
#include "workloads/workloads.hpp"

#include "common/check.hpp"

namespace gpuhms::workloads {

KernelInfo make_matrixmul(int n, int tile) {
  GPUHMS_CHECK(n % tile == 0 && tile * tile % kWarpSize == 0);
  KernelInfo k;
  k.name = "matrixmul";
  k.threads_per_block = tile * tile;
  const int grid = n / tile;
  k.num_blocks = static_cast<std::int64_t>(grid) * grid;

  const std::size_t elems = static_cast<std::size_t>(n) * n;
  ArrayDecl A{.name = "A", .dtype = DType::F32, .elems = elems,
              .width = static_cast<std::size_t>(n)};
  ArrayDecl B = A;
  B.name = "B";
  ArrayDecl C = A;
  C.name = "C";
  C.written = true;
  ArrayDecl As{.name = "As", .dtype = DType::F32,
               .elems = static_cast<std::size_t>(tile) * tile,
               .width = static_cast<std::size_t>(tile), .written = true,
               .shared_slice_elems = static_cast<std::size_t>(tile) * tile,
               .default_space = MemSpace::Shared};
  ArrayDecl Bs = As;
  Bs.name = "Bs";
  A.shared_slice_elems = static_cast<std::size_t>(tile) * tile;
  B.shared_slice_elems = A.shared_slice_elems;
  k.arrays = {A, B, C, As, Bs};

  const int iA = 0, iB = 1, iC = 2, iAs = 3, iBs = 4;
  k.fn = [n, tile, grid, iA, iB, iC, iAs, iBs](WarpEmitter& em,
                                               const WarpCtx& ctx) {
    const int bx = static_cast<int>(ctx.block % grid);
    const int by = static_cast<int>(ctx.block / grid);
    // Thread (tx, ty) within the tile; lanes are row-major in the block.
    auto tx = [&](int l) {
      return (ctx.warp_in_block * kWarpSize + l) % tile;
    };
    auto ty = [&](int l) {
      return (ctx.warp_in_block * kWarpSize + l) / tile;
    };
    for (int t = 0; t < grid; ++t) {
      // As[ty][tx] = A[by*tile+ty][t*tile+tx]
      em.load(iA, em.by_lane([&](int l) {
        return static_cast<std::int64_t>(by * tile + ty(l)) * n + t * tile +
               tx(l);
      }));
      em.store(iAs, em.by_lane([&](int l) {
        return static_cast<std::int64_t>(ty(l)) * tile + tx(l);
      }));
      // Bs[ty][tx] = B[t*tile+ty][bx*tile+tx]
      em.load(iB, em.by_lane([&](int l) {
        return static_cast<std::int64_t>(t * tile + ty(l)) * n + bx * tile +
               tx(l);
      }));
      em.store(iBs, em.by_lane([&](int l) {
        return static_cast<std::int64_t>(ty(l)) * tile + tx(l);
      }));
      em.sync();
      // Inner product over the tile.
      for (int kk = 0; kk < tile; ++kk) {
        em.load(iAs, em.by_lane([&](int l) {
          return static_cast<std::int64_t>(ty(l)) * tile + kk;
        }));
        em.load(iBs, em.by_lane([&](int l) {
          return static_cast<std::int64_t>(kk) * tile + tx(l);
        }));
        em.falu(1, /*uses_prev=*/true);  // fma into the accumulator
      }
      em.sync();
    }
    em.store(iC, em.by_lane([&](int l) {
      return static_cast<std::int64_t>(by * tile + ty(l)) * n + bx * tile +
             tx(l);
    }));
  };
  return k;
}

KernelInfo make_matrixmul_naive(int n) {
  // Untiled variant: every thread walks a full row of A and column of B
  // from off-chip memory — the quadratic-reuse pattern whose caching the
  // texture placements transform most visibly. Each warp covers one tile
  // row of C (lanes = consecutive columns).
  KernelInfo k;
  k.name = "matrixmul_naive";
  k.threads_per_block = 128;
  const std::int64_t cells = static_cast<std::int64_t>(n) * n;
  k.num_blocks = (cells + k.threads_per_block - 1) / k.threads_per_block;

  const std::size_t elems = static_cast<std::size_t>(n) * n;
  ArrayDecl A{.name = "A", .dtype = DType::F32, .elems = elems,
              .width = static_cast<std::size_t>(n)};
  ArrayDecl B = A;
  B.name = "B";
  ArrayDecl C = A;
  C.name = "C";
  C.written = true;
  k.arrays = {A, B, C};

  const int iA = 0, iB = 1, iC = 2;
  k.fn = [n, cells, iA, iB, iC](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= cells) return;
    auto row = [&](int l) { return ctx.thread_id(l) / n; };
    auto col = [&](int l) { return ctx.thread_id(l) % n; };
    em.ialu(2);
    for (int kk = 0; kk < n; ++kk) {
      // A[row][kk]: one word per distinct row in the warp (broadcast-ish).
      em.load(iA, em.by_lane([&](int l) {
        const std::int64_t t = ctx.thread_id(l);
        return t < cells ? row(l) * n + kk : kInactiveLane;
      }));
      // B[kk][col]: coalesced across lanes, column-strided across kk.
      em.load(iB, em.by_lane([&](int l) {
        const std::int64_t t = ctx.thread_id(l);
        return t < cells ? static_cast<std::int64_t>(kk) * n + col(l)
                         : kInactiveLane;
      }));
      em.falu(1, /*uses_prev=*/true);
    }
    em.store(iC, em.by_lane([&](int l) {
      const std::int64_t t = ctx.thread_id(l);
      return t < cells ? t : kInactiveLane;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
