// SHOC md5hash (FindKeyWithDigest): almost pure integer compute with long
// dependency chains; only the tiny foundKey result array touches memory.
// The evaluation test moves foundKey to shared memory (G->S).
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_md5hash(int keys) {
  KernelInfo k;
  k.name = "md5hash";
  k.threads_per_block = 128;
  k.num_blocks = (keys + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl found{.name = "foundKey", .dtype = DType::I32, .elems = 8,
                  .written = true, .shared_slice_elems = 8};
  k.arrays = {found};

  const int ifound = 0;
  const std::int64_t total = keys;
  k.fn = [total, ifound](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= total) return;
    // Four MD5 rounds x 16 steps, each a short dependent integer chain.
    for (int round = 0; round < 4; ++round) {
      for (int step = 0; step < 16; ++step) {
        em.ialu(3, /*uses_prev=*/true);
        em.ialu(1);
      }
    }
    // Digest comparison; the (rare) match writes the key.
    em.ialu(4, /*uses_prev=*/true);
    em.store(ifound, em.by_lane([&](int l) {
      // A single lane in the whole grid reports the found key.
      return ctx.block == 0 && ctx.warp_in_block == 0 && l == 0
                 ? 0
                 : kInactiveLane;
    }));
  };
  return k;
}

}  // namespace gpuhms::workloads
