// SHOC reduction: grid-stride global loads into a per-block shared buffer,
// then a tree reduction over shared memory with barriers. The evaluation
// test moves sdata to global memory (S->G), multiplying off-chip traffic —
// the Reduction_2 case whose row-buffer misses Fig. 5 highlights.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_reduction(std::int64_t n) {
  KernelInfo k;
  k.name = "reduction";
  k.threads_per_block = 256;
  const int grid_stride_loads = 4;
  k.num_blocks = n / (k.threads_per_block * grid_stride_loads);
  if (k.num_blocks < 1) k.num_blocks = 1;

  ArrayDecl idata{.name = "g_idata", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(n), .width = 256};
  ArrayDecl sdata{.name = "sdata", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(k.threads_per_block) *
                           static_cast<std::size_t>(k.num_blocks),
                  .written = true,
                  .shared_slice_elems =
                      static_cast<std::size_t>(k.threads_per_block),
                  .default_space = MemSpace::Shared};
  ArrayDecl odata{.name = "g_odata", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(k.num_blocks),
                  .written = true};
  k.arrays = {idata, sdata, odata};

  const int iin = 0, ish = 1, iout = 2;
  const int tpb = k.threads_per_block;
  const std::int64_t blocks = k.num_blocks;
  k.fn = [n, tpb, blocks, grid_stride_loads, iin, ish, iout](
             WarpEmitter& em, const WarpCtx& ctx) {
    auto tid = [&](int l) { return ctx.warp_in_block * kWarpSize + l; };
    // Grid-stride accumulation.
    for (int g = 0; g < grid_stride_loads; ++g) {
      em.load(iin, em.by_lane([&](int l) {
        const std::int64_t i =
            (static_cast<std::int64_t>(g) * blocks + ctx.block) * tpb + tid(l);
        return i < n ? i : kInactiveLane;
      }));
      em.falu(1, /*uses_prev=*/true);
    }
    // sdata[tid] = sum (block-local index).
    em.store(ish, em.by_lane([&](int l) {
      return ctx.block * tpb + tid(l);
    }), /*uses_prev=*/true);
    em.sync();
    // Tree reduction.
    for (int s = tpb / 2; s >= 1; s /= 2) {
      em.load(ish, em.by_lane([&](int l) {
        const int t = tid(l);
        return t < s ? ctx.block * tpb + t + s : kInactiveLane;
      }));
      em.falu(1, /*uses_prev=*/true);
      em.store(ish, em.by_lane([&](int l) {
        const int t = tid(l);
        return t < s ? ctx.block * tpb + t : kInactiveLane;
      }), /*uses_prev=*/true);
      em.sync();
    }
    em.store(iout, em.by_lane([&](int l) {
      return tid(l) == 0 ? ctx.block : kInactiveLane;
    }));
  };
  return k;
}

}  // namespace gpuhms::workloads
