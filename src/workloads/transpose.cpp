// CUDA SDK transpose (naive): coalesced reads, fully strided writes — the
// write divergence and its row-buffer conflicts are what the placement of
// idata/odata modulates. Training benchmark in Table IV.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_transpose(int n) {
  KernelInfo k;
  k.name = "transpose";
  k.threads_per_block = 128;
  const std::int64_t elems = static_cast<std::int64_t>(n) * n;
  k.num_blocks = (elems + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl idata{.name = "idata", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(elems),
                  .width = static_cast<std::size_t>(n)};
  ArrayDecl odata = idata;
  odata.name = "odata";
  odata.written = true;
  k.arrays = {idata, odata};

  const int iin = 0, iout = 1;
  k.fn = [n, elems, iin, iout](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= elems) return;
    em.ialu(2);  // x/y index math
    em.load(iin, em.by_lane([&](int l) {
      const std::int64_t p = ctx.thread_id(l);
      return p < elems ? p : kInactiveLane;
    }));
    // odata[x][y] = idata[y][x]: stride-n writes.
    em.store(iout, em.by_lane([&](int l) {
      const std::int64_t p = ctx.thread_id(l);
      if (p >= elems) return kInactiveLane;
      const std::int64_t x = p % n, y = p / n;
      return x * n + y;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
