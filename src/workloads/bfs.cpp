// SHOC bfs (BFS_kernel_warp): per-vertex edge-list traversal of a frontier;
// edge offsets read per vertex, edge destinations streamed, level updates
// scattered. The evaluation test moves edgeArray to 1-D texture.
#include "workloads/workloads.hpp"

#include <memory>

#include "common/rng.hpp"

namespace gpuhms::workloads {

KernelInfo make_bfs(int nodes, int avg_degree, std::uint64_t seed) {
  KernelInfo k;
  k.name = "bfs";
  k.threads_per_block = 128;
  k.num_blocks = (nodes + k.threads_per_block - 1) / k.threads_per_block;

  auto offsets = std::make_shared<std::vector<std::int64_t>>();
  auto dests = std::make_shared<std::vector<std::int64_t>>();
  auto on_frontier = std::make_shared<std::vector<bool>>();
  Rng rng(seed);
  offsets->push_back(0);
  on_frontier->resize(static_cast<std::size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    (*on_frontier)[static_cast<std::size_t>(v)] = rng.next_bool(0.35);
    const int deg = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(2 * avg_degree + 1)));
    for (int e = 0; e < deg; ++e) {
      dests->push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(nodes))));
    }
    offsets->push_back(static_cast<std::int64_t>(dests->size()));
  }

  ArrayDecl edge{.name = "edgeArray", .dtype = DType::I32,
                 .elems = static_cast<std::size_t>(nodes + 1), .width = 256};
  ArrayDecl edge_aux{.name = "edgeArrayAux", .dtype = DType::I32,
                     .elems = dests->size(), .width = 256};
  ArrayDecl levels{.name = "levels", .dtype = DType::I32,
                   .elems = static_cast<std::size_t>(nodes), .written = true};
  k.arrays = {edge, edge_aux, levels};

  const int iedge = 0, iaux = 1, ilev = 2;
  k.fn = [nodes, offsets, dests, on_frontier, iedge, iaux, ilev](
             WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= nodes) return;
    auto vertex = [&](int l) { return ctx.thread_id(l); };
    // Level check for every vertex.
    em.load(ilev, em.by_lane([&](int l) {
      const std::int64_t v = vertex(l);
      return v < nodes ? v : kInactiveLane;
    }));
    em.ialu(1, /*uses_prev=*/true);
    // Frontier vertices read their offsets (predicated lanes).
    auto active = [&](int l) {
      const std::int64_t v = vertex(l);
      return v < nodes && (*on_frontier)[static_cast<std::size_t>(v)];
    };
    em.load(iedge, em.by_lane([&](int l) {
      return active(l) ? vertex(l) : kInactiveLane;
    }));
    em.load(iedge, em.by_lane([&](int l) {
      return active(l) ? vertex(l) + 1 : kInactiveLane;
    }));
    // Walk the edges; the warp iterates to the longest active list.
    std::int64_t max_deg = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (!active(l)) continue;
      const std::int64_t v = vertex(l);
      max_deg = std::max(max_deg,
                         (*offsets)[static_cast<std::size_t>(v) + 1] -
                             (*offsets)[static_cast<std::size_t>(v)]);
    }
    for (std::int64_t e = 0; e < max_deg; ++e) {
      em.load(iaux, em.by_lane([&](int l) {
        if (!active(l)) return kInactiveLane;
        const std::int64_t v = vertex(l);
        const std::int64_t b = (*offsets)[static_cast<std::size_t>(v)];
        return b + e < (*offsets)[static_cast<std::size_t>(v) + 1]
                   ? b + e
                   : kInactiveLane;
      }));
      // Scattered level update of the destination vertex.
      em.store(ilev, em.by_lane([&](int l) {
        if (!active(l)) return kInactiveLane;
        const std::int64_t v = vertex(l);
        const std::int64_t b = (*offsets)[static_cast<std::size_t>(v)];
        if (b + e >= (*offsets)[static_cast<std::size_t>(v) + 1])
          return kInactiveLane;
        return (*dests)[static_cast<std::size_t>(b + e)];
      }), /*uses_prev=*/true);
    }
  };
  return k;
}

}  // namespace gpuhms::workloads
