// SHOC spmv (CSR vector kernel): one warp per row; val/cols stream within a
// row, the source vector is gathered through 1-D texture by default. The
// gather produces the divergent, bursty DRAM traffic the paper's queuing
// study highlights.
#include "workloads/workloads.hpp"

#include <algorithm>
#include <memory>

#include "common/rng.hpp"

namespace gpuhms::workloads {

KernelInfo make_spmv(int rows, int avg_nnz_per_row, std::uint64_t seed) {
  KernelInfo k;
  k.name = "spmv";
  k.threads_per_block = 128;
  const int warps_per_block = k.threads_per_block / kWarpSize;
  k.num_blocks = (rows + warps_per_block - 1) / warps_per_block;

  // Deterministic CSR structure: row lengths jitter around the average and
  // column indices mix local banding with random scatter.
  auto row_ptr = std::make_shared<std::vector<std::int64_t>>();
  auto cols = std::make_shared<std::vector<std::int64_t>>();
  Rng rng(seed);
  row_ptr->push_back(0);
  for (int r = 0; r < rows; ++r) {
    const int nnz = avg_nnz_per_row / 2 +
                    static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(avg_nnz_per_row)));
    for (int j = 0; j < nnz; ++j) {
      const bool local = rng.next_bool(0.6);
      std::int64_t c = local ? (r + static_cast<std::int64_t>(
                                        rng.next_below(64)) - 32)
                             : static_cast<std::int64_t>(
                                   rng.next_below(static_cast<std::uint64_t>(rows)));
      if (c < 0) c = 0;
      if (c >= rows) c = rows - 1;
      cols->push_back(c);
    }
    row_ptr->push_back(static_cast<std::int64_t>(cols->size()));
  }
  const std::size_t nnz_total = cols->size();

  ArrayDecl val{.name = "val", .dtype = DType::F32, .elems = nnz_total,
                .width = 256};
  ArrayDecl col_arr{.name = "cols", .dtype = DType::I32, .elems = nnz_total,
                    .width = 256};
  ArrayDecl rowd{.name = "rowDelimiters", .dtype = DType::I32,
                 .elems = static_cast<std::size_t>(rows + 1),
                 .shared_slice_elems =
                     static_cast<std::size_t>(warps_per_block + 1)};
  ArrayDecl vec{.name = "d_vec", .dtype = DType::F32,
                .elems = static_cast<std::size_t>(rows), .width = 256,
                .default_space = MemSpace::Texture1D};
  ArrayDecl out{.name = "out", .dtype = DType::F32,
                .elems = static_cast<std::size_t>(rows), .written = true};
  k.arrays = {val, col_arr, rowd, vec, out};

  const int ival = 0, icols = 1, irowd = 2, ivec = 3, iout = 4;
  k.fn = [rows, row_ptr, cols, warps_per_block, ival, icols, irowd, ivec,
          iout](WarpEmitter& em, const WarpCtx& ctx) {
    const std::int64_t row =
        ctx.block * warps_per_block + ctx.warp_in_block;
    if (row >= rows) return;
    // Row delimiters: two broadcast loads.
    em.load(irowd, em.bcast(row));
    em.load(irowd, em.bcast(row + 1));
    em.ialu(2, /*uses_prev=*/true);
    const std::int64_t begin = (*row_ptr)[static_cast<std::size_t>(row)];
    const std::int64_t end = (*row_ptr)[static_cast<std::size_t>(row) + 1];
    for (std::int64_t j = begin; j < end; j += kWarpSize) {
      const std::int64_t chunk_end = std::min<std::int64_t>(j + kWarpSize, end);
      auto in_chunk = [&](int l) {
        return j + l < chunk_end ? j + l : kInactiveLane;
      };
      em.load(icols, em.by_lane(in_chunk));
      em.load(ival, em.by_lane(in_chunk));
      // Gather: vec[cols[j+l]] — the divergent access.
      em.load(ivec, em.by_lane([&](int l) {
        return j + l < chunk_end
                   ? (*cols)[static_cast<std::size_t>(j + l)]
                   : kInactiveLane;
      }), /*uses_prev=*/true);
      em.falu(1, /*uses_prev=*/true);  // product + partial sum
    }
    // Warp reduction and the final store by lane 0.
    em.falu(5, /*uses_prev=*/true);
    em.store(iout, em.by_lane([&](int l) {
      return l == 0 ? row : kInactiveLane;
    }));
  };
  return k;
}

KernelInfo make_spmv_scalar(int rows, int avg_nnz_per_row,
                            std::uint64_t seed) {
  // Scalar CSR kernel: one *thread* per row. Each lane walks its own row,
  // so val/cols reads diverge across the warp (the classic scalar-vs-vector
  // CSR trade-off) — a placement-study subject in its own right, and a
  // harsher coalescing regime than the vector kernel above.
  KernelInfo k = make_spmv(rows, avg_nnz_per_row, seed);
  k.name = "spmv_scalar";
  k.num_blocks = (rows + k.threads_per_block - 1) / k.threads_per_block;

  // Rebuild the same CSR structure (same seed) for the closure.
  auto row_ptr = std::make_shared<std::vector<std::int64_t>>();
  auto cols = std::make_shared<std::vector<std::int64_t>>();
  Rng rng(seed);
  row_ptr->push_back(0);
  for (int r = 0; r < rows; ++r) {
    const int nnz = avg_nnz_per_row / 2 +
                    static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(avg_nnz_per_row)));
    for (int j = 0; j < nnz; ++j) {
      const bool local = rng.next_bool(0.6);
      std::int64_t c = local ? (r + static_cast<std::int64_t>(
                                        rng.next_below(64)) - 32)
                             : static_cast<std::int64_t>(
                                   rng.next_below(static_cast<std::uint64_t>(rows)));
      if (c < 0) c = 0;
      if (c >= rows) c = rows - 1;
      cols->push_back(c);
    }
    row_ptr->push_back(static_cast<std::int64_t>(cols->size()));
  }

  const int ival = 0, icols = 1, irowd = 2, ivec = 3, iout = 4;
  k.fn = [rows, row_ptr, cols, ival, icols, irowd, ivec, iout](
             WarpEmitter& em, const WarpCtx& ctx) {
    auto row_of = [&](int l) { return ctx.thread_id(l); };
    if (row_of(0) >= rows) return;
    auto active = [&](int l) { return row_of(l) < rows; };
    // Row delimiters: consecutive rows -> coalesced.
    em.load(irowd, em.by_lane([&](int l) {
      return active(l) ? row_of(l) : kInactiveLane;
    }));
    em.load(irowd, em.by_lane([&](int l) {
      return active(l) ? row_of(l) + 1 : kInactiveLane;
    }));
    em.ialu(2, /*uses_prev=*/true);
    // Each lane walks its own row: iterate to the warp's longest row.
    std::int64_t max_nnz = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (!active(l)) continue;
      const auto r = static_cast<std::size_t>(row_of(l));
      max_nnz = std::max(max_nnz, (*row_ptr)[r + 1] - (*row_ptr)[r]);
    }
    for (std::int64_t j = 0; j < max_nnz; ++j) {
      auto elem = [&](int l) -> std::int64_t {
        if (!active(l)) return kInactiveLane;
        const auto r = static_cast<std::size_t>(row_of(l));
        const std::int64_t b = (*row_ptr)[r];
        return b + j < (*row_ptr)[r + 1] ? b + j : kInactiveLane;
      };
      em.load(icols, em.by_lane(elem));  // divergent: lanes in distant rows
      em.load(ival, em.by_lane(elem));
      em.load(ivec, em.by_lane([&](int l) {
        const std::int64_t e = elem(l);
        return e == kInactiveLane ? kInactiveLane
                                  : (*cols)[static_cast<std::size_t>(e)];
      }), /*uses_prev=*/true);
      em.falu(1, /*uses_prev=*/true);
    }
    em.store(iout, em.by_lane([&](int l) {
      return active(l) ? row_of(l) : kInactiveLane;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
