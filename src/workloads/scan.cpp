// SHOC scan (reduce phase): block-wise reduction of the input followed by a
// shared-memory scan of partial sums. The evaluation test views g_idata as a
// 2-D texture (G->2T).
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_scan(std::int64_t n) {
  KernelInfo k;
  k.name = "scan";
  k.threads_per_block = 256;
  k.num_blocks = n / (k.threads_per_block * 2);
  if (k.num_blocks < 1) k.num_blocks = 1;

  ArrayDecl idata{.name = "g_idata", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(n), .width = 128};
  ArrayDecl s_block{.name = "s_block", .dtype = DType::F32,
                    .elems = static_cast<std::size_t>(k.threads_per_block) *
                             static_cast<std::size_t>(k.num_blocks),
                    .written = true,
                    .shared_slice_elems =
                        static_cast<std::size_t>(k.threads_per_block),
                    .default_space = MemSpace::Shared};
  ArrayDecl osums{.name = "g_osums", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(k.num_blocks),
                  .written = true};
  k.arrays = {idata, s_block, osums};

  const int iin = 0, ish = 1, iout = 2;
  const int tpb = k.threads_per_block;
  k.fn = [n, tpb, iin, ish, iout](WarpEmitter& em, const WarpCtx& ctx) {
    auto tid = [&](int l) { return ctx.warp_in_block * kWarpSize + l; };
    const std::int64_t base = ctx.block * tpb * 2;
    for (int half = 0; half < 2; ++half) {
      em.load(iin, em.by_lane([&](int l) {
        const std::int64_t i = base + half * tpb + tid(l);
        return i < n ? i : kInactiveLane;
      }));
      em.falu(1, /*uses_prev=*/true);
    }
    em.store(ish, em.by_lane([&](int l) {
      return ctx.block * tpb + tid(l);
    }), /*uses_prev=*/true);
    em.sync();
    // Kogge-Stone style scan over shared memory.
    for (int d = 1; d < tpb; d *= 2) {
      em.load(ish, em.by_lane([&](int l) {
        const int t = tid(l);
        return t >= d ? ctx.block * tpb + t - d : kInactiveLane;
      }));
      em.falu(1, /*uses_prev=*/true);
      em.store(ish, em.by_lane([&](int l) {
        const int t = tid(l);
        return t >= d ? ctx.block * tpb + t : kInactiveLane;
      }), /*uses_prev=*/true);
      em.sync();
    }
    em.store(iout, em.by_lane([&](int l) {
      return tid(l) == tpb - 1 ? ctx.block : kInactiveLane;
    }));
  };
  return k;
}

}  // namespace gpuhms::workloads
