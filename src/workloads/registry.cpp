// Table IV registry: the benchmark suites, their sample placements, and the
// placement tests of the paper's training / evaluation split.
//
// One deviation from the table as printed: transposeNaive[odata(G->2T)]
// writes odata, and texture memory is not writable from a kernel (the paper
// presumably used surface stores); we test idata(G->2T) instead so the
// placement stays legal under the hardware constraints our validator
// enforces.
#include "workloads/workloads.hpp"

#include "common/check.hpp"

namespace gpuhms::workloads {

namespace {

struct Move {
  std::string_view array;
  MemSpace to;
};

PlacementTest make_test(const KernelInfo& k, const DataPlacement& sample,
                        std::string id, std::initializer_list<Move> moves) {
  DataPlacement p = sample;
  std::string desc;
  for (const Move& m : moves) {
    const int idx = k.array_index(m.array);
    if (!desc.empty()) desc += ", ";
    desc += std::string(m.array) + "(" +
            std::string(short_code(sample.of(idx))) + "->" +
            std::string(short_code(m.to)) + ")";
    p.set(idx, m.to);
  }
  const auto err = validate_placement(k, p, kepler_arch());
  GPUHMS_CHECK_MSG(!err.has_value(), err ? err->c_str() : "");
  return PlacementTest{std::move(id), std::move(desc), std::move(p)};
}

BenchmarkCase make_case(KernelInfo kernel) {
  BenchmarkCase c;
  c.sample = DataPlacement::defaults(kernel);
  c.name = kernel.name;
  c.kernel = std::move(kernel);
  return c;
}

using gpuhms::MemSpace;
constexpr MemSpace G = MemSpace::Global;
constexpr MemSpace S = MemSpace::Shared;
constexpr MemSpace C = MemSpace::Constant;
constexpr MemSpace T = MemSpace::Texture1D;
constexpr MemSpace T2 = MemSpace::Texture2D;

}  // namespace

std::vector<BenchmarkCase> evaluation_suite() {
  std::vector<BenchmarkCase> suite;

  {
    BenchmarkCase c = make_case(make_bfs());
    c.tests.push_back(make_test(c.kernel, c.sample, "bfs_2",
                                {{"edgeArray", T}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_fft());
    c.tests.push_back(make_test(c.kernel, c.sample, "fft_1", {{"smem", G}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_neuralnet());
    c.tests.push_back(make_test(c.kernel, c.sample, "NN_C", {{"weights", C}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "NN_S", {{"weights", S}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "NN_T", {{"weights", T}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "NN_2T", {{"weights", T2}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_reduction());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "Reduction_2", {{"sdata", G}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_scan());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "SCAN_2", {{"g_idata", T2}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_sort());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "sort_2", {{"sBlockOffsets", G}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_stencil2d());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "stencil2d_2", {{"data", T}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_md5hash());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "md5hash_2", {{"foundKey", S}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_s3d());
    c.tests.push_back(make_test(c.kernel, c.sample, "S3D_1", {{"gpu_p", T}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "S3D_2", {{"gpu_y", T}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "S3D_3",
                                {{"gpu_p", T}, {"gpu_y", T}}));
    suite.push_back(std::move(c));
  }
  return suite;
}

std::vector<BenchmarkCase> training_suite() {
  std::vector<BenchmarkCase> suite;

  {
    BenchmarkCase c = make_case(make_convolution());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "conv_src2T", {{"d_Src", T2}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "conv_srcT", {{"d_Src", T}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "conv_kernG", {{"c_Kernel", G}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "conv_kernT", {{"c_Kernel", T}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_md());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "md_posG", {{"d_position", G}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "md_neighT", {{"neighList", T}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "md_posG_neighT",
                                {{"d_position", G}, {"neighList", T}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "md_pos2T", {{"d_position", T2}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "md_neigh2T", {{"neighList", T2}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_matrixmul());
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_A2T_B2T",
                                {{"A", T2}, {"B", T2}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_A2T", {{"A", T2}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_AT", {{"A", T}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_AT_B2T",
                                {{"A", T}, {"B", T2}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_B2T", {{"B", T2}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_AT_BT",
                                {{"A", T}, {"B", T}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "mm_BT", {{"B", T}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_spmv());
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_rdS_vG",
                                {{"rowDelimiters", S}, {"d_vec", G}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_rdC_vG",
                                {{"rowDelimiters", C}, {"d_vec", G}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_rdT_vG",
                                {{"rowDelimiters", T}, {"d_vec", G}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_rdS",
                                {{"rowDelimiters", S}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_valT_vG",
                                {{"val", T}, {"d_vec", G}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_rdT_vC",
                                {{"rowDelimiters", T}, {"d_vec", C}}));
    c.tests.push_back(make_test(
        c.kernel, c.sample, "spmv_valT_colsT_rdC_vG",
        {{"val", T}, {"cols", T}, {"rowDelimiters", C}, {"d_vec", G}}));
    c.tests.push_back(make_test(c.kernel, c.sample, "spmv_valT_colsT",
                                {{"val", T}, {"cols", T}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "spmv_vG", {{"d_vec", G}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_transpose());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "transpose_i2T", {{"idata", T2}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "transpose_iT", {{"idata", T}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_cfd());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "cfd_varT", {{"variables", T}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_triad());
    c.tests.push_back(make_test(c.kernel, c.sample, "triad_BS", {{"B", S}}));
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c = make_case(make_qtc());
    c.tests.push_back(make_test(c.kernel, c.sample, "qtc_2T",
                                {{"distance_matrix_txt", T2}}));
    suite.push_back(std::move(c));
  }
  return suite;
}

std::vector<BenchmarkCase> event_screening_suite() {
  std::vector<BenchmarkCase> out;
  for (auto& c : training_suite()) {
    if (c.name == "cfd" || c.name == "convolution" || c.name == "md" ||
        c.name == "matrixmul" || c.name == "spmv" || c.name == "transpose") {
      out.push_back(std::move(c));
    }
  }
  // The paper's Table I screens both separable-convolution passes (convo1 =
  // rows, above; convo2 = columns, below). The column pass is not part of
  // the Table IV training/evaluation counts, so it lives only here.
  {
    BenchmarkCase c = make_case(make_convolution_cols());
    c.tests.push_back(
        make_test(c.kernel, c.sample, "convo2_src2T", {{"d_Src", T2}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "convo2_srcT", {{"d_Src", T}}));
    c.tests.push_back(
        make_test(c.kernel, c.sample, "convo2_kernG", {{"c_Kernel", G}}));
    out.push_back(std::move(c));
  }
  return out;
}

BenchmarkCase get_benchmark(std::string_view name) {
  for (auto& c : evaluation_suite()) {
    if (c.name == name) return c;
  }
  for (auto& c : training_suite()) {
    if (c.name == name) return c;
  }
  GPUHMS_CHECK_MSG(false, "unknown benchmark name");
  return BenchmarkCase{};
}

}  // namespace gpuhms::workloads
