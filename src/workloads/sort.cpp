// SHOC sort (radix reorderData step): keys are read coalesced and written
// scattered according to their radix digit; per-block digit offsets live in
// shared memory (sBlockOffsets, the S->G evaluation test).
#include "workloads/workloads.hpp"

#include <memory>

#include "common/rng.hpp"

namespace gpuhms::workloads {

KernelInfo make_sort(std::int64_t n, std::uint64_t seed) {
  KernelInfo k;
  k.name = "sort";
  k.threads_per_block = 256;
  k.num_blocks = n / k.threads_per_block;
  if (k.num_blocks < 1) k.num_blocks = 1;
  constexpr int kRadix = 16;

  // Deterministic digit per key (drives the scatter destinations).
  auto digits = std::make_shared<std::vector<int>>();
  digits->resize(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& d : *digits) d = static_cast<int>(rng.next_below(kRadix));

  ArrayDecl keys_in{.name = "keysIn", .dtype = DType::I32,
                    .elems = static_cast<std::size_t>(n), .width = 256};
  ArrayDecl keys_out{.name = "keysOut", .dtype = DType::I32,
                     .elems = static_cast<std::size_t>(n), .written = true};
  ArrayDecl offsets{.name = "sBlockOffsets", .dtype = DType::I32,
                    .elems = static_cast<std::size_t>(kRadix) *
                             static_cast<std::size_t>(k.num_blocks),
                    .written = true,
                    .shared_slice_elems = kRadix,
                    .default_space = MemSpace::Shared};
  k.arrays = {keys_in, keys_out, offsets};

  const int iin = 0, iout = 1, ioff = 2;
  const int tpb = k.threads_per_block;
  const std::int64_t total = n;
  k.fn = [digits, total, tpb, iin, iout, ioff](WarpEmitter& em,
                                               const WarpCtx& ctx) {
    auto key = [&](int l) { return ctx.block * tpb + ctx.warp_in_block * kWarpSize + l; };
    if (key(0) >= total) return;
    em.load(iin, em.by_lane([&](int l) {
      const std::int64_t i = key(l);
      return i < total ? i : kInactiveLane;
    }));
    em.ialu(3, /*uses_prev=*/true);  // digit extraction
    // Per-digit offset lookup (few distinct words -> broadcast-ish).
    em.load(ioff, em.by_lane([&](int l) {
      const std::int64_t i = key(l);
      if (i >= total) return kInactiveLane;
      return ctx.block * 16 + (*digits)[static_cast<std::size_t>(i)];
    }), /*uses_prev=*/true);
    em.ialu(1, /*uses_prev=*/true);
    // Scatter: destination ordered by digit, spread across the output.
    em.store(iout, em.by_lane([&](int l) {
      const std::int64_t i = key(l);
      if (i >= total) return kInactiveLane;
      const int d = (*digits)[static_cast<std::size_t>(i)];
      const std::int64_t bucket = total / 16;
      return (static_cast<std::int64_t>(d) * bucket + i / 16) %
             total;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
