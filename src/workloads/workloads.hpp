// Benchmark kernels re-expressed in the warp-level DSL (the SHOC / CUDA-SDK
// benchmarks of Table IV). Each factory returns a KernelInfo whose arrays
// carry the benchmark's *default* ("sample") placement; the registry supplies
// the paper's placement tests and the training/evaluation split.
//
// Problem sizes are scaled so one simulator run stays in the tens of
// milliseconds while keeping each kernel's memory access structure — the
// property the models actually consume — faithful to the original.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "kernel/placement.hpp"

namespace gpuhms::workloads {

using gpuhms::DataPlacement;
using gpuhms::KernelInfo;

// --- kernel factories --------------------------------------------------------
KernelInfo make_vecadd(std::int64_t n = 1 << 16);
KernelInfo make_matrixmul(int n = 96, int tile = 16);
// Untiled matrixMul (no shared-memory staging): quadratic off-chip reuse.
KernelInfo make_matrixmul_naive(int n = 64);
KernelInfo make_spmv(int rows = 1024, int avg_nnz_per_row = 48,
                     std::uint64_t seed = 7);
// Scalar CSR variant (one thread per row): divergent val/cols streams.
KernelInfo make_spmv_scalar(int rows = 1024, int avg_nnz_per_row = 24,
                            std::uint64_t seed = 7);
KernelInfo make_md(int natoms = 3072, int neighbors = 24,
                   std::uint64_t seed = 11);
KernelInfo make_convolution(int width = 256, int height = 128,
                            int radius = 8);
// Column pass of the separable convolution ("convo2" in the paper's
// Table I): vertical, width-strided source reads.
KernelInfo make_convolution_cols(int width = 256, int height = 128,
                                 int radius = 8);
KernelInfo make_transpose(int n = 192);
KernelInfo make_bfs(int nodes = 4096, int avg_degree = 8,
                    std::uint64_t seed = 13);
KernelInfo make_reduction(std::int64_t n = 1 << 16);
KernelInfo make_scan(std::int64_t n = 1 << 15);
KernelInfo make_sort(std::int64_t n = 1 << 15, std::uint64_t seed = 17);
KernelInfo make_stencil2d(int width = 256, int height = 128);
KernelInfo make_md5hash(int keys = 8192);
KernelInfo make_triad(std::int64_t n = 1 << 16);
KernelInfo make_fft(int batches = 96);
// Layer sized so the weight matrix is 24 KiB: staged into shared memory it
// halves occupancy (2 blocks/SM) rather than collapsing it — the moderate
// NN_S slowdown regime the paper's Fig. 6 exhibits.
KernelInfo make_neuralnet(int inputs = 64, int outputs = 96,
                          int batch = 256);
KernelInfo make_s3d(int cells = 8192, int species = 6);
KernelInfo make_cfd(int nelr = 4096, std::uint64_t seed = 23);
KernelInfo make_qtc(int points = 1024, int checks = 48,
                    std::uint64_t seed = 29);
// Synthetic n-array kernel whose 5^n placement space exceeds the exhaustive
// enumeration cap — the branch-and-bound search stressor (every placement is
// legal; the texture path is the designed optimum).
KernelInfo make_bnb_synth(int n_arrays = 8, int iters = 12);

// --- Table IV registry ---------------------------------------------------------
struct PlacementTest {
  std::string id;           // figure label, e.g. "NN_C"
  std::string description;  // Table IV notation, e.g. "weights(G->C)"
  DataPlacement placement;
};

struct BenchmarkCase {
  std::string name;
  KernelInfo kernel;
  DataPlacement sample;               // the default data placement
  std::vector<PlacementTest> tests;   // target placements to predict
};

// Evaluation benchmarks (Fig. 5-9): bfs, fft, neuralnet, reduction, scan,
// sort, stencil2d, md5hash, s3d.
std::vector<BenchmarkCase> evaluation_suite();

// T_overlap training benchmarks (38 placements): convolution, md, matrixMul,
// spmv, transpose, cfd, triad, qtc.
std::vector<BenchmarkCase> training_suite();

// Benchmarks used for the Table I event screening (Sec. II-B): cfd,
// convolution, md, matrixMul, spmv, transpose.
std::vector<BenchmarkCase> event_screening_suite();

// Lookup by name across both suites; aborts on unknown names.
BenchmarkCase get_benchmark(std::string_view name);

}  // namespace gpuhms::workloads
