// Vector addition v = a + b — the paper's running example (Fig. 2), whose
// four placements of a/b exhibit the addressing-mode differences of
// Sec. III-B. Also the quickstart kernel.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_vecadd(std::int64_t n) {
  KernelInfo k;
  k.name = "vecadd";
  k.threads_per_block = 128;
  k.num_blocks = (n + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl a{.name = "a", .dtype = DType::F32,
              .elems = static_cast<std::size_t>(n), .width = 256};
  ArrayDecl b = a;
  b.name = "b";
  ArrayDecl v = a;
  v.name = "v";
  v.written = true;
  // When staged into shared, each block only needs its own slice.
  a.shared_slice_elems = static_cast<std::size_t>(k.threads_per_block);
  b.shared_slice_elems = a.shared_slice_elems;
  k.arrays = {a, b, v};

  const int ia = 0, ib = 1, iv = 2;
  k.fn = [n, ia, ib, iv](WarpEmitter& em, const WarpCtx& ctx) {
    const auto idx = em.by_lane([&](int l) {
      const std::int64_t id = ctx.thread_id(l);
      return id < n ? id : kInactiveLane;
    });
    em.ialu(1);            // id = blockIdx.x*blockDim.x + threadIdx.x
    em.load(ia, idx);
    em.load(ib, idx);
    em.falu(1, /*uses_prev=*/true);  // a[id] + b[id]
    em.store(iv, idx, /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
