// SHOC stencil2d: 9-point stencil over a 2-D grid; the vertical neighbors
// make the access pattern 2-D, so the texture placements (the StencilKernel
// data(G->T) evaluation test) change the caching behaviour materially.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_stencil2d(int width, int height) {
  KernelInfo k;
  k.name = "stencil2d";
  k.threads_per_block = 128;
  const std::int64_t pixels = static_cast<std::int64_t>(width) * height;
  k.num_blocks = (pixels + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl data{.name = "data", .dtype = DType::F32,
                 .elems = static_cast<std::size_t>(pixels),
                 .width = static_cast<std::size_t>(width)};
  ArrayDecl out{.name = "newData", .dtype = DType::F32,
                .elems = static_cast<std::size_t>(pixels), .written = true};
  k.arrays = {data, out};

  const int iin = 0, iout = 1;
  k.fn = [width, height, pixels, iin, iout](WarpEmitter& em,
                                            const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= pixels) return;
    em.ialu(2);  // x/y decomposition
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        em.load(iin, em.by_lane([&](int l) {
          const std::int64_t p = ctx.thread_id(l);
          if (p >= pixels) return kInactiveLane;
          std::int64_t x = p % width + dx;
          std::int64_t y = p / width + dy;
          if (x < 0) x = 0;
          if (x >= width) x = width - 1;
          if (y < 0) y = 0;
          if (y >= height) y = height - 1;
          return y * width + x;
        }));
        em.falu(1, /*uses_prev=*/true);
      }
    }
    em.store(iout, em.by_lane([&](int l) {
      const std::int64_t p = ctx.thread_id(l);
      return p < pixels ? p : kInactiveLane;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
