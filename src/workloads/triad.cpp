// SHOC triad: the STREAM kernel A = B * s + C; pure streaming bandwidth.
// The training test moves B into shared memory — the staging copy makes that
// placement strictly worse, a useful signal for the overlap model.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_triad(std::int64_t n) {
  KernelInfo k;
  k.name = "triad";
  k.threads_per_block = 128;
  k.num_blocks = (n + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl b{.name = "B", .dtype = DType::F32,
              .elems = static_cast<std::size_t>(n), .width = 256,
              .shared_slice_elems =
                  static_cast<std::size_t>(k.threads_per_block)};
  ArrayDecl c = b;
  c.name = "C";
  ArrayDecl a = b;
  a.name = "A";
  a.written = true;
  k.arrays = {a, b, c};

  const int ia = 0, ib = 1, ic = 2;
  k.fn = [n, ia, ib, ic](WarpEmitter& em, const WarpCtx& ctx) {
    const auto idx = em.by_lane([&](int l) {
      const std::int64_t i = ctx.thread_id(l);
      return i < n ? i : kInactiveLane;
    });
    em.ialu(1);
    em.load(ib, idx);
    em.load(ic, idx);
    em.falu(1, /*uses_prev=*/true);
    em.store(ia, idx, /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
