// SHOC fft (FFT512_device): each block transforms a 512-point batch staged
// in shared memory; the butterfly passes use power-of-two strides, which
// makes the shared accesses bank-conflict-rich. The evaluation test moves
// smem to global memory (fft_1, S->G), trading bank-conflict replays for
// global divergence replays — the instruction-counting stress case of
// Fig. 7.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_fft(int batches) {
  KernelInfo k;
  k.name = "fft";
  k.threads_per_block = 64;  // 64 threads x 8 points each = 512
  k.num_blocks = batches;
  constexpr int kPoints = 512;
  constexpr int kPerThread = 8;

  ArrayDecl work{.name = "work", .dtype = DType::F32,
                 .elems = static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(batches),
                 .width = kPoints, .written = true};
  ArrayDecl smem{.name = "smem", .dtype = DType::F32,
                 .elems = static_cast<std::size_t>(kPoints) *
                          static_cast<std::size_t>(batches),
                 .written = true,
                 .shared_slice_elems = kPoints,
                 .default_space = MemSpace::Shared};
  k.arrays = {work, smem};

  const int iwork = 0, ismem = 1;
  const int tpb = k.threads_per_block;
  k.fn = [tpb, iwork, ismem](WarpEmitter& em, const WarpCtx& ctx) {
    auto tid = [&](int l) { return ctx.warp_in_block * kWarpSize + l; };
    const std::int64_t batch_base = ctx.block * kPoints;
    // Load the batch from global (coalesced) and stage it.
    for (int p = 0; p < kPerThread; ++p) {
      em.load(iwork, em.by_lane([&](int l) {
        return batch_base + p * tpb + tid(l);
      }));
      em.store(ismem, em.by_lane([&](int l) {
        return batch_base + p * tpb + tid(l);
      }), /*uses_prev=*/true);
    }
    em.sync();
    // Three radix-8 passes: strided shared reads/writes + butterflies.
    for (int pass = 0; pass < 3; ++pass) {
      const int stride = 1 << (3 * pass);  // 1, 8, 64
      for (int p = 0; p < kPerThread; ++p) {
        em.load(ismem, em.by_lane([&](int l) {
          const int t = tid(l);
          return batch_base +
                 static_cast<std::int64_t>((t * kPerThread + p) * stride) %
                     kPoints;
        }));
      }
      em.falu(12, /*uses_prev=*/true);  // radix-8 butterfly + twiddles
      em.sfu(2, /*uses_prev=*/true);
      for (int p = 0; p < kPerThread; ++p) {
        em.store(ismem, em.by_lane([&](int l) {
          const int t = tid(l);
          return batch_base +
                 static_cast<std::int64_t>((t + p * tpb) * stride) % kPoints;
        }), /*uses_prev=*/p == 0);
      }
      em.sync();
    }
    // Write the result back.
    for (int p = 0; p < kPerThread; ++p) {
      em.load(ismem, em.by_lane([&](int l) {
        return batch_base + p * tpb + tid(l);
      }));
      em.store(iwork, em.by_lane([&](int l) {
        return batch_base + p * tpb + tid(l);
      }), /*uses_prev=*/true);
    }
  };
  return k;
}

}  // namespace gpuhms::workloads
