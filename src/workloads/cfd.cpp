// Rodinia/SDK cfd (cuda_compute_flux): per-element flux computation that
// gathers the five conserved variables of each surrounding element through
// an unstructured connectivity — divergent reads of `variables`, the array
// the training test moves to 1-D texture.
#include "workloads/workloads.hpp"

#include <memory>

#include "common/rng.hpp"

namespace gpuhms::workloads {

KernelInfo make_cfd(int nelr, std::uint64_t seed) {
  KernelInfo k;
  k.name = "cfd";
  k.threads_per_block = 128;
  k.num_blocks = (nelr + k.threads_per_block - 1) / k.threads_per_block;
  constexpr int kNeighbors = 4;
  constexpr int kVars = 5;

  auto nbrs = std::make_shared<std::vector<std::int64_t>>();
  nbrs->resize(static_cast<std::size_t>(nelr) * kNeighbors);
  Rng rng(seed);
  for (int i = 0; i < nelr; ++i) {
    for (int j = 0; j < kNeighbors; ++j) {
      std::int64_t nb = rng.next_bool(0.8)
                            ? i + static_cast<std::int64_t>(rng.next_below(32)) - 16
                            : static_cast<std::int64_t>(rng.next_below(
                                  static_cast<std::uint64_t>(nelr)));
      if (nb < 0) nb = 0;
      if (nb >= nelr) nb = nelr - 1;
      (*nbrs)[static_cast<std::size_t>(i) * kNeighbors + j] = nb;
    }
  }

  ArrayDecl variables{.name = "variables", .dtype = DType::F32,
                      .elems = static_cast<std::size_t>(nelr) * kVars,
                      .width = 256};
  ArrayDecl esurr{.name = "elements_surrounding_elements",
                  .dtype = DType::I32,
                  .elems = nbrs->size(), .width = 256};
  ArrayDecl normals{.name = "normals", .dtype = DType::F32,
                    .elems = static_cast<std::size_t>(nelr) * kNeighbors * 3,
                    .width = 256};
  ArrayDecl fluxes{.name = "fluxes", .dtype = DType::F32,
                   .elems = static_cast<std::size_t>(nelr) * kVars,
                   .written = true};
  k.arrays = {variables, esurr, normals, fluxes};

  const int ivar = 0, iesurr = 1, inorm = 2, iflux = 3;
  const std::int64_t n = nelr;
  k.fn = [n, nbrs, ivar, iesurr, inorm, iflux](WarpEmitter& em,
                                               const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= n) return;
    auto elem = [&](int l) {
      const std::int64_t i = ctx.thread_id(l);
      return i < n ? i : kInactiveLane;
    };
    // Own variables (density, momentum, energy): struct-of-arrays reads.
    for (int v = 0; v < 5; ++v) {
      em.load(ivar, em.by_lane([&](int l) {
        const std::int64_t i = elem(l);
        return i == kInactiveLane ? kInactiveLane
                                  : static_cast<std::int64_t>(v) * n + i;
      }));
    }
    em.falu(8, /*uses_prev=*/true);  // velocity, pressure, speed of sound
    em.sfu(1, /*uses_prev=*/true);
    for (int j = 0; j < 4; ++j) {
      em.load(iesurr, em.by_lane([&](int l) {
        const std::int64_t i = elem(l);
        return i == kInactiveLane ? kInactiveLane
                                  : i * 4 + j;
      }));
      for (int c = 0; c < 3; ++c) {
        em.load(inorm, em.by_lane([&](int l) {
          const std::int64_t i = elem(l);
          return i == kInactiveLane
                     ? kInactiveLane
                     : (i * 4 + j) * 3 + c;
        }));
      }
      // Gather the neighbor's five variables: divergent.
      for (int v = 0; v < 5; ++v) {
        em.load(ivar, em.by_lane([&](int l) {
          const std::int64_t i = elem(l);
          if (i == kInactiveLane) return kInactiveLane;
          const std::int64_t nb =
              (*nbrs)[static_cast<std::size_t>(i) * 4 +
                      static_cast<std::size_t>(j)];
          return static_cast<std::int64_t>(v) * n + nb;
        }), /*uses_prev=*/v == 0);
      }
      em.falu(12, /*uses_prev=*/true);  // flux contribution
    }
    for (int v = 0; v < 5; ++v) {
      em.store(iflux, em.by_lane([&](int l) {
        const std::int64_t i = elem(l);
        return i == kInactiveLane ? kInactiveLane
                                  : static_cast<std::int64_t>(v) * n + i;
      }), /*uses_prev=*/v == 0);
    }
  };
  return k;
}

}  // namespace gpuhms::workloads
