// SHOC QTC (quality threshold clustering): each thread scans rows of the
// pairwise distance matrix — a 2-D read pattern, which is why the training
// test views distance_matrix as a 2-D texture (G->2T).
#include "workloads/workloads.hpp"

#include <memory>

#include "common/rng.hpp"

namespace gpuhms::workloads {

KernelInfo make_qtc(int points, int checks, std::uint64_t seed) {
  KernelInfo k;
  k.name = "qtc";
  k.threads_per_block = 128;
  k.num_blocks = (points + k.threads_per_block - 1) / k.threads_per_block;

  // Candidate rows each thread examines (deterministic scatter).
  auto rows = std::make_shared<std::vector<std::int64_t>>();
  rows->resize(static_cast<std::size_t>(points) * checks);
  Rng rng(seed);
  for (auto& r : *rows)
    r = static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(points)));

  ArrayDecl dist{.name = "distance_matrix_txt", .dtype = DType::F32,
                 .elems = static_cast<std::size_t>(points) *
                          static_cast<std::size_t>(points),
                 .width = static_cast<std::size_t>(points)};
  ArrayDecl membership{.name = "membership", .dtype = DType::I32,
                       .elems = static_cast<std::size_t>(points),
                       .written = true};
  k.arrays = {dist, membership};

  const int idist = 0, imem = 1;
  const std::int64_t n = points;
  k.fn = [n, checks, rows, idist, imem](WarpEmitter& em, const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= n) return;
    auto point = [&](int l) {
      const std::int64_t i = ctx.thread_id(l);
      return i < n ? i : kInactiveLane;
    };
    for (int c = 0; c < checks; ++c) {
      // distance_matrix[row_c(thread)][thread]: each lane reads its own
      // column of a (scattered) row.
      em.load(idist, em.by_lane([&](int l) {
        const std::int64_t i = point(l);
        if (i == kInactiveLane) return kInactiveLane;
        const std::int64_t r =
            (*rows)[static_cast<std::size_t>(i) * checks +
                    static_cast<std::size_t>(c)];
        return r * n + i;
      }));
      em.falu(2, /*uses_prev=*/true);  // threshold compare + accumulate
    }
    em.ialu(2, /*uses_prev=*/true);
    em.store(imem, em.by_lane(point), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
