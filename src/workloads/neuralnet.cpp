// SHOC neuralnet (kernelFeedForward1): every output neuron walks the input
// vector, reading input[i] as a warp-wide broadcast and weights[i*out + j]
// coalesced. Fig. 6 of the paper ranks five placements of `weights`
// (G, C, S, T, 2T): constant suffers indexed-divergence replays (NN_C),
// shared pays the staging copy (NN_S) — the cases PORPLE mis-ranks.
#include "workloads/workloads.hpp"

namespace gpuhms::workloads {

KernelInfo make_neuralnet(int inputs, int outputs, int batch) {
  KernelInfo k;
  k.name = "neuralnet";
  k.threads_per_block = 128;
  const std::int64_t jobs = static_cast<std::int64_t>(outputs) * batch;
  k.num_blocks = (jobs + k.threads_per_block - 1) / k.threads_per_block;

  ArrayDecl weights{.name = "weights", .dtype = DType::F32,
                    .elems = static_cast<std::size_t>(inputs) *
                             static_cast<std::size_t>(outputs),
                    .width = static_cast<std::size_t>(outputs)};
  // The whole weight matrix must be resident per block when staged.
  weights.shared_slice_elems = weights.elems;
  ArrayDecl input{.name = "input", .dtype = DType::F32,
                  .elems = static_cast<std::size_t>(inputs) *
                           static_cast<std::size_t>(batch),
                  .width = static_cast<std::size_t>(inputs)};
  ArrayDecl output{.name = "output", .dtype = DType::F32,
                   .elems = static_cast<std::size_t>(jobs), .written = true};
  k.arrays = {weights, input, output};

  const int iw = 0, iin = 1, iout = 2;
  k.fn = [inputs, outputs, jobs, iw, iin, iout](WarpEmitter& em,
                                                const WarpCtx& ctx) {
    if (ctx.thread_id(0) >= jobs) return;
    // thread -> (sample, neuron j); consecutive threads take consecutive j.
    auto neuron = [&](int l) { return ctx.thread_id(l) % outputs; };
    auto sample = [&](int l) { return ctx.thread_id(l) / outputs; };
    em.ialu(2);
    for (int i = 0; i < inputs; ++i) {
      // input[sample][i]: one word for the warp (broadcast) in the common
      // case where the warp stays within a sample.
      em.load(iin, em.by_lane([&](int l) {
        const std::int64_t t = ctx.thread_id(l);
        return t < jobs ? sample(l) * inputs + i : kInactiveLane;
      }));
      // weights[i][j]: coalesced over j — but 32 distinct words, which is
      // what breaks the constant placement.
      em.load(iw, em.by_lane([&](int l) {
        const std::int64_t t = ctx.thread_id(l);
        return t < jobs ? static_cast<std::int64_t>(i) * outputs + neuron(l)
                        : kInactiveLane;
      }));
      em.falu(1, /*uses_prev=*/true);
    }
    em.sfu(1, /*uses_prev=*/true);  // sigmoid
    em.store(iout, em.by_lane([&](int l) {
      const std::int64_t t = ctx.thread_id(l);
      return t < jobs ? t : kInactiveLane;
    }), /*uses_prev=*/true);
  };
  return k;
}

}  // namespace gpuhms::workloads
