#include "cache/cache.hpp"

#include "common/check.hpp"

namespace gpuhms {

SetAssocCache::SetAssocCache(const CacheConfig& cfg)
    : cfg_(cfg), num_sets_(cfg.num_sets()) {
  GPUHMS_CHECK_MSG(num_sets_ > 0, "cache too small for its associativity");
  GPUHMS_CHECK(cfg.line_size > 0 && (cfg.line_size & (cfg.line_size - 1)) == 0);
  lines_.resize(num_sets_ * static_cast<std::size_t>(cfg_.ways));
}

bool SetAssocCache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t line_addr = addr / cfg_.line_size;
  const std::size_t set = set_of(line_addr);
  Line* base = &lines_[set * static_cast<std::size_t>(cfg_.ways)];
  Line* victim = base;
  for (int w = 0; w < cfg_.ways; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == line_addr) {
      ln.lru = tick_;
      ln.dirty = ln.dirty || is_write;
      return true;
    }
    if (!victim->valid) continue;        // keep an invalid victim if found
    if (!ln.valid || ln.lru < victim->lru) victim = &ln;
  }
  ++stats_.misses;
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = line_addr;
  victim->lru = tick_;
  victim->dirty = is_write;
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::uint64_t line_addr = addr / cfg_.line_size;
  const std::size_t set = set_of(line_addr);
  const Line* base = &lines_[set * static_cast<std::size_t>(cfg_.ways)];
  for (int w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == line_addr) return true;
  }
  return false;
}

void SetAssocCache::reset() {
  for (auto& ln : lines_) ln = Line{};
  tick_ = 0;
  stats_ = CacheStats{};
}

CacheConfig l2_config(const GpuArch& a) {
  return CacheConfig{a.l2_capacity, a.cache_line, a.l2_ways};
}

CacheConfig const_cache_config(const GpuArch& a) {
  return CacheConfig{a.const_cache_capacity, a.cache_line, a.const_cache_ways};
}

CacheConfig tex_cache_config(const GpuArch& a) {
  return CacheConfig{a.tex_cache_capacity, a.cache_line, a.tex_cache_ways};
}

}  // namespace gpuhms
