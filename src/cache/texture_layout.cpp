#include "cache/texture_layout.hpp"

#include "common/check.hpp"

namespace gpuhms {

std::uint64_t block_linear_offset(const ArrayDecl& arr, std::int64_t elem,
                                  const TextureTileShape& tile) {
  GPUHMS_CHECK(elem >= 0 && static_cast<std::size_t>(elem) < arr.elems);
  GPUHMS_CHECK_MSG(arr.width > 0, "block-linear layout needs a 2-D shape");
  const std::uint64_t esize = arr.elem_size();
  const std::uint64_t x = static_cast<std::uint64_t>(elem) % arr.width;
  const std::uint64_t y = static_cast<std::uint64_t>(elem) / arr.width;
  const std::uint64_t bx = x * esize;  // byte column
  const std::uint64_t row_bytes = arr.width * esize;
  const std::uint64_t tiles_per_row = (row_bytes + tile.tile_w - 1) / tile.tile_w;
  const std::uint64_t tx = bx / tile.tile_w;
  const std::uint64_t ty = y / tile.tile_h;
  const std::uint64_t ox = bx % tile.tile_w;
  const std::uint64_t oy = y % tile.tile_h;
  const std::uint64_t tile_bytes =
      static_cast<std::uint64_t>(tile.tile_w) * tile.tile_h;
  return (ty * tiles_per_row + tx) * tile_bytes + oy * tile.tile_w + ox;
}

std::uint64_t pitch_linear_offset(const ArrayDecl& arr, std::int64_t elem) {
  GPUHMS_CHECK(elem >= 0 && static_cast<std::size_t>(elem) < arr.elems);
  return static_cast<std::uint64_t>(elem) * arr.elem_size();
}

}  // namespace gpuhms
