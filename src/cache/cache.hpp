// Set-associative LRU cache, the GPGPU-Sim-style cache model the paper's
// framework builds on (Sec. IV). The same class backs both the timing
// simulator's caches and the analytical model's trace-order cache analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"

namespace gpuhms {

struct CacheConfig {
  std::size_t capacity = 128 * 1024;
  std::size_t line_size = 128;
  int ways = 8;

  std::size_t num_sets() const {
    return capacity / (line_size * static_cast<std::size_t>(ways));
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  std::uint64_t hits() const { return accesses - misses; }
  double miss_ratio() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses)
                    : 0.0;
  }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  // Access a byte address; returns true on hit. On a write miss the line is
  // allocated (write-allocate, write-back).
  bool access(std::uint64_t addr, bool is_write = false);
  // Hit check without state change (used in tests).
  bool probe(std::uint64_t addr) const;
  void reset();

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_of(std::uint64_t line_addr) const {
    return static_cast<std::size_t>(line_addr % num_sets_);
  }

  CacheConfig cfg_;
  std::size_t num_sets_;
  std::vector<Line> lines_;  // num_sets * ways, set-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

// Cache configurations derived from the architecture description.
CacheConfig l2_config(const GpuArch& a);
CacheConfig const_cache_config(const GpuArch& a);
CacheConfig tex_cache_config(const GpuArch& a);

}  // namespace gpuhms
