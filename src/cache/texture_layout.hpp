// 2-D texture block-linear layout.
//
// The texture path's "2D spatial locality" (Sec. I of the paper) comes from
// storing 2-D arrays in tiles so that a 2-D neighborhood shares cache lines.
// We model the layout explicitly: a (x, y) element coordinate maps to a byte
// offset inside fixed-size tiles, and the texture/L2 caches operate on the
// resulting addresses. 1-D textures and all other spaces are pitch-linear.
#pragma once

#include <cstdint>

#include "kernel/array.hpp"

namespace gpuhms {

struct TextureTileShape {
  // Tile footprint in bytes: tile_w bytes wide, tile_h rows tall -> one tile
  // spans tile_w * tile_h contiguous bytes (512 B = 4 cache sectors by
  // default, matching the locality granularity of NVIDIA block-linear).
  std::uint32_t tile_w = 64;
  std::uint32_t tile_h = 8;
};

// Byte offset of element `elem` of `arr` within a block-linear image of the
// array (elem is the flattened row-major index; arr.width defines rows).
std::uint64_t block_linear_offset(const ArrayDecl& arr, std::int64_t elem,
                                  const TextureTileShape& tile = {});

// Pitch-linear offset (plain elem * elem_size), for symmetry.
std::uint64_t pitch_linear_offset(const ArrayDecl& arr, std::int64_t elem);

}  // namespace gpuhms
