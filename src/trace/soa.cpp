#include "trace/soa.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "isa/addressing.hpp"
#include "sim/coalesce.hpp"

namespace gpuhms {

void SoaLowering::bind(const TraceMaterializer& mat,
                       const TraceSkeleton& skeleton, const GpuArch& arch) {
  GPUHMS_CHECK_MSG(supports(arch), "SoA replay unsupported for this arch");
  mat_ = &mat;
  skeleton_ = &skeleton;
  arch_ = &arch;
  tick_base_ = 0;
  tallies_ = SoaTallies{};
  const KernelInfo& k = mat.kernel();
  const std::size_t num_arrays = k.arrays.size();
  space_.resize(num_arrays);
  ai_.resize(num_arrays);
  line_begin_.assign(num_arrays, nullptr);
  line_data_.assign(num_arrays, nullptr);
  words_.assign(num_arrays, nullptr);
  const TraceSkeleton::InvariantTallies& inv = skeleton.invariants();
  const std::span<const std::uint64_t> mem_tot = skeleton.mem_ops_per_array();
  for (std::size_t a = 0; a < num_arrays; ++a) {
    const int array = static_cast<int>(a);
    const MemSpace s = mat.placement().of(array);
    space_[a] = static_cast<std::uint8_t>(s);
    const int ai = addr_calc_instructions(s, k.arrays[a].dtype);
    ai_[a] = static_cast<std::uint8_t>(ai);
    if (s == MemSpace::Shared) {
      // Shared body ops never reach the scheduled stream: every counter they
      // touch is placement-invariant per array, so the whole space folds to
      // three adds per candidate.
      const TraceSkeleton::SharedFold& fold =
          skeleton.shared_fold(array, arch.shared_banks);
      tallies_.shared_requests += inv.unmasked[a];
      tallies_.shared_load_requests += inv.unmasked_loads[a];
      tallies_.shared_conflicts += fold.conflict_sum;
    } else if (mem_tot[a] > 0) {
      const bool block_linear = s == MemSpace::Texture2D;
      const TraceSkeleton::LinePool& lp =
          skeleton.line_pool(array, block_linear, mat.layout(),
                             arch.cache_line);
      line_begin_[a] = lp.begin.data();
      line_data_[a] = lp.lines.data();
      if (s == MemSpace::Constant)
        words_[a] = skeleton.const_words_pool(array, mat.layout()).data();
    }
    // Dependency folds mirroring the lowering rules: with addressing inserts
    // (ai > 0) every memory op of the array consumes its address, otherwise
    // it keeps its DSL dependency; a memory op is chain-broken by a
    // dependent successor, which for a successor memory op only happens when
    // that op lowers without inserts.
    tallies_.dep_breaks += ai > 0 ? mem_tot[a] : inv.mem_uses_prev[a];
    if (ai == 0) tallies_.mem_chain_breaks += inv.chain_mem_up[a];
    tallies_.addr_calc_insts += mem_tot[a] * static_cast<std::uint64_t>(ai);
  }
  tallies_.dep_breaks += inv.dep_compute;
  tallies_.mem_chain_breaks += inv.chain_comp_up;
  tallies_.sync_insts = inv.sync_protos;
  tallies_.mem_insts = inv.mem_protos;
  tallies_.load_insts = inv.load_protos;
}

SoaWave SoaLowering::lower_wave(std::int64_t block_begin,
                                std::int64_t block_end) {
  arena_.reset();
  const KernelInfo& k = mat_->kernel();
  const std::size_t wpb = static_cast<std::size_t>(k.warps_per_block());
  const std::size_t w0 = static_cast<std::size_t>(block_begin) * wpb;
  const std::size_t w1 = static_cast<std::size_t>(block_end) * wpb;
  const std::size_t warp_count = w1 - w0;
  const std::size_t num_arrays = k.arrays.size();
  SoaWave wave;
  if (warp_count == 0) return wave;

  // Capacity bound: every skeleton memory record plus one staged global load
  // per (warp, staging iteration).
  std::size_t bound = skeleton_->mem_record_count(w0, w1);
  const bool staged = !mat_->staged_arrays().empty();
  if (staged) {
    const std::int64_t lanes_per_block =
        static_cast<std::int64_t>(wpb) * kWarpSize;
    std::size_t pre_iters = 0;
    for (int a : mat_->staged_arrays()) {
      const std::int64_t slice = mat_->layout().shared_slice_elems(a);
      pre_iters += static_cast<std::size_t>(
          (slice + lanes_per_block - 1) / lanes_per_block);
    }
    bound += warp_count * pre_iters;
  }

  // Unscheduled (warp-major) record arrays.
  std::uint32_t* pc = arena_.alloc<std::uint32_t>(bound);
  std::uint8_t* spc = arena_.alloc<std::uint8_t>(bound);
  std::uint8_t* str = arena_.alloc<std::uint8_t>(bound);
  std::uint16_t* sms = arena_.alloc<std::uint16_t>(bound);
  const std::uint64_t** lin = arena_.alloc<const std::uint64_t*>(bound);
  std::uint16_t* linn = arena_.alloc<std::uint16_t>(bound);
  std::uint8_t* wrd = arena_.alloc<std::uint8_t>(bound);
  std::uint32_t* rec_end = arena_.alloc<std::uint32_t>(warp_count);
  std::uint32_t* ns = arena_.alloc<std::uint32_t>(warp_count);

  std::size_t n = 0;
  std::uint32_t max_ops = 0;
  const std::int64_t num_sms = arch_->num_sms;
  for (std::size_t wi = 0; wi < warp_count; ++wi) {
    if (GPUHMS_FAULT_POINT("trace.lower"))
      throw InjectedFault("trace.lower: injected failure lowering warp trace");
    const std::size_t gw = w0 + wi;
    const WarpCtx& ctx = skeleton_->warp(gw).ctx;
    const std::uint16_t warp_sm =
        static_cast<std::uint16_t>(ctx.block % num_sms);
    std::uint32_t preamble_len = 0;
    if (staged) {
      // Rare, placement-dependent and cold: transcribe the TraceOp emitter
      // instead of duplicating its logic, folding counters inline. A memory
      // op here is never last (the preamble ends with a Sync), so the
      // chain-break probe of the successor is always in range.
      scratch_.clear();
      mat_->staging_preamble(ctx, scratch_);
      preamble_len = static_cast<std::uint32_t>(scratch_.size());
      for (std::size_t i = 0; i < scratch_.size(); ++i) {
        const TraceOp& op = scratch_[i];
        if (op.uses_prev) ++tallies_.dep_breaks;
        switch (op.cls) {
          case OpClass::Load:
          case OpClass::Store: {
            ++tallies_.mem_insts;
            const bool is_store = op.cls == OpClass::Store;
            if (!is_store) ++tallies_.load_insts;
            if (scratch_[i + 1].uses_prev) ++tallies_.mem_chain_breaks;
            if (op.active_mask == 0) break;
            if (op.space == MemSpace::Shared) {
              ++tallies_.shared_requests;
              if (!is_store) ++tallies_.shared_load_requests;
              const int degree = shared_conflict_degree(
                  op.active_mask, op.addr.data(), arch_->shared_banks);
              tallies_.shared_conflicts +=
                  static_cast<std::uint64_t>(degree - 1);
            } else {
              std::uint64_t buf[kWarpSize];
              const int cnt = coalesce_lines_buf(
                  op.active_mask, op.addr.data(), arch_->cache_line, buf);
              std::uint64_t* stable =
                  arena_.alloc<std::uint64_t>(static_cast<std::size_t>(cnt));
              std::copy(buf, buf + cnt, stable);
              ++tallies_.global_requests;
              tallies_.global_transactions += static_cast<std::uint64_t>(cnt);
              tallies_.replay_global_divergence +=
                  static_cast<std::uint64_t>(cnt - 1);
              if (!is_store)
                tallies_.offchip_load_transactions +=
                    static_cast<std::uint64_t>(cnt);
              pc[n] = static_cast<std::uint32_t>(i);
              spc[n] = static_cast<std::uint8_t>(MemSpace::Global);
              str[n] = is_store;
              sms[n] = warp_sm;
              lin[n] = stable;
              linn[n] = static_cast<std::uint16_t>(cnt);
              wrd[n] = 0;
              ++n;
            }
            break;
          }
          case OpClass::Sync:
            ++tallies_.sync_insts;
            break;
          default:
            if (op.is_addr_calc) ++tallies_.addr_calc_insts;
            break;
        }
      }
    }

    // Expanded op count of the warp under this placement.
    std::uint32_t extra = 0;
    for (std::size_t a = 0; a < num_arrays; ++a)
      extra += skeleton_->mem_count(gw, a) * ai_[a];
    const std::uint32_t warp_ops =
        preamble_len + skeleton_->invariant_ops(gw) + extra;
    ns[wi] = warp_ops;
    max_ops = std::max(max_ops, warp_ops);
    tallies_.insts_executed += warp_ops;

    // Body walk: only off-chip, unmasked records survive into the scheduled
    // stream; everything else already folded. `run` carries the placement-
    // dependent addressing inserts, inclusive of the current op's own.
    std::uint32_t run = 0;
    for (const TraceSkeleton::MemRecord& r : skeleton_->mem_records(gw)) {
      const std::size_t a = static_cast<std::size_t>(r.array);
      run += ai_[a];
      const MemSpace s = static_cast<MemSpace>(space_[a]);
      if (s == MemSpace::Shared) continue;
      if (r.active_mask == 0) continue;
      const std::uint32_t b = line_begin_[a][r.ordinal];
      const std::uint32_t cnt = line_begin_[a][r.ordinal + 1] - b;
      switch (s) {
        case MemSpace::Global:
          ++tallies_.global_requests;
          tallies_.global_transactions += cnt;
          tallies_.replay_global_divergence += cnt - 1;
          if (!r.is_store) tallies_.offchip_load_transactions += cnt;
          break;
        case MemSpace::Texture1D:
        case MemSpace::Texture2D:
          ++tallies_.tex_requests;
          tallies_.tex_transactions += cnt;
          tallies_.offchip_load_transactions += cnt;
          break;
        case MemSpace::Constant:
          ++tallies_.const_requests;
          tallies_.replay_const_divergence +=
              static_cast<std::uint64_t>(words_[a][r.ordinal]) - 1;
          tallies_.offchip_load_transactions += cnt;
          break;
        default:
          break;
      }
      pc[n] = preamble_len + r.inv_prefix + run;
      spc[n] = space_[a];
      str[n] = r.is_store;
      sms[n] = warp_sm;
      lin[n] = line_data_[a] + b;
      linn[n] = static_cast<std::uint16_t>(cnt);
      wrd[n] = s == MemSpace::Constant ? words_[a][r.ordinal] : 0;
      ++n;
    }
    rec_end[wi] = static_cast<std::uint32_t>(n);
  }

  // Closed-form round-robin schedule. Round r issues one op from every warp
  // still alive (ns > r), warps in ascending order, so the tick of op
  // (warp wi, round pc) is
  //   base + sum_{r < pc} alive(r) + |{w' < wi alive at pc}| + 1.
  const std::size_t rounds = max_ops;
  std::uint64_t* cum = arena_.alloc<std::uint64_t>(rounds + 1);
  std::uint32_t* hist = arena_.alloc<std::uint32_t>(rounds + 1);
  std::fill(hist, hist + rounds + 1, 0u);
  for (std::size_t wi = 0; wi < warp_count; ++wi) ++hist[ns[wi]];
  cum[0] = 0;
  std::size_t done = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    done += hist[r];
    cum[r + 1] = cum[r] + (warp_count - done);
  }

  // Fenwick tree over finish rounds: processing warps in ascending order,
  // prefix(pc + 1) = |{w' < wi : ns[w'] <= pc}| = warps already finished at
  // the record's round, so rank = wi - prefix.
  const std::size_t fen_len = rounds + 2;
  std::uint32_t* fen = arena_.alloc<std::uint32_t>(fen_len);
  std::fill(fen, fen + fen_len, 0u);
  std::uint64_t* tick = arena_.alloc<std::uint64_t>(n);
  std::size_t i = 0;
  for (std::size_t wi = 0; wi < warp_count; ++wi) {
    for (; i < rec_end[wi]; ++i) {
      const std::uint32_t opc = pc[i];
      std::uint32_t finished = 0;
      for (std::uint32_t p = opc + 1; p > 0; p -= p & (~p + 1u))
        finished += fen[p];
      tick[i] = tick_base_ + cum[opc] + (wi - finished) + 1;
    }
    for (std::uint32_t p = ns[wi] + 1; p < fen_len; p += p & (~p + 1u))
      ++fen[p];
  }
  tick_base_ += cum[rounds];

  // Counting sort by pc (stable, warp-major input): emission order becomes
  // ascending (round, warp) — exactly the legacy interleaving, and strictly
  // increasing in tick.
  std::uint32_t* start = arena_.alloc<std::uint32_t>(rounds + 1);
  std::fill(start, start + rounds + 1, 0u);
  for (std::size_t j = 0; j < n; ++j) ++start[pc[j]];
  std::uint32_t acc = 0;
  for (std::size_t r = 0; r <= rounds; ++r) {
    const std::uint32_t c = start[r];
    start[r] = acc;
    acc += c;
  }
  std::uint8_t* spc2 = arena_.alloc<std::uint8_t>(n);
  std::uint8_t* str2 = arena_.alloc<std::uint8_t>(n);
  std::uint16_t* sms2 = arena_.alloc<std::uint16_t>(n);
  std::uint64_t* tick2 = arena_.alloc<std::uint64_t>(n);
  const std::uint64_t** lin2 = arena_.alloc<const std::uint64_t*>(n);
  std::uint16_t* linn2 = arena_.alloc<std::uint16_t>(n);
  std::uint8_t* wrd2 = arena_.alloc<std::uint8_t>(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t d = start[pc[j]]++;
    spc2[d] = spc[j];
    str2[d] = str[j];
    sms2[d] = sms[j];
    tick2[d] = tick[j];
    lin2[d] = lin[j];
    linn2[d] = linn[j];
    wrd2[d] = wrd[j];
  }

  wave.mem_n = n;
  wave.space = spc2;
  wave.is_store = str2;
  wave.sm = sms2;
  wave.tick = tick2;
  wave.lines = lin2;
  wave.lines_n = linn2;
  wave.words = wrd2;
  wave.ops = cum[rounds];
  return wave;
}

}  // namespace gpuhms
