#include "trace/generator.hpp"

#include "common/check.hpp"
#include "common/fault_injection.hpp"
#include "common/obs.hpp"
#include "isa/addressing.hpp"
#include "sim/coalesce.hpp"

namespace gpuhms {

std::uint32_t active_mask_of(const LaneIdx& idx) {
  std::uint32_t m = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (idx[static_cast<std::size_t>(l)] != kInactiveLane)
      m |= 1u << l;
  }
  return m;
}

TraceSkeleton::TraceSkeleton(const KernelInfo& kernel)
    : kernel_(&kernel),
      mem_ops_per_array_(kernel.arrays.size(), 0) {
  GPUHMS_SCOPED_PHASE("trace.skeleton_record_ns");
  GPUHMS_COUNTER_ADD("trace.skeletons_recorded", 1);
  warps_.reserve(static_cast<std::size_t>(kernel.total_warps()));
  proto_begin_.reserve(static_cast<std::size_t>(kernel.total_warps()) + 1);
  proto_begin_.push_back(0);
  for_each_warp(kernel, 0, kernel.num_blocks,
                [&](const WarpCtx& ctx, std::vector<DslOp>&& ops) {
                  for (std::size_t i = 0; i < ops.size(); ++i) {
                    const DslOp& op = ops[i];
                    ProtoOp p;
                    p.cls = op.cls;
                    p.uses_prev = op.uses_prev;
                    switch (op.cls) {
                      case OpClass::Load:
                      case OpClass::Store: {
                        ++base_insts_;
                        if (op.cls == OpClass::Load) ++base_load_insts_;
                        const auto a = static_cast<std::size_t>(op.array);
                        p.array = op.array;
                        p.active_mask = active_mask_of(op.idx);
                        p.ordinal =
                            static_cast<std::uint32_t>(mem_ops_per_array_[a]);
                        p.dsl_index = static_cast<std::uint32_t>(i);
                        ++mem_ops_per_array_[a];
                        break;
                      }
                      case OpClass::Sync:
                        ++base_insts_;
                        p.active_mask = 0xffffffffu;
                        break;
                      default:
                        base_insts_ += op.count;
                        p.count = op.count;
                        p.active_mask = 0xffffffffu;
                        break;
                    }
                    proto_.push_back(p);
                  }
                  proto_begin_.push_back(
                      static_cast<std::uint32_t>(proto_.size()));
                  warps_.push_back({ctx, std::move(ops)});
                });
  device_pools_.resize(kernel.arrays.size() * 2);
  pool_once_ = std::make_unique<std::once_flag[]>(kernel.arrays.size() * 2);

  // SoA replay tables: digest the proto stream into per-warp memory-record
  // ranges plus the placement-invariant tallies the data-oriented path folds
  // analytically (see the header for the dependency/chain rules mirrored
  // from generate_compact's lowering).
  const std::size_t num_warps = warps_.size();
  const std::size_t num_arrays = kernel.arrays.size();
  inv_ops_.resize(num_warps);
  mem_cnt_.assign(num_warps * num_arrays, 0);
  invariants_.mem_uses_prev.assign(num_arrays, 0);
  invariants_.chain_mem_up.assign(num_arrays, 0);
  invariants_.unmasked.assign(num_arrays, 0);
  invariants_.unmasked_loads.assign(num_arrays, 0);
  mem_rec_.reserve(static_cast<std::size_t>(base_insts_));
  mem_rec_begin_.reserve(num_warps + 1);
  mem_rec_begin_.push_back(0);
  for (std::size_t w = 0; w < num_warps; ++w) {
    const std::span<const ProtoOp> ps = proto(w);
    std::uint32_t inv = 0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const ProtoOp& p = ps[i];
      switch (p.cls) {
        case OpClass::Load:
        case OpClass::Store: {
          const std::size_t a = static_cast<std::size_t>(p.array);
          MemRecord r;
          r.inv_prefix = inv;
          r.active_mask = p.active_mask;
          r.ordinal = p.ordinal;
          r.array = p.array;
          r.is_store = p.cls == OpClass::Store;
          mem_rec_.push_back(r);
          ++mem_cnt_[w * num_arrays + a];
          ++invariants_.mem_protos;
          if (p.cls == OpClass::Load) ++invariants_.load_protos;
          if (p.uses_prev) ++invariants_.mem_uses_prev[a];
          if (p.active_mask != 0) {
            ++invariants_.unmasked[a];
            if (p.cls == OpClass::Load) ++invariants_.unmasked_loads[a];
          }
          // Memory-chain successor: the expanded op right after this memory
          // op is (a) a dependency-free addressing insert when the successor
          // memory proto lowers with ai > 0, (b) the successor memory op
          // itself when ai == 0, or (c) the head of a compute run. Syncs
          // never depend. Case (b) is placement-dependent, so it is tallied
          // per successor array and gated on ai at fold time.
          if (i + 1 < ps.size()) {
            const ProtoOp& q = ps[i + 1];
            if (is_memory(q.cls)) {
              if (q.uses_prev)
                ++invariants_.chain_mem_up[static_cast<std::size_t>(q.array)];
            } else if (q.cls != OpClass::Sync && q.uses_prev) {
              ++invariants_.chain_comp_up;
            }
          }
          ++inv;
          break;
        }
        case OpClass::Sync:
          ++invariants_.sync_protos;
          ++inv;
          break;
        default:
          if (p.uses_prev) ++invariants_.dep_compute;
          inv += p.count;
          break;
      }
    }
    inv_ops_[w] = inv;
    mem_rec_begin_.push_back(static_cast<std::uint32_t>(mem_rec_.size()));
  }
  const_words_.resize(num_arrays);
  const_once_ = std::make_unique<std::once_flag[]>(num_arrays);
  // line_tables_ / fold_tables_ are found-or-created per arch parameter.
}

TraceSkeleton::LineTable& TraceSkeleton::line_table(
    std::size_t line_size) const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  for (const std::unique_ptr<LineTable>& t : line_tables_) {
    if (t->line_size == line_size) return *t;
  }
  const std::size_t slots = kernel_->arrays.size() * 2;
  auto t = std::make_unique<LineTable>();
  t->line_size = line_size;
  t->pools.resize(slots);
  t->once = std::make_unique<std::once_flag[]>(slots);
  line_tables_.push_back(std::move(t));
  return *line_tables_.back();
}

TraceSkeleton::FoldTable& TraceSkeleton::fold_table(int num_banks) const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  for (const std::unique_ptr<FoldTable>& t : fold_tables_) {
    if (t->num_banks == num_banks) return *t;
  }
  auto t = std::make_unique<FoldTable>();
  t->num_banks = num_banks;
  t->folds.resize(kernel_->arrays.size());
  t->once = std::make_unique<std::once_flag[]>(kernel_->arrays.size());
  fold_tables_.push_back(std::move(t));
  return *fold_tables_.back();
}

const TraceSkeleton::LinePool& TraceSkeleton::line_pool(
    int array, bool block_linear, const MemoryLayout& layout,
    std::size_t line_size) const {
  LineTable& table = line_table(line_size);
  const std::size_t slot =
      static_cast<std::size_t>(array) * 2 + (block_linear ? 1 : 0);
  std::call_once(table.once[slot], [&] {
    const std::span<const AddrBlock> pool =
        device_addr_pool(array, block_linear, layout);
    LinePool& lp = table.pools[slot];
    lp.line_size = line_size;
    lp.begin.reserve(pool.size() + 1);
    lp.begin.push_back(0);
    lp.lines.reserve(pool.size());
    std::uint64_t buf[kWarpSize];
    // mem_rec_ is warp-major, so the records of `array` appear in ordinal
    // order; masked-off ops keep an empty range (they form no requests).
    for (const MemRecord& r : mem_rec_) {
      if (r.array != array) continue;
      const int n = r.active_mask == 0
                        ? 0
                        : coalesce_lines_buf(r.active_mask,
                                             pool[r.ordinal].data(), line_size,
                                             buf);
      lp.lines.insert(lp.lines.end(), buf, buf + n);
      lp.begin.push_back(static_cast<std::uint32_t>(lp.lines.size()));
    }
  });
  return table.pools[slot];
}

std::span<const std::uint8_t> TraceSkeleton::const_words_pool(
    int array, const MemoryLayout& layout) const {
  const std::size_t a = static_cast<std::size_t>(array);
  std::call_once(const_once_[a], [&] {
    const std::span<const AddrBlock> pool =
        device_addr_pool(array, /*block_linear=*/false, layout);
    std::vector<std::uint8_t>& words = const_words_[a];
    words.reserve(pool.size());
    for (const MemRecord& r : mem_rec_) {
      if (r.array != array) continue;
      words.push_back(static_cast<std::uint8_t>(
          r.active_mask == 0
              ? 0
              : distinct_words(r.active_mask, pool[r.ordinal].data())));
    }
  });
  return const_words_[a];
}

const TraceSkeleton::SharedFold& TraceSkeleton::shared_fold(
    int array, int num_banks) const {
  FoldTable& table = fold_table(num_banks);
  const std::size_t a = static_cast<std::size_t>(array);
  std::call_once(table.once[a], [&] {
    // Degrees are computed on the slice-local byte offsets. The shared base
    // offset of every placement is kSharedAlign-byte aligned, so as long as
    // kSharedAlign is a multiple of the bank stride 4 * num_banks, the base
    // shifts every word by a whole number of bank rotations: distinctness
    // and bank assignment — hence the conflict degree — match
    // shared_conflict_degree on the real addresses of any placement. The
    // bank count comes from the *active* arch (SoaLowering::supports gates
    // on the same expression), not a compiled-in constant.
    GPUHMS_CHECK_MSG(
        num_banks > 0 && num_banks <= 64 &&
            kSharedAlign % (4ull * static_cast<unsigned>(num_banks)) == 0,
        "shared_fold requires kSharedAlign % (4 * num_banks) == 0");
    const ArrayDecl& arr = kernel_->arrays[a];
    const std::int64_t slice =
        static_cast<std::int64_t>(arr.shared_slice_elems ? arr.shared_slice_elems
                                                         : arr.elems);
    const std::int64_t esize = static_cast<std::int64_t>(arr.elem_size());
    SharedFold& fold = table.folds[a];
    fold.num_banks = num_banks;
    fold.degree.reserve(mem_ops_per_array_[a]);
    std::int64_t addrs[kWarpSize];
    for (std::size_t w = 0; w < warps_.size(); ++w) {
      const WarpRecord& rec = warps_[w];
      for (const ProtoOp& p : proto(w)) {
        if (!is_memory(p.cls) || p.array != array) continue;
        std::uint8_t deg = 1;
        if (p.active_mask != 0) {
          const LaneIdx& idx = rec.ops[p.dsl_index].idx;
          for (int l = 0; l < kWarpSize; ++l) {
            const std::int64_t e = idx[static_cast<std::size_t>(l)];
            addrs[l] = e == kInactiveLane ? -1 : e % slice * esize;
          }
          deg = static_cast<std::uint8_t>(
              shared_conflict_degree(p.active_mask, addrs, num_banks));
          fold.conflict_sum += static_cast<std::uint64_t>(deg - 1);
        }
        fold.degree.push_back(deg);
      }
    }
  });
  return table.folds[a];
}

std::span<const AddrBlock> TraceSkeleton::device_addr_pool(
    int array, bool block_linear, const MemoryLayout& layout) const {
  const std::size_t slot =
      static_cast<std::size_t>(array) * 2 + (block_linear ? 1 : 0);
  std::call_once(pool_once_[slot], [&] {
    const std::size_t a = static_cast<std::size_t>(array);
    const ArrayDecl& arr = kernel_->arrays[a];
    // Fixed per-array allocation base: identical under every placement, so
    // one pool serves the whole search.
    const std::uint64_t base = layout.device_base(array);
    std::vector<AddrBlock>& pool = device_pools_[slot];
    pool.resize(mem_ops_per_array_[a]);
    std::size_t ord = 0;
    for (const WarpRecord& w : warps_) {
      for (const DslOp& op : w.ops) {
        if (!is_memory(op.cls) || op.array != array) continue;
        AddrBlock& blk = pool[ord++];
        for (int l = 0; l < kWarpSize; ++l) {
          const std::int64_t e = op.idx[static_cast<std::size_t>(l)];
          blk[static_cast<std::size_t>(l)] =
              e == kInactiveLane
                  ? -1
                  : static_cast<std::int64_t>(
                        base + (block_linear ? block_linear_offset(arr, e)
                                             : pitch_linear_offset(arr, e)));
        }
      }
    }
  });
  return device_pools_[slot];
}

std::span<const TraceSkeleton::WarpRecord> TraceSkeleton::warps(
    std::int64_t block_begin, std::int64_t block_end) const {
  GPUHMS_CHECK(0 <= block_begin && block_begin <= block_end &&
               block_end <= kernel_->num_blocks);
  const std::size_t wpb =
      static_cast<std::size_t>(kernel_->warps_per_block());
  return std::span<const WarpRecord>(
      warps_.data() + static_cast<std::size_t>(block_begin) * wpb,
      static_cast<std::size_t>(block_end - block_begin) * wpb);
}

TraceMaterializer::TraceMaterializer(const KernelInfo& kernel,
                                     const DataPlacement& placement,
                                     const GpuArch& arch)
    : kernel_(&kernel), placement_(placement), arch_(&arch),
      layout_(kernel, placement_, arch) {
  const auto err = validate_placement(kernel, placement_, arch);
  GPUHMS_CHECK_MSG(!err.has_value(), err ? err->c_str() : "");
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    if (placement_.of(static_cast<int>(i)) == MemSpace::Shared &&
        kernel.arrays[i].default_space != MemSpace::Shared) {
      staged_arrays_.push_back(static_cast<int>(i));
    }
  }
}

void TraceMaterializer::lower_mem(const WarpCtx& ctx, const DslOp& op,
                                  std::vector<TraceOp>& out) const {
  const int array = op.array;
  GPUHMS_CHECK(array >= 0 &&
               static_cast<std::size_t>(array) < kernel_->arrays.size());
  const ArrayDecl& arr = kernel_->arrays[static_cast<std::size_t>(array)];
  const MemSpace space = placement_.of(array);

  // Addressing-mode instructions (Fig. 2 of the paper).
  const int addr_insts = addr_calc_instructions(space, arr.dtype);
  for (int i = 0; i < addr_insts; ++i) {
    TraceOp a;
    a.cls = OpClass::IAlu;
    a.is_addr_calc = true;
    a.uses_prev = false;
    a.active_mask = active_mask_of(op.idx);
    out.push_back(a);
  }

  TraceOp m;
  m.cls = op.cls;
  m.space = space;
  m.array = static_cast<std::int16_t>(array);
  // The load consumes the computed address when one was materialized;
  // otherwise it keeps the DSL dependency.
  m.uses_prev = addr_insts > 0 ? true : op.uses_prev;
  m.active_mask = active_mask_of(op.idx);
  for (int l = 0; l < kWarpSize; ++l) {
    const std::int64_t e = op.idx[static_cast<std::size_t>(l)];
    if (e == kInactiveLane) {
      m.addr[static_cast<std::size_t>(l)] = -1;
      continue;
    }
    const std::uint64_t addr = space == MemSpace::Shared
                                   ? layout_.shared_addr(array, e)
                                   : layout_.device_addr(array, e);
    m.addr[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(addr);
  }
  (void)ctx;
  out.push_back(m);
}

void TraceMaterializer::lower(const WarpCtx& ctx,
                              const std::vector<DslOp>& ops,
                              std::vector<TraceOp>& out) const {
  if (GPUHMS_FAULT_POINT("trace.lower"))
    throw InjectedFault("trace.lower: injected failure lowering warp trace");
  for (const DslOp& op : ops) {
    switch (op.cls) {
      case OpClass::Load:
      case OpClass::Store:
        lower_mem(ctx, op, out);
        break;
      case OpClass::Sync: {
        TraceOp t;
        t.cls = OpClass::Sync;
        t.active_mask = 0xffffffffu;
        out.push_back(t);
        break;
      }
      default: {
        for (int i = 0; i < op.count; ++i) {
          TraceOp t;
          t.cls = op.cls;
          t.uses_prev = i == 0 && op.uses_prev;
          t.active_mask = 0xffffffffu;
          out.push_back(t);
        }
      }
    }
  }
}

void TraceMaterializer::staging_preamble(const WarpCtx& ctx,
                                         std::vector<TraceOp>& out) const {
  if (staged_arrays_.empty()) return;
  const int wpb = kernel_->warps_per_block();
  const std::int64_t lanes_per_block =
      static_cast<std::int64_t>(wpb) * kWarpSize;
  for (int array : staged_arrays_) {
    const ArrayDecl& arr = kernel_->arrays[static_cast<std::size_t>(array)];
    const std::int64_t slice = layout_.shared_slice_elems(array);
    const std::int64_t start = layout_.shared_slice_start(array, ctx.block);
    const std::int64_t iters =
        (slice + lanes_per_block - 1) / lanes_per_block;
    for (std::int64_t it = 0; it < iters; ++it) {
      const std::int64_t base =
          it * lanes_per_block + ctx.warp_in_block * kWarpSize;
      // Global load of the chunk (coalesced) ...
      TraceOp ld;
      ld.cls = OpClass::Load;
      ld.space = MemSpace::Global;
      ld.array = static_cast<std::int16_t>(array);
      ld.uses_prev = false;
      TraceOp st;
      st.cls = OpClass::Store;
      st.space = MemSpace::Shared;
      st.array = static_cast<std::int16_t>(array);
      st.uses_prev = true;  // stores the just-loaded value
      std::uint32_t mask = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        const std::int64_t local = base + l;
        if (local >= slice) {
          ld.addr[static_cast<std::size_t>(l)] = -1;
          st.addr[static_cast<std::size_t>(l)] = -1;
          continue;
        }
        mask |= 1u << l;
        const std::int64_t global_elem =
            (start + local) % static_cast<std::int64_t>(arr.elems);
        ld.addr[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(
            layout_.device_base(array) +
            pitch_linear_offset(arr, global_elem));
        st.addr[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(
            layout_.shared_offset(array) +
            static_cast<std::uint64_t>(local) * arr.elem_size());
      }
      if (mask == 0) continue;
      ld.active_mask = mask;
      st.active_mask = mask;
      // Global addressing for the load (register indirect, 2 IMADs).
      for (int i = 0; i < addr_calc_instructions(MemSpace::Global, arr.dtype);
           ++i) {
        TraceOp a;
        a.cls = OpClass::IAlu;
        a.is_addr_calc = true;
        a.active_mask = mask;
        out.push_back(a);
      }
      ld.uses_prev = true;
      out.push_back(ld);
      out.push_back(st);
    }
  }
  TraceOp sync;
  sync.cls = OpClass::Sync;
  sync.active_mask = 0xffffffffu;
  out.push_back(sync);
}

std::vector<WarpTrace> TraceMaterializer::generate(
    std::int64_t block_begin, std::int64_t block_end,
    const TraceSkeleton* skeleton) const {
  GPUHMS_COUNTER_ADD("trace.waves_lowered", 1);
  GPUHMS_COUNTER_ADD("trace.warps_lowered",
                     (block_end - block_begin) * kernel_->warps_per_block());
  std::vector<WarpTrace> traces;
  traces.reserve(static_cast<std::size_t>(
      (block_end - block_begin) * kernel_->warps_per_block()));
  if (skeleton != nullptr) {
    GPUHMS_CHECK_MSG(&skeleton->kernel() == kernel_,
                     "skeleton recorded from a different kernel");
    for (const TraceSkeleton::WarpRecord& rec :
         skeleton->warps(block_begin, block_end)) {
      WarpTrace wt;
      wt.ctx = rec.ctx;
      staging_preamble(rec.ctx, wt.ops);
      lower(rec.ctx, rec.ops, wt.ops);
      traces.push_back(std::move(wt));
    }
    return traces;
  }
  for_each_warp(*kernel_, block_begin, block_end,
                [&](const WarpCtx& ctx, std::vector<DslOp>&& ops) {
                  WarpTrace wt;
                  wt.ctx = ctx;
                  staging_preamble(ctx, wt.ops);
                  lower(ctx, ops, wt.ops);
                  traces.push_back(std::move(wt));
                });
  return traces;
}

void TraceMaterializer::generate_compact(std::int64_t block_begin,
                                         std::int64_t block_end,
                                         const TraceSkeleton& skeleton,
                                         CompactTrace& out) const {
  GPUHMS_CHECK_MSG(&skeleton.kernel() == kernel_,
                   "skeleton recorded from a different kernel");
  GPUHMS_COUNTER_ADD("trace.waves_lowered", 1);
  GPUHMS_COUNTER_ADD("trace.warps_lowered",
                     (block_end - block_begin) * kernel_->warps_per_block());
  out.ops.clear();
  out.warps.clear();
  out.local_addrs.clear();
  const std::size_t wpb = static_cast<std::size_t>(kernel_->warps_per_block());
  const std::size_t w0 = static_cast<std::size_t>(block_begin) * wpb;
  const std::size_t w1 = static_cast<std::size_t>(block_end) * wpb;
  for (std::size_t w = w0; w < w1; ++w) {
    if (GPUHMS_FAULT_POINT("trace.lower"))
      throw InjectedFault("trace.lower: injected failure lowering warp trace");
    const TraceSkeleton::WarpRecord& rec = skeleton.warp(w);
    CompactTrace::Warp warp;
    warp.ctx = rec.ctx;
    warp.begin = static_cast<std::uint32_t>(out.ops.size());
    // Staging preamble: placement-dependent and rare — reuse the TraceOp
    // emitter and transcribe, rather than duplicating its logic here.
    if (!staged_arrays_.empty()) {
      out.staging_scratch.clear();
      staging_preamble(rec.ctx, out.staging_scratch);
      for (const TraceOp& t : out.staging_scratch) {
        CompactOp c;
        c.cls = t.cls;
        c.space = t.space;
        c.array = t.array;
        c.uses_prev = t.uses_prev;
        c.is_addr_calc = t.is_addr_calc;
        c.active_mask = t.active_mask;
        if (is_memory(t.cls)) {
          c.pool = kPoolLocal;
          c.addr_index = static_cast<std::uint32_t>(out.local_addrs.size());
          out.local_addrs.push_back(t.addr);
        }
        out.ops.push_back(c);
      }
    }
    for (const TraceSkeleton::ProtoOp& p : skeleton.proto(w)) {
      switch (p.cls) {
        case OpClass::Load:
        case OpClass::Store: {
          const int array = p.array;
          const ArrayDecl& arr =
              kernel_->arrays[static_cast<std::size_t>(array)];
          const MemSpace space = placement_.of(array);
          const int addr_insts = addr_calc_instructions(space, arr.dtype);
          for (int i = 0; i < addr_insts; ++i) {
            CompactOp a;
            a.cls = OpClass::IAlu;
            a.is_addr_calc = true;
            a.active_mask = p.active_mask;
            out.ops.push_back(a);
          }
          CompactOp m;
          m.cls = p.cls;
          m.space = space;
          m.array = static_cast<std::int16_t>(array);
          m.uses_prev = addr_insts > 0 ? true : p.uses_prev;
          m.active_mask = p.active_mask;
          if (space == MemSpace::Shared) {
            m.pool = kPoolLocal;
            m.addr_index = static_cast<std::uint32_t>(out.local_addrs.size());
            AddrBlock blk;
            const LaneIdx& idx = rec.ops[p.dsl_index].idx;
            for (int l = 0; l < kWarpSize; ++l) {
              const std::int64_t e = idx[static_cast<std::size_t>(l)];
              blk[static_cast<std::size_t>(l)] =
                  e == kInactiveLane ? -1
                                     : static_cast<std::int64_t>(
                                           layout_.shared_addr(array, e));
            }
            out.local_addrs.push_back(blk);
          } else {
            const bool block_linear = space == MemSpace::Texture2D;
            m.pool = block_linear ? kPoolDeviceBlockLinear : kPoolDeviceLinear;
            m.addr_index = p.ordinal;
            // Ensure the shared pool exists (thread-safe, filled once).
            skeleton.device_addr_pool(array, block_linear, layout_);
          }
          out.ops.push_back(m);
          break;
        }
        case OpClass::Sync: {
          CompactOp t;
          t.cls = OpClass::Sync;
          t.active_mask = 0xffffffffu;
          out.ops.push_back(t);
          break;
        }
        default: {
          for (int i = 0; i < p.count; ++i) {
            CompactOp t;
            t.cls = p.cls;
            t.uses_prev = i == 0 && p.uses_prev;
            t.active_mask = 0xffffffffu;
            out.ops.push_back(t);
          }
        }
      }
    }
    warp.end = static_cast<std::uint32_t>(out.ops.size());
    out.warps.push_back(warp);
  }
}

}  // namespace gpuhms
