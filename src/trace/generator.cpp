#include "trace/generator.hpp"

#include "common/check.hpp"
#include "isa/addressing.hpp"

namespace gpuhms {

std::uint32_t active_mask_of(const LaneIdx& idx) {
  std::uint32_t m = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (idx[static_cast<std::size_t>(l)] != kInactiveLane)
      m |= 1u << l;
  }
  return m;
}

TraceMaterializer::TraceMaterializer(const KernelInfo& kernel,
                                     const DataPlacement& placement,
                                     const GpuArch& arch)
    : kernel_(&kernel), placement_(placement), arch_(&arch),
      layout_(kernel, placement_, arch) {
  const auto err = validate_placement(kernel, placement_, arch);
  GPUHMS_CHECK_MSG(!err.has_value(), err ? err->c_str() : "");
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    if (placement_.of(static_cast<int>(i)) == MemSpace::Shared &&
        kernel.arrays[i].default_space != MemSpace::Shared) {
      staged_arrays_.push_back(static_cast<int>(i));
    }
  }
}

void TraceMaterializer::lower_mem(const WarpCtx& ctx, const DslOp& op,
                                  std::vector<TraceOp>& out) const {
  const int array = op.array;
  GPUHMS_CHECK(array >= 0 &&
               static_cast<std::size_t>(array) < kernel_->arrays.size());
  const ArrayDecl& arr = kernel_->arrays[static_cast<std::size_t>(array)];
  const MemSpace space = placement_.of(array);

  // Addressing-mode instructions (Fig. 2 of the paper).
  const int addr_insts = addr_calc_instructions(space, arr.dtype);
  for (int i = 0; i < addr_insts; ++i) {
    TraceOp a;
    a.cls = OpClass::IAlu;
    a.is_addr_calc = true;
    a.uses_prev = false;
    a.active_mask = active_mask_of(op.idx);
    out.push_back(a);
  }

  TraceOp m;
  m.cls = op.cls;
  m.space = space;
  m.array = static_cast<std::int16_t>(array);
  // The load consumes the computed address when one was materialized;
  // otherwise it keeps the DSL dependency.
  m.uses_prev = addr_insts > 0 ? true : op.uses_prev;
  m.active_mask = active_mask_of(op.idx);
  for (int l = 0; l < kWarpSize; ++l) {
    const std::int64_t e = op.idx[static_cast<std::size_t>(l)];
    if (e == kInactiveLane) {
      m.addr[static_cast<std::size_t>(l)] = -1;
      continue;
    }
    const std::uint64_t addr = space == MemSpace::Shared
                                   ? layout_.shared_addr(array, e)
                                   : layout_.device_addr(array, e);
    m.addr[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(addr);
  }
  (void)ctx;
  out.push_back(m);
}

void TraceMaterializer::lower(const WarpCtx& ctx,
                              const std::vector<DslOp>& ops,
                              std::vector<TraceOp>& out) const {
  for (const DslOp& op : ops) {
    switch (op.cls) {
      case OpClass::Load:
      case OpClass::Store:
        lower_mem(ctx, op, out);
        break;
      case OpClass::Sync: {
        TraceOp t;
        t.cls = OpClass::Sync;
        t.active_mask = 0xffffffffu;
        out.push_back(t);
        break;
      }
      default: {
        for (int i = 0; i < op.count; ++i) {
          TraceOp t;
          t.cls = op.cls;
          t.uses_prev = i == 0 && op.uses_prev;
          t.active_mask = 0xffffffffu;
          out.push_back(t);
        }
      }
    }
  }
}

void TraceMaterializer::staging_preamble(const WarpCtx& ctx,
                                         std::vector<TraceOp>& out) const {
  if (staged_arrays_.empty()) return;
  const int wpb = kernel_->warps_per_block();
  const std::int64_t lanes_per_block =
      static_cast<std::int64_t>(wpb) * kWarpSize;
  for (int array : staged_arrays_) {
    const ArrayDecl& arr = kernel_->arrays[static_cast<std::size_t>(array)];
    const std::int64_t slice = layout_.shared_slice_elems(array);
    const std::int64_t start = layout_.shared_slice_start(array, ctx.block);
    const std::int64_t iters =
        (slice + lanes_per_block - 1) / lanes_per_block;
    for (std::int64_t it = 0; it < iters; ++it) {
      const std::int64_t base =
          it * lanes_per_block + ctx.warp_in_block * kWarpSize;
      // Global load of the chunk (coalesced) ...
      TraceOp ld;
      ld.cls = OpClass::Load;
      ld.space = MemSpace::Global;
      ld.array = static_cast<std::int16_t>(array);
      ld.uses_prev = false;
      TraceOp st;
      st.cls = OpClass::Store;
      st.space = MemSpace::Shared;
      st.array = static_cast<std::int16_t>(array);
      st.uses_prev = true;  // stores the just-loaded value
      std::uint32_t mask = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        const std::int64_t local = base + l;
        if (local >= slice) {
          ld.addr[static_cast<std::size_t>(l)] = -1;
          st.addr[static_cast<std::size_t>(l)] = -1;
          continue;
        }
        mask |= 1u << l;
        const std::int64_t global_elem =
            (start + local) % static_cast<std::int64_t>(arr.elems);
        ld.addr[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(
            layout_.device_base(array) +
            pitch_linear_offset(arr, global_elem));
        st.addr[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(
            layout_.shared_offset(array) +
            static_cast<std::uint64_t>(local) * arr.elem_size());
      }
      if (mask == 0) continue;
      ld.active_mask = mask;
      st.active_mask = mask;
      // Global addressing for the load (register indirect, 2 IMADs).
      for (int i = 0; i < addr_calc_instructions(MemSpace::Global, arr.dtype);
           ++i) {
        TraceOp a;
        a.cls = OpClass::IAlu;
        a.is_addr_calc = true;
        a.active_mask = mask;
        out.push_back(a);
      }
      ld.uses_prev = true;
      out.push_back(ld);
      out.push_back(st);
    }
  }
  TraceOp sync;
  sync.cls = OpClass::Sync;
  sync.active_mask = 0xffffffffu;
  out.push_back(sync);
}

std::vector<WarpTrace> TraceMaterializer::generate(
    std::int64_t block_begin, std::int64_t block_end) const {
  std::vector<WarpTrace> traces;
  traces.reserve(static_cast<std::size_t>(
      (block_end - block_begin) * kernel_->warps_per_block()));
  for_each_warp(*kernel_, block_begin, block_end,
                [&](const WarpCtx& ctx, std::vector<DslOp>&& ops) {
                  WarpTrace wt;
                  wt.ctx = ctx;
                  staging_preamble(ctx, wt.ops);
                  lower(ctx, ops, wt.ops);
                  traces.push_back(std::move(wt));
                });
  return traces;
}

}  // namespace gpuhms
