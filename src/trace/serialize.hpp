// Trace serialization: a line-oriented text format for materialized warp
// traces, the artifact SASSI would write to disk in the paper's toolchain.
// Lets users inspect lowered traces, diff placements, or feed traces to
// external analysis without relinking against the library.
//
// Format (one record per line):
//   kernel <name> <num_blocks> <threads_per_block>
//   warp <block> <warp_in_block> <lanes_active>
//   op <class> <space> <array> <uses_prev> <is_addr_calc> <active_mask_hex>
//      [addr0 addr1 ... addr31]        (addresses only for memory ops)
// Comments start with '#'. Round-trips exactly through read_trace.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/generator.hpp"

namespace gpuhms {

struct SerializedTrace {
  std::string kernel_name;
  std::int64_t num_blocks = 0;
  int threads_per_block = 0;
  std::vector<WarpTrace> warps;
};

// Writes the traces of [block_begin, block_end) produced by `mat`.
void write_trace(std::ostream& os, const TraceMaterializer& mat,
                 std::int64_t block_begin, std::int64_t block_end);

// Writes pre-generated warp traces under a kernel header.
void write_trace(std::ostream& os, const KernelInfo& kernel,
                 const std::vector<WarpTrace>& warps);

// Parses a trace written by write_trace. Returns nullopt on malformed
// input (with an error message in *error when provided). Every error names
// the 1-based line number and the offending token; memory-op address lists
// with more or fewer than 32 lane entries are rejected explicitly.
std::optional<SerializedTrace> read_trace(std::istream& is,
                                          std::string* error = nullptr);

// Status-carrying variants of the serialization entry points.
// try_read_trace returns DATA_LOSS with the read_trace diagnostic;
// try_write_trace returns DATA_LOSS when the output stream enters a failed
// state (disk full, closed pipe, injected serialize.write fault).
StatusOr<SerializedTrace> try_read_trace(std::istream& is);
Status try_write_trace(std::ostream& os, const KernelInfo& kernel,
                       const std::vector<WarpTrace>& warps);

// Structural validation of a parsed trace beyond per-line syntax: positive
// launch geometry, warp headers within that geometry, lane counts in
// [1, 32], and active masks consistent with lanes_active. Returns
// INVALID_ARGUMENT naming the offending warp/op.
Status validate(const SerializedTrace& trace);

}  // namespace gpuhms
