// Data-oriented (struct-of-arrays) lowering of the memoized trace skeleton.
//
// The per-candidate replay cost of the compact path is dominated by walking
// every expanded warp instruction through a virtual-ish per-op dispatch, even
// though almost all of that stream is placement-invariant. This engine
// exploits the invariance structure instead:
//
//   * compute runs, syncs and addressing inserts never materialize — their
//     counts fold into per-warp totals and the pc arithmetic of the few ops
//     that do (see TraceSkeleton::MemRecord);
//   * coalesced line lists and constant-divergence word counts are memoized
//     per (array, layout) in the skeleton — device allocations are
//     placement-fixed, so they are shared by every candidate of a search;
//   * shared-memory ops fold away entirely: their bank-conflict degrees are
//     placement-invariant (TraceSkeleton::SharedFold), so a shared-placed
//     array costs three counter adds per *candidate*, not per op;
//   * the round-robin schedule's issue tick of every surviving record is
//     computed in closed form from the per-warp op counts (an alive-warp
//     prefix sum plus a Fenwick rank over finish rounds), then the records
//     are counting-sorted into issue order — no per-round scan.
//
// What remains per candidate is a flat, branch-light pass over the off-chip
// memory records only; the stateful cache/row-buffer walk consumes the
// resulting SoaWave in issue order and is guaranteed to observe the same
// (line, tick, sm, is_store) sequence the legacy scalar path produces, which
// is what makes the two paths bit-identical.
//
// All scratch lives in an Arena that is reset per wave: after the first wave
// of the first candidate, lowering performs zero heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "trace/generator.hpp"

namespace gpuhms {

// One resident wave, lowered and scheduled: parallel arrays over the
// off-chip memory records in issue (tick) order. Pointers reference the
// engine's arena and stay valid until the next lower_wave call.
struct SoaWave {
  std::size_t mem_n = 0;
  const std::uint8_t* space = nullptr;    // MemSpace of each record
  const std::uint8_t* is_store = nullptr;
  const std::uint16_t* sm = nullptr;      // SM owning the warp's block
  const std::uint64_t* tick = nullptr;    // rr-schedule issue tick
  const std::uint64_t* const* lines = nullptr;  // coalesced line list
  const std::uint16_t* lines_n = nullptr;
  const std::uint8_t* words = nullptr;    // constant-space distinct words
  std::uint64_t ops = 0;  // expanded op count of the wave (tick span)
};

// Candidate-level counters accumulated analytically by bind()/lower_wave(),
// mirroring what the legacy rr_schedule/mem_op pair tallies op by op.
struct SoaTallies {
  std::uint64_t insts_executed = 0;
  std::uint64_t addr_calc_insts = 0;
  std::uint64_t mem_insts = 0;
  std::uint64_t load_insts = 0;
  std::uint64_t sync_insts = 0;
  std::uint64_t dep_breaks = 0;
  std::uint64_t mem_chain_breaks = 0;
  std::uint64_t global_requests = 0;
  std::uint64_t global_transactions = 0;
  std::uint64_t replay_global_divergence = 0;
  std::uint64_t tex_requests = 0;
  std::uint64_t tex_transactions = 0;
  std::uint64_t const_requests = 0;
  std::uint64_t replay_const_divergence = 0;
  std::uint64_t offchip_load_transactions = 0;
  std::uint64_t shared_requests = 0;
  std::uint64_t shared_load_requests = 0;
  std::uint64_t shared_conflicts = 0;
};

class SoaLowering {
 public:
  // The shared-conflict fold is exact only when the kSharedAlign-byte shared
  // base alignment shifts words by whole bank rotations (true for every
  // registered backend: 32- and 16-bank archs). Consults the *active* arch's
  // bank count against the allocator's actual alignment — not a compiled-in
  // 128 — so a backend with an alignment-incompatible bank count falls back
  // to the legacy path instead of mis-folding. Callers fall back otherwise.
  static bool supports(const GpuArch& arch) {
    return arch.shared_banks > 0 && arch.shared_banks <= 64 &&
           kSharedAlign % (4ull * static_cast<unsigned>(arch.shared_banks)) ==
               0;
  }

  // Resolves the placement into per-array dispatch tables and folds every
  // placement-dependent-but-order-free counter. Call once per candidate,
  // before the first lower_wave.
  void bind(const TraceMaterializer& mat, const TraceSkeleton& skeleton,
            const GpuArch& arch);

  // Lowers and schedules blocks [block_begin, block_end). Waves must be
  // visited in order (the issue clock carries across waves).
  SoaWave lower_wave(std::int64_t block_begin, std::int64_t block_end);

  const SoaTallies& tallies() const { return tallies_; }
  std::size_t arena_high_water_bytes() const {
    return arena_.high_water_bytes();
  }

 private:
  const TraceMaterializer* mat_ = nullptr;
  const TraceSkeleton* skeleton_ = nullptr;
  const GpuArch* arch_ = nullptr;
  Arena arena_;
  SoaTallies tallies_;
  std::uint64_t tick_base_ = 0;
  // Per-array placement-resolved dispatch tables (indexed by array id).
  std::vector<std::uint8_t> space_;
  std::vector<std::uint8_t> ai_;  // addressing inserts per op
  std::vector<const std::uint32_t*> line_begin_;
  std::vector<const std::uint64_t*> line_data_;
  std::vector<const std::uint8_t*> words_;
  std::vector<TraceOp> scratch_;  // staging-preamble transcription buffer
};

}  // namespace gpuhms
