#include "trace/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace gpuhms {

namespace {

const char* class_name(OpClass c) { return to_string(c).data(); }

std::optional<OpClass> parse_class(const std::string& s) {
  for (OpClass c : {OpClass::IAlu, OpClass::FAlu, OpClass::DAlu, OpClass::Sfu,
                    OpClass::Load, OpClass::Store, OpClass::Sync}) {
    if (s == to_string(c)) return c;
  }
  return std::nullopt;
}

std::optional<MemSpace> parse_space(const std::string& s) {
  for (MemSpace m : kAllMemSpaces) {
    if (s == to_string(m)) return m;
  }
  return std::nullopt;
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

void write_trace(std::ostream& os, const KernelInfo& kernel,
                 const std::vector<WarpTrace>& warps) {
  os << "# gpuhms trace v1\n";
  os << "kernel " << kernel.name << ' ' << kernel.num_blocks << ' '
     << kernel.threads_per_block << '\n';
  for (const WarpTrace& wt : warps) {
    os << "warp " << wt.ctx.block << ' ' << wt.ctx.warp_in_block << ' '
       << wt.ctx.lanes_active << '\n';
    for (const TraceOp& op : wt.ops) {
      os << "op " << class_name(op.cls) << ' ' << to_string(op.space) << ' '
         << op.array << ' ' << (op.uses_prev ? 1 : 0) << ' '
         << (op.is_addr_calc ? 1 : 0) << ' ' << std::hex << op.active_mask
         << std::dec;
      if (is_memory(op.cls)) {
        for (int l = 0; l < kWarpSize; ++l)
          os << ' ' << op.addr[static_cast<std::size_t>(l)];
      }
      os << '\n';
    }
  }
}

void write_trace(std::ostream& os, const TraceMaterializer& mat,
                 std::int64_t block_begin, std::int64_t block_end) {
  write_trace(os, mat.kernel(), mat.generate(block_begin, block_end));
}

std::optional<SerializedTrace> read_trace(std::istream& is,
                                          std::string* error) {
  SerializedTrace out;
  bool have_kernel = false;
  WarpTrace* current = nullptr;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    const std::string where = " at line " + std::to_string(lineno);
    if (tag == "kernel") {
      if (have_kernel) {
        fail(error, "duplicate kernel header" + where);
        return std::nullopt;
      }
      ls >> out.kernel_name >> out.num_blocks >> out.threads_per_block;
      if (!ls) {
        fail(error, "malformed kernel header" + where);
        return std::nullopt;
      }
      have_kernel = true;
    } else if (tag == "warp") {
      if (!have_kernel) {
        fail(error, "warp before kernel header" + where);
        return std::nullopt;
      }
      WarpTrace wt;
      ls >> wt.ctx.block >> wt.ctx.warp_in_block >> wt.ctx.lanes_active;
      if (!ls) {
        fail(error, "malformed warp header" + where);
        return std::nullopt;
      }
      wt.ctx.threads_per_block = out.threads_per_block;
      wt.ctx.num_blocks = out.num_blocks;
      out.warps.push_back(std::move(wt));
      current = &out.warps.back();
    } else if (tag == "op") {
      if (!current) {
        fail(error, "op before warp header" + where);
        return std::nullopt;
      }
      std::string cls_s, space_s;
      int uses_prev = 0, addr_calc = 0;
      TraceOp op;
      ls >> cls_s >> space_s >> op.array >> uses_prev >> addr_calc >>
          std::hex >> op.active_mask >> std::dec;
      const auto cls = parse_class(cls_s);
      const auto space = parse_space(space_s);
      if (!ls || !cls || !space) {
        fail(error, "malformed op record" + where);
        return std::nullopt;
      }
      op.cls = *cls;
      op.space = *space;
      op.uses_prev = uses_prev != 0;
      op.is_addr_calc = addr_calc != 0;
      if (is_memory(op.cls)) {
        for (int l = 0; l < kWarpSize; ++l) {
          ls >> op.addr[static_cast<std::size_t>(l)];
        }
        if (!ls) {
          fail(error, "memory op missing lane addresses" + where);
          return std::nullopt;
        }
      }
      current->ops.push_back(op);
    } else {
      fail(error, "unknown record tag '" + tag + "'" + where);
      return std::nullopt;
    }
  }
  if (!have_kernel) {
    fail(error, "no kernel header found");
    return std::nullopt;
  }
  return out;
}

}  // namespace gpuhms
