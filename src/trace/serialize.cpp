#include "trace/serialize.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/fault_injection.hpp"

namespace gpuhms {

namespace {

const char* class_name(OpClass c) { return to_string(c).data(); }

std::optional<OpClass> parse_class(std::string_view s) {
  for (OpClass c : {OpClass::IAlu, OpClass::FAlu, OpClass::DAlu, OpClass::Sfu,
                    OpClass::Load, OpClass::Store, OpClass::Sync}) {
    if (s == to_string(c)) return c;
  }
  return std::nullopt;
}

std::optional<MemSpace> parse_space(std::string_view s) {
  for (MemSpace m : kAllMemSpaces) {
    if (s == to_string(m)) return m;
  }
  return std::nullopt;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > pos) out.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

// Full-token integer parse; rejects trailing junk, overflow, and empty
// tokens, so "12x", "1e9", and out-of-range values all fail loudly instead
// of truncating.
template <typename T>
bool parse_int(std::string_view token, T& out, int base = 10) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out, base);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

std::string quoted(std::string_view token) {
  // NUL bytes and control characters from corrupt inputs must not garble the
  // diagnostic itself.
  std::string out = "'";
  for (char c : token) {
    if (c >= 0x20 && c < 0x7f)
      out += c;
    else {
      constexpr char hex[] = "0123456789abcdef";
      out += "\\x";
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += hex[static_cast<unsigned char>(c) & 0xf];
    }
  }
  out += "'";
  return out;
}

}  // namespace

void write_trace(std::ostream& os, const KernelInfo& kernel,
                 const std::vector<WarpTrace>& warps) {
  os << "# gpuhms trace v1\n";
  os << "kernel " << kernel.name << ' ' << kernel.num_blocks << ' '
     << kernel.threads_per_block << '\n';
  for (const WarpTrace& wt : warps) {
    if (GPUHMS_FAULT_POINT("serialize.write")) {
      // A mid-stream I/O failure: the output is truncated and the stream is
      // failed, exactly what a full disk or closed pipe produces.
      os.setstate(std::ios::failbit);
      return;
    }
    os << "warp " << wt.ctx.block << ' ' << wt.ctx.warp_in_block << ' '
       << wt.ctx.lanes_active << '\n';
    for (const TraceOp& op : wt.ops) {
      os << "op " << class_name(op.cls) << ' ' << to_string(op.space) << ' '
         << op.array << ' ' << (op.uses_prev ? 1 : 0) << ' '
         << (op.is_addr_calc ? 1 : 0) << ' ' << std::hex << op.active_mask
         << std::dec;
      if (is_memory(op.cls)) {
        for (int l = 0; l < kWarpSize; ++l)
          os << ' ' << op.addr[static_cast<std::size_t>(l)];
      }
      os << '\n';
    }
  }
}

void write_trace(std::ostream& os, const TraceMaterializer& mat,
                 std::int64_t block_begin, std::int64_t block_end) {
  write_trace(os, mat.kernel(), mat.generate(block_begin, block_end));
}

Status try_write_trace(std::ostream& os, const KernelInfo& kernel,
                       const std::vector<WarpTrace>& warps) {
  write_trace(os, kernel, warps);
  os.flush();
  if (!os)
    return DataLossError("trace output stream entered a failed state; the "
                         "written trace is truncated")
        .annotate("serializing trace of kernel '" + kernel.name + "'");
  return OkStatus();
}

std::optional<SerializedTrace> read_trace(std::istream& is,
                                          std::string* error) {
  SerializedTrace out;
  bool have_kernel = false;
  WarpTrace* current = nullptr;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string where = " at line " + std::to_string(lineno);
    if (GPUHMS_FAULT_POINT("serialize.read")) {
      fail(error, "injected fault at site 'serialize.read'" + where);
      return std::nullopt;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string_view> tok = tokenize(line);
    if (tok.empty()) continue;  // whitespace-only line
    const std::string_view tag = tok[0];
    if (tag == "kernel") {
      if (have_kernel) {
        fail(error, "duplicate kernel header" + where);
        return std::nullopt;
      }
      if (tok.size() != 4) {
        fail(error, "malformed kernel header" + where + ": expected 'kernel "
                    "<name> <num_blocks> <threads_per_block>', got " +
                        std::to_string(tok.size() - 1) + " fields");
        return std::nullopt;
      }
      out.kernel_name = std::string(tok[1]);
      if (!parse_int(tok[2], out.num_blocks)) {
        fail(error, "malformed kernel header" + where +
                        ": field 'num_blocks': invalid integer " +
                        quoted(tok[2]));
        return std::nullopt;
      }
      if (!parse_int(tok[3], out.threads_per_block)) {
        fail(error, "malformed kernel header" + where +
                        ": field 'threads_per_block': invalid integer " +
                        quoted(tok[3]));
        return std::nullopt;
      }
      if (out.num_blocks < 1 || out.threads_per_block < 1) {
        fail(error, "malformed kernel header" + where +
                        ": launch geometry must be positive, got num_blocks " +
                        std::to_string(out.num_blocks) +
                        ", threads_per_block " +
                        std::to_string(out.threads_per_block));
        return std::nullopt;
      }
      have_kernel = true;
    } else if (tag == "warp") {
      if (!have_kernel) {
        fail(error, "warp header before kernel header" + where);
        return std::nullopt;
      }
      if (tok.size() != 4) {
        fail(error, "malformed warp header" + where + ": expected 'warp "
                    "<block> <warp_in_block> <lanes_active>', got " +
                        std::to_string(tok.size() - 1) + " fields");
        return std::nullopt;
      }
      WarpTrace wt;
      const char* field_names[] = {"block", "warp_in_block", "lanes_active"};
      std::int64_t block = 0;
      int warp_in_block = 0, lanes_active = 0;
      const bool ok[] = {parse_int(tok[1], block),
                         parse_int(tok[2], warp_in_block),
                         parse_int(tok[3], lanes_active)};
      for (int f = 0; f < 3; ++f) {
        if (!ok[f]) {
          fail(error, "malformed warp header" + where + ": field '" +
                          field_names[f] + "': invalid integer " +
                          quoted(tok[static_cast<std::size_t>(f) + 1]));
          return std::nullopt;
        }
      }
      if (block < 0 || warp_in_block < 0 || lanes_active < 1 ||
          lanes_active > kWarpSize) {
        fail(error, "malformed warp header" + where + ": block " +
                        std::to_string(block) + ", warp_in_block " +
                        std::to_string(warp_in_block) + ", lanes_active " +
                        std::to_string(lanes_active) +
                        " (lanes_active must be in [1, " +
                        std::to_string(kWarpSize) + "])");
        return std::nullopt;
      }
      wt.ctx.block = block;
      wt.ctx.warp_in_block = warp_in_block;
      wt.ctx.lanes_active = lanes_active;
      wt.ctx.threads_per_block = out.threads_per_block;
      wt.ctx.num_blocks = out.num_blocks;
      out.warps.push_back(std::move(wt));
      current = &out.warps.back();
    } else if (tag == "op") {
      if (!current) {
        fail(error, "op record before warp header" + where);
        return std::nullopt;
      }
      if (tok.size() < 7) {
        fail(error, "malformed op record" + where + ": expected 'op <class> "
                    "<space> <array> <uses_prev> <is_addr_calc> "
                    "<active_mask>', got " +
                        std::to_string(tok.size() - 1) + " fields");
        return std::nullopt;
      }
      TraceOp op;
      const auto cls = parse_class(tok[1]);
      if (!cls) {
        fail(error, "malformed op record" + where +
                        ": field 'class': unknown op class " + quoted(tok[1]));
        return std::nullopt;
      }
      const auto space = parse_space(tok[2]);
      if (!space) {
        fail(error, "malformed op record" + where +
                        ": field 'space': unknown memory space " +
                        quoted(tok[2]));
        return std::nullopt;
      }
      op.cls = *cls;
      op.space = *space;
      if (!parse_int(tok[3], op.array)) {
        fail(error, "malformed op record" + where +
                        ": field 'array': invalid integer " + quoted(tok[3]));
        return std::nullopt;
      }
      int uses_prev = 0, addr_calc = 0;
      if (!parse_int(tok[4], uses_prev) || !parse_int(tok[5], addr_calc)) {
        fail(error, "malformed op record" + where +
                        ": field 'uses_prev/is_addr_calc': invalid integer " +
                        quoted(!parse_int(tok[4], uses_prev) ? tok[4]
                                                             : tok[5]));
        return std::nullopt;
      }
      op.uses_prev = uses_prev != 0;
      op.is_addr_calc = addr_calc != 0;
      if (!parse_int(tok[6], op.active_mask, 16)) {
        fail(error, "malformed op record" + where +
                        ": field 'active_mask': invalid hex integer " +
                        quoted(tok[6]));
        return std::nullopt;
      }
      const std::size_t n_addrs = tok.size() - 7;
      if (is_memory(op.cls)) {
        // Exactly one address per lane: a short list is a truncated record,
        // a long one would silently drop lanes (or smuggle in a second op).
        if (n_addrs != static_cast<std::size_t>(kWarpSize)) {
          fail(error, "malformed op record" + where + ": memory op carries " +
                          std::to_string(n_addrs) +
                          " lane addresses; expected exactly " +
                          std::to_string(kWarpSize));
          return std::nullopt;
        }
        for (int l = 0; l < kWarpSize; ++l) {
          const std::string_view t = tok[static_cast<std::size_t>(l) + 7];
          if (!parse_int(t, op.addr[static_cast<std::size_t>(l)])) {
            fail(error, "malformed op record" + where + ": lane " +
                            std::to_string(l) + " address: invalid integer " +
                            quoted(t));
            return std::nullopt;
          }
        }
      } else if (n_addrs != 0) {
        fail(error, "malformed op record" + where + ": non-memory op has " +
                        std::to_string(n_addrs) +
                        " trailing tokens, first is " + quoted(tok[7]));
        return std::nullopt;
      }
      current->ops.push_back(op);
    } else {
      fail(error, "unknown record tag " + quoted(tag) + where);
      return std::nullopt;
    }
  }
  if (!have_kernel) {
    fail(error, "no kernel header found in " + std::to_string(lineno) +
                    " line(s)");
    return std::nullopt;
  }
  return out;
}

StatusOr<SerializedTrace> try_read_trace(std::istream& is) {
  std::string error;
  std::optional<SerializedTrace> parsed = read_trace(is, &error);
  if (!parsed)
    return DataLossError(error.empty() ? "unreadable trace" : error)
        .annotate("parsing serialized trace");
  return std::move(*parsed);
}

Status validate(const SerializedTrace& trace) {
  const std::string who = "trace of kernel '" + trace.kernel_name + "'";
  if (trace.num_blocks < 1)
    return InvalidArgumentError(who + " has num_blocks " +
                                std::to_string(trace.num_blocks) +
                                "; must be >= 1");
  if (trace.threads_per_block < 1)
    return InvalidArgumentError(who + " has threads_per_block " +
                                std::to_string(trace.threads_per_block) +
                                "; must be >= 1");
  const int warps_per_block =
      (trace.threads_per_block + kWarpSize - 1) / kWarpSize;
  for (std::size_t w = 0; w < trace.warps.size(); ++w) {
    const WarpCtx& ctx = trace.warps[w].ctx;
    const std::string where = who + " warp record #" + std::to_string(w);
    if (ctx.block < 0 || ctx.block >= trace.num_blocks)
      return InvalidArgumentError(where + " names block " +
                                  std::to_string(ctx.block) +
                                  " outside [0, " +
                                  std::to_string(trace.num_blocks) + ")");
    if (ctx.warp_in_block < 0 || ctx.warp_in_block >= warps_per_block)
      return InvalidArgumentError(
          where + " names warp_in_block " + std::to_string(ctx.warp_in_block) +
          " outside [0, " + std::to_string(warps_per_block) + ")");
    if (ctx.lanes_active < 1 || ctx.lanes_active > kWarpSize)
      return InvalidArgumentError(where + " has lanes_active " +
                                  std::to_string(ctx.lanes_active) +
                                  " outside [1, " +
                                  std::to_string(kWarpSize) + "]");
    for (std::size_t o = 0; o < trace.warps[w].ops.size(); ++o) {
      const TraceOp& op = trace.warps[w].ops[o];
      if (is_memory(op.cls) && op.array < 0)
        return InvalidArgumentError(where + " op #" + std::to_string(o) +
                                    " is a memory op with negative array "
                                    "index " +
                                    std::to_string(op.array));
      if (ctx.lanes_active < 32 &&
          (op.active_mask >> ctx.lanes_active) != 0)
        return InvalidArgumentError(
            where + " op #" + std::to_string(o) +
            " has active-mask bits above lanes_active (" +
            std::to_string(ctx.lanes_active) + ")");
    }
  }
  return OkStatus();
}

}  // namespace gpuhms
