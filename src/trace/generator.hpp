// Placement-aware trace materialization.
//
// This is the reproduction of the paper's SASSI-based instruction/memory
// trace generator plus the trace rewriting step of Sec. IV: DSL ops are
// lowered into SASS-class TraceOps for a concrete data placement —
// addressing-mode integer instructions are inserted per Sec. III-B, element
// indices become byte addresses in the placed space, and arrays staged into
// shared memory get their one-time copy-in preamble (Sec. III-B's
// "initialization phase").
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "trace/allocation.hpp"

namespace gpuhms {

struct WarpTrace {
  WarpCtx ctx;
  std::vector<TraceOp> ops;
};

// 32 lane byte addresses of one warp-level memory op (inactive lanes: -1).
using AddrBlock = std::array<std::int64_t, kWarpSize>;

// Compact lowered op for the memoized analysis fast path: carries the same
// information the trace analysis consumes, at ~1/17th of sizeof(TraceOp).
// Memory ops reference their AddrBlock through (pool, addr_index) instead of
// embedding it, so the placement-invariant device addresses are shared by
// every candidate of a search instead of being recomputed and copied.
struct CompactOp {
  OpClass cls = OpClass::IAlu;
  MemSpace space = MemSpace::Global;  // memory ops only
  std::uint8_t pool = 0;              // CompactTrace pool selector
  bool uses_prev = false;
  bool is_addr_calc = false;
  std::int16_t array = -1;
  std::uint32_t active_mask = 0;
  std::uint32_t addr_index = 0;  // AddrBlock index within the pool
};

// Pool selectors for CompactOp::pool.
inline constexpr std::uint8_t kPoolDeviceLinear = 0;       // skeleton-owned
inline constexpr std::uint8_t kPoolDeviceBlockLinear = 1;  // skeleton-owned
inline constexpr std::uint8_t kPoolLocal = 2;  // per-placement (shared/staging)

// Reusable compact lowering of one resident wave; all vectors keep their
// capacity across generate_compact calls, so the per-candidate hot path of a
// search allocates nothing in steady state.
struct CompactTrace {
  struct Warp {
    WarpCtx ctx;
    std::uint32_t begin = 0, end = 0;  // range in `ops`
  };
  std::vector<CompactOp> ops;  // all warps, concatenated
  std::vector<Warp> warps;
  // Placement-dependent addresses (shared space and staging preambles).
  std::vector<AddrBlock> local_addrs;
  std::vector<TraceOp> staging_scratch;  // generate_compact internal reuse
};

// Placement-independent recording of every warp's DSL stream. A placement
// only changes the space-dependent decoration of a trace (addressing-mode
// instructions, byte addresses, staging preambles) — the access *skeleton*
// recorded here is shared by all m^n placements of a kernel, so a search
// records it once and replays it per candidate instead of re-running the
// kernel function. Immutable after construction; safe to share across
// threads.
class TraceSkeleton {
 public:
  explicit TraceSkeleton(const KernelInfo& kernel);

  struct WarpRecord {
    WarpCtx ctx;
    std::vector<DslOp> ops;
  };

  // Pre-digested DSL op for the compact lowering path: the active mask and
  // the per-array memory-op ordinal (the index into the device address
  // pools) are placement-invariant, so they are computed once here instead
  // of per candidate.
  struct ProtoOp {
    OpClass cls = OpClass::IAlu;
    bool uses_prev = false;
    std::int16_t array = -1;       // memory ops
    std::uint16_t count = 1;       // compute ops
    std::uint32_t active_mask = 0;
    std::uint32_t ordinal = 0;     // memory ops: per-array pool index
    std::uint32_t dsl_index = 0;   // memory ops: index into WarpRecord::ops
  };

  const KernelInfo& kernel() const { return *kernel_; }
  // Records of the warps of blocks [block_begin, block_end), block-major in
  // the same order for_each_warp visits them.
  std::span<const WarpRecord> warps(std::int64_t block_begin,
                                    std::int64_t block_end) const;
  const WarpRecord& warp(std::size_t index) const { return warps_[index]; }
  // Proto stream of warp `index` (same warp numbering as warps()).
  std::span<const ProtoOp> proto(std::size_t index) const {
    return std::span<const ProtoOp>(
        proto_.data() + proto_begin_[index],
        proto_begin_[index + 1] - proto_begin_[index]);
  }

  // Device byte addresses of every memory op of `array`, in skeleton order
  // (ProtoOp::ordinal indexes this). Placement-invariant: every array keeps
  // a fixed device allocation, so only the intra-allocation layout — pitch-
  // linear for Global/Constant/Texture1D, block-linear for Texture2D —
  // distinguishes placements. Built lazily on first use, thread-safe, and
  // shared by all analyzers replaying this skeleton.
  std::span<const AddrBlock> device_addr_pool(int array, bool block_linear,
                                              const MemoryLayout& layout) const;

  // --- SoA replay support (consumed by src/trace/soa.*) ---------------------
  // Per-warp stream of the *memory* protos only, pre-digested so the
  // data-oriented lowering touches nothing else per candidate: compute runs
  // and syncs never materialize (their counts fold into inv_prefix /
  // invariant_ops), and the placement decides per array — not per op — how
  // many addressing instructions precede each memory op. The expanded-stream
  // position of memory op k of a warp under a placement with per-array
  // addressing counts ai[] is
  //   pc(k) = inv_prefix(k) + sum over records j <= k of ai[array(j)].
  struct MemRecord {
    std::uint32_t inv_prefix = 0;  // invariant expanded ops before this op
    std::uint32_t active_mask = 0;
    std::uint32_t ordinal = 0;     // per-array pool / line-pool index
    std::int16_t array = -1;
    bool is_store = false;
    std::uint8_t pad = 0;
  };
  std::span<const MemRecord> mem_records(std::size_t warp) const {
    return std::span<const MemRecord>(
        mem_rec_.data() + mem_rec_begin_[warp],
        mem_rec_begin_[warp + 1] - mem_rec_begin_[warp]);
  }
  std::size_t mem_record_count(std::size_t warp_begin,
                               std::size_t warp_end) const {
    return mem_rec_begin_[warp_end] - mem_rec_begin_[warp_begin];
  }
  // Expanded ops of the warp excluding addressing inserts and staging
  // preambles: memory and sync protos count 1, compute protos their count.
  std::uint32_t invariant_ops(std::size_t warp) const {
    return inv_ops_[warp];
  }
  // Memory protos of `array` in the warp (masked-off ops included).
  std::uint32_t mem_count(std::size_t warp, std::size_t array) const {
    return mem_cnt_[warp * kernel_->arrays.size() + array];
  }

  // Placement-invariant totals the SoA path folds analytically instead of
  // walking expanded ops. The dependency fields mirror the lowering rules of
  // generate_compact: a memory op consumes its predecessor when addressing
  // instructions were inserted (ai > 0) and keeps its DSL dependency
  // otherwise; only the first op of a compute run carries the run's
  // dependency; syncs never depend.
  struct InvariantTallies {
    std::uint64_t dep_compute = 0;   // compute protos consuming their pred.
    std::uint64_t chain_comp_up = 0; // mem protos followed by dependent compute
    std::uint64_t sync_protos = 0;
    std::uint64_t mem_protos = 0;
    std::uint64_t load_protos = 0;
    std::vector<std::uint64_t> mem_uses_prev;  // per array: DSL-dependent mem
    std::vector<std::uint64_t> chain_mem_up;   // per array of the *successor*
    std::vector<std::uint64_t> unmasked;       // per array: mask != 0 mem ops
    std::vector<std::uint64_t> unmasked_loads;
  };
  const InvariantTallies& invariants() const { return invariants_; }

  // Memoized coalescing results, per (array, layout, line_size): the device
  // addresses of an array are placement-invariant (fixed allocation,
  // Sec. III-E), so the ascending deduplicated line list of every memory op —
  // exactly what coalesce_lines produces — is too. Built lazily like the
  // address pools, with one table per distinct `line_size`, so a skeleton
  // shared across architectures (a cross-arch study, or serve answering for
  // a heterogeneous fleet) memoizes each cache-line geometry independently.
  struct LinePool {
    std::vector<std::uint32_t> begin;  // per ordinal, size mem_ops + 1
    std::vector<std::uint64_t> lines;  // concatenated ascending line lists
    std::size_t line_size = 0;
  };
  const LinePool& line_pool(int array, bool block_linear,
                            const MemoryLayout& layout,
                            std::size_t line_size) const;

  // Distinct 4-byte words per ordinal over the linear device addresses
  // (constant-space divergence replays, Eq. 3 cause 3).
  std::span<const std::uint8_t> const_words_pool(
      int array, const MemoryLayout& layout) const;

  // Shared-memory bank-conflict degrees per ordinal plus their fold. The
  // slice-local byte offset of an element is placement-invariant and the
  // placement-dependent base offset is kSharedAlign-byte aligned, so when
  // kSharedAlign % (4 * num_banks) == 0 the degrees match
  // shared_conflict_degree on the real addresses of ANY placement that puts
  // the array in shared memory (the offset shifts every word by a multiple
  // of num_banks). Memoized per (array, num_banks) — each bank geometry gets
  // its own fold table, so archs with different shared_banks can share one
  // skeleton without aliasing each other's degrees.
  struct SharedFold {
    std::vector<std::uint8_t> degree;  // per ordinal (1 for masked-off ops)
    std::uint64_t conflict_sum = 0;    // sum of (degree - 1), unmasked ops
    int num_banks = 0;
  };
  const SharedFold& shared_fold(int array, int num_banks) const;

  // --- skeleton statistics (for cheap per-placement bounds) -----------------
  // Executed warp instructions excluding addressing-mode inserts and staging
  // preambles (i.e. the placement-invariant part of insts_executed).
  std::uint64_t base_insts() const { return base_insts_; }
  // Warp-level *load* DSL ops only. A floor on any placement's load count:
  // lowering never drops a load, and shared-staging preambles only add more.
  std::uint64_t base_load_insts() const { return base_load_insts_; }
  // Warp-level load+store DSL ops per array (masked-off ops included — they
  // still issue).
  std::span<const std::uint64_t> mem_ops_per_array() const {
    return mem_ops_per_array_;
  }

 private:
  const KernelInfo* kernel_;
  std::vector<WarpRecord> warps_;  // all blocks, block-major
  std::vector<ProtoOp> proto_;    // all warps, concatenated
  std::vector<std::uint32_t> proto_begin_;  // per-warp ranges, size warps+1
  std::uint64_t base_insts_ = 0;
  std::uint64_t base_load_insts_ = 0;
  std::vector<std::uint64_t> mem_ops_per_array_;
  // Lazily-built device address pools, two per array (linear, block-linear).
  mutable std::vector<std::vector<AddrBlock>> device_pools_;
  mutable std::unique_ptr<std::once_flag[]> pool_once_;
  // SoA replay tables (built in the constructor from the proto stream).
  std::vector<MemRecord> mem_rec_;            // all warps, concatenated
  std::vector<std::uint32_t> mem_rec_begin_;  // per-warp ranges, size warps+1
  std::vector<std::uint32_t> inv_ops_;        // per warp
  std::vector<std::uint32_t> mem_cnt_;        // warps x arrays, row-major
  InvariantTallies invariants_;
  // Lazily-built memoized pools. Constant-word counts are arch-invariant
  // (4-byte words); line pools and shared folds are keyed by the arch
  // parameter they depend on (cache-line size / bank count), one table per
  // distinct value. Tables are found-or-created under memo_mu_ in an
  // append-only list of unique_ptrs — returned references never move — and
  // each table's entries build under its own call_once flags, so concurrent
  // analyzers on different archs never block each other's builds.
  struct LineTable {
    std::size_t line_size = 0;
    std::vector<LinePool> pools;  // two per array
    std::unique_ptr<std::once_flag[]> once;
  };
  struct FoldTable {
    int num_banks = 0;
    std::vector<SharedFold> folds;  // per array
    std::unique_ptr<std::once_flag[]> once;
  };
  LineTable& line_table(std::size_t line_size) const;
  FoldTable& fold_table(int num_banks) const;
  mutable std::mutex memo_mu_;
  mutable std::vector<std::unique_ptr<LineTable>> line_tables_;
  mutable std::vector<std::unique_ptr<FoldTable>> fold_tables_;
  mutable std::vector<std::vector<std::uint8_t>> const_words_;  // per array
  mutable std::unique_ptr<std::once_flag[]> const_once_;
};

class TraceMaterializer {
 public:
  TraceMaterializer(const KernelInfo& kernel, const DataPlacement& placement,
                    const GpuArch& arch);

  const MemoryLayout& layout() const { return layout_; }
  const KernelInfo& kernel() const { return *kernel_; }
  const DataPlacement& placement() const { return placement_; }
  // Arrays needing the copy-in preamble (placed shared, default off-chip).
  std::span<const int> staged_arrays() const { return staged_arrays_; }

  // Lower one warp's recorded DSL stream. Appends to `out`.
  void lower(const WarpCtx& ctx, const std::vector<DslOp>& ops,
             std::vector<TraceOp>& out) const;

  // Copy-in preamble executed by warp `ctx.warp_in_block` of its block for
  // every array moved into shared memory; ends with a Sync when nonempty.
  void staging_preamble(const WarpCtx& ctx, std::vector<TraceOp>& out) const;

  // Full trace (staging + lowered body) for every warp of the block range.
  // When `skeleton` is non-null it must have been recorded from this
  // materializer's kernel; the DSL streams are replayed from it instead of
  // re-running the kernel function (identical output, much cheaper).
  std::vector<WarpTrace> generate(std::int64_t block_begin,
                                  std::int64_t block_end,
                                  const TraceSkeleton* skeleton = nullptr) const;

  // Compact lowering of the block range, replayed from the skeleton into
  // `out` (buffers reused across calls). Produces the exact op stream
  // generate() would — same ops, masks and addresses — in the compact
  // representation the memoized analysis path consumes.
  void generate_compact(std::int64_t block_begin, std::int64_t block_end,
                        const TraceSkeleton& skeleton,
                        CompactTrace& out) const;

 private:
  void lower_mem(const WarpCtx& ctx, const DslOp& op,
                 std::vector<TraceOp>& out) const;

  const KernelInfo* kernel_;
  DataPlacement placement_;
  const GpuArch* arch_;
  MemoryLayout layout_;
  // Arrays needing the copy-in preamble (placed shared, default off-chip).
  std::vector<int> staged_arrays_;
};

// Active-lane mask for a LaneIdx.
std::uint32_t active_mask_of(const LaneIdx& idx);

}  // namespace gpuhms
