// Placement-aware trace materialization.
//
// This is the reproduction of the paper's SASSI-based instruction/memory
// trace generator plus the trace rewriting step of Sec. IV: DSL ops are
// lowered into SASS-class TraceOps for a concrete data placement —
// addressing-mode integer instructions are inserted per Sec. III-B, element
// indices become byte addresses in the placed space, and arrays staged into
// shared memory get their one-time copy-in preamble (Sec. III-B's
// "initialization phase").
#pragma once

#include <cstdint>
#include <vector>

#include "trace/allocation.hpp"

namespace gpuhms {

struct WarpTrace {
  WarpCtx ctx;
  std::vector<TraceOp> ops;
};

class TraceMaterializer {
 public:
  TraceMaterializer(const KernelInfo& kernel, const DataPlacement& placement,
                    const GpuArch& arch);

  const MemoryLayout& layout() const { return layout_; }
  const KernelInfo& kernel() const { return *kernel_; }
  const DataPlacement& placement() const { return placement_; }

  // Lower one warp's recorded DSL stream. Appends to `out`.
  void lower(const WarpCtx& ctx, const std::vector<DslOp>& ops,
             std::vector<TraceOp>& out) const;

  // Copy-in preamble executed by warp `ctx.warp_in_block` of its block for
  // every array moved into shared memory; ends with a Sync when nonempty.
  void staging_preamble(const WarpCtx& ctx, std::vector<TraceOp>& out) const;

  // Full trace (staging + lowered body) for every warp of the block range.
  std::vector<WarpTrace> generate(std::int64_t block_begin,
                                  std::int64_t block_end) const;

 private:
  void lower_mem(const WarpCtx& ctx, const DslOp& op,
                 std::vector<TraceOp>& out) const;

  const KernelInfo* kernel_;
  DataPlacement placement_;
  const GpuArch* arch_;
  MemoryLayout layout_;
  // Arrays needing the copy-in preamble (placed shared, default off-chip).
  std::vector<int> staged_arrays_;
};

// Active-lane mask for a LaneIdx.
std::uint32_t active_mask_of(const LaneIdx& idx);

}  // namespace gpuhms
