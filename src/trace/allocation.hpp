// Memory layout: resolves (array, element index) -> byte address under a
// given data placement.
//
// Address-assignment policy follows Sec. III-E of the paper:
//   * every array owns a fixed device (off-chip) allocation, so moving an
//     array between off-chip spaces keeps its addresses unchanged;
//   * arrays placed in 2-D texture memory keep their base but use the
//     block-linear layout within the allocation (allocations are padded for
//     the tile grid);
//   * arrays placed in shared memory get a per-block shared-memory offset,
//     assigned sequentially with 128 B alignment.
//
// Shared indexing convention: a global element index maps into the block's
// slice by modulo (slice-local indices pass through unchanged when the DSL
// kernel already uses block-local indices, and block-partitioned streams map
// onto their block's tile).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "cache/texture_layout.hpp"
#include "kernel/placement.hpp"

namespace gpuhms {

// Alignment of each array's per-block shared-memory segment. Exported
// because the SoA shared-conflict fold is only exact when this alignment
// shifts words by whole bank rotations — SoaLowering::supports() and the
// fold validity check both test `kSharedAlign % (word * banks) == 0`
// against the *active* arch's bank count.
inline constexpr std::uint64_t kSharedAlign = 128;

class MemoryLayout {
 public:
  MemoryLayout(const KernelInfo& kernel, const DataPlacement& placement,
               const GpuArch& arch);

  const KernelInfo& kernel() const { return *kernel_; }
  const DataPlacement& placement() const { return *placement_; }

  std::uint64_t device_base(int array) const;
  // Device byte address of an element, honoring the array's placed layout
  // (block-linear when placed in Texture2D, pitch-linear otherwise).
  std::uint64_t device_addr(int array, std::int64_t elem) const;

  bool in_shared(int array) const;
  std::uint64_t shared_offset(int array) const;  // within the block's segment
  std::uint64_t shared_addr(int array, std::int64_t elem) const;
  // Elements of `array` a single block keeps in shared memory.
  std::int64_t shared_slice_elems(int array) const;
  // First global element index of block `block`'s shared slice.
  std::int64_t shared_slice_start(int array, std::int64_t block) const;

  std::uint64_t total_device_bytes() const { return device_cursor_; }
  std::uint64_t total_shared_bytes() const { return shared_cursor_; }

 public:
  // Concurrent thread blocks one SM can host under this placement: the
  // block/warp limits and the per-block shared-memory footprint (a
  // placement that stages large arrays into shared memory costs occupancy,
  // a first-order performance effect of the shared placement choice).
  int blocks_per_sm(const GpuArch& arch) const;
  double warps_per_sm(const GpuArch& arch) const;

 private:
  const KernelInfo* kernel_;
  const DataPlacement* placement_;
  std::vector<std::uint64_t> device_base_;
  std::vector<std::uint64_t> shared_offset_;
  std::uint64_t device_cursor_ = 0;
  std::uint64_t shared_cursor_ = 0;
};

}  // namespace gpuhms
