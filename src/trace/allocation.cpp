#include "trace/allocation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuhms {

namespace {

constexpr std::uint64_t kDeviceHeapStart = 1ull << 16;  // skip the null page
constexpr std::uint64_t kDeviceAlign = 512;
// kSharedAlign lives in the header (the SoA fold validity check needs it).

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

// Device allocation size, padded so the block-linear tile grid fits if the
// array is ever viewed as a 2-D texture.
std::uint64_t alloc_bytes(const ArrayDecl& a) {
  std::uint64_t bytes = a.bytes();
  if (a.width > 0) {
    const TextureTileShape tile;
    const std::uint64_t row_bytes = a.width * a.elem_size();
    const std::uint64_t tiles_x = (row_bytes + tile.tile_w - 1) / tile.tile_w;
    const std::uint64_t tiles_y = (a.height() + tile.tile_h - 1) / tile.tile_h;
    const std::uint64_t padded =
        tiles_x * tiles_y * static_cast<std::uint64_t>(tile.tile_w) * tile.tile_h;
    bytes = padded > bytes ? padded : bytes;
  }
  return bytes;
}

}  // namespace

MemoryLayout::MemoryLayout(const KernelInfo& kernel,
                           const DataPlacement& placement, const GpuArch& arch)
    : kernel_(&kernel), placement_(&placement) {
  GPUHMS_CHECK(placement.size() == kernel.arrays.size());
  device_base_.resize(kernel.arrays.size());
  shared_offset_.resize(kernel.arrays.size(), 0);
  device_cursor_ = kDeviceHeapStart;
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    // Stagger bases across DRAM banks: power-of-two-sized arrays would
    // otherwise start in the same bank and row-thrash when streamed
    // together (real allocators/mappings stagger or swizzle the same way).
    const std::uint64_t bank_stagger = (i * 13 % 128) * 128;
    device_base_[i] = device_cursor_ + bank_stagger;
    device_cursor_ = align_up(device_base_[i] + alloc_bytes(kernel.arrays[i]),
                              kDeviceAlign);
  }
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    if (placement.of(static_cast<int>(i)) != MemSpace::Shared) continue;
    shared_offset_[i] = shared_cursor_;
    shared_cursor_ = align_up(
        shared_cursor_ + kernel.arrays[i].shared_slice_bytes(), kSharedAlign);
  }
  GPUHMS_CHECK_MSG(shared_cursor_ <= arch.shared_capacity,
                   "placement exceeds shared capacity (validate first)");
}

int MemoryLayout::blocks_per_sm(const GpuArch& arch) const {
  const int wpb = kernel_->warps_per_block();
  int blocks = std::min(arch.max_blocks_per_sm,
                        std::max(1, arch.max_warps_per_sm / wpb));
  if (shared_cursor_ > 0) {
    const int by_shared =
        static_cast<int>(arch.shared_capacity / shared_cursor_);
    blocks = std::min(blocks, by_shared);
  }
  return std::max(1, blocks);
}

double MemoryLayout::warps_per_sm(const GpuArch& arch) const {
  return static_cast<double>(blocks_per_sm(arch)) *
         kernel_->warps_per_block();
}

std::uint64_t MemoryLayout::device_base(int array) const {
  return device_base_[static_cast<std::size_t>(array)];
}

std::uint64_t MemoryLayout::device_addr(int array, std::int64_t elem) const {
  const ArrayDecl& a = kernel_->arrays[static_cast<std::size_t>(array)];
  const MemSpace s = placement_->of(array);
  const std::uint64_t off = s == MemSpace::Texture2D
                                ? block_linear_offset(a, elem)
                                : pitch_linear_offset(a, elem);
  return device_base_[static_cast<std::size_t>(array)] + off;
}

bool MemoryLayout::in_shared(int array) const {
  return placement_->of(array) == MemSpace::Shared;
}

std::uint64_t MemoryLayout::shared_offset(int array) const {
  GPUHMS_CHECK(in_shared(array));
  return shared_offset_[static_cast<std::size_t>(array)];
}

std::int64_t MemoryLayout::shared_slice_elems(int array) const {
  const ArrayDecl& a = kernel_->arrays[static_cast<std::size_t>(array)];
  const std::size_t s = a.shared_slice_elems ? a.shared_slice_elems : a.elems;
  return static_cast<std::int64_t>(s);
}

std::uint64_t MemoryLayout::shared_addr(int array, std::int64_t elem) const {
  const ArrayDecl& a = kernel_->arrays[static_cast<std::size_t>(array)];
  const std::int64_t slice = shared_slice_elems(array);
  const std::int64_t local = elem % slice;
  return shared_offset(array) + static_cast<std::uint64_t>(local) * a.elem_size();
}

std::int64_t MemoryLayout::shared_slice_start(int array,
                                              std::int64_t block) const {
  const ArrayDecl& a = kernel_->arrays[static_cast<std::size_t>(array)];
  const std::int64_t slice = shared_slice_elems(array);
  if (static_cast<std::size_t>(slice) >= a.elems) return 0;  // replicated
  return (block * slice) % static_cast<std::int64_t>(a.elems);
}

}  // namespace gpuhms
