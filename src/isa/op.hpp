// SASS-class instruction abstraction.
//
// Kernels in the DSL (src/kernel) emit warp-level operations; the trace
// materializer (src/trace) lowers array references into addressing-mode
// instructions plus a load/store with per-lane byte addresses, mirroring the
// SASS sequences the paper analyzes in Fig. 2.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "arch/mem_space.hpp"

namespace gpuhms {

inline constexpr int kWarpSize = 32;

enum class OpClass : std::uint8_t {
  IAlu,     // integer ALU (IMAD/SHL/IADD...); addressing instructions land here
  FAlu,     // single-precision FP (FFMA/FADD/FMUL)
  DAlu,     // double-precision FP; issues over 2 cycles (replay cause 5)
  Sfu,      // special function (rsqrt, sin...)
  Load,     // memory load, space given by WarpOp::space
  Store,    // memory store
  Sync,     // __syncthreads()
};

constexpr std::string_view to_string(OpClass c) {
  switch (c) {
    case OpClass::IAlu: return "ialu";
    case OpClass::FAlu: return "falu";
    case OpClass::DAlu: return "dalu";
    case OpClass::Sfu: return "sfu";
    case OpClass::Load: return "load";
    case OpClass::Store: return "store";
    case OpClass::Sync: return "sync";
  }
  return "?";
}

constexpr bool is_memory(OpClass c) {
  return c == OpClass::Load || c == OpClass::Store;
}

// Per-lane element index; kInactiveLane marks predicated-off lanes.
inline constexpr std::int64_t kInactiveLane = -1;
using LaneIdx = std::array<std::int64_t, kWarpSize>;

// DSL-level operation recorded per warp (pre-lowering): memory ops carry the
// referenced array and per-lane *element indices*; compute ops carry a
// repeat count.
struct DslOp {
  OpClass cls = OpClass::IAlu;
  std::int16_t array = -1;   // index into KernelInfo::arrays for Load/Store
  std::uint16_t count = 1;   // repeat count for compute ops
  bool uses_prev = false;    // consumes the previous op's result (RAW dep)
  LaneIdx idx{};             // element indices (memory ops only)
};

// Lowered (materialized) operation consumed by the simulator and the model's
// trace analysis: memory ops carry per-lane *byte addresses* in the placed
// memory space.
struct TraceOp {
  OpClass cls = OpClass::IAlu;
  MemSpace space = MemSpace::Global;  // memory ops only
  std::int16_t array = -1;            // -1 for synthetic ops (staging copies)
  bool uses_prev = false;
  bool is_addr_calc = false;  // IAlu inserted by addressing-mode lowering
  std::uint32_t active_mask = 0;
  std::array<std::int64_t, kWarpSize> addr{};  // byte addresses; lanes w/ bit off: ignore
};

constexpr int popcount32(std::uint32_t m) {
  int n = 0;
  while (m) {
    m &= m - 1;
    ++n;
  }
  return n;
}

// Replay causes (Sec. III-B list (1)-(10)). Causes 1-4 depend on where the
// target data object lives and are re-derived per placement; 5-10 are assumed
// placement-invariant by the model (and the simulator generates 5 natively
// via DAlu issue timing).
enum class ReplayCause : int {
  GlobalAddressDivergence = 1,
  ConstantCacheMiss = 2,
  ConstantAddressDivergence = 3,
  SharedBankConflict = 4,
  DoubleIssue = 5,
  Other = 6,  // causes 6-10 aggregated
};

}  // namespace gpuhms
