#include "isa/addressing.hpp"

namespace gpuhms {

int addr_calc_instructions(MemSpace space, DType dtype) {
  (void)dtype;  // the enumerated common types all share counts on Kepler:
                // the IMAD pair / single SHL absorb the element-size scale.
  switch (space) {
    case MemSpace::Global: return 2;     // IMAD + IMAD.HI.X (Fig. 2a)
    case MemSpace::Texture1D: return 0;  // index used directly (Fig. 2b)
    case MemSpace::Constant: return 1;   // SHL (Fig. 2c)
    case MemSpace::Shared: return 1;     // SHL (Fig. 2d)
    case MemSpace::Texture2D: return 2;  // x/y coordinate derivation
  }
  return 0;
}

int addr_calc_instructions_2d(MemSpace space, DType dtype) {
  // When the kernel already maintains 2-D coordinates, the 2-D texture fetch
  // consumes them directly; everything else must flatten (one extra IMAD).
  switch (space) {
    case MemSpace::Texture2D: return 0;
    default: return addr_calc_instructions(space, dtype) + 1;
  }
}

}  // namespace gpuhms
