// Addressing-mode model (Sec. III-B, Fig. 2).
//
// Referencing an array element by its index costs a memory-space-dependent
// number of integer instructions before the load/store:
//   * global    — register-indirect: 64-bit effective address built with two
//                 32-bit IMADs (2 instructions),
//   * 1D texture — the element index feeds tex1Dfetch directly (0),
//   * constant  — indexed absolute: one SHL to scale the index (1),
//   * shared    — indexed absolute: one SHL (1),
//   * 2D texture — x/y coordinates derived from the linear index: one integer
//                 instruction pair is modeled (2) since SASS materializes a
//                 div/mod or uses precomputed strides.
// The counts vary with element width: 8-byte elements on global memory still
// need 2 instructions (IMAD pair); constant/shared still need the single
// scaling instruction.
#pragma once

#include "arch/mem_space.hpp"

namespace gpuhms {

// Number of integer addressing instructions to reference one element of a
// 1-D array of the given type from the given space.
int addr_calc_instructions(MemSpace space, DType dtype);

// Same, for an array accessed through 2-D coordinates (only meaningful when
// the DSL kernel addresses via a flattened index).
int addr_calc_instructions_2d(MemSpace space, DType dtype);

}  // namespace gpuhms
