#include "serve/session.hpp"

#include <cerrno>
#include <utility>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/obs.hpp"
#include "serve/service.hpp"

namespace gpuhms::serve {

std::vector<std::string> LineFramer::take_lines(std::size_t max_lines) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = buf_.find('\n');
       nl != std::string::npos && lines.size() < max_lines;
       nl = buf_.find('\n', start)) {
    lines.push_back(buf_.substr(start, nl - start));
    start = nl + 1;
  }
  buf_.erase(0, start);
  return lines;
}

Session::Session(EventLoop& loop, int fd, const SessionOptions& options,
                 PredictionService& service, ExecuteFn execute,
                 ClosedFn on_closed)
    : loop_(loop),
      fd_(fd),
      options_(options),
      service_(service),
      execute_(std::move(execute)),
      on_closed_(std::move(on_closed)) {}

Session::~Session() {
  // Normal teardown goes through close(); this only covers a session whose
  // start() failed before registration.
  if (!closed_ && fd_ >= 0) ::close(fd_);
}

Status Session::start() {
  auto self = shared_from_this();
  interest_ = EPOLLIN;
  Status st = loop_.add_fd(
      fd_, interest_,
      [self](std::uint32_t events) { self->on_event(events); });
  if (!st.ok()) {
    closed_ = true;
    ::close(fd_);
    if (on_closed_) on_closed_(this);
    return st.annotate("registering session fd on the event loop");
  }
  return OkStatus();
}

void Session::begin_drain() {
  if (closed_) return;
  // Read-side shutdown: bytes the peer already sent still frame out and get
  // their responses (the draining service sheds NEW work with a structured
  // UNAVAILABLE — one response per complete line, never a dropped one), then
  // read() reports EOF and the session closes once flushed. Identical
  // mechanism to the legacy backend's ConnectionRegistry::shutdown_all.
  ::shutdown(fd_, SHUT_RD);
}

bool Session::finished() const { return eof_ || service_.stopped(); }

void Session::on_event(std::uint32_t events) {
  if (closed_) return;
  if (events & EPOLLERR) {
    close();
    return;
  }
  if (events & EPOLLOUT) {
    on_writable();
    if (closed_) return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) on_readable();
}

void Session::on_readable() {
  if (closed_ || eof_) return;
  std::string chunk(options_.read_chunk_bytes, '\0');
  for (;;) {
    const ssize_t n = ::read(fd_, chunk.data(), chunk.size());
    if (n > 0) {
      framer_.feed(std::string_view(chunk.data(),
                                    static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {  // peer EOF / half-close: pending responses still flush
      eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof_ = true;  // read error: treat as EOF; buffered lines still answer
    break;
  }
  maybe_dispatch();
}

void Session::maybe_dispatch() {
  if (closed_ || executing_) return;
  const std::size_t pending = write_buf_.size() - write_off_;
  if (pending > options_.max_write_buffer_bytes) {
    // Slow reader: hold the next batch until the backlog fully flushes
    // (on_writable re-enters here at zero pending). Bounded buffer: at most
    // the limit plus one batch of responses.
    ++stalls_;
    GPUHMS_COUNTER_ADD("serve.loop.backpressure_stalls", 1);
    update_interest(EPOLLOUT);
    return;
  }
  std::vector<std::string> lines = framer_.take_lines(options_.max_batch_lines);
  if (lines.empty()) {
    if (finished() && pending == 0) {
      close();
      return;
    }
    // Idle (or flushing out the tail after EOF/stop): read iff more requests
    // may come.
    update_interest((finished() ? 0u : EPOLLIN) | (pending ? EPOLLOUT : 0u));
    return;
  }
  executing_ = true;
  // No reads while a batch executes: unread bytes queue in the kernel socket
  // buffer, which is the cheapest possible backpressure on the client.
  update_interest(pending ? EPOLLOUT : 0u);
  auto self = shared_from_this();
  execute_(std::move(lines), [self](std::vector<std::string> responses) {
    // Completion may arrive on any executor thread; session state is loop-
    // thread-confined, so re-post.
    auto* loop = &self->loop_;
    loop->post([self, responses = std::move(responses)]() mutable {
      self->on_batch_complete(std::move(responses));
    });
  });
}

void Session::on_batch_complete(std::vector<std::string> responses) {
  if (closed_) return;  // force-closed while executing: undeliverable
  executing_ = false;
  for (const std::string& response : responses) {
    write_buf_ += response;
    write_buf_ += '\n';
  }
  if (write_buf_.size() - write_off_ > high_water_)
    high_water_ = write_buf_.size() - write_off_;
  flush_writes();
  if (closed_) return;
  maybe_dispatch();
}

void Session::flush_writes() {
  while (write_off_ < write_buf_.size()) {
    // MSG_NOSIGNAL: a peer that closed with responses still buffered must
    // surface as EPIPE here, not as a process-wide SIGPIPE.
    const ssize_t w = ::send(fd_, write_buf_.data() + write_off_,
                             write_buf_.size() - write_off_, MSG_NOSIGNAL);
    if (w > 0) {
      write_off_ += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer gone (EPIPE/ECONNRESET): responses are undeliverable; drop the
    // connection like the legacy backend's failed write_all.
    close();
    return;
  }
  if (write_off_ == write_buf_.size()) {
    write_buf_.clear();
    write_off_ = 0;
  } else if (write_off_ > (std::size_t{64} << 10)) {
    write_buf_.erase(0, write_off_);  // keep a slow reader's tail compact
    write_off_ = 0;
  }
  const std::size_t pending = write_buf_.size() - write_off_;
  const bool stalled = pending > options_.max_write_buffer_bytes;
  update_interest(((finished() || executing_ || stalled) ? 0u : EPOLLIN) |
                  (pending ? EPOLLOUT : 0u));
}

void Session::on_writable() {
  flush_writes();
  if (closed_) return;
  if (write_off_ == write_buf_.size()) maybe_dispatch();
}

void Session::update_interest(std::uint32_t events) {
  if (events == interest_ || closed_) return;
  interest_ = events;
  // A MOD failure means the fd is already gone from the epoll set (closed
  // under us); the next event or completion closes the session anyway.
  [[maybe_unused]] const Status st = loop_.modify_fd(fd_, events);
}

void Session::close() {
  if (closed_) return;
  closed_ = true;
  loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_closed_) on_closed_(this);
}

}  // namespace gpuhms::serve
