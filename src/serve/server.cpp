#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/obs.hpp"
#include "serve/service.hpp"

namespace gpuhms::serve {

namespace {

Status errno_status(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

// Full write with EINTR handling; false means the peer is gone and the
// responses cannot be delivered (the legacy backend drops the connection).
// MSG_NOSIGNAL so a hung-up peer is an EPIPE errno, not a SIGPIPE.
bool write_all(int fd, const std::string& out) {
  std::size_t written = 0;
  while (written < out.size()) {
    const ssize_t w =
        ::send(fd, out.data() + written, out.size() - written, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(w);
  }
  return true;
}

std::string join_responses(const std::vector<std::string>& responses) {
  std::string out;
  for (const std::string& response : responses) {
    out += response;
    out += '\n';
  }
  return out;
}

int default_executor_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 4u));
}

}  // namespace

// --- Executor ----------------------------------------------------------------

Executor::Executor(int threads) {
  if (threads <= 0) threads = default_executor_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained: exit
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// --- SocketServer ------------------------------------------------------------

std::string_view to_string(ServerBackend backend) {
  switch (backend) {
    case ServerBackend::kEventLoop:
      return "event_loop";
    case ServerBackend::kThreadPerConnection:
      return "thread_per_connection";
  }
  return "unknown";
}

SocketServer::SocketServer(PredictionService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

SocketServer::~SocketServer() {
  if (listener_ >= 0) {
    ::close(listener_);
    ::unlink(options_.socket_path.c_str());
  }
  // Joins any legacy handler still running (a clean run() already joined
  // them). After a drain timeout (run() == 3) the caller must _Exit instead
  // of destroying the server: stuck handlers would block this join.
  for (std::thread& t : legacy_handlers_)
    if (t.joinable()) t.join();
  if (legacy_wake_fd_ >= 0) ::close(legacy_wake_fd_);
}

Status SocketServer::listen() {
  const std::string& path = options_.socket_path;
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof addr.sun_path)
    return InvalidArgumentError("socket path '" + path +
                                "' is empty or too long");
  listener_ =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listener_ < 0) return errno_status("socket()");
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return errno_status("bind('" + path + "')");
  if (::listen(listener_, options_.listen_backlog) != 0)
    return errno_status("listen()");
  return OkStatus();
}

int SocketServer::run() {
  if (listener_ < 0) return 1;  // listen() not called or failed
  if (options_.backend == ServerBackend::kThreadPerConnection)
    return run_thread_per_connection();
  return run_event_loop();
}

void SocketServer::begin_drain() {
  const bool first = !drain_requested_.exchange(true);
  if (options_.backend == ServerBackend::kEventLoop) {
    if (first) loop_.post([this] { initiate_shutdown(/*graceful=*/true); });
  } else if (legacy_wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t w =
        ::write(legacy_wake_fd_, &one, sizeof one);
  }
}

void SocketServer::stop() {
  hard_stop_.store(true);
  drain_requested_.store(true);
  if (options_.backend == ServerBackend::kEventLoop) {
    loop_.post([this] { initiate_shutdown(/*graceful=*/false); });
  } else if (legacy_wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t w =
        ::write(legacy_wake_fd_, &one, sizeof one);
  }
}

ServerStats SocketServer::stats() const {
  ServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_open = open_.load(std::memory_order_relaxed);
  s.backpressure_stalls = stalls_.load(std::memory_order_relaxed);
  s.write_buffer_high_water = high_water_.load(std::memory_order_relaxed);
  return s;
}

// --- event-loop backend ------------------------------------------------------

int SocketServer::run_event_loop() {
  if (!loop_.status().ok()) return 1;
  session_batch_lines_ = options_.max_batch_lines != 0
                             ? options_.max_batch_lines
                             : service_.options().max_batch;
  executor_ = std::make_unique<Executor>(options_.executor_threads);
  const Status st =
      loop_.add_fd(listener_, EPOLLIN, [this](std::uint32_t) {
        on_acceptable();
      });
  if (!st.ok()) return 1;
  // begin_drain()/stop() calls that raced ahead of run() posted their tasks
  // already; the first loop iteration executes them.
  loop_.run();
  if (!loop_.status().ok()) return 1;
  return timed_out_ ? 3 : 0;
}

void SocketServer::on_acceptable() {
  for (;;) {
    const int fd =
        ::accept4(listener_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: accepted everything pending. EMFILE/ENFILE: out of fds —
      // leave the connection queued; a session close frees a descriptor and
      // the level-triggered listener re-fires.
      break;
    }
    accept_one(fd);
  }
}

void SocketServer::accept_one(int fd) {
  SessionOptions session_options;
  session_options.max_batch_lines = session_batch_lines_;
  session_options.max_write_buffer_bytes = options_.max_write_buffer_bytes;
  auto execute = [this](std::vector<std::string> lines,
                        std::function<void(std::vector<std::string>)> done) {
    executor_->submit(
        [this, lines = std::move(lines), done = std::move(done)]() mutable {
          std::vector<std::string> responses = service_.handle_pipeline(lines);
          const bool stopped = service_.stopped();
          done(std::move(responses));
          // The batch that answered `shutdown` retires the whole server:
          // same drain sequence as a signal, entered exactly once.
          if (stopped && !drain_requested_.exchange(true))
            loop_.post([this] { initiate_shutdown(/*graceful=*/true); });
        });
  };
  auto session = std::make_shared<Session>(
      loop_, fd, session_options, service_, std::move(execute),
      [this](Session* s) { on_session_closed(s); });
  sessions_.emplace(session.get(), session);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t open = open_.fetch_add(1, std::memory_order_relaxed) + 1;
  GPUHMS_GAUGE_SET("serve.loop.open_connections", open);
  // A failed start() already closed the fd and fired on_session_closed.
  (void)session->start();
  // A connection accepted after the drain began still gets the graceful
  // treatment (shed responses, then EOF) instead of hanging open.
  if (closing_ && !session->closed()) session->begin_drain();
}

void SocketServer::on_session_closed(Session* session) {
  stalls_.fetch_add(session->backpressure_stalls(),
                    std::memory_order_relaxed);
  std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
  while (session->write_buffer_high_water() > hw &&
         !high_water_.compare_exchange_weak(
             hw, session->write_buffer_high_water(),
             std::memory_order_relaxed)) {
  }
  const std::uint64_t open = open_.fetch_sub(1, std::memory_order_relaxed) - 1;
  GPUHMS_GAUGE_SET("serve.loop.open_connections", open);
  sessions_.erase(session);
  if (closing_ && sessions_.empty()) loop_.stop();
}

void SocketServer::initiate_shutdown(bool graceful) {
  if (closing_) {
    if (!graceful) {  // escalate an in-progress drain to a hard stop
      std::vector<std::shared_ptr<Session>> live;
      live.reserve(sessions_.size());
      for (auto& [_, s] : sessions_) live.push_back(s);
      for (auto& s : live) s->close();
      loop_.stop();
    }
    return;
  }
  closing_ = true;
  close_listener();
  // Iterate a copy: begin_drain/close can complete a session inline, which
  // erases it from sessions_ via on_session_closed.
  std::vector<std::shared_ptr<Session>> live;
  live.reserve(sessions_.size());
  for (auto& [_, s] : sessions_) live.push_back(s);
  if (graceful) {
    // After a shutdown request the service is already stopped (trailing
    // lines answer FAILED_PRECONDITION); flipping draining on top would be
    // a different refusal code than the legacy backend emits.
    if (!service_.stopped()) service_.begin_drain();
    for (auto& s : live) s->begin_drain();
    loop_.add_timer(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms),
                    [this] {
                      timed_out_ = true;
                      loop_.stop();
                    });
  } else {
    for (auto& s : live) s->close();
  }
  if (sessions_.empty()) loop_.stop();
}

void SocketServer::close_listener() {
  if (listener_ < 0) return;
  loop_.remove_fd(listener_);
  ::close(listener_);
  ::unlink(options_.socket_path.c_str());
  listener_ = -1;
}

// --- legacy thread-per-connection backend ------------------------------------

int SocketServer::run_thread_per_connection() {
  legacy_wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (legacy_wake_fd_ < 0) return 1;
  while (!service_.stopped() && !drain_requested_.load()) {
    pollfd pfds[2] = {{listener_, POLLIN, 0}, {legacy_wake_fd_, POLLIN, 0}};
    // Finite timeout so a shutdown answered on a handler thread unblocks
    // this loop within a second even without a wakeup write.
    const int ready = ::poll(pfds, 2, 1000);
    if (ready < 0 && errno != EINTR) return 1;
    if (drain_requested_.load() || pfds[1].revents != 0) break;
    if (ready <= 0 || (pfds[0].revents & POLLIN) == 0) continue;
    // The accepted fd does not inherit the listener's O_NONBLOCK: handler
    // threads use plain blocking reads.
    const int fd = ::accept4(listener_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(legacy_mu_);
      legacy_fds_.push_back(fd);
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    legacy_handlers_.emplace_back([this, fd] {
      legacy_serve_connection(fd);
      {
        std::lock_guard<std::mutex> lock(legacy_mu_);
        std::erase(legacy_fds_, fd);
      }
      open_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
    });
  }
  // Stop accepting first: close the listener and unlink the path so new
  // clients fail fast instead of queueing behind a drain.
  ::close(listener_);
  ::unlink(options_.socket_path.c_str());
  listener_ = -1;

  const bool graceful_drain = drain_requested_.load() && !hard_stop_.load();
  if (graceful_drain && !service_.stopped()) service_.begin_drain();
  // Unblock every handler parked in read(): they answer whatever is already
  // framed (shed with UNAVAILABLE while draining, FAILED_PRECONDITION once
  // stopped), flush, and exit. Also covers the shutdown-request path, where
  // OTHER connections' handlers would otherwise block in read() until their
  // client hung up.
  {
    std::lock_guard<std::mutex> lock(legacy_mu_);
    for (const int fd : legacy_fds_) ::shutdown(fd, SHUT_RD);
  }
  if (graceful_drain) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_timeout_ms);
    while (open_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (open_.load(std::memory_order_acquire) > 0) return 3;
  }
  for (std::thread& t : legacy_handlers_) t.join();
  legacy_handlers_.clear();
  return 0;
}

void SocketServer::legacy_serve_connection(int fd) {
  LineFramer framer;
  char chunk[4096];
  bool stopped_seen = false;
  while (!stopped_seen) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    // Handle every complete line received so far as one pipelined batch
    // (same-kernel predicts coalesce into one batch prediction).
    const std::vector<std::string> lines =
        framer.take_lines(std::numeric_limits<std::size_t>::max());
    if (lines.empty()) continue;
    if (!write_all(fd, join_responses(service_.handle_pipeline(lines))))
      return;  // peer gone: responses undeliverable
    stopped_seen = service_.stopped();
  }
  // EOF (or a shutdown answered above): complete lines still framed are owed
  // a response each — the stopped/draining service sheds them with the same
  // structured refusals the event-loop backend produces. A partial trailing
  // line was never a complete request and is dropped by construction.
  const std::vector<std::string> lines =
      framer.take_lines(std::numeric_limits<std::size_t>::max());
  if (!lines.empty())
    write_all(fd, join_responses(service_.handle_pipeline(lines)));
}

// --- client-side helper ------------------------------------------------------

StatusOr<int> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof addr.sun_path)
    return InvalidArgumentError("socket path '" + path +
                                "' is empty or too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket()");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const Status st = errno_status("connect('" + path + "')");
    ::close(fd);
    return st;
  }
  return fd;
}

}  // namespace gpuhms::serve
