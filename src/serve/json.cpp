#include "serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace gpuhms::serve {

namespace {

// Recursion guard: the protocol never nests past ~4 levels; 64 keeps any
// adversarial request from exhausting the stack.
constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  Status error(std::string what) const {
    return InvalidArgumentError("JSON parse error at byte " +
                                std::to_string(pos) + ": " + std::move(what));
  }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos;
    return true;
  }

  Status expect_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit)
      return error("expected '" + std::string(lit) + "'");
    pos += lit.size();
    return OkStatus();
  }

  StatusOr<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return error("nesting deeper than 64 levels");
    skip_ws();
    if (at_end()) return error("unexpected end of input");
    switch (peek()) {
      case 'n': {
        GPUHMS_RETURN_IF_ERROR(expect_literal("null"));
        return Json();
      }
      case 't': {
        GPUHMS_RETURN_IF_ERROR(expect_literal("true"));
        return Json(true);
      }
      case 'f': {
        GPUHMS_RETURN_IF_ERROR(expect_literal("false"));
        return Json(false);
      }
      case '"':
        return parse_string();
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  StatusOr<Json> parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (at_end() || peek() < '0' || peek() > '9')
      return error("expected a digit");
    if (peek() == '0') {
      ++pos;  // no leading zeros
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (at_end() || peek() < '0' || peek() > '9')
        return error("expected a digit after '.'");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (at_end() || peek() < '0' || peek() > '9')
        return error("expected a digit in the exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text.data() + start, text.data() + pos, v);
    if (ec != std::errc{} || end != text.data() + pos)
      return error("unrepresentable number");
    if (!std::isfinite(v)) return error("number overflows a double");
    return Json(v);
  }

  StatusOr<Json> parse_string() {
    ++pos;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) return error("unterminated string");
      const char c = text[pos++];
      if (c == '"') return Json(std::move(out));
      if (static_cast<unsigned char>(c) < 0x20)
        return error("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return error("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) return error("truncated \\u escape");
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return error("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through individually — the protocol is ASCII in practice).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return error(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  StatusOr<Json> parse_array(int depth) {
    ++pos;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      GPUHMS_ASSIGN_OR_RETURN(Json v, parse_value(depth + 1));
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return arr;
      if (!consume(',')) return error("expected ',' or ']' in array");
    }
  }

  StatusOr<Json> parse_object(int depth) {
    ++pos;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"')
        return error("expected a quoted object key");
      GPUHMS_ASSIGN_OR_RETURN(Json key, parse_string());
      skip_ws();
      if (!consume(':')) return error("expected ':' after object key");
      GPUHMS_ASSIGN_OR_RETURN(Json v, parse_value(depth + 1));
      obj.set(key.as_string(), std::move(v));
      skip_ws();
      if (consume('}')) return obj;
      if (!consume(',')) return error("expected ',' or '}' in object");
    }
  }
};

}  // namespace

bool Json::as_bool() const {
  GPUHMS_CHECK_MSG(type_ == Type::kBool, "Json::as_bool on a non-bool");
  return bool_;
}

double Json::as_number() const {
  GPUHMS_CHECK_MSG(type_ == Type::kNumber, "Json::as_number on a non-number");
  return num_;
}

const std::string& Json::as_string() const {
  GPUHMS_CHECK_MSG(type_ == Type::kString, "Json::as_string on a non-string");
  return str_;
}

const Json& Json::at(std::size_t i) const {
  GPUHMS_CHECK_MSG(type_ == Type::kArray && i < items_.size(),
                   "Json::at out of range");
  return items_[i];
}

Json& Json::push_back(Json v) {
  GPUHMS_CHECK_MSG(type_ == Type::kArray, "Json::push_back on a non-array");
  items_.push_back(std::move(v));
  return items_.back();
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::set(std::string_view key, Json v) {
  GPUHMS_CHECK_MSG(type_ == Type::kObject, "Json::set on a non-object");
  for (auto& [k, existing] : fields_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  fields_.emplace_back(std::string(key), std::move(v));
  return fields_.back().second;
}

StatusOr<Json> Json::parse(std::string_view text) {
  Parser p{text};
  GPUHMS_ASSIGN_OR_RETURN(Json v, p.parse_value(0));
  p.skip_ws();
  if (!p.at_end()) return p.error("trailing characters after the value");
  return v;
}

std::string json_number(double v) {
  // NaN/inf are not representable in JSON; the model layer never produces
  // them past validation, but a defensive "null" beats emitting garbage.
  if (!std::isfinite(v)) return "null";
  char buf[32];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    const int n = std::snprintf(buf, sizeof buf, "%lld",
                                static_cast<long long>(v));
    return std::string(buf, static_cast<std::size_t>(n));
  }
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  GPUHMS_CHECK(ec == std::errc{});
  return std::string(buf, end);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += json_number(num_);
      break;
    case Type::kString:
      out += json_quote(str_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        items_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) out.push_back(',');
        out += json_quote(fields_[i].first);
        out.push_back(':');
        fields_[i].second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace gpuhms::serve
