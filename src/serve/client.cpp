#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/hashing.hpp"

namespace gpuhms::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// Is this response a retryable rejection? Only the two codes the service
// uses for transient shed conditions; everything else (INVALID_ARGUMENT,
// FAILED_PRECONDITION after shutdown, ...) is final.
bool retryable_rejection(const std::string& response_line) {
  const StatusOr<Json> parsed = Json::parse(response_line);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const Json* ok = parsed->find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->as_bool()) return false;
  const Json* error = parsed->find("error");
  if (error == nullptr || !error->is_object()) return false;
  const Json* code = error->find("code");
  if (code == nullptr || !code->is_string()) return false;
  const std::string& c = code->as_string();
  return c == "UNAVAILABLE" || c == "RESOURCE_EXHAUSTED";
}

}  // namespace

Client::Client(Transport transport, ClientOptions options)
    : transport_(std::move(transport)), options_(std::move(options)) {
  if (!options_.sleeper)
    options_.sleeper = [](std::uint64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
}

std::string Client::idempotency_key(const Json& request) {
  return hex64(
      Fnv1a().mix(std::string_view(request.dump())).digest());
}

StatusOr<std::string> Client::call(const Json& request) {
  Json req = request;
  // Stamp before the first send so every retry carries the SAME key — that
  // is what lets the server dedupe a request whose first execution succeeded
  // but whose response got lost in transit.
  if (options_.add_idempotency_key && req.find("idem") == nullptr)
    req.set("idem", idempotency_key(request));
  const std::string line = req.dump();

  const int max_attempts = std::max(1, options_.max_attempts);
  Status last_error = OkStatus();
  std::string last_response;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      const double raw = static_cast<double>(options_.backoff_initial_ms) *
                         std::pow(options_.backoff_multiplier, attempt - 1);
      const std::uint64_t ms = static_cast<std::uint64_t>(std::min(
          raw, static_cast<double>(options_.backoff_cap_ms)));
      if (ms > 0) options_.sleeper(ms);
    }
    ++attempts_;
    StatusOr<std::string> response = transport_(line);
    if (!response.ok()) {
      last_error = response.status();
      continue;  // transport failure: always retryable (idem key covers it)
    }
    if (retryable_rejection(*response)) {
      last_error = OkStatus();
      last_response = std::move(*response);
      continue;
    }
    return std::move(*response);
  }
  if (!last_error.ok())
    return last_error.annotate("after " + std::to_string(max_attempts) +
                               " attempts");
  return UnavailableError("request still shed after " +
                          std::to_string(max_attempts) +
                          " attempts; last response: " + last_response);
}

StatusOr<Json> Client::call_json(const Json& request) {
  GPUHMS_ASSIGN_OR_RETURN(std::string line, call(request));
  StatusOr<Json> parsed = Json::parse(line);
  if (!parsed.ok())
    return DataLossError("response line is not valid JSON: " +
                         parsed.status().message());
  if (!parsed->is_object())
    return DataLossError("response line is not a JSON object");
  return std::move(*parsed);
}

}  // namespace gpuhms::serve
