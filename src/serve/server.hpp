// Unix-domain-socket front end for PredictionService (DESIGN §15).
//
// Two interchangeable backends answer the same newline-delimited JSON
// protocol with byte-identical responses (both feed complete request lines
// through the one shared PredictionService::handle_pipeline):
//
//   * kEventLoop (default): one epoll reactor thread (event_loop.hpp) holds
//     every connection as a non-blocking Session (session.hpp); request
//     batches execute on a small worker Executor and complete back onto the
//     loop. Idle connections cost one fd + one Session, not a thread, so a
//     single instance holds thousands of mostly-idle clients.
//   * kThreadPerConnection (--legacy-threaded): the PR 5 blocking loop —
//     one handler thread per accepted connection — kept for differential
//     testing and as the reference semantics for drains and shutdown.
//
// Lifecycle: listen() binds the socket synchronously (clients may connect
// the moment it returns), run() blocks serving until a drain completes or a
// shutdown request is answered, begin_drain() (any thread; the daemon's
// signal path) starts the graceful drain of DESIGN §13. run() returns 0 on
// a clean exit and 3 when the drain timeout forced it — in which case
// worker/handler threads may still be running and the caller should _Exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "serve/event_loop.hpp"
#include "serve/session.hpp"

namespace gpuhms::serve {

class PredictionService;

// Minimal FIFO worker pool for off-loop request execution. (ThreadPool in
// common/ is a fork-join parallel_for engine with no submit API; sessions
// need fire-and-forget closures.) The destructor finishes every queued task
// before joining — a drain never abandons an accepted batch.
class Executor {
 public:
  explicit Executor(int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void submit(std::function<void()> task);
  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

enum class ServerBackend {
  kEventLoop,            // epoll reactor (default)
  kThreadPerConnection,  // legacy blocking loop (--legacy-threaded)
};

std::string_view to_string(ServerBackend backend);

struct ServerOptions {
  std::string socket_path;
  ServerBackend backend = ServerBackend::kEventLoop;
  // Worker threads executing handle_pipeline batches for the event-loop
  // backend; 0 picks a small default (hardware_concurrency clamped to
  // [1, 4] — the service serializes shared-pool work internally anyway).
  int executor_threads = 0;
  // Session write-buffer bound before dispatch stalls on a slow reader.
  std::size_t max_write_buffer_bytes = 256 * 1024;
  // Complete lines per dispatched batch; 0 mirrors the service's max_batch.
  std::size_t max_batch_lines = 0;
  int listen_backlog = 128;
  // Bound on the graceful drain; exceeded -> run() returns 3.
  std::size_t drain_timeout_ms = 5000;
};

// Point-in-time server counters. backpressure_stalls / write_buffer_high_water
// aggregate over CLOSED sessions (live sessions are loop-thread-confined).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t write_buffer_high_water = 0;
};

class SocketServer {
 public:
  SocketServer(PredictionService& service, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens on options.socket_path (unlinking any stale socket
  // first). Synchronous: a client may connect as soon as this returns.
  Status listen();

  // Serves until a shutdown request is answered or a drain completes.
  // Returns 0 on clean exit, 3 when the drain timeout forced the stop (see
  // file comment), 1 on an internal serving error.
  int run();

  // Starts the graceful drain (thread-safe, idempotent): stop accepting,
  // shed new work with UNAVAILABLE, finish + flush everything in flight,
  // then make run() return. The daemon's SIGTERM/SIGINT path.
  void begin_drain();

  // Hard stop for tests (thread-safe): force-close every connection without
  // waiting for flushes, then make run() return.
  void stop();

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }

 private:
  // --- event-loop backend (loop thread unless noted) -------------------------
  int run_event_loop();
  void on_acceptable();
  void accept_one(int fd);
  void on_session_closed(Session* session);
  // Shared by drain/shutdown: close the listener, drain (or force-close)
  // sessions, stop the loop once the last session closes.
  void initiate_shutdown(bool graceful);
  void close_listener();

  // --- legacy thread-per-connection backend ----------------------------------
  int run_thread_per_connection();
  void legacy_serve_connection(int fd);

  PredictionService& service_;
  const ServerOptions options_;

  int listener_ = -1;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> hard_stop_{false};

  // Event-loop backend state.
  EventLoop loop_;
  std::unordered_map<Session*, std::shared_ptr<Session>> sessions_;
  bool closing_ = false;    // loop thread: listener closed, draining sessions
  bool timed_out_ = false;  // loop thread: drain deadline fired
  std::size_t session_batch_lines_ = 0;

  // Legacy backend state: self-wake eventfd so begin_drain()/stop() unblock
  // the accept poll, and the open-connection registry for SHUT_RD drains.
  int legacy_wake_fd_ = -1;
  std::mutex legacy_mu_;
  std::vector<int> legacy_fds_;
  std::vector<std::thread> legacy_handlers_;

  std::atomic<std::uint64_t> accepted_{0}, open_{0}, stalls_{0},
      high_water_{0};

  // Declared last: destroying the executor first joins every in-flight
  // batch, so completion closures (which post onto loop_ and hold Session
  // refs) finish before the loop and session map go away.
  std::unique_ptr<Executor> executor_;
};

// Blocking client-side connect to a Unix socket (tests, benchmarks).
// The returned fd is owned by the caller.
StatusOr<int> connect_unix(const std::string& path);

}  // namespace gpuhms::serve
