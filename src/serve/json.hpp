// Minimal JSON value, parser, and writer for the serving protocol.
//
// The daemon speaks newline-delimited JSON (one request object per line, one
// response object per line — see DESIGN §11), and the container ships no
// JSON library, so this implements exactly the subset the protocol needs:
// null/bool/number/string/array/object, strict RFC 8259 grammar, a recursion
// depth limit, and byte-offset diagnostics on malformed input. Objects
// preserve insertion order and dump() emits no insignificant whitespace, so
// a value round-trips to the same bytes — the property the determinism test
// leans on (bit-identical responses for identical requests).
//
// Numbers are doubles (like JavaScript); dump() renders them with
// std::to_chars shortest round-trip form, integers without a trailing ".0".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gpuhms::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  // One template for all integral types: std::uint64_t and std::size_t are
  // the same type on LP64, so distinct overloads would collide.
  template <typename I,
            typename = std::enable_if_t<std::is_integral_v<I> &&
                                        !std::is_same_v<I, bool>>>
  Json(I i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), str_(s) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors abort on kind mismatch (internal invariant — callers
  // must test the type first; the protocol layer does).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // Array element access / append.
  std::size_t size() const { return items_.size(); }
  const Json& at(std::size_t i) const;
  Json& push_back(Json v);

  // Object member access: find() returns nullptr when absent. set() appends
  // or overwrites, preserving first-insertion order.
  const Json* find(std::string_view key) const;
  Json& set(std::string_view key, Json v);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return fields_;
  }

  // Strict parse of exactly one JSON value (leading/trailing whitespace
  // allowed, anything else after the value is an error). Errors are
  // INVALID_ARGUMENT with a byte offset and what was expected.
  static StatusOr<Json> parse(std::string_view text);

  // Compact serialization (no spaces/newlines). Deterministic: preserves
  // member order, shortest-round-trip numbers.
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> fields_;   // kObject
};

// Renders a double the way Json::dump does (shortest round-trip; integral
// values without a fraction). Exposed for handwritten JSON writers (benches).
std::string json_number(double v);

// Escapes and quotes a string for embedding in handwritten JSON.
std::string json_quote(std::string_view s);

}  // namespace gpuhms::serve
