#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "arch/arch_registry.hpp"
#include "common/fault_injection.hpp"
#include "common/hashing.hpp"
#include "common/obs.hpp"

namespace gpuhms::serve {

namespace {

// RAII admission slot: counts the request against max_inflight and releases
// on scope exit. admitted() false means the service is over capacity and the
// request must be rejected without doing model work.
class InflightSlot {
 public:
  InflightSlot(std::atomic<std::size_t>& inflight, std::size_t limit)
      : inflight_(inflight) {
    const std::size_t now = inflight_.fetch_add(1, std::memory_order_acq_rel);
    admitted_ = now < limit;
  }
  ~InflightSlot() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }
  bool admitted() const { return admitted_; }

 private:
  std::atomic<std::size_t>& inflight_;
  bool admitted_ = false;
};

// Status message + context chain, without the code prefix (the code gets its
// own response field).
std::string status_message(const Status& st) {
  std::string msg = st.message();
  if (!st.context().empty()) msg += " (while " + st.context() + ")";
  return msg;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// Required string member, or INVALID_ARGUMENT naming the field.
StatusOr<std::string> get_string(const Json& req, std::string_view key) {
  const Json* v = req.find(key);
  if (v == nullptr)
    return InvalidArgumentError("missing required field '" +
                                std::string(key) + "'");
  if (!v->is_string())
    return InvalidArgumentError("field '" + std::string(key) +
                                "' must be a string");
  return v->as_string();
}

// Optional "arch" member naming an ArchRegistry backend; "" (also the value
// when absent) selects the service's default arch. Resolution and the
// unknown-name INVALID_ARGUMENT happen in kernel_entry.
StatusOr<std::string> get_arch_name(const Json& req) {
  const Json* v = req.find("arch");
  if (v == nullptr) return std::string();
  if (!v->is_string())
    return InvalidArgumentError("field 'arch' must be a string");
  return v->as_string();
}

// Optional non-negative integer member; `fallback` when absent.
StatusOr<std::uint64_t> get_uint(const Json& req, std::string_view key,
                                 std::uint64_t fallback) {
  const Json* v = req.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number())
    return InvalidArgumentError("field '" + std::string(key) +
                                "' must be a number");
  const double d = v->as_number();
  if (!(d >= 0) || d != std::floor(d) || d > 1e18)
    return InvalidArgumentError("field '" + std::string(key) +
                                "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

}  // namespace

// --- fingerprints ------------------------------------------------------------

std::uint64_t fingerprint(const KernelInfo& kernel) {
  Fnv1a h;
  h.mix(std::string_view(kernel.name));
  h.mix(kernel.num_blocks);
  h.mix(kernel.threads_per_block);
  h.mix(kernel.arrays.size());
  for (const ArrayDecl& a : kernel.arrays) {
    h.mix(std::string_view(a.name));
    h.mix(a.dtype);
    h.mix(a.elems);
    h.mix(a.width);
    h.mix(a.written);
    h.mix(a.shared_slice_elems);
    h.mix(a.default_space);
  }
  return h.digest();
}

std::uint64_t fingerprint(const GpuArch& arch) {
  Fnv1a h;
  h.mix(arch.num_sms);
  h.mix(arch.warp_size);
  h.mix(arch.max_warps_per_sm);
  h.mix(arch.max_blocks_per_sm);
  h.mix(arch.simd_width);
  h.mix(arch.ialu_lat);
  h.mix(arch.falu_lat);
  h.mix(arch.dalu_lat);
  h.mix(arch.sfu_lat);
  h.mix(arch.avg_inst_lat);
  h.mix(arch.shared_lat);
  h.mix(arch.shared_banks);
  h.mix(arch.shared_conflict_penalty);
  h.mix(arch.shared_capacity);
  h.mix(arch.constant_capacity);
  h.mix(arch.cache_line);
  h.mix(arch.cache_hit_lat);
  h.mix(arch.const_cache_hit_lat);
  h.mix(arch.tex_cache_hit_lat);
  h.mix(arch.l2_capacity);
  h.mix(arch.l2_ways);
  h.mix(arch.const_cache_capacity);
  h.mix(arch.const_cache_ways);
  h.mix(arch.tex_cache_capacity);
  h.mix(arch.tex_cache_ways);
  h.mix(arch.dram_channels);
  h.mix(arch.banks_per_channel);
  h.mix(arch.dram.page_policy);
  h.mix(arch.dram.pipeline_lat);
  h.mix(arch.dram.row_hit_service);
  h.mix(arch.dram.row_miss_service);
  h.mix(arch.dram.row_conflict_service);
  // Address-map strategy: two archs identical in every scalar but decoding
  // banks differently must never share a cached Prediction. Lengths are
  // mixed before elements so {1,2}+{3} and {1}+{2,3} cannot collide.
  h.mix(arch.addr_map.transaction_bits);
  for (const std::vector<int>* g :
       {&arch.addr_map.bank_bits, &arch.addr_map.column_bits,
        &arch.addr_map.row_bits, &arch.addr_map.bank_xor_bits}) {
    h.mix(g->size());
    for (int b : *g) h.mix(b);
  }
  return h.digest();
}

std::uint64_t fingerprint(const ModelOptions& options) {
  Fnv1a h;
  h.mix(options.detailed_instruction_counting);
  h.mix(options.queuing_model);
  h.mix(options.address_mapping);
  h.mix(options.row_buffer_model);
  h.mix(options.queue_discipline);
  h.mix(options.anchor_to_sample);
  return h.digest();
}

// --- service -----------------------------------------------------------------

// The heavyweight per-kernel state a long-lived service amortizes: the
// benchmark definition (owning the KernelInfo the predictor points into),
// one profiled Predictor, and the lowered TraceSkeleton shared by every
// prediction of this kernel. Immutable once published to the cache; the
// shared_ptr keeps an entry alive while in use even after LRU eviction.
struct PredictionService::KernelEntry {
  workloads::BenchmarkCase bench;
  // The backend this entry was profiled under: the service default when the
  // request named no arch, otherwise the resolved registry backend. Owned by
  // value — the predictor points into it, and the entry outlives the request.
  GpuArch arch;
  std::string arch_name;  // "" for the service default
  std::unique_ptr<Predictor> predictor;
  std::shared_ptr<const TraceSkeleton> skeleton;
  // Prediction-cache key prefix: kernel|arch|model fingerprints. The arch
  // fingerprint mixes the full address-map spec, so entries for different
  // backends (even ones differing only in their bank decode) never alias.
  std::string key_prefix;
};

// One predict awaiting an answer; predict_many fills `result`.
struct PredictionService::PendingPredict {
  KernelEntryPtr entry;
  DataPlacement placement;
  std::string key;  // entry->key_prefix + placement string
  Prediction result;
  bool from_cache = false;
};

std::size_t PredictionService::PredictionKeyHash::operator()(
    const std::string& k) const {
  return static_cast<std::size_t>(Fnv1a().mix(std::string_view(k)).digest());
}

PredictionService::PredictionService(ServeOptions options)
    : PredictionService(std::move(options), kepler_arch()) {}

// One running watched search: the cancel token the watchdog fires when the
// deadline passes. shared_ptr-owned so a fire racing a release stays safe.
struct PredictionService::WatchdogEntry {
  std::chrono::steady_clock::time_point deadline;
  std::atomic<bool> cancel{false};
  bool active = true;
};

PredictionService::PredictionService(ServeOptions options, const GpuArch& arch)
    : options_(options),
      arch_(arch),
      kernel_cache_(options.kernel_cache_capacity, options.cache_backend),
      prediction_cache_(options.prediction_cache_capacity,
                        options.cache_backend),
      pool_(options.num_threads),
      idem_cache_(options.idem_cache_capacity, options.cache_backend) {
  if (options_.watchdog_ms > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
  if (options_.train_overlap) {
    std::vector<TrainingCase> cases;
    const std::vector<workloads::BenchmarkCase> training =
        workloads::training_suite();
    // The suite outlives this loop only locally; train_overlap_model
    // consumes the cases before returning, so pointers into `training` are
    // safe here and nothing is retained.
    for (const auto& c : training) {
      cases.push_back({&c.kernel, c.sample});
      for (const auto& t : c.tests) cases.push_back({&c.kernel, t.placement});
    }
    overlap_ = train_overlap_model(cases, arch_, ModelOptions{}, 1e-3, &pool_);
  }
}

PredictionService::~PredictionService() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void PredictionService::begin_drain() {
  draining_.store(true, std::memory_order_release);
  GPUHMS_COUNTER_ADD("serve.drains", 1);
}

std::shared_ptr<PredictionService::WatchdogEntry>
PredictionService::watchdog_register() {
  auto entry = std::make_shared<WatchdogEntry>();
  entry->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.watchdog_ms);
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_entries_.push_back(entry);
  }
  watchdog_cv_.notify_all();
  return entry;
}

void PredictionService::watchdog_release(
    const std::shared_ptr<WatchdogEntry>& entry) {
  std::lock_guard<std::mutex> lock(watchdog_mu_);
  entry->active = false;
  std::erase(watchdog_entries_, entry);
}

void PredictionService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    // Sleep until the earliest registered deadline (or a registration /
    // shutdown notification when the list is empty).
    auto next = std::chrono::steady_clock::time_point::max();
    for (const auto& e : watchdog_entries_) next = std::min(next, e->deadline);
    if (next == std::chrono::steady_clock::time_point::max()) {
      watchdog_cv_.wait(lock);
      continue;
    }
    watchdog_cv_.wait_until(lock, next);
    if (watchdog_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    for (const auto& e : watchdog_entries_) {
      if (e->active && e->deadline <= now &&
          !e->cancel.exchange(true, std::memory_order_acq_rel)) {
        watchdog_cancels_.fetch_add(1, std::memory_order_relaxed);
        GPUHMS_COUNTER_ADD("serve.watchdog_cancels", 1);
      }
    }
  }
}

StatusOr<PredictionService::KernelEntryPtr> PredictionService::kernel_entry(
    const std::string& benchmark, const std::string& arch_name) {
  // Per-(benchmark, arch) cache key. '\n' cannot appear in either component
  // (benchmark names are identifiers, arch names come from the registry), so
  // distinct pairs never collide.
  const std::string cache_key = benchmark + "\n" + arch_name;
  if (auto hit = kernel_cache_.get(cache_key)) {
    GPUHMS_COUNTER_ADD("serve.kernel_cache_hits", 1);
    return *hit;
  }
  // Build outside the cache under one lock: profiling a sample runs the
  // simulator substrate (milliseconds), and two clients racing on the same
  // cold benchmark must not both pay it.
  std::lock_guard<std::mutex> build_lock(build_mu_);
  if (auto hit = kernel_cache_.get(cache_key)) {
    GPUHMS_COUNTER_ADD("serve.kernel_cache_hits", 1);
    return *hit;
  }
  GPUHMS_COUNTER_ADD("serve.kernel_cache_misses", 1);
  GPUHMS_SCOPED_PHASE("serve.kernel_build_ns");

  auto entry = std::make_shared<KernelEntry>();
  entry->arch_name = arch_name;
  if (arch_name.empty()) {
    entry->arch = arch_;
  } else {
    StatusOr<const ArchBackend*> backend =
        ArchRegistry::builtin().try_find(arch_name);
    if (!backend.ok()) return backend.status();
    entry->arch = (*backend)->arch;
  }
  bool found = false;
  for (auto suite :
       {workloads::training_suite(), workloads::evaluation_suite()}) {
    for (auto& c : suite) {
      if (c.name == benchmark) {
        entry->bench = std::move(c);
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found)
    return InvalidArgumentError("unknown benchmark '" + benchmark +
                                "' (not in the Table IV training or "
                                "evaluation suite)");

  const ModelOptions model_options{};
  entry->predictor = std::make_unique<Predictor>(
      entry->bench.kernel, entry->arch, model_options, overlap_);
  GPUHMS_RETURN_IF_ERROR(
      entry->predictor->try_profile_sample(entry->bench.sample)
          .annotate("profiling the sample placement of benchmark '" +
                    benchmark + "'"));
  entry->skeleton = entry->predictor->memoize_trace();
  entry->key_prefix = hex64(fingerprint(entry->bench.kernel)) + "|" +
                      hex64(fingerprint(entry->arch)) + "|" +
                      hex64(fingerprint(model_options)) + "|";
  KernelEntryPtr published = std::move(entry);
  kernel_cache_.put(cache_key, published);
  return published;
}

Status PredictionService::predict_many(std::span<PendingPredict> pending) {
  // Pass 1: answer from the prediction cache.
  std::uint64_t hits = 0;
  for (PendingPredict& p : pending) {
    p.key = p.entry->key_prefix + p.placement.to_string();
    if (auto cached = prediction_cache_.get(p.key)) {
      p.result = *cached;
      p.from_cache = true;
      ++hits;
    }
  }
  GPUHMS_COUNTER_ADD("serve.prediction_cache_hits", hits);
  GPUHMS_COUNTER_ADD("serve.prediction_cache_misses", pending.size() - hits);

  // Pass 2: coalesce the misses into one predict_batch call per kernel,
  // deduplicating identical placements within the batch.
  std::unordered_map<std::string, std::vector<std::size_t>> by_kernel;
  for (std::size_t i = 0; i < pending.size(); ++i)
    if (!pending[i].from_cache)
      by_kernel[pending[i].entry->key_prefix].push_back(i);

  for (auto& [prefix, indices] : by_kernel) {
    std::unordered_map<std::string, std::vector<std::size_t>> by_key;
    std::vector<DataPlacement> targets;
    for (const std::size_t i : indices) {
      auto [it, inserted] = by_key.try_emplace(pending[i].key);
      if (inserted) targets.push_back(pending[i].placement);
      it->second.push_back(i);
    }
    const Predictor& predictor = *pending[indices.front()].entry->predictor;
    StatusOr<std::vector<Prediction>> batch = [&] {
      GPUHMS_SCOPED_PHASE("serve.batch_predict_ns");
      std::lock_guard<std::mutex> pool_lock(pool_mu_);
      return predictor.try_predict_batch(targets, &pool_);
    }();
    if (!batch.ok())
      return batch.status().annotate(
          "batch predicting " + std::to_string(targets.size()) +
          " placements of benchmark '" +
          pending[indices.front()].entry->bench.name + "'");
    batch_calls_.fetch_add(1, std::memory_order_relaxed);
    batched_predicts_.fetch_add(targets.size(), std::memory_order_relaxed);
    GPUHMS_HISTOGRAM_RECORD("serve.batch_size", targets.size());

    std::size_t t = 0;
    for (const std::size_t lead : indices) {
      if (pending[lead].from_cache) continue;  // filled via an earlier alias
      const Prediction& pr = (*batch)[t++];
      for (const std::size_t i : by_key[pending[lead].key]) {
        pending[i].result = pr;
        pending[i].from_cache = true;  // mark filled
      }
      prediction_cache_.put(pending[lead].key, pr);
    }
  }
  predictions_.fetch_add(pending.size(), std::memory_order_relaxed);
  return OkStatus();
}

Json PredictionService::prediction_json(const KernelEntry& entry,
                                        const DataPlacement& placement,
                                        const Prediction& prediction) const {
  (void)entry;
  Json o = Json::object();
  o.set("placement", placement.to_string());
  o.set("predicted_cycles", prediction.total_cycles);
  o.set("t_comp", prediction.t_comp);
  o.set("t_mem", prediction.t_mem);
  o.set("t_overlap", prediction.t_overlap);
  o.set("amat", prediction.amat);
  o.set("queue_saturated", prediction.queue_saturated);
  return o;
}

namespace {

Json make_response_shell(const Json* id, std::string_view op) {
  Json r = Json::object();
  r.set("id", id != nullptr ? *id : Json());
  if (!op.empty()) r.set("op", op);
  return r;
}

Json error_response(const Json* id, std::string_view op, const Status& st) {
  Json r = make_response_shell(id, op);
  r.set("ok", false);
  Json e = Json::object();
  e.set("code", std::string(gpuhms::to_string(st.code())));
  e.set("message", status_message(st));
  r.set("error", std::move(e));
  return r;
}

}  // namespace

// Status -> error-response plumbing for the Json-returning handlers; the
// dispatch wrapper fills in id/op afterwards.
#define GPUHMS_ASSIGN_OR_RETURN_JSON(lhs, expr)                        \
  GPUHMS_SERVE_AOR_IMPL_(                                              \
      GPUHMS_STATUS_CONCAT_(gpuhms_serve_sor_, __LINE__), lhs, expr)
#define GPUHMS_SERVE_AOR_IMPL_(tmp, lhs, expr)                         \
  auto tmp = (expr);                                                   \
  if (!tmp.ok()) return error_response(nullptr, "", tmp.status());     \
  lhs = std::move(tmp).value()

Json PredictionService::handle_predict(const Json& request) {
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string benchmark,
                               get_string(request, "benchmark"));
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string arch_name, get_arch_name(request));
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string placement_str,
                               get_string(request, "placement"));
  GPUHMS_ASSIGN_OR_RETURN_JSON(KernelEntryPtr entry,
                               kernel_entry(benchmark, arch_name));

  const std::optional<DataPlacement> placement =
      DataPlacement::from_string(entry->bench.kernel, placement_str);
  if (!placement)
    return error_response(
        nullptr, "",
        InvalidArgumentError("cannot parse placement '" + placement_str +
                             "' for benchmark '" + benchmark + "' (" +
                             std::to_string(entry->bench.kernel.arrays.size()) +
                             " arrays; codes G,S,C,T,2T)"));
  if (Status st = validate(entry->bench.kernel, *placement, entry->arch);
      !st.ok())
    return error_response(nullptr, "", st);

  PendingPredict pending[1] = {{entry, *placement, {}, {}, false}};
  if (Status st = predict_many(pending); !st.ok())
    return error_response(nullptr, "", st);

  Json r = Json::object();
  r.set("ok", true);
  r.set("benchmark", benchmark);
  // Echoed only when the request named a backend: default-arch responses
  // stay byte-identical to the pre-registry protocol.
  if (!arch_name.empty()) r.set("arch", arch_name);
  const Json fields = prediction_json(*entry, *placement, pending[0].result);
  for (const auto& [k, v] : fields.members()) r.set(k, v);
  return r;
}

Json PredictionService::handle_predict_batch(const Json& request) {
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string benchmark,
                               get_string(request, "benchmark"));
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string arch_name, get_arch_name(request));
  const Json* placements = request.find("placements");
  if (placements == nullptr || !placements->is_array())
    return error_response(
        nullptr, "",
        InvalidArgumentError("field 'placements' must be an array of "
                             "placement strings"));
  if (placements->size() > options_.max_batch) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    GPUHMS_COUNTER_ADD("serve.rejected", 1);
    return error_response(
        nullptr, "",
        ResourceExhaustedError(
            "batch of " + std::to_string(placements->size()) +
            " placements exceeds max_batch " +
            std::to_string(options_.max_batch)));
  }
  GPUHMS_ASSIGN_OR_RETURN_JSON(KernelEntryPtr entry,
                               kernel_entry(benchmark, arch_name));

  std::vector<PendingPredict> pending;
  pending.reserve(placements->size());
  for (std::size_t i = 0; i < placements->size(); ++i) {
    const Json& s = placements->at(i);
    if (!s.is_string())
      return error_response(nullptr, "",
                            InvalidArgumentError("placements[" +
                                                 std::to_string(i) +
                                                 "] is not a string"));
    const std::optional<DataPlacement> p =
        DataPlacement::from_string(entry->bench.kernel, s.as_string());
    if (!p)
      return error_response(
          nullptr, "",
          InvalidArgumentError("cannot parse placements[" +
                               std::to_string(i) + "] = '" + s.as_string() +
                               "' for benchmark '" + benchmark + "'"));
    if (Status st = validate(entry->bench.kernel, *p, entry->arch); !st.ok())
      return error_response(
          nullptr, "",
          st.annotate("placements[" + std::to_string(i) + "]"));
    pending.push_back({entry, *p, {}, {}, false});
  }
  if (Status st = predict_many(pending); !st.ok())
    return error_response(nullptr, "", st);

  Json r = Json::object();
  r.set("ok", true);
  r.set("benchmark", benchmark);
  if (!arch_name.empty()) r.set("arch", arch_name);
  Json results = Json::array();
  for (const PendingPredict& p : pending)
    results.push_back(prediction_json(*entry, p.placement, p.result));
  r.set("results", std::move(results));
  return r;
}

Json PredictionService::handle_search(const Json& request) {
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string benchmark,
                               get_string(request, "benchmark"));
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::string arch_name, get_arch_name(request));
  std::string algo_name = "bnb";
  if (request.find("algo") != nullptr) {
    GPUHMS_ASSIGN_OR_RETURN_JSON(algo_name, get_string(request, "algo"));
  }
  const StatusOr<SearchAlgo> algo = parse_search_algo(algo_name);
  if (!algo.ok()) return error_response(nullptr, "", algo.status());

  GPUHMS_ASSIGN_OR_RETURN_JSON(std::uint64_t cap,
                               get_uint(request, "cap", 4096));
  GPUHMS_ASSIGN_OR_RETURN_JSON(
      std::uint64_t deadline_ms,
      get_uint(request, "deadline_ms", ~std::uint64_t{0}));
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::uint64_t beam_width,
                               get_uint(request, "beam_width", 8));
  GPUHMS_ASSIGN_OR_RETURN_JSON(std::uint64_t node_budget,
                               get_uint(request, "node_budget", 0));
  if (cap == 0 || cap > options_.max_search_cap) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    GPUHMS_COUNTER_ADD("serve.rejected", 1);
    return error_response(
        nullptr, "",
        ResourceExhaustedError("search cap " + std::to_string(cap) +
                               " outside [1, " +
                               std::to_string(options_.max_search_cap) + "]"));
  }
  if (beam_width == 0)
    return error_response(
        nullptr, "", InvalidArgumentError("beam_width must be at least 1"));

  GPUHMS_ASSIGN_OR_RETURN_JSON(KernelEntryPtr entry,
                               kernel_entry(benchmark, arch_name));

  SearchOptions so;
  so.cap = static_cast<std::size_t>(cap);
  so.beam_width = static_cast<std::size_t>(beam_width);
  so.node_budget = static_cast<std::size_t>(node_budget);
  // Per-request deadline: the PR 2 anytime contract — on expiry the search
  // returns its best-so-far placement with deadline_hit set, never an error.
  if (deadline_ms != ~std::uint64_t{0})
    so.deadline = std::chrono::milliseconds(deadline_ms);
  // Per-request watchdog: register a cancel token for the duration of the
  // search; a deadline overrun flips it and the anytime contract returns the
  // best-so-far placement with `cancelled` set — never a hung request.
  std::shared_ptr<WatchdogEntry> watch;
  if (options_.watchdog_ms > 0) watch = watchdog_register();
  const StatusOr<SearchResult> result = [&] {
    GPUHMS_SCOPED_PHASE("serve.search_ns");
    std::lock_guard<std::mutex> pool_lock(pool_mu_);
    SearchOptions pooled = so;
    pooled.pool = &pool_;
    if (watch) pooled.cancel = &watch->cancel;
    return try_search(*entry->predictor, *algo, pooled);
  }();
  if (watch) watchdog_release(watch);
  if (!result.ok()) return error_response(nullptr, "", result.status());
  searches_.fetch_add(1, std::memory_order_relaxed);
  GPUHMS_COUNTER_ADD("serve.searches", 1);

  const SearchResult& sr = *result;
  Json r = Json::object();
  r.set("ok", true);
  r.set("benchmark", benchmark);
  if (!arch_name.empty()) r.set("arch", arch_name);
  r.set("algo", std::string(to_string(*algo)));
  r.set("placement", sr.placement.to_string());
  r.set("predicted_cycles", sr.predicted_cycles);
  r.set("evaluated", sr.evaluated);
  r.set("pruned", sr.pruned);
  r.set("space_truncated", sr.space_truncated);
  r.set("deadline_hit", sr.deadline_hit);
  r.set("cancelled", sr.cancelled);
  r.set("lower_bound", sr.lower_bound);
  r.set("optimality_gap", sr.optimality_gap);
  r.set("proven_optimal", sr.proven_optimal);
  return r;
}

Json PredictionService::handle_metrics() const {
  const ServeStats s = stats();
  Json r = Json::object();
  r.set("ok", true);
  auto cache_json = [](const ServeStats::CacheStats& c) {
    Json o = Json::object();
    o.set("size", c.size);
    o.set("capacity", c.capacity);
    o.set("hits", c.hits);
    o.set("misses", c.misses);
    o.set("inserts", c.inserts);
    o.set("updates", c.updates);
    o.set("evictions", c.evictions);
    return o;
  };
  r.set("requests", s.requests);
  r.set("responses", s.responses);
  r.set("errors", s.errors);
  r.set("rejected", s.rejected);
  r.set("predictions", s.predictions);
  r.set("batched_predicts", s.batched_predicts);
  r.set("batch_calls", s.batch_calls);
  r.set("searches", s.searches);
  r.set("draining", s.draining);
  r.set("shed_draining", s.shed_draining);
  r.set("watchdog_cancels", s.watchdog_cancels);
  r.set("idem_hits", s.idem_hits);
  r.set("cache_backend", s.cache_backend);
  r.set("kernel_cache", cache_json(s.kernel_cache));
  r.set("prediction_cache", cache_json(s.prediction_cache));
  r.set("idem_cache", cache_json(s.idem_cache));
  return r;
}

// Liveness/readiness snapshot for supervisors and the drain path. Unlike
// `metrics` this includes uptime, which is wall-clock nondeterministic — so
// it lives under its own verb and stays out of byte-identity tests.
Json PredictionService::handle_health() const {
  Json r = Json::object();
  r.set("ok", true);
  r.set("status", stopped()     ? std::string("stopped")
                  : draining()  ? std::string("draining")
                                : std::string("serving"));
  r.set("uptime_ms",
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start_)
                .count()));
  r.set("draining", draining());
  r.set("inflight", inflight_.load(std::memory_order_acquire));
  r.set("requests", requests_.load(std::memory_order_relaxed));
  r.set("shed_draining", shed_draining_.load(std::memory_order_relaxed));
  r.set("watchdog_cancels", watchdog_cancels_.load(std::memory_order_relaxed));
  r.set("idem_hits", idem_hits_.load(std::memory_order_relaxed));
  return r;
}

Json PredictionService::handle_request(const Json& request,
                                       std::string_view op) {
  if (op == "predict") return handle_predict(request);
  if (op == "predict_batch") return handle_predict_batch(request);
  if (op == "search") return handle_search(request);
  if (op == "metrics") return handle_metrics();
  if (op == "health") return handle_health();
  if (op == "shutdown") {
    stopped_.store(true, std::memory_order_release);
    Json r = Json::object();
    r.set("ok", true);
    r.set("stopped", true);
    return r;
  }
  return error_response(
      nullptr, "",
      InvalidArgumentError("unknown op '" + std::string(op) +
                           "': expected predict, predict_batch, search, "
                           "metrics, health, or shutdown"));
}

std::string PredictionService::handle_line(std::string_view line) {
  const std::string lines[1] = {std::string(line)};
  return handle_pipeline(lines).front();
}

std::vector<std::string> PredictionService::handle_pipeline(
    std::span<const std::string> lines) {
  GPUHMS_SCOPED_PHASE("serve.pipeline_ns");
  // Per-line parse state; `response` set means the line is already decided.
  struct ParsedLine {
    Json request;
    Json id;            // echoed verbatim (null when absent/unparseable)
    std::string op;
    std::string benchmark;  // predict ops only, for coalescing
    std::string arch_name;  // predict ops only ("" = service default)
    std::string idem;       // idempotency fingerprint ("" when absent)
    std::string raw;        // replayed response bytes (wins over `response`)
    std::optional<Json> response;
  };
  std::vector<ParsedLine> parsed(lines.size());

  for (std::size_t i = 0; i < lines.size(); ++i) {
    ParsedLine& pl = parsed[i];
    requests_.fetch_add(1, std::memory_order_relaxed);
    GPUHMS_COUNTER_ADD("serve.requests", 1);

    // Admission: bound the request size before even parsing it.
    if (lines[i].size() > options_.max_line_bytes) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      GPUHMS_COUNTER_ADD("serve.rejected", 1);
      pl.response = error_response(
          nullptr, "",
          ResourceExhaustedError(
              "request line of " + std::to_string(lines[i].size()) +
              " bytes exceeds max_line_bytes " +
              std::to_string(options_.max_line_bytes)));
      continue;
    }
    // Deterministic fault site for robustness tests: a poisoned request
    // must degrade to an error response, never take the service down.
    if (GPUHMS_FAULT_POINT("serve.parse")) {
      pl.response = error_response(
          nullptr, "", InternalError("injected fault at site 'serve.parse'"));
      continue;
    }
    StatusOr<Json> req = Json::parse(lines[i]);
    if (!req.ok()) {
      pl.response = error_response(nullptr, "", req.status());
      continue;
    }
    if (!req->is_object()) {
      pl.response = error_response(
          nullptr, "",
          InvalidArgumentError("request must be a JSON object"));
      continue;
    }
    pl.request = std::move(*req);
    if (const Json* id = pl.request.find("id")) pl.id = *id;
    const StatusOr<std::string> op = get_string(pl.request, "op");
    if (!op.ok()) {
      pl.response = error_response(&pl.id, "", op.status());
      continue;
    }
    pl.op = *op;
    if (const Json* idem = pl.request.find("idem");
        idem != nullptr && idem->is_string())
      pl.idem = idem->as_string();
    if (pl.op == "predict") {
      if (const Json* b = pl.request.find("benchmark");
          b != nullptr && b->is_string())
        pl.benchmark = b->as_string();
      if (const Json* a = pl.request.find("arch")) {
        if (a->is_string())
          pl.arch_name = a->as_string();
        else
          // Malformed arch field: leave the line un-coalescable so the
          // single-request path reports the structured INVALID_ARGUMENT.
          pl.benchmark.clear();
      }
    }
  }

  // Dispatch, coalescing adjacent same-benchmark predicts: their cache
  // misses ride one predict_batch call (predict_many dedups and batches).
  std::size_t i = 0;
  while (i < lines.size()) {
    ParsedLine& pl = parsed[i];
    if (pl.response.has_value()) {
      ++i;
      continue;
    }
    // Checked at dispatch (not parse) time so a shutdown earlier in this
    // very pipeline already refuses the lines behind it. This check MUST
    // precede the idempotency replay: whether a replay hits depends on the
    // cache backend's eviction choices (CLOCK vs strict LRU), so a trailing
    // line after shutdown would otherwise answer different bytes under
    // --legacy-cache than under the sharded default. Stopped is stopped —
    // every backend sheds the same FAILED_PRECONDITION.
    if (stopped_.load(std::memory_order_acquire)) {
      pl.response = error_response(
          &pl.id, pl.op, FailedPreconditionError("service is shut down"));
      ++i;
      continue;
    }
    // Idempotency replay: a retried request carrying a previously-served
    // idem fingerprint gets the ORIGINAL response bytes back without
    // re-executing — exactly-once visible effects across client retries,
    // even while draining (a replay does no model work).
    if (!pl.idem.empty() && options_.idem_cache_capacity > 0) {
      if (auto hit = idem_cache_.get(pl.idem)) {
        idem_hits_.fetch_add(1, std::memory_order_relaxed);
        GPUHMS_COUNTER_ADD("serve.idem_hits", 1);
        pl.raw = *hit;
        ++i;
        continue;
      }
    }
    // Graceful drain: model work is refused with a retryable UNAVAILABLE
    // (still one response per line — a drain never drops a response).
    // Supervision verbs keep working so operators can watch the drain.
    if (draining_.load(std::memory_order_acquire) && pl.op != "health" &&
        pl.op != "metrics" && pl.op != "shutdown") {
      shed_draining_.fetch_add(1, std::memory_order_relaxed);
      GPUHMS_COUNTER_ADD("serve.shed_draining", 1);
      pl.response = error_response(
          &pl.id, pl.op,
          UnavailableError("service is draining; retry after restart"));
      ++i;
      continue;
    }
    // Deterministic admission fault site: a shed at accept must degrade to
    // a structured retryable rejection, never a lost response or a crash.
    if (GPUHMS_FAULT_POINT("serve.accept")) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      GPUHMS_COUNTER_ADD("serve.rejected", 1);
      pl.response = error_response(
          &pl.id, pl.op,
          UnavailableError("injected fault at site 'serve.accept'"));
      ++i;
      continue;
    }
    // Supervision verbs bypass admission control: they are cheap in-memory
    // introspection, and a health poll holding an inflight slot would keep
    // drained() false for exactly the operator watching the drain finish.
    if (pl.op == "health" || pl.op == "metrics" || pl.op == "shutdown") {
      const Json body = handle_request(pl.request, pl.op);
      Json r = make_response_shell(&pl.id, pl.op);
      for (const auto& [key, value] : body.members())
        if (key != "id" && key != "op") r.set(key, value);
      pl.response = std::move(r);
      ++i;
      continue;
    }
    InflightSlot slot(inflight_, options_.max_inflight);
    if (!slot.admitted()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      GPUHMS_COUNTER_ADD("serve.rejected", 1);
      pl.response = error_response(
          &pl.id, pl.op,
          ResourceExhaustedError(
              "service over capacity (" +
              std::to_string(options_.max_inflight) +
              " requests in flight); retry later"));
      ++i;
      continue;
    }
    if (pl.op == "predict" && !pl.benchmark.empty()) {
      std::size_t j = i + 1;
      while (j < lines.size() && !parsed[j].response.has_value() &&
             parsed[j].op == "predict" &&
             parsed[j].benchmark == pl.benchmark &&
             parsed[j].arch_name == pl.arch_name)
        ++j;
      if (j > i + 1) {
        // One shared kernel lookup + one coalesced predict_many for the run.
        const StatusOr<KernelEntryPtr> entry =
            kernel_entry(pl.benchmark, pl.arch_name);
        std::vector<PendingPredict> pending;
        std::vector<std::size_t> owners;
        for (std::size_t k = i; k < j; ++k) {
          ParsedLine& run = parsed[k];
          if (!entry.ok()) {
            run.response = error_response(&run.id, run.op, entry.status());
            continue;
          }
          const StatusOr<std::string> pstr =
              get_string(run.request, "placement");
          if (!pstr.ok()) {
            run.response = error_response(&run.id, run.op, pstr.status());
            continue;
          }
          const std::optional<DataPlacement> p =
              DataPlacement::from_string((*entry)->bench.kernel, *pstr);
          if (!p) {
            run.response = error_response(
                &run.id, run.op,
                InvalidArgumentError("cannot parse placement '" + *pstr +
                                     "' for benchmark '" + pl.benchmark +
                                     "'"));
            continue;
          }
          if (Status st = validate((*entry)->bench.kernel, *p, (*entry)->arch);
              !st.ok()) {
            run.response = error_response(&run.id, run.op, st);
            continue;
          }
          pending.push_back({*entry, *p, {}, {}, false});
          owners.push_back(k);
        }
        if (!pending.empty()) {
          if (Status st = predict_many(pending); !st.ok()) {
            for (const std::size_t k : owners)
              parsed[k].response =
                  error_response(&parsed[k].id, parsed[k].op, st);
          } else {
            for (std::size_t t = 0; t < owners.size(); ++t) {
              ParsedLine& run = parsed[owners[t]];
              Json r = make_response_shell(&run.id, run.op);
              r.set("ok", true);
              r.set("benchmark", pl.benchmark);
              // Mirrors handle_predict: echoed only when the request named
              // a backend, keeping default responses byte-identical.
              if (!pl.arch_name.empty()) r.set("arch", pl.arch_name);
              const Json fields =
                  prediction_json(*pending[t].entry, pending[t].placement,
                                  pending[t].result);
              for (const auto& [key, value] : fields.members())
                r.set(key, value);
              run.response = std::move(r);
            }
          }
        }
        i = j;
        continue;
      }
    }
    // Single request: handlers return either a success body (ok:true, no
    // id/op yet) or a complete error_response; normalize both to carry the
    // line's id and op at the front.
    const Json body = handle_request(pl.request, pl.op);
    Json r = make_response_shell(&pl.id, pl.op);
    // Handler error bodies carry a placeholder null id; the shell's id/op
    // (from the request) are authoritative.
    for (const auto& [key, value] : body.members())
      if (key != "id" && key != "op") r.set(key, value);
    pl.response = std::move(r);
    ++i;
  }

  std::vector<std::string> out;
  out.reserve(lines.size());
  for (ParsedLine& pl : parsed) {
    GPUHMS_COUNTER_ADD("serve.responses", 1);
    if (!pl.raw.empty()) {
      // Idempotency replay: the cached bytes were an ok:true response.
      out.push_back(std::move(pl.raw));
      continue;
    }
    const Json* ok = pl.response->find("ok");
    const bool is_ok = ok != nullptr && ok->is_bool() && ok->as_bool();
    if (!is_ok) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      GPUHMS_COUNTER_ADD("serve.errors", 1);
    }
    std::string dumped = pl.response->dump();
    // Memoize successful model-work responses under their idem fingerprint
    // so client retries replay the exact bytes (drain-safe exactly-once).
    if (is_ok && !pl.idem.empty() && options_.idem_cache_capacity > 0 &&
        (pl.op == "predict" || pl.op == "predict_batch" ||
         pl.op == "search"))
      idem_cache_.put(pl.idem, dumped);
    out.push_back(std::move(dumped));
  }
  return out;
}

ServeStats PredictionService::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = s.requests;
  s.errors = errors_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.predictions = predictions_.load(std::memory_order_relaxed);
  s.batched_predicts = batched_predicts_.load(std::memory_order_relaxed);
  s.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  s.searches = searches_.load(std::memory_order_relaxed);
  s.draining = draining_.load(std::memory_order_acquire);
  s.inflight = inflight_.load(std::memory_order_acquire);
  s.shed_draining = shed_draining_.load(std::memory_order_relaxed);
  s.watchdog_cancels = watchdog_cancels_.load(std::memory_order_relaxed);
  s.idem_hits = idem_hits_.load(std::memory_order_relaxed);
  // Cache snapshots: every counter is one atomic read (per shard, summed),
  // so each is individually exact and — counters being monotone — a later
  // snapshot never shows a smaller total than an earlier one, even taken
  // concurrently with traffic (the serve.cache.* monotonicity contract,
  // locked by test_serve_soak's MetricsTotalsMonotoneDuringSoak).
  auto cache_stats = [](const auto& cache) {
    const CacheCounters c = cache.stats();
    return ServeStats::CacheStats{cache.size(),  cache.capacity(), c.hits,
                                  c.misses,      c.inserts,        c.updates,
                                  c.evictions};
  };
  s.kernel_cache = cache_stats(kernel_cache_);
  s.prediction_cache = cache_stats(prediction_cache_);
  s.idem_cache = cache_stats(idem_cache_);
  s.cache_backend = to_string(options_.cache_backend);
  return s;
}

void run_stdio_loop(std::istream& in, std::ostream& out,
                    PredictionService& service) {
  std::vector<std::string> lines;
  std::string line;
  while (!service.stopped() && std::getline(in, line)) {
    lines.clear();
    lines.push_back(std::move(line));
    // Greedy pipelining: drain whatever the client already wrote so runs of
    // same-kernel predicts coalesce. in_avail() only reports bytes already
    // buffered, so an interactive client still gets per-line responses.
    while (lines.size() < service.options().max_batch &&
           in.rdbuf()->in_avail() > 0 && std::getline(in, line))
      lines.push_back(std::move(line));
    for (const std::string& response : service.handle_pipeline(lines))
      out << response << '\n';
    out.flush();
    // A broken output stream means responses are being lost — stop reading
    // rather than silently executing requests nobody can hear answered.
    if (!out) break;
  }
}

}  // namespace gpuhms::serve
