// gpuhms_serve: a long-lived, batched, cached prediction/search service.
//
// Every earlier entry point (placement_advisor, quickstart) pays kernel
// profiling and trace lowering per process invocation; the north-star
// deployment is a daemon that answers placement questions from memory. This
// layer is that daemon's engine: a thread-safe request handler speaking
// newline-delimited JSON (protocol grammar in DESIGN §11) over any byte
// stream, layered on the existing Predictor/search engine with
//
//   * a bounded cache of *kernel entries* — the expensive per-kernel
//     state: a profiled Predictor plus its lowered TraceSkeleton — keyed by
//     (benchmark name, arch backend), fingerprinted structurally
//     (common/hashing.hpp); the optional request `arch` field selects an
//     ArchRegistry backend per request, and the arch fingerprint in every
//     prediction-cache key keeps cross-arch entries from ever colliding;
//   * a bounded cache of memoized Predictions keyed by
//     (kernel fingerprint, arch fingerprint, placement) so repeated predicts
//     are a map lookup, not a trace replay. Both caches (and the idem-replay
//     cache) default to the sharded wait-free implementation of DESIGN §14,
//     so warm hits from concurrent clients never serialize on a cache lock;
//     GPUHMS_LEGACY_CACHE=1 restores the PR 5 mutex LruCache byte-for-byte;
//   * request batching: predict_batch requests (and pipelined runs of
//     same-kernel predicts, see handle_pipeline) coalesce their cache misses
//     into ONE Predictor::predict_batch call on the shared ThreadPool;
//   * admission control: oversized lines, oversized batches, over-cap
//     searches and too many concurrent requests are rejected with structured
//     Status-coded error responses (never a crash — the PR 2 try_* API is
//     the only model surface used).
//
// Determinism: responses are built from bit-deterministic predictions and
// dumped with round-trip number formatting, so an identical request yields a
// byte-identical response for any GPUHMS_THREADS and any cache state.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/concurrent_cache.hpp"
#include "common/thread_pool.hpp"
#include "model/search.hpp"
#include "serve/json.hpp"
#include "workloads/workloads.hpp"

namespace gpuhms::serve {

// --- cache-key fingerprints --------------------------------------------------
// Structural 64-bit digests (FNV-1a over fields, never pointers) binding a
// cached Prediction to exactly the inputs that determine it. See DESIGN §11
// "Cache key derivation".
std::uint64_t fingerprint(const KernelInfo& kernel);
std::uint64_t fingerprint(const GpuArch& arch);
std::uint64_t fingerprint(const ModelOptions& options);

struct ServeOptions {
  // LRU capacities. kernel_cache bounds profiled Predictor+TraceSkeleton
  // entries (the heavyweight state); prediction_cache bounds memoized
  // Prediction values. 0 disables the respective cache.
  std::size_t kernel_cache_capacity = 16;
  std::size_t prediction_cache_capacity = 4096;
  // Admission control.
  std::size_t max_inflight = 64;       // concurrent requests admitted
  std::size_t max_batch = 1024;        // placements per predict_batch
  std::size_t max_line_bytes = 1 << 16;  // request line size bound
  std::size_t max_search_cap = 65536;  // largest accepted search "cap"
  // Shared ThreadPool size for batch prediction / search; 0 picks
  // ThreadPool::default_threads() (the GPUHMS_THREADS env var).
  int num_threads = 0;
  // Train the Eq. 11 T_overlap model on the Table IV training suite at
  // construction (seconds of startup; the daemon flag --train-overlap).
  // Off by default so tests and short-lived services start instantly.
  bool train_overlap = false;
  // Per-request watchdog: searches running longer than this are cancelled
  // via their cooperative cancel token (the anytime contract turns that into
  // an OK best-so-far response with `cancelled` set, never a lost response).
  // 0 disables the watchdog thread entirely.
  std::size_t watchdog_ms = 0;
  // Idempotency-replay cache: responses of successful predict/predict_batch/
  // search requests carrying an "idem" fingerprint are memoized, so a client
  // retry (serve/client.hpp) returns the original bytes without re-executing.
  // 0 disables.
  std::size_t idem_cache_capacity = 1024;
  // Cache implementation for all three serve caches (kernel entries,
  // predictions, idempotency replays): the sharded wait-free cache (DESIGN
  // §14) by default, or the PR 5 mutex LruCache when GPUHMS_LEGACY_CACHE=1
  // is set / --legacy-cache is passed. Responses are byte-identical across
  // backends — only warm-hit scalability differs (BENCH_cache.json).
  CacheBackend cache_backend = cache_backend_from_env();
};

// Point-in-time service counters (exact, independent of GPUHMS_METRICS; the
// obs registry mirrors them under serve.* when metrics are enabled).
struct ServeStats {
  std::uint64_t requests = 0;    // lines received
  std::uint64_t responses = 0;   // lines produced (== requests)
  std::uint64_t errors = 0;      // responses with ok:false
  std::uint64_t rejected = 0;    // admission-control rejections (subset of errors)
  std::uint64_t predictions = 0;       // placements answered (batch elements)
  std::uint64_t batched_predicts = 0;  // cache misses coalesced into batch calls
  std::uint64_t batch_calls = 0;       // Predictor::predict_batch invocations
  std::uint64_t searches = 0;
  // Supervision counters.
  bool draining = false;
  std::uint64_t inflight = 0;
  std::uint64_t shed_draining = 0;    // requests refused while draining
  std::uint64_t watchdog_cancels = 0; // searches cancelled by the watchdog
  std::uint64_t idem_hits = 0;        // responses replayed from the idem cache
  struct CacheStats {
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t updates = 0;
    std::uint64_t evictions = 0;
  };
  CacheStats kernel_cache;
  CacheStats prediction_cache;
  CacheStats idem_cache;
  // Which cache implementation the service runs ("sharded"/"legacy_lru").
  std::string cache_backend;
};

// Thread-safe: any number of client threads may call handle_line /
// handle_pipeline concurrently; shared-pool work (batch prediction, search)
// is serialized internally, cache hits run lock-free of the pool.
class PredictionService {
 public:
  explicit PredictionService(ServeOptions options = {});
  PredictionService(ServeOptions options, const GpuArch& arch);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  // One request line in, one response line out (no trailing newline).
  // Never throws and never returns malformed JSON: every failure — parse
  // error, unknown op/benchmark, illegal placement, admission rejection,
  // injected serve.parse fault — degrades to an ok:false response carrying
  // the Status code and message.
  std::string handle_line(std::string_view line);

  // Pipelined handling: responses in request order, one per line. Runs of
  // adjacent predict requests naming the same benchmark are coalesced so
  // their cache misses share one predict_batch call — the daemon feeds every
  // already-buffered line of input through this.
  std::vector<std::string> handle_pipeline(
      std::span<const std::string> lines);

  // True once a shutdown request has been answered; subsequent requests are
  // refused with FAILED_PRECONDITION.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // --- graceful drain --------------------------------------------------------
  // Flips the service into draining mode: requests already dispatched finish
  // and get their responses; NEW requests are answered with a structured
  // UNAVAILABLE rejection (still one response per request line — a drain
  // never loses or drops a response). Idempotency replays keep working so
  // retried already-executed requests return their original bytes. The
  // daemon calls this from its SIGTERM/SIGINT handler path.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  // Requests currently being executed (admitted, response not yet built).
  std::size_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }
  // Drain complete: draining was requested and nothing is in flight.
  bool drained() const { return draining() && inflight() == 0; }

  ServeStats stats() const;
  const ServeOptions& options() const { return options_; }
  const GpuArch& arch() const { return arch_; }

 private:
  struct KernelEntry;
  using KernelEntryPtr = std::shared_ptr<const KernelEntry>;
  struct PendingPredict;

  Json handle_request(const Json& request, std::string_view op);
  Json handle_predict(const Json& request);
  Json handle_predict_batch(const Json& request);
  Json handle_search(const Json& request);
  Json handle_metrics() const;
  Json handle_health() const;

  // Watchdog bookkeeping: one registered cancel token per running search.
  struct WatchdogEntry;
  std::shared_ptr<WatchdogEntry> watchdog_register();
  void watchdog_release(const std::shared_ptr<WatchdogEntry>& entry);
  void watchdog_loop();

  // Builds (or returns the cached) per-kernel state for `benchmark` under
  // the named architecture backend: "" selects the service's construction
  // arch, any other name resolves through ArchRegistry::builtin() (unknown
  // names are a structured INVALID_ARGUMENT listing the registered
  // backends). Entries are cached per (benchmark, arch) — the profiled
  // predictor, skeleton and cache-key prefix are all arch-specific.
  StatusOr<KernelEntryPtr> kernel_entry(const std::string& benchmark,
                                        const std::string& arch_name);
  // Answers each (entry, placement) pair, coalescing cache misses into one
  // predict_batch call per distinct kernel. Results align with `pending`.
  Status predict_many(std::span<PendingPredict> pending);
  Json prediction_json(const KernelEntry& entry,
                       const DataPlacement& placement,
                       const Prediction& prediction) const;

  const ServeOptions options_;
  const GpuArch arch_;  // copied: cached entries must outlive the caller's ref
  ToverlapModel overlap_;

  BoundedCache<std::string, KernelEntryPtr> kernel_cache_;
  struct PredictionKeyHash {
    std::size_t operator()(const std::string& k) const;
  };
  // Key: "<kernel fp hex>|<arch fp hex>|<model fp hex>|<placement>".
  BoundedCache<std::string, Prediction, PredictionKeyHash> prediction_cache_;

  ThreadPool pool_;
  std::mutex pool_mu_;   // parallel_for admits one job at a time
  std::mutex build_mu_;  // serializes kernel-entry construction (profiling)

  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> requests_{0}, errors_{0}, rejected_{0},
      predictions_{0}, batched_predicts_{0}, batch_calls_{0}, searches_{0};
  std::atomic<std::uint64_t> shed_draining_{0}, watchdog_cancels_{0},
      idem_hits_{0};
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();

  // Idempotency replay: idem fingerprint -> the exact response bytes served.
  BoundedCache<std::string, std::string> idem_cache_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::vector<std::shared_ptr<WatchdogEntry>> watchdog_entries_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

// Drives a PredictionService over std::istream/std::ostream: reads
// newline-delimited requests, writes one response line per request in order,
// flushing per pipelined chunk. Greedily drains already-buffered input (up
// to ServeOptions::max_batch lines) into handle_pipeline so piped clients
// get coalesced batching for free. Returns after EOF or a shutdown request.
void run_stdio_loop(std::istream& in, std::ostream& out,
                    PredictionService& service);

}  // namespace gpuhms::serve
