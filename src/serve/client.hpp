// A retrying client for the gpuhms_serve protocol.
//
// The service's drain/shed semantics (serve/service.hpp) make rejections
// RETRYABLE: an UNAVAILABLE (draining instance, injected serve.accept shed)
// or RESOURCE_EXHAUSTED (over max_inflight / max_batch) response means "try
// again", and the idempotency fingerprint the client stamps on every request
// makes retries safe — a request that already executed replays its original
// response bytes instead of running twice. This header packages that retry
// loop once so tests, the soak harness and bench_serve_throughput all speak
// the same discipline instead of re-implementing it.
//
// The transport is a plain callable (one request line in, one response line
// out) so the client works over any byte stream — an in-process
// PredictionService, a socket, or a fault-injecting test shim. Backoff
// sleeping is injectable for deterministic tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "serve/json.hpp"

namespace gpuhms::serve {

struct ClientOptions {
  // Total tries (first attempt + retries). 1 disables retrying.
  int max_attempts = 4;
  // Exponential backoff between attempts: initial * multiplier^k, capped.
  std::uint64_t backoff_initial_ms = 5;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_cap_ms = 250;
  // Stamp requests lacking an "idem" field with a fingerprint of their
  // content, so a retry of an executed request replays instead of re-running.
  bool add_idempotency_key = true;
  // Backoff sleeper; tests inject a recorder to assert the schedule without
  // wall-clock waits. Defaults to std::this_thread::sleep_for.
  std::function<void(std::uint64_t /*ms*/)> sleeper;
};

class Client {
 public:
  // One request line -> one response line (no trailing newlines). A non-OK
  // Status models a transport failure (connection refused/reset), which is
  // always retryable: the idempotency key guarantees at-most-once execution
  // even when the failure hit after the server did the work.
  using Transport = std::function<StatusOr<std::string>(const std::string&)>;

  explicit Client(Transport transport, ClientOptions options = {});

  // Sends `request` (adding an idempotency key per options), retrying on
  // transport errors and on UNAVAILABLE / RESOURCE_EXHAUSTED responses with
  // exponential backoff. Returns the final response line on success; after
  // max_attempts exhausted, the last transport error or an UnavailableError
  // describing the last rejection.
  StatusOr<std::string> call(const Json& request);

  // Convenience: parse-validating wrapper; DATA_LOSS if the response line is
  // not a JSON object.
  StatusOr<Json> call_json(const Json& request);

  // The deterministic idempotency fingerprint `call` stamps: hex FNV-1a of
  // the request's serialized bytes (excluding any existing idem field).
  static std::string idempotency_key(const Json& request);

  // Observability for tests/bench.
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t retries() const { return retries_; }

 private:
  Transport transport_;
  ClientOptions options_;
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace gpuhms::serve
