// Single-threaded epoll reactor for the serve layer (DESIGN §15).
//
// The event-loop server backend (serve/server.hpp) holds thousands of idle
// connections on one thread: an epoll set wakes the loop only for fds with
// actual work, an eventfd lets other threads (the worker executor, the
// daemon's signal path) post closures onto the loop thread, and a single
// timerfd multiplexes every pending deadline (per-session timers, the drain
// timeout) through one min-heap. Everything except post()/stop()/
// add_timer()/cancel_timer() must run on the loop thread; sessions keep all
// their mutable state loop-thread-confined so the reactor needs no
// per-connection locks.
//
// Observability (GPUHMS_METRICS=1): serve.loop.ready_events (histogram of
// fds ready per wakeup — the batching the reactor gets per syscall),
// serve.loop.iteration_ns (histogram of dispatch time per wakeup, excluding
// the blocked epoll_wait), plus exact Counters for tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"

namespace gpuhms::serve {

class EventLoop {
 public:
  // Invoked on the loop thread with the ready epoll event mask (EPOLLIN |
  // EPOLLOUT | EPOLLHUP | EPOLLERR | ...).
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  // Acquires the epoll, eventfd and timerfd descriptors; a resource failure
  // is reported through status() (run() refuses to start on a bad loop).
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // OK when construction acquired every descriptor.
  const Status& status() const { return status_; }

  // --- fd registration (loop thread, or any thread before run()) ------------
  // The callback stays registered until remove_fd; the loop never closes a
  // registered fd — ownership stays with the caller (the session closes its
  // own socket AFTER removing it, so a recycled descriptor can never alias a
  // stale registration).
  Status add_fd(int fd, std::uint32_t events, FdCallback callback);
  Status modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  // --- timers (any thread) ---------------------------------------------------
  // One-shot: fires once on the loop thread at (or just after) `deadline`.
  // All pending deadlines share the loop's single timerfd, armed with
  // TFD_TIMER_ABSTIME against CLOCK_MONOTONIC == std::chrono::steady_clock.
  TimerId add_timer(std::chrono::steady_clock::time_point deadline,
                    TimerCallback callback);
  // Idempotent; a timer that already fired is silently ignored.
  void cancel_timer(TimerId id);

  // --- cross-thread hand-off -------------------------------------------------
  // Queues `task` to run on the loop thread and wakes a blocked epoll_wait
  // via the eventfd. Safe from any thread, including the loop thread itself
  // (the task still runs from the queue, never reentrantly). This is how
  // executor workers complete responses back onto their session.
  void post(std::function<void()> task);

  // Blocks dispatching events/tasks/timers until stop(). Returns immediately
  // (with the construction error latched in status()) if the loop is bad.
  void run();
  // Thread-safe and async-friendly: posts a stop task; run() returns once
  // the current iteration's dispatch finishes.
  void stop();

  // Exact dispatch counters (independent of GPUHMS_METRICS), for tests.
  struct Counters {
    std::uint64_t wakeups = 0;           // epoll_wait returns
    std::uint64_t events_dispatched = 0; // fd callbacks invoked
    std::uint64_t tasks_run = 0;         // posted closures executed
    std::uint64_t timers_fired = 0;      // timer callbacks invoked
  };
  Counters counters() const;

 private:
  struct PendingTimer {
    std::chrono::steady_clock::time_point deadline;
    TimerId id;
    bool operator>(const PendingTimer& other) const {
      return deadline != other.deadline ? deadline > other.deadline
                                        : id > other.id;
    }
  };

  void wake();
  void drain_wakeup_fd();
  void run_posted_tasks();
  void fire_due_timers();
  // Re-arms the timerfd for the earliest live deadline (or disarms it).
  void rearm_timerfd();

  Status status_;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: post()/stop()/cross-thread timer adds
  int timer_fd_ = -1;   // timerfd: earliest pending deadline

  std::mutex handlers_mu_;  // guards handlers_ (written pre-run/loop thread)
  std::unordered_map<int, std::shared_ptr<FdCallback>> handlers_;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;

  std::mutex timers_mu_;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>,
                      std::greater<PendingTimer>>
      timer_heap_;
  std::unordered_map<TimerId, TimerCallback> timer_callbacks_;
  TimerId next_timer_id_ = 1;

  bool stop_requested_ = false;  // loop thread only
  std::atomic<std::uint64_t> wakeups_{0}, events_dispatched_{0},
      tasks_run_{0}, timers_fired_{0};
};

}  // namespace gpuhms::serve
