#include "serve/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include "common/obs.hpp"

namespace gpuhms::serve {

namespace {

Status errno_status(const char* what) {
  return InternalError(std::string(what) + ": " + std::strerror(errno));
}

// std::chrono::steady_clock is CLOCK_MONOTONIC on Linux/libstdc++, so a
// steady_clock time_point converts losslessly into an absolute itimerspec.
itimerspec to_absolute_itimerspec(std::chrono::steady_clock::time_point tp) {
  const auto since_epoch = tp.time_since_epoch();
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
      since_epoch);
  auto nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch - secs);
  itimerspec spec{};
  spec.it_value.tv_sec = static_cast<time_t>(secs.count());
  spec.it_value.tv_nsec = static_cast<long>(nanos.count());
  // A zero it_value disarms the timerfd; a deadline that happens to land on
  // an exact epoch second still must fire.
  if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0)
    spec.it_value.tv_nsec = 1;
  return spec;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    status_ = errno_status("epoll_create1()");
    return;
  }
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup_fd_ < 0) {
    status_ = errno_status("eventfd()");
    return;
  }
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) {
    status_ = errno_status("timerfd_create()");
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    status_ = errno_status("epoll_ctl(ADD wakeup eventfd)");
    return;
  }
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) != 0)
    status_ = errno_status("epoll_ctl(ADD timerfd)");
}

EventLoop::~EventLoop() {
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  if (!status_.ok()) return status_;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_[fd] = std::make_shared<FdCallback>(std::move(callback));
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.erase(fd);
    return errno_status("epoll_ctl(ADD)");
  }
  return OkStatus();
}

Status EventLoop::modify_fd(int fd, std::uint32_t events) {
  if (!status_.ok()) return status_;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    return errno_status("epoll_ctl(MOD)");
  return OkStatus();
}

void EventLoop::remove_fd(int fd) {
  if (!status_.ok()) return;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.erase(fd);
  }
  // Failure (fd already closed by the kernel) is benign: the registration is
  // gone either way.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::add_timer(
    std::chrono::steady_clock::time_point deadline, TimerCallback callback) {
  TimerId id = 0;
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
    id = next_timer_id_++;
    timer_heap_.push(PendingTimer{deadline, id});
    timer_callbacks_[id] = std::move(callback);
  }
  // The loop re-arms the timerfd from the heap after every wakeup; waking it
  // here covers the cross-thread add while it is blocked with a later (or
  // no) deadline armed.
  wake();
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lock(timers_mu_);
  // The heap entry stays; fire_due_timers drops entries whose callback is
  // gone. O(1) cancel without heap surgery.
  timer_callbacks_.erase(id);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::stop() {
  post([this] { stop_requested_ = true; });
}

EventLoop::Counters EventLoop::counters() const {
  Counters c;
  c.wakeups = wakeups_.load(std::memory_order_relaxed);
  c.events_dispatched = events_dispatched_.load(std::memory_order_relaxed);
  c.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  c.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  return c;
}

void EventLoop::wake() {
  if (wakeup_fd_ < 0) return;
  const std::uint64_t one = 1;
  // The eventfd is a 64-bit counter: concurrent writes coalesce into one
  // readable wakeup, and EAGAIN (counter saturated) still leaves it readable.
  [[maybe_unused]] const ssize_t w =
      ::write(wakeup_fd_, &one, sizeof one);
}

void EventLoop::drain_wakeup_fd() {
  std::uint64_t count = 0;
  while (::read(wakeup_fd_, &count, sizeof count) > 0) {
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) {
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::fire_due_timers() {
  const auto now = std::chrono::steady_clock::now();
  for (;;) {
    TimerCallback callback;
    {
      std::lock_guard<std::mutex> lock(timers_mu_);
      if (timer_heap_.empty() || timer_heap_.top().deadline > now) break;
      const TimerId id = timer_heap_.top().id;
      timer_heap_.pop();
      auto it = timer_callbacks_.find(id);
      if (it == timer_callbacks_.end()) continue;  // cancelled
      callback = std::move(it->second);
      timer_callbacks_.erase(it);
    }
    callback();
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::rearm_timerfd() {
  itimerspec spec{};  // zero it_value: disarm
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
    // Skip heap entries whose callback was cancelled.
    while (!timer_heap_.empty() &&
           !timer_callbacks_.contains(timer_heap_.top().id))
      timer_heap_.pop();
    if (!timer_heap_.empty())
      spec = to_absolute_itimerspec(timer_heap_.top().deadline);
  }
  ::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
}

void EventLoop::run() {
  if (!status_.ok()) return;
  stop_requested_ = false;
  rearm_timerfd();
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_requested_) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      status_ = errno_status("epoll_wait()");
      return;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    GPUHMS_HISTOGRAM_RECORD("serve.loop.ready_events",
                            static_cast<std::uint64_t>(n));
    const auto dispatch_start = std::chrono::steady_clock::now();
    bool timers_due = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        drain_wakeup_fd();
        continue;  // tasks run below, after fd dispatch
      }
      if (fd == timer_fd_) {
        std::uint64_t expirations = 0;
        while (::read(timer_fd_, &expirations, sizeof expirations) > 0) {
        }
        timers_due = true;
        continue;
      }
      std::shared_ptr<FdCallback> handler;
      {
        std::lock_guard<std::mutex> lock(handlers_mu_);
        auto it = handlers_.find(fd);
        if (it != handlers_.end()) handler = it->second;
      }
      // The shared_ptr copy keeps the callback alive even if it removes its
      // own fd (session close) mid-dispatch; a handler removed by an EARLIER
      // callback in this batch is skipped — its fd may already be recycled.
      if (handler) {
        (*handler)(events[i].events);
        events_dispatched_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    run_posted_tasks();
    if (timers_due) fire_due_timers();
    rearm_timerfd();
    GPUHMS_HISTOGRAM_RECORD(
        "serve.loop.iteration_ns",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - dispatch_start)
                .count()));
  }
}

}  // namespace gpuhms::serve
