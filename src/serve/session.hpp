// Per-connection non-blocking session state machine (DESIGN §15).
//
// A Session owns one accepted Unix-socket fd registered on the server's
// EventLoop and walks it through
//
//   reading -> executing -> flushing -> reading ...            -> closed
//
// with every state transition on the loop thread. Reads are incremental
// (LineFramer turns arbitrary read() chunks back into complete request
// lines), execution happens OFF the loop on the server's worker executor
// (one handle_pipeline batch per session at a time, so responses keep
// request order by construction), and completed response bytes are posted
// back onto the loop for non-blocking flushing.
//
// Backpressure is bounded twice over: a session never issues another read
// while a batch is executing (unread bytes stay in the kernel socket buffer,
// throttling the client), and never dispatches another batch while more than
// max_write_buffer_bytes of responses await a slow reader (counted in
// serve.loop.backpressure_stalls). The write buffer therefore never exceeds
// the bound plus one batch of responses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "serve/event_loop.hpp"

namespace gpuhms::serve {

class PredictionService;

// Incremental newline-delimited framing: feed() arbitrary byte chunks in,
// take_lines() complete '\n'-stripped request lines out. The partial tail
// (bytes after the last newline) stays buffered until its newline arrives —
// or forever, if the peer closes first: a partial trailing line was never a
// complete request and is dropped by construction (DESIGN §13).
class LineFramer {
 public:
  void feed(std::string_view bytes) { buf_.append(bytes); }

  // Extracts up to max_lines complete lines, preserving arrival order.
  std::vector<std::string> take_lines(std::size_t max_lines);

  bool has_line() const { return buf_.find('\n') != std::string::npos; }
  std::string_view partial() const { return buf_; }
  std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
};

struct SessionOptions {
  // Max complete lines dispatched per handle_pipeline batch (the daemon
  // mirrors ServeOptions::max_batch so coalescing opportunities match the
  // legacy backend).
  std::size_t max_batch_lines = 1024;
  // Dispatch stalls while more response bytes than this await a slow reader.
  std::size_t max_write_buffer_bytes = 256 * 1024;
  // read() chunk size per EPOLLIN drain iteration.
  std::size_t read_chunk_bytes = 16 * 1024;
};

// Created by the server's accept handler; lifetime is shared between the
// server's session set and any in-flight executor completion closure, so a
// batch finishing after a forced close cannot touch a dead session.
class Session : public std::enable_shared_from_this<Session> {
 public:
  // `execute` runs a batch of request lines off-loop and calls the provided
  // completion with one response per line (any thread; the session re-posts
  // onto the loop). `on_closed` fires exactly once, on the loop thread, when
  // the fd has been closed — the server uses it to drop its reference and
  // finish a drain.
  using ExecuteFn = std::function<void(
      std::vector<std::string> lines,
      std::function<void(std::vector<std::string>)> done)>;
  using ClosedFn = std::function<void(Session*)>;

  Session(EventLoop& loop, int fd, const SessionOptions& options,
          PredictionService& service, ExecuteFn execute, ClosedFn on_closed);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Registers the fd on the loop. On failure the fd is closed and on_closed
  // has fired before the error returns.
  Status start();

  // Drain hand-off (loop thread): shut down the read side so the peer's
  // pending bytes frame out as usual, the in-flight batch (if any) finishes
  // and flushes, and the session closes once the write buffer empties —
  // zero responses lost. Mirrors the legacy backend's shutdown(SHUT_RD).
  void begin_drain();

  // Hard close (loop thread): unregister and close the fd immediately,
  // without waiting for flushes. A batch completing afterwards is dropped
  // (the shared_ptr in its completion closure keeps the object alive).
  void close();

  bool closed() const { return closed_; }
  int fd() const { return fd_; }
  // Largest write-buffer size this session ever held (loop thread).
  std::size_t write_buffer_high_water() const { return high_water_; }
  std::uint64_t backpressure_stalls() const { return stalls_; }

 private:
  void on_event(std::uint32_t events);
  void on_readable();
  void on_writable();
  void on_batch_complete(std::vector<std::string> responses);
  // Dispatches the next batch of framed lines unless executing, stalled on
  // the write bound, or there is nothing to do; closes when the session is
  // finished (EOF or service stop) and fully flushed.
  void maybe_dispatch();
  // Writes as much buffered response data as the socket accepts; arms or
  // disarms EPOLLOUT interest to match.
  void flush_writes();
  void update_interest(std::uint32_t events);

  // True once no further requests will be dispatched: peer EOF, a fatal
  // socket error, or the service answered shutdown (stopped()).
  bool finished() const;

  EventLoop& loop_;
  int fd_;
  const SessionOptions options_;
  PredictionService& service_;
  ExecuteFn execute_;
  ClosedFn on_closed_;

  LineFramer framer_;
  std::string write_buf_;
  std::size_t write_off_ = 0;  // flushed prefix of write_buf_

  bool executing_ = false;  // a batch is out on the executor
  bool eof_ = false;        // read side exhausted (peer EOF / error / drain)
  bool closed_ = false;
  std::uint32_t interest_ = 0;  // currently armed epoll events

  std::size_t high_water_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace gpuhms::serve
