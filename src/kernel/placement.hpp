// Data placements: which memory space each array of a kernel lives in, plus
// validation against hardware constraints and enumeration of the legal
// placement space (the m^n exploration space of the paper's introduction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "kernel/kernel.hpp"

namespace gpuhms {

class DataPlacement {
 public:
  DataPlacement() = default;
  explicit DataPlacement(std::vector<MemSpace> spaces)
      : spaces_(std::move(spaces)) {}

  // The kernel's shipped placement (every array in its default_space).
  static DataPlacement defaults(const KernelInfo& k);

  // Parses the Table IV short-code form produced by to_string(), e.g.
  // "G,S,2T" (one code per array, in declaration order). Returns nullopt on
  // unknown codes or a length mismatch; legality is NOT checked — call
  // validate_placement for that.
  static std::optional<DataPlacement> from_string(const KernelInfo& k,
                                                  std::string_view str);

  std::size_t size() const { return spaces_.size(); }
  MemSpace of(int array) const {
    return spaces_[static_cast<std::size_t>(array)];
  }
  void set(int array, MemSpace s) {
    spaces_[static_cast<std::size_t>(array)] = s;
  }

  // Returns a copy with one array moved ("target data placement").
  DataPlacement with(int array, MemSpace s) const;

  // Short form like "G,S,T" in array order (Table IV code letters).
  std::string to_string() const;
  // Difference vs. a baseline placement, e.g. "weights(G->S)".
  std::string describe_vs(const DataPlacement& base,
                          const KernelInfo& k) const;

  bool operator==(const DataPlacement&) const = default;

 private:
  std::vector<MemSpace> spaces_;
};

// Why a placement is illegal; empty optional = legal. Aborts if p.size()
// mismatches the kernel's array count (internal-invariant API — use
// validate() below for caller-supplied placements).
std::optional<std::string> validate_placement(const KernelInfo& k,
                                              const DataPlacement& p,
                                              const GpuArch& arch);

// Non-aborting variant for caller-supplied placements: also diagnoses an
// array-count mismatch, and names the kernel in every message.
Status validate(const KernelInfo& k, const DataPlacement& p,
                const GpuArch& arch);

// Legal spaces for one array under the hardware constraints.
std::vector<MemSpace> legal_spaces(const KernelInfo& k, int array,
                                   const GpuArch& arch);

// Full legal placement space (cartesian product filtered by
// validate_placement) with the cap made observable: a search over a
// truncated space is NOT a full search, and benchmark numbers must be able
// to tell the difference.
struct PlacementSpace {
  std::vector<DataPlacement> placements;  // legal, in enumeration order
  // True when the cap stopped enumeration before the cartesian space was
  // exhausted; skipped_combinations counts the m^n combinations (legal or
  // not) that were never examined.
  bool truncated = false;
  std::uint64_t skipped_combinations = 0;
};

PlacementSpace enumerate_placement_space(const KernelInfo& k,
                                         const GpuArch& arch,
                                         std::size_t cap = 4096);

// Legacy accessor: just the legal placements (silently capped — prefer
// enumerate_placement_space where the distinction matters).
std::vector<DataPlacement> enumerate_placements(const KernelInfo& k,
                                                const GpuArch& arch,
                                                std::size_t cap = 4096);

}  // namespace gpuhms
