// Warp-level kernel DSL.
//
// A kernel is a function invoked once per warp; it records the warp's
// instruction stream (compute ops + array references by element index) into a
// WarpEmitter. This is the stand-in for CUDA source + SASSI instrumentation:
// the recorded stream plays the role of the per-thread SASS trace of the
// paper's framework (Sec. IV).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/status.hpp"
#include "isa/op.hpp"
#include "kernel/array.hpp"

namespace gpuhms {

struct WarpCtx {
  std::int64_t block = 0;        // linear block id
  int warp_in_block = 0;         // warp index within the block
  int threads_per_block = 0;
  std::int64_t num_blocks = 0;
  int lanes_active = kWarpSize;  // trailing warps may be partial

  // Global linear thread id of a lane.
  std::int64_t thread_id(int lane) const {
    return block * threads_per_block + warp_in_block * kWarpSize + lane;
  }
  std::int64_t warp_global_id() const {
    return block * ((threads_per_block + kWarpSize - 1) / kWarpSize) +
           warp_in_block;
  }
};

// Records the DSL op stream for one warp. Kernels use the helpers to express
// per-lane element indices; `uses_prev` marks a RAW dependence on the
// previous op, which both the simulator (stalls) and the model (ILP, Eq. 14)
// consume.
class WarpEmitter {
 public:
  explicit WarpEmitter(const WarpCtx& ctx) : ctx_(&ctx) {}

  void load(int array, const LaneIdx& idx, bool uses_prev = false) {
    mem(OpClass::Load, array, idx, uses_prev);
  }
  void store(int array, const LaneIdx& idx, bool uses_prev = true) {
    mem(OpClass::Store, array, idx, uses_prev);
  }
  void ialu(int count = 1, bool uses_prev = false) {
    compute(OpClass::IAlu, count, uses_prev);
  }
  void falu(int count = 1, bool uses_prev = false) {
    compute(OpClass::FAlu, count, uses_prev);
  }
  void dalu(int count = 1, bool uses_prev = false) {
    compute(OpClass::DAlu, count, uses_prev);
  }
  void sfu(int count = 1, bool uses_prev = false) {
    compute(OpClass::Sfu, count, uses_prev);
  }
  void sync() {
    DslOp op;
    op.cls = OpClass::Sync;
    ops_.push_back(op);
  }

  // --- index helpers ------------------------------------------------------
  // All-lanes-same element index (broadcast; constant memory's happy path).
  LaneIdx bcast(std::int64_t i) const {
    LaneIdx v{};
    for (int l = 0; l < kWarpSize; ++l)
      v[static_cast<std::size_t>(l)] = l < ctx_->lanes_active ? i : kInactiveLane;
    return v;
  }
  // idx[lane] = base + lane * stride (coalesced when stride == 1).
  LaneIdx linear(std::int64_t base, std::int64_t stride = 1) const {
    return by_lane([&](int l) { return base + l * stride; });
  }
  // Arbitrary per-lane index; fn may return kInactiveLane.
  template <typename Fn>
  LaneIdx by_lane(Fn&& fn) const {
    LaneIdx v{};
    for (int l = 0; l < kWarpSize; ++l)
      v[static_cast<std::size_t>(l)] =
          l < ctx_->lanes_active ? fn(l) : kInactiveLane;
    return v;
  }

  const WarpCtx& ctx() const { return *ctx_; }
  std::vector<DslOp> take() { return std::move(ops_); }

 private:
  void compute(OpClass cls, int count, bool uses_prev) {
    GPUHMS_CHECK(count >= 1);
    DslOp op;
    op.cls = cls;
    op.count = static_cast<std::uint16_t>(count);
    op.uses_prev = uses_prev;
    ops_.push_back(op);
  }
  void mem(OpClass cls, int array, const LaneIdx& idx, bool uses_prev) {
    DslOp op;
    op.cls = cls;
    op.array = static_cast<std::int16_t>(array);
    op.uses_prev = uses_prev;
    op.idx = idx;
    ops_.push_back(op);
  }

  const WarpCtx* ctx_;
  std::vector<DslOp> ops_;
};

using WarpFn = std::function<void(WarpEmitter&, const WarpCtx&)>;

struct KernelInfo {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::int64_t num_blocks = 1;
  int threads_per_block = 128;
  WarpFn fn;

  int warps_per_block() const {
    return (threads_per_block + kWarpSize - 1) / kWarpSize;
  }
  std::int64_t total_warps() const { return num_blocks * warps_per_block(); }
  int array_index(std::string_view name) const;
  const ArrayDecl& array(std::string_view name) const;
};

// Checks a (possibly user-built) kernel before the pipeline consumes it:
// a warp function must be set, the launch geometry must be positive, and
// every array declaration must be internally consistent (nonzero size,
// unique nonempty name, slice/width within bounds). Returns
// INVALID_ARGUMENT naming the kernel and the offending field.
Status validate(const KernelInfo& k);

// Runs `fn` for every warp of the blocks [block_begin, block_end) and hands
// each recorded stream to `sink(ctx, ops)`.
void for_each_warp(
    const KernelInfo& k, std::int64_t block_begin, std::int64_t block_end,
    const std::function<void(const WarpCtx&, std::vector<DslOp>&&)>& sink);

}  // namespace gpuhms
