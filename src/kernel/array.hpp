// Array declarations: the data objects whose placement the models optimize.
// The paper (like PORPLE) restricts itself to data arrays, the dominant GPU
// data structure (Sec. II-A).
#pragma once

#include <cstddef>
#include <string>

#include "arch/mem_space.hpp"

namespace gpuhms {

struct ArrayDecl {
  std::string name;
  DType dtype = DType::F32;
  std::size_t elems = 0;
  // Elements per row when the array has a natural 2-D interpretation
  // (enables the Texture2D placement and its block-linear locality); 0 = 1-D.
  std::size_t width = 0;
  // The kernel stores to this array (restricts placement to writable spaces).
  bool written = false;
  // When staged into shared memory, the number of elements each thread block
  // actually needs (its tile/slice). 0 means the whole array must fit.
  std::size_t shared_slice_elems = 0;
  // The placement the benchmark ships with (the paper's "sample placement").
  MemSpace default_space = MemSpace::Global;

  std::size_t elem_size() const { return dtype_size(dtype); }
  std::size_t bytes() const { return elems * elem_size(); }
  std::size_t shared_slice_bytes() const {
    const std::size_t e = shared_slice_elems ? shared_slice_elems : elems;
    return e * elem_size();
  }
  std::size_t height() const { return width ? (elems + width - 1) / width : 1; }
};

}  // namespace gpuhms
