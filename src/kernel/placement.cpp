#include "kernel/placement.hpp"

#include <limits>
#include <sstream>
#include <string>

namespace gpuhms {

DataPlacement DataPlacement::defaults(const KernelInfo& k) {
  std::vector<MemSpace> s;
  s.reserve(k.arrays.size());
  for (const auto& a : k.arrays) s.push_back(a.default_space);
  return DataPlacement(std::move(s));
}

std::optional<DataPlacement> DataPlacement::from_string(const KernelInfo& k,
                                                        std::string_view str) {
  std::vector<MemSpace> spaces;
  std::size_t pos = 0;
  while (pos <= str.size()) {
    const std::size_t comma = str.find(',', pos);
    const std::string_view code = str.substr(
        pos, comma == std::string_view::npos ? str.size() - pos : comma - pos);
    bool found = false;
    for (MemSpace s : kAllMemSpaces) {
      if (code == short_code(s)) {
        spaces.push_back(s);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (spaces.size() != k.arrays.size()) return std::nullopt;
  return DataPlacement(std::move(spaces));
}

DataPlacement DataPlacement::with(int array, MemSpace s) const {
  DataPlacement p = *this;
  p.set(array, s);
  return p;
}

std::string DataPlacement::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < spaces_.size(); ++i) {
    if (i) os << ',';
    os << short_code(spaces_[i]);
  }
  return os.str();
}

std::string DataPlacement::describe_vs(const DataPlacement& base,
                                       const KernelInfo& k) const {
  GPUHMS_CHECK(base.size() == size() && k.arrays.size() == size());
  std::ostringstream os;
  bool any = false;
  for (std::size_t i = 0; i < spaces_.size(); ++i) {
    if (spaces_[i] == base.spaces_[i]) continue;
    if (any) os << ", ";
    os << k.arrays[i].name << '(' << short_code(base.spaces_[i]) << "->"
       << short_code(spaces_[i]) << ')';
    any = true;
  }
  return any ? os.str() : std::string("default");
}

Status validate(const KernelInfo& k, const DataPlacement& p,
                const GpuArch& arch) {
  if (p.size() != k.arrays.size())
    return InvalidArgumentError(
        "placement has " + std::to_string(p.size()) +
        " spaces but kernel '" + k.name + "' declares " +
        std::to_string(k.arrays.size()) + " arrays");
  if (const auto why = validate_placement(k, p, arch))
    return InvalidArgumentError("placement " + p.to_string() +
                                " is illegal for kernel '" + k.name +
                                "': " + *why);
  return OkStatus();
}

std::optional<std::string> validate_placement(const KernelInfo& k,
                                              const DataPlacement& p,
                                              const GpuArch& arch) {
  GPUHMS_CHECK(p.size() == k.arrays.size());
  std::size_t const_bytes = 0;
  std::size_t shared_bytes = 0;
  for (std::size_t i = 0; i < k.arrays.size(); ++i) {
    const ArrayDecl& a = k.arrays[i];
    const MemSpace s = p.of(static_cast<int>(i));
    if (a.written && !is_device_writable(s))
      return a.name + ": written arrays cannot be placed in read-only " +
             std::string(to_string(s));
    if (s == MemSpace::Texture2D && a.width == 0)
      return a.name + ": texture2d placement needs a 2-D shape (width)";
    if (s == MemSpace::Constant) const_bytes += a.bytes();
    if (s == MemSpace::Shared) shared_bytes += a.shared_slice_bytes();
  }
  if (const_bytes > arch.constant_capacity)
    return "constant memory capacity exceeded";
  if (shared_bytes > arch.shared_capacity)
    return "shared memory capacity (per block) exceeded";
  return std::nullopt;
}

std::vector<MemSpace> legal_spaces(const KernelInfo& k, int array,
                                   const GpuArch& arch) {
  std::vector<MemSpace> out;
  const DataPlacement base = DataPlacement::defaults(k);
  for (MemSpace s : kAllMemSpaces) {
    if (!validate_placement(k, base.with(array, s), arch)) out.push_back(s);
  }
  return out;
}

PlacementSpace enumerate_placement_space(const KernelInfo& k,
                                         const GpuArch& arch,
                                         std::size_t cap) {
  PlacementSpace out;
  const std::size_t n = k.arrays.size();
  // Cartesian space size m^n, saturating (n can make this astronomically
  // large — which is exactly when truncation reporting matters).
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (total > std::numeric_limits<std::uint64_t>::max() /
                    kAllMemSpaces.size()) {
      total = std::numeric_limits<std::uint64_t>::max();
      break;
    }
    total *= kAllMemSpaces.size();
  }
  std::uint64_t scanned = 0;
  std::vector<std::size_t> cursor(n, 0);
  while (true) {
    std::vector<MemSpace> spaces(n);
    for (std::size_t i = 0; i < n; ++i)
      spaces[i] = kAllMemSpaces[cursor[i]];
    DataPlacement p(std::move(spaces));
    ++scanned;
    if (!validate_placement(k, p, arch)) {
      out.placements.push_back(std::move(p));
      if (out.placements.size() >= cap) {
        out.truncated = scanned < total;
        out.skipped_combinations = total - scanned;
        return out;
      }
    }
    // Odometer increment.
    std::size_t i = 0;
    for (; i < n; ++i) {
      if (++cursor[i] < kAllMemSpaces.size()) break;
      cursor[i] = 0;
    }
    if (i == n) break;
  }
  return out;
}

std::vector<DataPlacement> enumerate_placements(const KernelInfo& k,
                                                const GpuArch& arch,
                                                std::size_t cap) {
  return enumerate_placement_space(k, arch, cap).placements;
}

}  // namespace gpuhms
