#include "kernel/kernel.hpp"

#include <string>
#include <unordered_set>

namespace gpuhms {

Status validate(const KernelInfo& k) {
  const std::string who =
      "kernel '" + (k.name.empty() ? std::string("<unnamed>") : k.name) + "'";
  if (k.fn == nullptr)
    return InvalidArgumentError(who + " has no warp function (fn is null)");
  if (k.num_blocks < 1)
    return InvalidArgumentError(who + " has num_blocks " +
                                std::to_string(k.num_blocks) +
                                "; must be >= 1");
  if (k.threads_per_block < 1)
    return InvalidArgumentError(who + " has threads_per_block " +
                                std::to_string(k.threads_per_block) +
                                "; must be >= 1");
  if (k.arrays.empty())
    return InvalidArgumentError(who + " declares no arrays; placement search "
                                      "has nothing to optimize");
  std::unordered_set<std::string_view> names;
  for (std::size_t i = 0; i < k.arrays.size(); ++i) {
    const ArrayDecl& a = k.arrays[i];
    const std::string where = who + " array #" + std::to_string(i) + " ('" +
                              a.name + "')";
    if (a.name.empty())
      return InvalidArgumentError(who + " array #" + std::to_string(i) +
                                  " has an empty name");
    if (!names.insert(a.name).second)
      return InvalidArgumentError(where + " duplicates an earlier array name");
    if (a.elems == 0)
      return InvalidArgumentError(where + " has zero elements");
    if (a.shared_slice_elems > a.elems)
      return InvalidArgumentError(
          where + " has shared_slice_elems " +
          std::to_string(a.shared_slice_elems) + " > elems " +
          std::to_string(a.elems));
    if (a.width > a.elems)
      return InvalidArgumentError(where + " has row width " +
                                  std::to_string(a.width) + " > elems " +
                                  std::to_string(a.elems));
  }
  return OkStatus();
}

int KernelInfo::array_index(std::string_view name_) const {
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == name_) return static_cast<int>(i);
  GPUHMS_CHECK_MSG(false, "unknown array name");
  return -1;
}

const ArrayDecl& KernelInfo::array(std::string_view name_) const {
  return arrays[static_cast<std::size_t>(array_index(name_))];
}

void for_each_warp(
    const KernelInfo& k, std::int64_t block_begin, std::int64_t block_end,
    const std::function<void(const WarpCtx&, std::vector<DslOp>&&)>& sink) {
  GPUHMS_CHECK(k.fn != nullptr);
  GPUHMS_CHECK(0 <= block_begin && block_begin <= block_end &&
               block_end <= k.num_blocks);
  const int wpb = k.warps_per_block();
  for (std::int64_t b = block_begin; b < block_end; ++b) {
    for (int w = 0; w < wpb; ++w) {
      WarpCtx ctx;
      ctx.block = b;
      ctx.warp_in_block = w;
      ctx.threads_per_block = k.threads_per_block;
      ctx.num_blocks = k.num_blocks;
      const int remaining = k.threads_per_block - w * kWarpSize;
      ctx.lanes_active = remaining >= kWarpSize ? kWarpSize : remaining;
      WarpEmitter em(ctx);
      k.fn(em, ctx);
      sink(ctx, em.take());
    }
  }
}

}  // namespace gpuhms
