#include "kernel/kernel.hpp"

namespace gpuhms {

int KernelInfo::array_index(std::string_view name_) const {
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == name_) return static_cast<int>(i);
  GPUHMS_CHECK_MSG(false, "unknown array name");
  return -1;
}

const ArrayDecl& KernelInfo::array(std::string_view name_) const {
  return arrays[static_cast<std::size_t>(array_index(name_))];
}

void for_each_warp(
    const KernelInfo& k, std::int64_t block_begin, std::int64_t block_end,
    const std::function<void(const WarpCtx&, std::vector<DslOp>&&)>& sink) {
  GPUHMS_CHECK(k.fn != nullptr);
  GPUHMS_CHECK(0 <= block_begin && block_begin <= block_end &&
               block_end <= k.num_blocks);
  const int wpb = k.warps_per_block();
  for (std::int64_t b = block_begin; b < block_end; ++b) {
    for (int w = 0; w < wpb; ++w) {
      WarpCtx ctx;
      ctx.block = b;
      ctx.warp_in_block = w;
      ctx.threads_per_block = k.threads_per_block;
      ctx.num_blocks = k.num_blocks;
      const int remaining = k.threads_per_block - w * kWarpSize;
      ctx.lanes_active = remaining >= kWarpSize ? kWarpSize : remaining;
      WarpEmitter em(ctx);
      k.fn(em, ctx);
      sink(ctx, em.take());
    }
  }
}

}  // namespace gpuhms
