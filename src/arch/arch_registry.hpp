// Named, pluggable architecture backends (DESIGN §16).
//
// A backend bundles everything the model family is parameterized by — SM
// issue/latency parameters, per-memory-space latencies, and the DRAM
// address-map strategy (Algorithm 1 variants) — under a stable name that the
// CLI (`placement_advisor --arch=NAME`), the serve protocol (the request
// `arch` field), and the cross-arch study (`bench_crossarch`) all resolve
// through. The built-in registry always contains at least the Kepler/GDDR5
// default (bit-identical to the historical hardwired path), a Fermi-class
// preset, a Maxwell-class profile with a non-power-of-two bank geometry, and
// an HBM2-style stack with an XOR-swizzled channel map.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/status.hpp"

namespace gpuhms {

struct ArchBackend {
  std::string name;     // lookup key, lowercase, stable across releases
  std::string summary;  // one line for --help / error messages
  GpuArch arch;
};

// Ordered collection of named backends. Registration order is presentation
// order (names(), help text); the first registered backend is the default.
// Lookup is by exact name. The class itself is not synchronized — builtin()
// returns an immutable, thread-safe instance, and mutable registries are for
// single-threaded setup (tests, main()).
class ArchRegistry {
 public:
  // Rejects duplicate names, empty names, and configurations that fail
  // validate(); on success the backend participates in find()/names().
  Status add(ArchBackend backend);

  // nullptr when the name is unknown.
  const ArchBackend* find(std::string_view name) const;

  // INVALID_ARGUMENT listing every registered name when unknown — the serve
  // layer forwards this message verbatim as its structured error.
  StatusOr<const ArchBackend*> try_find(std::string_view name) const;

  // The first registered backend (CHECKs that one exists).
  const ArchBackend& default_backend() const;

  std::vector<std::string> names() const;
  std::size_t size() const { return backends_.size(); }

  // The process-wide immutable registry of built-in backends:
  //   kepler  — GpuArch{} default, bit-identical to the pre-registry path
  //   fermi   — the fermi_arch() preset (paper's other architecture)
  //   maxwell — GM2xx-class SMs, 12-channel GDDR5 (192 banks, modulo-folded)
  //   hbm2    — HBM2-style stack: 16 channels x 16 banks, 1 KiB rows,
  //             XOR-swizzled bank map, pseudo-channel-pair shared striping
  static const ArchRegistry& builtin();

 private:
  std::vector<ArchBackend> backends_;
};

}  // namespace gpuhms
