#include "arch/arch_registry.hpp"

#include <utility>

#include "common/check.hpp"

namespace gpuhms {

namespace {

// GM2xx-class profile: shorter ALU pipes, weak double precision, bigger
// shared memory and L2, and a 12-channel GDDR5 board — 192 banks, which is
// NOT a power of two, so the 8-bit bank field folds modulo 192. This is the
// geometry that exercises every fold path beyond the power-of-two default.
GpuArch maxwell_arch() {
  GpuArch a;
  a.num_sms = 16;
  a.max_blocks_per_sm = 32;
  a.ialu_lat = 6;
  a.falu_lat = 6;
  a.dalu_lat = 32;  // 1/32-rate DP pipe
  a.sfu_lat = 14;
  a.avg_inst_lat = 6;
  a.shared_lat = 34;
  a.shared_capacity = 96 * 1024;
  a.l2_capacity = 2048 * 1024;
  a.cache_hit_lat = 190;
  a.tex_cache_capacity = 48 * 1024;
  a.dram_channels = 12;
  a.banks_per_channel = 16;  // 192 banks total
  a.dram.pipeline_lat = 300;
  a.dram.row_hit_service = 32;
  a.dram.row_miss_service = 390;
  a.dram.row_conflict_service = 640;
  a.addr_map.transaction_bits = 7;
  a.addr_map.bank_bits = {7, 8, 9, 10, 11, 12, 13, 14};  // folded % 192
  a.addr_map.column_bits = {15, 16, 17, 18};  // 16 x 128 B = 2 KiB row
  a.addr_map.row_bits = {19, 20, 21, 22, 23, 24, 25, 26,
                         27, 28, 29, 30, 31, 32, 33, 34};
  return a;
}

// HBM2-style stack: 16 channels x 16 banks behind a wide, short bus —
// lower pipeline latency, small 1 KiB rows, and a permutation-based bank
// map (bank index XORed with the low row bits) so row-sequential streams
// rotate over channels instead of thrashing one. shared_banks = 16 models
// pseudo-channel-pair striping of the on-chip scratchpad, and is the bank
// count the shared-conflict fold must re-key on (it mis-folded or aborted
// when the 32-bank constant was compiled in).
GpuArch hbm2_arch() {
  GpuArch a;
  a.num_sms = 24;
  a.max_blocks_per_sm = 32;
  a.dalu_lat = 9;  // full-rate DP
  a.shared_lat = 38;
  a.shared_banks = 16;
  a.shared_capacity = 64 * 1024;
  a.l2_capacity = 4096 * 1024;
  a.cache_hit_lat = 200;
  a.dram_channels = 16;
  a.banks_per_channel = 16;  // 256 banks total
  a.dram.pipeline_lat = 280;
  a.dram.row_hit_service = 30;
  a.dram.row_miss_service = 350;
  a.dram.row_conflict_service = 560;
  a.addr_map.transaction_bits = 7;
  a.addr_map.bank_bits = {7, 8, 9, 10, 11, 12, 13, 14};  // 256 = 2^8, no fold
  a.addr_map.column_bits = {15, 16, 17};  // 8 x 128 B = 1 KiB row
  a.addr_map.row_bits = {18, 19, 20, 21, 22, 23, 24, 25, 26,
                         27, 28, 29, 30, 31, 32, 33, 34, 35};
  a.addr_map.bank_xor_bits = {18, 19, 20, 21, 22, 23, 24, 25};
  return a;
}

}  // namespace

Status ArchRegistry::add(ArchBackend backend) {
  if (backend.name.empty())
    return InvalidArgumentError("arch backend name must be non-empty");
  if (find(backend.name) != nullptr)
    return InvalidArgumentError("arch backend '" + backend.name +
                                "' is already registered");
  Status s = validate(backend.arch);
  if (!s.ok()) return s.annotate("registering arch '" + backend.name + "'");
  backends_.push_back(std::move(backend));
  return OkStatus();
}

const ArchBackend* ArchRegistry::find(std::string_view name) const {
  for (const ArchBackend& b : backends_) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

StatusOr<const ArchBackend*> ArchRegistry::try_find(
    std::string_view name) const {
  if (const ArchBackend* b = find(name)) return b;
  std::string known;
  for (const ArchBackend& b : backends_) {
    if (!known.empty()) known += ", ";
    known += b.name;
  }
  return InvalidArgumentError("unknown arch '" + std::string(name) +
                              "' (registered: " + known + ")");
}

const ArchBackend& ArchRegistry::default_backend() const {
  GPUHMS_CHECK_MSG(!backends_.empty(),
                   "default_backend() on an empty ArchRegistry");
  return backends_.front();
}

std::vector<std::string> ArchRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const ArchBackend& b : backends_) out.push_back(b.name);
  return out;
}

const ArchRegistry& ArchRegistry::builtin() {
  static const ArchRegistry* registry = [] {
    auto* r = new ArchRegistry();
    auto must_add = [&](ArchBackend b) {
      Status s = r->add(std::move(b));
      GPUHMS_CHECK_MSG(s.ok(), "builtin arch backend failed validation");
    };
    must_add({"kepler",
              "Kepler/K80-class default: 13 SMs, 8x16-bank GDDR5 (the "
              "paper's target, bit-identical to the historical path)",
              kepler_arch()});
    must_add({"fermi",
              "Fermi-class preset: 14 smaller SMs, 768 KiB L2, slower DRAM",
              fermi_arch()});
    must_add({"maxwell",
              "Maxwell/GM2xx-class: 16 SMs, short ALU pipes, 12x16-bank "
              "GDDR5 (192 banks, modulo-folded bank field)",
              maxwell_arch()});
    must_add({"hbm2",
              "HBM2-style stack: 24 SMs, 16x16-bank geometry, 1 KiB rows, "
              "XOR-swizzled bank map, 16-bank shared striping",
              hbm2_arch()});
    return r;
  }();
  return *registry;
}

}  // namespace gpuhms
