#include "arch/gpu_arch.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace gpuhms {

const GpuArch& kepler_arch() {
  static const GpuArch arch{};
  return arch;
}

const GpuArch& fermi_arch() {
  static const GpuArch arch = [] {
    GpuArch a;
    a.num_sms = 14;            // GF110-like SM count
    a.max_warps_per_sm = 48;
    a.max_blocks_per_sm = 8;
    a.l2_capacity = 768 * 1024;
    a.shared_capacity = 48 * 1024;
    a.tex_cache_capacity = 12 * 1024;
    a.dram_channels = 8;       // power-of-two field; see dram_channels note
    a.dram.row_hit_service = 44;
    a.dram.row_miss_service = 520;
    a.dram.row_conflict_service = 840;
    a.dram.pipeline_lat = 380;
    a.cache_hit_lat = 200;
    return a;
  }();
  return arch;
}

namespace {

Status field_error(const char* field, const std::string& why) {
  return InvalidArgumentError("GpuArch." + std::string(field) + " " + why);
}

bool power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Status validate(const GpuArch& arch) {
  const auto positive = [](long long v) { return v >= 1; };
  struct IntField {
    const char* name;
    long long value;
  };
  for (const IntField f : {
           IntField{"num_sms", arch.num_sms},
           IntField{"max_warps_per_sm", arch.max_warps_per_sm},
           IntField{"max_blocks_per_sm", arch.max_blocks_per_sm},
           IntField{"simd_width", arch.simd_width},
           IntField{"shared_banks", arch.shared_banks},
           IntField{"dram_channels", arch.dram_channels},
           IntField{"banks_per_channel", arch.banks_per_channel},
           IntField{"l2_ways", arch.l2_ways},
           IntField{"const_cache_ways", arch.const_cache_ways},
           IntField{"tex_cache_ways", arch.tex_cache_ways},
           IntField{"ialu_lat", static_cast<long long>(arch.ialu_lat)},
           IntField{"falu_lat", static_cast<long long>(arch.falu_lat)},
           IntField{"dalu_lat", static_cast<long long>(arch.dalu_lat)},
           IntField{"sfu_lat", static_cast<long long>(arch.sfu_lat)},
           IntField{"avg_inst_lat", static_cast<long long>(arch.avg_inst_lat)},
           IntField{"shared_lat", static_cast<long long>(arch.shared_lat)},
           IntField{"cache_hit_lat", static_cast<long long>(arch.cache_hit_lat)},
           IntField{"shared_capacity",
                    static_cast<long long>(arch.shared_capacity)},
           IntField{"constant_capacity",
                    static_cast<long long>(arch.constant_capacity)},
           IntField{"l2_capacity", static_cast<long long>(arch.l2_capacity)},
           IntField{"const_cache_capacity",
                    static_cast<long long>(arch.const_cache_capacity)},
           IntField{"tex_cache_capacity",
                    static_cast<long long>(arch.tex_cache_capacity)},
       }) {
    if (!positive(f.value))
      return field_error(f.name,
                         "must be >= 1 (got " + std::to_string(f.value) + ")");
  }
  // The DSL, coalescer and trace formats are all fixed at 32-lane warps.
  if (arch.warp_size != 32)
    return field_error("warp_size", "must be 32 (got " +
                                        std::to_string(arch.warp_size) + ")");
  if (!power_of_two(arch.cache_line))
    return field_error("cache_line",
                       "must be a power of two (got " +
                           std::to_string(arch.cache_line) + ")");
  if (arch.dram.row_hit_service < 1 || arch.dram.row_miss_service < 1 ||
      arch.dram.row_conflict_service < 1)
    return field_error("dram", "row-buffer service times must be >= 1");

  // Address-map structure. The full overlap/coverage rules live in the
  // AddressMapping constructor (dram layer); here we reject what would make
  // that constructor abort, so try_* entry points stay non-aborting.
  const AddressMapSpec& m = arch.addr_map;
  if (m.transaction_bits < 0 || m.transaction_bits > 32)
    return field_error("addr_map.transaction_bits", "must be in [0, 32]");
  if (m.row_bits.empty())
    return field_error("addr_map.row_bits", "must be non-empty");
  std::vector<int> roles;
  for (const std::vector<int>* g : {&m.bank_bits, &m.column_bits, &m.row_bits}) {
    for (int b : *g) {
      if (b < m.transaction_bits || b > 63)
        return field_error("addr_map",
                           "bit " + std::to_string(b) +
                               " outside [transaction_bits, 63]");
      roles.push_back(b);
    }
  }
  std::sort(roles.begin(), roles.end());
  if (std::adjacent_find(roles.begin(), roles.end()) != roles.end())
    return field_error("addr_map", "an address bit is assigned to two roles");
  if (!m.bank_xor_bits.empty()) {
    if (m.bank_xor_bits.size() != m.bank_bits.size())
      return field_error("addr_map.bank_xor_bits",
                         "must match bank_bits length when non-empty");
    if (m.bank_bits.size() >= 31 ||
        arch.total_banks() != (1 << static_cast<int>(m.bank_bits.size())))
      return field_error("addr_map.bank_xor_bits",
                         "XOR swizzle requires total_banks == 2^|bank_bits| "
                         "(swizzle + modulo folding would alias banks)");
    for (int b : m.bank_xor_bits) {
      if (b < m.transaction_bits || b > 63)
        return field_error("addr_map.bank_xor_bits",
                           "bit " + std::to_string(b) +
                               " outside [transaction_bits, 63]");
    }
  }
  return OkStatus();
}

}  // namespace gpuhms
