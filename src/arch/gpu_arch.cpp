#include "arch/gpu_arch.hpp"

namespace gpuhms {

const GpuArch& kepler_arch() {
  static const GpuArch arch{};
  return arch;
}

const GpuArch& fermi_arch() {
  static const GpuArch arch = [] {
    GpuArch a;
    a.num_sms = 14;            // GF110-like SM count
    a.max_warps_per_sm = 48;
    a.max_blocks_per_sm = 8;
    a.l2_capacity = 768 * 1024;
    a.shared_capacity = 48 * 1024;
    a.tex_cache_capacity = 12 * 1024;
    a.dram_channels = 8;       // power-of-two field; see dram_channels note
    a.dram.row_hit_service = 44;
    a.dram.row_miss_service = 520;
    a.dram.row_conflict_service = 840;
    a.dram.pipeline_lat = 380;
    a.cache_hit_lat = 200;
    return a;
  }();
  return arch;
}

}  // namespace gpuhms
