// Kepler-class GPU configuration shared by the timing simulator (the
// "hardware" substrate standing in for the paper's Tesla K80) and the
// analytical models.
//
// All times are in core-clock cycles. We document the convention
// 1 cycle == 1 ns (a 1 GHz core clock) so the paper's nanosecond latencies
// (352/742/1008 ns row-buffer hit/miss/conflict, Sec. III-C2) map directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/mem_space.hpp"
#include "common/status.hpp"

namespace gpuhms {

// Row-buffer management policy of the memory controller. Open-page (the
// paper's assumption and the default) keeps rows open between accesses,
// producing the hit/miss/conflict latency levels Algorithm 1 detects;
// closed-page auto-precharges after every access, flattening them.
enum class PagePolicy { Open, Closed };

struct DramTiming {
  PagePolicy page_policy = PagePolicy::Open;
  // Fixed pipeline latency between an SM and the DRAM bank (interconnect,
  // memory controller front end, data return), not occupying the bank.
  std::uint64_t pipeline_lat = 316;
  // Bank-occupancy (service) times by row-buffer outcome. Chosen so that the
  // unloaded end-to-end latencies are 352 / 742 / 1008 cycles, matching the
  // paper's K80 measurements in shape and magnitude.
  std::uint64_t row_hit_service = 36;
  std::uint64_t row_miss_service = 426;    // activate a closed row
  std::uint64_t row_conflict_service = 692;  // write back open row + activate
};

// Which physical address bits play which DRAM role (Algorithm 1's output,
// expressed as data). Interpreted by dram/arch_mapping(); the defaults mirror
// the Kepler-class GDDR5 layout that kepler_mapping() has always hardwired,
// so a default-constructed GpuArch decodes bit-identically to the historical
// path. `bank_xor_bits` optionally XOR-swizzles the bank index with
// higher-order (row) bits, the permutation-based interleaving HBM-class
// controllers use to spread row-sequential streams over channels; empty means
// no swizzle. Swizzled maps require a power-of-two bank count (the XOR is a
// within-field bijection; combining it with modulo folding would alias).
struct AddressMapSpec {
  int transaction_bits = 7;  // 128 B transactions
  std::vector<int> bank_bits{7, 8, 9, 10, 11, 12, 13};
  std::vector<int> column_bits{14, 15, 16, 17};
  std::vector<int> row_bits{18, 19, 20, 21, 22, 23,
                            24, 25, 26, 27, 28, 29, 30, 31, 32, 33};
  std::vector<int> bank_xor_bits;  // same length as bank_bits when non-empty
};

struct GpuArch {
  // --- Compute fabric -----------------------------------------------------
  int num_sms = 13;             // GK210 die of a K80
  int warp_size = 32;
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 16;
  int simd_width = 32;          // lanes issued per slot (single issue model)

  // Instruction latencies (cycles).
  std::uint64_t ialu_lat = 9;
  std::uint64_t falu_lat = 9;
  std::uint64_t dalu_lat = 16;  // double-precision pipe
  std::uint64_t sfu_lat = 18;
  std::uint64_t avg_inst_lat = 9;  // used by Eq. 13/15

  // --- On-chip memories ---------------------------------------------------
  std::uint64_t shared_lat = 44;          // shared-memory load-to-use
  int shared_banks = 32;
  // Extra cycles a shared access serializes per additional conflicting word.
  std::uint64_t shared_conflict_penalty = 4;
  std::size_t shared_capacity = 48 * 1024;    // per SM, bytes
  std::size_t constant_capacity = 64 * 1024;  // total constant memory

  // Caches. Line size is uniform; the paper (and Sim et al.) use a single
  // cache hit latency for all caches (Eq. 5 discussion) — we keep per-cache
  // sizes but a shared hit latency.
  std::size_t cache_line = 128;
  std::uint64_t cache_hit_lat = 160;     // L2-class hit latency
  // Hardware hit latencies of the per-SM read-only caches. The analytical
  // model deliberately ignores the difference and uses cache_hit_lat for all
  // caches (the paper's Eq. 5 simplification); the simulator keeps them.
  std::uint64_t const_cache_hit_lat = 48;
  std::uint64_t tex_cache_hit_lat = 104;
  std::size_t l2_capacity = 1536 * 1024;  // shared across SMs
  int l2_ways = 16;
  std::size_t const_cache_capacity = 8 * 1024;  // per SM
  int const_cache_ways = 4;
  std::size_t tex_cache_capacity = 24 * 1024;   // per SM
  int tex_cache_ways = 8;

  // --- Off-chip GDDR ------------------------------------------------------
  // The paper's Kepler has M=6 memory partitions; we use 8 so the bank count
  // is a power of two (128 banks) and the 7-bit bank field of the address
  // mapping decodes without modulo folding — folding aliases two address
  // ranges onto the low banks and row-thrashes them, a pathology real
  // controllers avoid with hashing that would defeat Algorithm 1.
  int dram_channels = 8;
  int banks_per_channel = 16;
  DramTiming dram;
  // Byte-address bit roles for this architecture's memory controller
  // (consumed by dram/arch_mapping(), which folds the decoded bank field
  // modulo total_banks()).
  AddressMapSpec addr_map;

  int total_banks() const { return dram_channels * banks_per_channel; }

  // Unloaded end-to-end DRAM latencies as a microbenchmark would observe
  // them (Algorithm 1 measures exactly these).
  std::uint64_t unloaded_row_hit() const {
    return dram.pipeline_lat + dram.row_hit_service;
  }
  std::uint64_t unloaded_row_miss() const {
    return dram.pipeline_lat + dram.row_miss_service;
  }
  std::uint64_t unloaded_row_conflict() const {
    return dram.pipeline_lat + dram.row_conflict_service;
  }
};

// The default configuration used everywhere unless a test overrides fields.
const GpuArch& kepler_arch();

// A Fermi-class preset (the other architecture the paper names: M = 6
// partitions on Kepler *and* Fermi): fewer, smaller SMs, smaller L2,
// slightly slower DRAM. Useful for the generality experiments.
const GpuArch& fermi_arch();

// Checks a (possibly user-built) configuration for values the simulator and
// models cannot operate on: non-positive structural counts, a warp size
// other than the DSL's fixed 32 lanes, a non-power-of-two cache line, zero
// latencies/capacities. Returns INVALID_ARGUMENT naming the offending field.
Status validate(const GpuArch& arch);

}  // namespace gpuhms
