// The programmable memory spaces of a Kepler-class GPU (Sec. II-A of the
// paper). These are the placement options the models reason about.
#pragma once

#include <array>
#include <string_view>

namespace gpuhms {

enum class MemSpace : int {
  Global = 0,
  Shared = 1,
  Constant = 2,
  Texture1D = 3,
  Texture2D = 4,
};

inline constexpr int kNumMemSpaces = 5;

inline constexpr std::array<MemSpace, kNumMemSpaces> kAllMemSpaces = {
    MemSpace::Global, MemSpace::Shared, MemSpace::Constant,
    MemSpace::Texture1D, MemSpace::Texture2D};

constexpr std::string_view to_string(MemSpace s) {
  switch (s) {
    case MemSpace::Global: return "global";
    case MemSpace::Shared: return "shared";
    case MemSpace::Constant: return "constant";
    case MemSpace::Texture1D: return "texture1d";
    case MemSpace::Texture2D: return "texture2d";
  }
  return "?";
}

// Single-letter code used in Table IV of the paper (G, S, C, T, 2T).
constexpr std::string_view short_code(MemSpace s) {
  switch (s) {
    case MemSpace::Global: return "G";
    case MemSpace::Shared: return "S";
    case MemSpace::Constant: return "C";
    case MemSpace::Texture1D: return "T";
    case MemSpace::Texture2D: return "2T";
  }
  return "?";
}

// Global / constant / texture live in off-chip GDDR behind L2; shared is
// on-chip SRAM per SM.
constexpr bool is_offchip(MemSpace s) { return s != MemSpace::Shared; }

constexpr bool is_texture(MemSpace s) {
  return s == MemSpace::Texture1D || s == MemSpace::Texture2D;
}

// Writability from device code: constant and texture memories are read-only
// within a kernel, so arrays the kernel stores to cannot be placed there.
constexpr bool is_device_writable(MemSpace s) {
  return s == MemSpace::Global || s == MemSpace::Shared;
}

// Element data types the addressing-mode analysis distinguishes
// (Sec. III-B enumerates f32, f64, i32).
enum class DType : int { F32 = 0, F64 = 1, I32 = 2 };

constexpr std::size_t dtype_size(DType t) {
  return t == DType::F64 ? 8 : 4;
}

constexpr std::string_view to_string(DType t) {
  switch (t) {
    case DType::F32: return "f32";
    case DType::F64: return "f64";
    case DType::I32: return "i32";
  }
  return "?";
}

}  // namespace gpuhms
