#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "cache/cache.hpp"
#include "common/check.hpp"
#include "sim/coalesce.hpp"

namespace gpuhms {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

struct WarpState {
  const std::vector<TraceOp>* ops = nullptr;
  std::size_t pc = 0;
  std::uint64_t issue_free = 0;       // issue port availability for this warp
  std::uint64_t last_completion = 0;  // completion of the last issued op
  bool last_was_mem = false;
  bool at_sync = false;
  bool done = false;
  int block_slot = -1;

  bool finished() const { return done; }
  // Earliest cycle the next op may issue (kInf while parked at a barrier).
  std::uint64_t gate() const {
    if (done) return kInf;
    if (at_sync) return kInf;
    const TraceOp& op = (*ops)[pc];
    return op.uses_prev ? std::max(issue_free, last_completion) : issue_free;
  }
};

struct BlockSlot {
  std::int64_t block_id = -1;
  std::vector<WarpTrace> traces;
  int warps_total = 0;
  int warps_done = 0;
  std::vector<int> warp_ids;  // indices into Sm::warps
  bool active = false;
};

struct Sm {
  std::uint64_t time = 0;
  std::vector<WarpState> warps;
  std::vector<BlockSlot> slots;
  int rr = 0;                  // round-robin scheduling cursor
  std::int64_t next_block = 0; // next block id in this SM's static stride
  bool drained = false;
  std::unique_ptr<SetAssocCache> const_cache;
  std::unique_ptr<SetAssocCache> tex_cache;
};

class Engine {
 public:
  Engine(const GpuArch& arch, const TraceMaterializer& mat, SimOptions opts)
      : arch_(arch), mat_(mat), opts_(opts),
        gddr_(arch, arch_mapping(arch), opts.record_interarrivals),
        l2_(l2_config(arch)) {}

  SimResult run();
  std::vector<std::vector<std::uint64_t>> take_samples() {
    return gddr_.interarrival_samples();
  }

 private:
  void load_block(Sm& sm, int slot_idx, std::int64_t block_id);
  void refill(Sm& sm, int slot_idx);
  bool try_issue(Sm& sm, std::uint64_t t);
  std::uint64_t issue_mem(Sm& sm, const TraceOp& op, std::uint64_t t,
                          std::uint64_t& slots);
  void release_sync_if_ready(Sm& sm, int slot_idx, std::uint64_t t);
  void advance_stalled(Sm& sm);

  const GpuArch& arch_;
  const TraceMaterializer& mat_;
  SimOptions opts_;
  GddrSystem gddr_;
  SetAssocCache l2_;
  std::vector<Sm> sms_;
  ProfileCounters c_;
  std::uint64_t finish_time_ = 0;
};

void Engine::load_block(Sm& sm, int slot_idx, std::int64_t block_id) {
  BlockSlot& slot = sm.slots[static_cast<std::size_t>(slot_idx)];
  slot.block_id = block_id;
  slot.traces = mat_.generate(block_id, block_id + 1);
  slot.warps_total = static_cast<int>(slot.traces.size());
  slot.warps_done = 0;
  slot.active = true;
  const std::uint64_t now = sm.time;
  for (std::size_t w = 0; w < slot.traces.size(); ++w) {
    WarpState& ws = sm.warps[static_cast<std::size_t>(slot.warp_ids[w])];
    ws = WarpState{};
    ws.ops = &slot.traces[w].ops;
    ws.issue_free = now;
    ws.block_slot = slot_idx;
    if (ws.ops->empty()) {
      ws.done = true;
      ++slot.warps_done;
    }
  }
  if (slot.warps_done == slot.warps_total) slot.active = false;
}

void Engine::refill(Sm& sm, int slot_idx) {
  if (sm.next_block < mat_.kernel().num_blocks) {
    const std::int64_t b = sm.next_block;
    sm.next_block += arch_.num_sms;
    load_block(sm, slot_idx, b);
  } else {
    sm.slots[static_cast<std::size_t>(slot_idx)].active = false;
    sm.slots[static_cast<std::size_t>(slot_idx)].block_id = -1;
  }
}

void Engine::release_sync_if_ready(Sm& sm, int slot_idx, std::uint64_t t) {
  BlockSlot& slot = sm.slots[static_cast<std::size_t>(slot_idx)];
  int parked_or_done = 0;
  for (int wid : slot.warp_ids) {
    const WarpState& ws = sm.warps[static_cast<std::size_t>(wid)];
    if (ws.done || ws.at_sync) ++parked_or_done;
  }
  if (parked_or_done < slot.warps_total) return;
  for (int wid : slot.warp_ids) {
    WarpState& ws = sm.warps[static_cast<std::size_t>(wid)];
    if (ws.at_sync) {
      ws.at_sync = false;
      ws.issue_free = std::max(ws.issue_free, t + 1);
    }
  }
}

// Handles one memory op issued at t: forms transactions, walks the cache
// hierarchy, books counters/replays, and returns the data-ready time.
std::uint64_t Engine::issue_mem(Sm& sm, const TraceOp& op, std::uint64_t t,
                                std::uint64_t& slots) {
  const bool is_store = op.cls == OpClass::Store;
  const std::uint64_t dram_issue = t + arch_.cache_hit_lat;
  std::uint64_t completion = t + 1;
  ++c_.ldst_executed;

  // Fully predicated-off memory instructions still issue but touch nothing.
  if (op.active_mask == 0) return completion;

  switch (op.space) {
    case MemSpace::Global: {
      std::uint64_t lines[kWarpSize];
      const int nl =
          coalesce_lines_buf(op.active_mask, op.addr.data(), arch_.cache_line,
                             lines);
      const auto n = static_cast<std::uint64_t>(nl);
      ++c_.global_requests;
      c_.global_transactions += n;
      c_.replay_global_divergence += n - 1;
      slots += n - 1;
      for (std::uint64_t line : std::span(lines, static_cast<std::size_t>(nl))) {
        ++c_.l2_transactions;
        if (!l2_.access(line, is_store)) {
          ++c_.l2_misses;
          ++c_.dram_requests;
          const std::uint64_t done = gddr_.access(line, dram_issue, is_store);
          if (!is_store) completion = std::max(completion, done);
        } else if (!is_store) {
          completion = std::max(completion, t + arch_.cache_hit_lat);
        }
      }
      break;
    }
    case MemSpace::Texture1D:
    case MemSpace::Texture2D: {
      std::uint64_t lines[kWarpSize];
      const int nl =
          coalesce_lines_buf(op.active_mask, op.addr.data(), arch_.cache_line,
                             lines);
      ++c_.tex_requests;
      c_.tex_transactions += static_cast<std::uint64_t>(nl);
      for (std::uint64_t line : std::span(lines, static_cast<std::size_t>(nl))) {
        if (sm.tex_cache->access(line, false)) {
          completion = std::max(completion, t + arch_.tex_cache_hit_lat);
          continue;
        }
        ++c_.tex_cache_misses;
        ++c_.l2_transactions;
        if (!l2_.access(line, false)) {
          ++c_.l2_misses;
          ++c_.dram_requests;
          completion = std::max(completion, gddr_.access(line, dram_issue, false));
        } else {
          completion = std::max(completion, t + arch_.cache_hit_lat);
        }
      }
      break;
    }
    case MemSpace::Constant: {
      std::uint64_t lines[kWarpSize];
      const int nl =
          coalesce_lines_buf(op.active_mask, op.addr.data(), arch_.cache_line,
                             lines);
      const int div = distinct_words(op);
      ++c_.const_requests;
      c_.replay_const_divergence += static_cast<std::uint64_t>(div - 1);
      slots += static_cast<std::uint64_t>(div - 1);
      for (std::uint64_t line : std::span(lines, static_cast<std::size_t>(nl))) {
        if (sm.const_cache->access(line, false)) {
          completion = std::max(completion, t + arch_.const_cache_hit_lat);
          continue;
        }
        ++c_.const_cache_misses;
        ++c_.replay_const_miss;
        ++slots;
        ++c_.l2_transactions;
        if (!l2_.access(line, false)) {
          ++c_.l2_misses;
          ++c_.dram_requests;
          completion = std::max(completion, gddr_.access(line, dram_issue, false));
        } else {
          completion = std::max(completion, t + arch_.cache_hit_lat);
        }
      }
      break;
    }
    case MemSpace::Shared: {
      const int degree = shared_conflict_degree(op, arch_.shared_banks);
      ++c_.shared_requests;
      c_.shared_bank_conflicts += static_cast<std::uint64_t>(degree - 1);
      c_.replay_shared_conflict += static_cast<std::uint64_t>(degree - 1);
      slots += static_cast<std::uint64_t>(degree - 1);
      if (!is_store) {
        completion = t + arch_.shared_lat +
                     static_cast<std::uint64_t>(degree - 1) *
                         arch_.shared_conflict_penalty;
      }
      break;
    }
  }
  if (is_store) completion = t + 1;  // stores retire through the write path
  return completion;
}

bool Engine::try_issue(Sm& sm, std::uint64_t t) {
  const int n = static_cast<int>(sm.warps.size());
  const bool gto = opts_.scheduler == WarpScheduler::Gto;
  // Round-robin rotates past the last issuer; GTO sticks with the current
  // warp (sm.rr) while it is ready, falling back to the oldest ready warp
  // (k = 1..n probes indices 0..n-1 in age order).
  const int candidates = gto ? n + 1 : n;
  for (int k = 0; k < candidates; ++k) {
    const int wi = gto ? (k == 0 ? sm.rr : k - 1) : (sm.rr + k) % n;
    if (gto && k > 0 && wi == sm.rr) continue;
    WarpState& ws = sm.warps[static_cast<std::size_t>(wi)];
    if (ws.block_slot < 0 || ws.gate() > t) continue;
    sm.rr = gto ? wi : (wi + 1) % n;

    const TraceOp& op = (*ws.ops)[ws.pc];
    std::uint64_t slots = 1;
    std::uint64_t completion = t + 1;
    bool was_mem = false;

    switch (op.cls) {
      case OpClass::IAlu:
        ++c_.inst_integer;
        completion = t + arch_.ialu_lat;
        break;
      case OpClass::FAlu:
        ++c_.inst_fp32;
        completion = t + arch_.falu_lat;
        break;
      case OpClass::DAlu:
        ++c_.inst_fp64;
        ++c_.replay_double_issue;  // issues over 2 cycles (cause 5)
        ++slots;
        completion = t + arch_.dalu_lat;
        break;
      case OpClass::Sfu:
        ++c_.inst_sfu;
        completion = t + arch_.sfu_lat;
        break;
      case OpClass::Sync:
        ws.at_sync = true;
        break;
      case OpClass::Load:
      case OpClass::Store:
        completion = issue_mem(sm, op, t, slots);
        was_mem = op.cls == OpClass::Load;
        c_.ldst_issued += slots;
        break;
    }

    ++c_.inst_executed;
    c_.inst_issued += slots;
    c_.issue_slots += slots;
    c_.busy_issue_cycles += slots;

    ws.pc += 1;
    ws.issue_free = t + slots;
    if (op.cls != OpClass::Sync) {
      ws.last_completion = completion;
      ws.last_was_mem = was_mem;
      finish_time_ = std::max(finish_time_, completion);
    }
    if (ws.pc >= ws.ops->size()) {
      ws.done = true;
      BlockSlot& slot = sm.slots[static_cast<std::size_t>(ws.block_slot)];
      ++slot.warps_done;
      if (slot.warps_done == slot.warps_total) {
        const int slot_idx = ws.block_slot;
        slot.active = false;
        sm.time = t + slots;  // refill sees a consistent clock
        refill(sm, slot_idx);
      } else {
        release_sync_if_ready(sm, ws.block_slot, t);
      }
    } else if (op.cls == OpClass::Sync) {
      release_sync_if_ready(sm, ws.block_slot, t);
    }
    sm.time = std::max(sm.time, t + slots);
    return true;
  }
  return false;
}

// No warp was ready at sm.time: jump to the earliest gate and book the
// stall cycles by cause.
void Engine::advance_stalled(Sm& sm) {
  std::uint64_t best = kInf;
  const WarpState* blocker = nullptr;
  bool any_alive = false;
  for (const WarpState& ws : sm.warps) {
    if (ws.block_slot < 0 || ws.done) continue;
    any_alive = true;
    const std::uint64_t g = ws.gate();
    if (g < best) {
      best = g;
      blocker = &ws;
    }
  }
  if (!any_alive) {
    sm.drained = true;
    return;
  }
  GPUHMS_CHECK_MSG(best != kInf, "scheduler deadlock (barrier not released)");
  GPUHMS_CHECK(best > sm.time);
  const std::uint64_t stall = best - sm.time;
  if (blocker->last_was_mem) {
    c_.mem_stall_cycles += stall;
  } else {
    c_.comp_stall_cycles += stall;
  }
  sm.time = best;
}

SimResult Engine::run() {
  const KernelInfo& k = mat_.kernel();
  const int wpb = k.warps_per_block();
  GPUHMS_CHECK(wpb >= 1);
  // Occupancy is placement-dependent: staging into shared memory limits the
  // blocks an SM can host.
  const int blocks_per_sm = mat_.layout().blocks_per_sm(arch_);

  sms_.clear();
  sms_.resize(static_cast<std::size_t>(arch_.num_sms));
  for (int s = 0; s < arch_.num_sms; ++s) {
    Sm& sm = sms_[static_cast<std::size_t>(s)];
    sm.const_cache = std::make_unique<SetAssocCache>(const_cache_config(arch_));
    sm.tex_cache = std::make_unique<SetAssocCache>(tex_cache_config(arch_));
    sm.warps.resize(static_cast<std::size_t>(blocks_per_sm * wpb));
    sm.slots.resize(static_cast<std::size_t>(blocks_per_sm));
    for (int b = 0; b < blocks_per_sm; ++b) {
      BlockSlot& slot = sm.slots[static_cast<std::size_t>(b)];
      slot.warp_ids.resize(static_cast<std::size_t>(wpb));
      for (int w = 0; w < wpb; ++w)
        slot.warp_ids[static_cast<std::size_t>(w)] = b * wpb + w;
    }
    sm.next_block = s;
    for (int b = 0; b < blocks_per_sm; ++b) refill(sm, b);
  }

  // Global loop: always step the SM with the smallest clock so shared
  // structures (L2, DRAM queues) observe accesses in time order.
  while (true) {
    Sm* next = nullptr;
    for (Sm& sm : sms_) {
      if (sm.drained) continue;
      bool has_work = false;
      for (const BlockSlot& slot : sm.slots) has_work = has_work || slot.active;
      if (!has_work) {
        sm.drained = true;
        continue;
      }
      if (!next || sm.time < next->time) next = &sm;
    }
    if (!next) break;
    if (!try_issue(*next, next->time)) advance_stalled(*next);
  }

  SimResult r;
  for (const Sm& sm : sms_) finish_time_ = std::max(finish_time_, sm.time);
  r.cycles = finish_time_;
  c_.total_warps = static_cast<std::uint64_t>(k.total_warps());
  c_.active_sms = static_cast<int>(
      std::min<std::int64_t>(arch_.num_sms, k.num_blocks));
  c_.warps_per_sm =
      std::min<double>(static_cast<double>(blocks_per_sm * wpb),
                       static_cast<double>(k.num_blocks) * wpb /
                           std::max(1, c_.active_sms));
  r.counters = c_;
  r.dram = gddr_.stats();
  return r;
}

}  // namespace

GpuSimulator::GpuSimulator(const GpuArch& arch, SimOptions opts)
    : arch_(&arch), opts_(opts) {}

SimResult GpuSimulator::run(const KernelInfo& kernel,
                            const DataPlacement& placement) {
  TraceMaterializer mat(kernel, placement, *arch_);
  Engine engine(*arch_, mat, opts_);
  SimResult r = engine.run();
  last_samples_ = engine.take_samples();
  return r;
}

const std::vector<std::vector<std::uint64_t>>&
GpuSimulator::interarrival_samples() const {
  return last_samples_;
}

SimResult simulate(const KernelInfo& kernel, const DataPlacement& placement,
                   const GpuArch& arch) {
  GpuSimulator sim(arch);
  return sim.run(kernel, placement);
}

}  // namespace gpuhms
